"""Setuptools shim for environments whose pip cannot do PEP 660 editable
installs (no `wheel` package offline). `pip install -e .` falls back to
`setup.py develop` when invoked with --no-use-pep517."""

from setuptools import setup

setup()
