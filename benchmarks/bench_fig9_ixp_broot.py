"""F9 — Figure 9: IPv6 traffic to b.root's old and new subnets at the
EU and NA exchanges around the renumbering.

Shape expectation (paper §6): European IXPs shift the majority of their
b.root IPv6 traffic to the new subnet (~60.8%) while North American ones
lag far behind (~16.5%).
"""

from repro.analysis.report import render_traffic_series
from repro.geo.continents import Continent
from repro.passive.ixp import regional_aggregate
from repro.util.timeutil import parse_ts

WINDOW = (parse_ts("2023-12-08"), parse_ts("2023-12-28"))


def test_fig9_ixp_v6_shift(benchmark, ixp_captures, analyze):
    def build():
        out = {}
        for region in (Continent.EUROPE, Continent.NORTH_AMERICA):
            aggregate = regional_aggregate(ixp_captures, region, *WINDOW)
            out[region] = analyze("trafficshift", aggregate=aggregate)
        return out

    analyses = benchmark.pedantic(build, rounds=1, iterations=1)

    shares = {}
    print()
    for region, analysis in analyses.items():
        series = analysis.broot_series(families=(6,))
        print(render_traffic_series(f"Figure 9 ({region}): IPv6 b.root traffic", series))
        new = analysis.b_addresses["V6new"]
        old = analysis.b_addresses["V6old"]
        shares[region] = analysis.series.window_share(new, *WINDOW, [new, old])
        print(f"  shifted share: {100 * shares[region]:.1f}%")

    print(f"(paper: Europe 60.8%, North America 16.5%)")
    assert shares[Continent.EUROPE] > 0.45
    assert shares[Continent.NORTH_AMERICA] < 0.40
    assert shares[Continent.EUROPE] > shares[Continent.NORTH_AMERICA] + 0.15
