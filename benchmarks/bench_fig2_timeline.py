"""F2 — Figure 2: measurement timeline and root zone events.

Regenerates the calendar: campaign span, the two 15-minute
high-resolution windows, and the root zone events (ZONEMD placeholder,
ZONEMD validatable, b.root change) — verifying each event falls in the
measurement phase the paper shows.
"""

from repro.rss.operators import B_ROOT_CHANGE_TS
from repro.util.timeutil import MINUTE, format_day
from repro.vantage.scheduler import (
    CAMPAIGN_END,
    CAMPAIGN_START,
    HIGH_RES_WINDOWS,
    MeasurementSchedule,
)
from repro.zone.rootzone import ZONEMD_PLACEHOLDER_DATE, ZONEMD_VALIDATABLE_DATE


def test_fig2_timeline(benchmark):
    schedule = MeasurementSchedule()
    rounds = benchmark(schedule.round_count)

    print()
    print("Figure 2: Measurement timeline and root zone events")
    print(f"  campaign: {format_day(CAMPAIGN_START)} .. {format_day(CAMPAIGN_END)} "
          f"({rounds} rounds)")
    for lo, hi in HIGH_RES_WINDOWS:
        print(f"  15-min window: {format_day(lo)} .. {format_day(hi)}")
    print(f"  ZONEMD added to root zone:  {format_day(ZONEMD_PLACEHOLDER_DATE)}")
    print(f"  ZONEMD validates:           {format_day(ZONEMD_VALIDATABLE_DATE)}")
    print(f"  b.root IP change:           {format_day(B_ROOT_CHANGE_TS)}")

    # The ZONEMD roll-out happens inside the first high-resolution
    # window, the b.root change inside the second (paper Fig. 2).
    (w1_lo, w1_hi), (w2_lo, w2_hi) = HIGH_RES_WINDOWS
    assert w1_lo <= ZONEMD_PLACEHOLDER_DATE < w1_hi
    assert w2_lo <= B_ROOT_CHANGE_TS < w2_hi
    assert schedule.interval_at(ZONEMD_PLACEHOLDER_DATE) == 15 * MINUTE
    assert schedule.interval_at(B_ROOT_CHANGE_TS) == 15 * MINUTE
    # 174 days at 30 minutes (8,352 rounds) plus the two 15-minute
    # windows' extra rounds (40 days doubled): ~10,272 total.
    assert 10_000 <= rounds <= 10_500
