"""Shared bench-runner helpers: CPU visibility and scaling curves.

The bench runners historically hard-coded their worker counts, which on
a many-core host silently records single-core numbers.  These helpers
make the worker axis explicit: :func:`scaling_worker_levels` is the
curve a runner should sweep (powers of two up to the affinity-visible
CPU count), and :func:`cpu_scaling_meta` is the machine-metadata block
that says — in the published JSON — whether a scaling curve was
*recorded* or *skipped* and why.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

__all__ = ["cpu_scaling_meta", "scaling_worker_levels", "visible_cpus"]


def visible_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware: a pinned
    container reports its quota, not the host's core count)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def scaling_worker_levels(cpus: Optional[int] = None) -> List[int]:
    """The worker counts a scaling sweep should measure: serial, powers
    of two below the visible CPU count, and the count itself.

    ``1 cpu → [1]``, ``2 → [1, 2]``, ``6 → [1, 2, 4, 6]``.
    """
    if cpus is None:
        cpus = visible_cpus()
    levels = [1]
    step = 2
    while step < cpus:
        levels.append(step)
        step *= 2
    if cpus > 1:
        levels.append(cpus)
    return levels


def cpu_scaling_meta(levels: Optional[List[int]] = None) -> Dict[str, object]:
    """Machine-metadata fields recording the scaling-sweep decision."""
    cpus = visible_cpus()
    if levels is None:
        levels = scaling_worker_levels(cpus)
    swept = [level for level in levels if level > 1]
    if swept:
        note = (
            f"recorded: serial vs workers={swept} over "
            f"{cpus} visible cpus"
        )
    else:
        note = (
            "skipped (1 visible cpu): workers>1 rows measure "
            "multiprocess overhead, not parallel speedup"
        )
    return {"cpus": cpus, "cpu_scaling": note, "worker_levels": levels}
