"""T3 — Table 3: distribution of vantage points per region.

Regenerates the VP/country/network counts per region; the scaled ring
preserves the paper's proportions (Europe-heavy, thin Africa/South
America coverage).
"""

from repro.geo.continents import Continent
from repro.util.rng import RngFactory
from repro.util.tables import Table
from repro.vantage.ring import REGION_PLAN, RingConfig, build_ring


def test_table3_vantage_points(benchmark):
    ring = benchmark(build_ring, RngFactory(2024), RingConfig(scale=1.0))

    by_region = {}
    for vp in ring:
        stats = by_region.setdefault(vp.continent, {"vps": 0, "cc": set(), "asn": set()})
        stats["vps"] += 1
        stats["cc"].add(vp.country)
        stats["asn"].add(vp.asn)

    table = Table(["Region", "#VPs", "Countries", "Networks", "Paper #VPs"])
    for continent in Continent:
        stats = by_region[continent]
        table.add_row(
            [
                str(continent),
                stats["vps"],
                len(stats["cc"]),
                len(stats["asn"]),
                REGION_PLAN[continent][0],
            ]
        )
    print()
    print(table.render("Table 3: Distribution of vantage points per region"))

    assert len(ring) == 675
    for continent, (expected_vps, _cc, _nets) in REGION_PLAN.items():
        assert by_region[continent]["vps"] == expected_vps
    assert len({vp.asn for vp in ring}) > 400  # ~523 networks in the paper
