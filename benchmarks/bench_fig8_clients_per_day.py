"""F8 — Figure 8: mean number of unique client subnets per day versus
per-client flow volume, at the ISP.

Shape expectation (paper §6): the *old* b.root IPv6 subnet sees an
outsized share of clients contacting it only about once per day — the
RFC 8109 priming fingerprint — while the new subnets see ordinary
volume distributions.
"""

from repro.analysis.report import render_figure8


def test_fig8_clients_per_day(benchmark, isp_post_change_month, analyze):
    behavior = analyze("clientbehavior", aggregate=isp_post_change_month)
    signal = benchmark(behavior.priming_signal)

    print()
    for family in (4, 6):
        print(render_figure8(behavior, family))
    print(f"single-daily-contact fractions: "
          + ", ".join(f"{k}={100 * v:.1f}%" for k, v in sorted(signal.items())))

    # The priming conjecture: old v6 subnet's once-a-day mass dominates.
    assert signal["V6old"] > signal["V6new"]
    assert signal["V6old"] > signal["V4new"]

    # Old subnets still see many distinct clients (reluctant + primers).
    old_v6 = behavior.by_family(6)["b.root (old)"]
    assert old_v6.mean_clients_per_day() > 0
