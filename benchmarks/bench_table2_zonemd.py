"""T2 — Table 2: ZONEMD/RRSIG validation errors for zones from AXFRs.

Regenerates the error taxonomy: bitflips -> bogus signatures, skewed VP
clocks -> not-incepted errors, stale d.root sites -> expired signatures.
Everything else validates.
"""

from repro.analysis.report import render_table2


def test_table2_zonemd_errors(benchmark, results, analyze):
    audit = analyze("zonemd_audit", results)
    findings, valid = benchmark(audit.validate_transfers)
    print()
    print(render_table2(findings, valid))

    reasons = {f.reason for f in findings}
    assert "Bogus Signature" in reasons  # bitflips (paper: 8 transfers)
    assert "Sig. not incepted" in reasons  # skewed clocks (paper: 2 VPs)
    assert "Signature expired" in reasons  # stale d.root sites
    assert valid > 10 * len(findings)  # failures are rare events
    # Bitflips hit a handful of VPs and several servers, as in the paper.
    flip_vps = {v for f in findings if f.fault == "bitflip" for v in f.vp_ids}
    flip_servers = {s for f in findings if f.fault == "bitflip" for s in f.servers}
    assert 1 <= len(flip_vps) <= 5
    assert len(flip_servers) >= 3
