"""T4 — Table 4: coverage of root sites per region.

Same matching as Table 1, grouped by continent.  Shape expectations:
Europe shows the best coverage (the ring is Europe-heavy), local-site
coverage trails global everywhere it exists.
"""

from repro.analysis.report import render_table4
from repro.geo.continents import Continent


def test_table4_regional_coverage(benchmark, results, analyze):
    coverage = analyze("coverage", results)
    per_region = benchmark(coverage.per_region)
    print()
    print(render_table4(coverage))

    def pct(continent, letter, scope):
        rows = {r.scope: r for r in per_region[continent][letter]}
        return rows[scope].pct

    # Local-site coverage is far better in VP-dense Europe than in Africa
    # for the local-heavy letters (paper Table 4: e.g. f.root locals are
    # 65.4% covered in Europe vs 4.0% in Africa).
    for letter in ("d", "e", "f"):
        europe = pct(Continent.EUROPE, letter, "local")
        africa = pct(Continent.AFRICA, letter, "local")
        if europe is not None and africa is not None:
            assert europe >= africa, letter

    # Regional site counts sum to the worldwide catalog.
    worldwide = coverage.worldwide()
    for letter in "abcdefghijklm":
        regional_total = sum(
            {r.scope: r for r in per_region[c][letter]}["total"].sites
            for c in Continent
        )
        assert regional_total == {r.scope: r for r in worldwide[letter]}["total"].sites
