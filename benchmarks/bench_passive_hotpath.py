"""Passive-capture hot path: scalar triple loop vs the vectorized engine.

Builds the standard captures (the ISP point and the 14 IXP points) with
both engines over the report windows, checks that every aggregate is
byte-identical, and records the kernel timings in the ``kernel`` section
of ``BENCH_passive.json`` (shared with ``bench_report_e2e.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_passive_hotpath.py --scale bench \
        --min-speedup 5.0
    PYTHONPATH=src python benchmarks/bench_passive_hotpath.py --scale tiny \
        --min-speedup 1.0   # CI smoke: equivalence + "vectorized not slower"

Exits non-zero when any vectorized aggregate differs from its scalar
reference, or when the ISP capture speedup falls below ``--min-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.passive.clients import ISP_PROFILE, build_client_population
from repro.passive.isp import IspCapture
from repro.passive.ixp import build_ixp_captures
from repro.passive.traces import FlowAggregate
from repro.util.rng import RngFactory
from repro.util.timeutil import HOUR, parse_ts

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_SEED = 2024

ISP_WINDOW = (parse_ts("2024-02-05"), parse_ts("2024-03-04"))
IXP_WINDOW = (parse_ts("2023-12-08"), parse_ts("2023-12-28"))
HOURLY_WINDOW = (parse_ts("2023-11-26"), parse_ts("2023-11-28"))


def aggregate_mismatches(
    candidate: FlowAggregate, baseline: FlowAggregate
) -> List[str]:
    """Differences between two aggregates; empty means byte-identical."""
    diffs: List[str] = []
    if set(candidate.flows) != set(baseline.flows) or any(
        candidate.flows[key].hex() != value.hex()
        for key, value in baseline.flows.items()
    ):
        diffs.append("flows")
    if any(
        candidate.client_count(*key) != baseline.client_count(*key)
        for key in baseline.flows
    ):
        diffs.append("client_counts")
    if set(candidate.per_client_flows) != set(baseline.per_client_flows) or any(
        candidate.per_client_flows[key].hex() != value.hex()
        for key, value in baseline.per_client_flows.items()
    ):
        diffs.append("per_client_flows")
    if candidate.per_client_days != baseline.per_client_days:
        diffs.append("per_client_days")
    return diffs


def isp_population(scale: str):
    profile = (
        ISP_PROFILE
        if scale == "bench"
        else replace(ISP_PROFILE, name="isp-bench-tiny", n_clients=200)
    )
    return build_client_population(profile, RngFactory(BENCH_SEED).fork("bench"))


def time_capture(capture, window, bucket_seconds) -> Tuple[FlowAggregate, float]:
    start = time.perf_counter()
    aggregate = capture.capture(*window, bucket_seconds=bucket_seconds)
    return aggregate, time.perf_counter() - start


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("tiny", "bench"), default="bench")
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_passive.json"),
        help="result file (default: BENCH_passive.json at the repo root)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail unless the ISP capture speedup reaches this factor",
    )
    args = parser.parse_args(argv)

    from repro.util.timeutil import DAY

    clients = isp_population(args.scale)
    clients_per_ixp = 120 if args.scale == "bench" else 30
    failures: List[str] = []
    cases: List[Dict[str, object]] = []

    def record(name: str, scalar_agg, scalar_s, vector_agg, vector_s) -> float:
        mismatches = aggregate_mismatches(vector_agg, scalar_agg)
        if mismatches:
            failures.append(f"{name}: vectorized differs: {', '.join(mismatches)}")
        speedup = scalar_s / vector_s if vector_s else 0.0
        status = "IDENTICAL" if not mismatches else "DIFFERS"
        print(
            f"{name:<24s} scalar {scalar_s:7.3f}s  vectorized {vector_s:7.3f}s  "
            f"{speedup:6.1f}x  {status}"
        )
        cases.append(
            {
                "case": name,
                "scalar_seconds": round(scalar_s, 4),
                "vectorized_seconds": round(vector_s, 4),
                "speedup": round(speedup, 2),
                "identical": not mismatches,
                "buckets": len(scalar_agg.buckets()),
                "flow_cells": len(scalar_agg.flows),
            }
        )
        return speedup

    # ISP capture over the Figures 7/8/12 month, daily buckets.
    scalar_isp = IspCapture(clients, seed=BENCH_SEED, engine="scalar")
    vector_isp = IspCapture(clients, seed=BENCH_SEED, engine="vectorized")
    scalar_agg, scalar_s = time_capture(scalar_isp, ISP_WINDOW, DAY)
    vector_agg, vector_s = time_capture(vector_isp, ISP_WINDOW, DAY)
    isp_speedup = record("isp/daily", scalar_agg, scalar_s, vector_agg, vector_s)

    # ISP capture on hourly buckets across the renumbering boundary.
    scalar_agg, scalar_s = time_capture(scalar_isp, HOURLY_WINDOW, HOUR)
    vector_agg, vector_s = time_capture(vector_isp, HOURLY_WINDOW, HOUR)
    record("isp/hourly", scalar_agg, scalar_s, vector_agg, vector_s)

    # All 14 IXP captures over the Figure 9/13 shift window.
    scalar_caps = build_ixp_captures(
        RngFactory(BENCH_SEED).fork("ixp"), seed=BENCH_SEED,
        clients_per_ixp=clients_per_ixp, engine="scalar",
    )
    vector_caps = build_ixp_captures(
        RngFactory(BENCH_SEED).fork("ixp"), seed=BENCH_SEED,
        clients_per_ixp=clients_per_ixp, engine="vectorized",
    )
    scalar_s = vector_s = 0.0
    scalar_aggs = []
    vector_aggs = []
    for capture in scalar_caps:
        aggregate, seconds = time_capture(capture, IXP_WINDOW, DAY)
        scalar_aggs.append(aggregate)
        scalar_s += seconds
    for capture in vector_caps:
        aggregate, seconds = time_capture(capture, IXP_WINDOW, DAY)
        vector_aggs.append(aggregate)
        vector_s += seconds
    merged_scalar = FlowAggregate(bucket_seconds=DAY)
    merged_vector = FlowAggregate(bucket_seconds=DAY)
    for aggregate in scalar_aggs:
        merged_scalar.merge_from(aggregate)
    for aggregate in vector_aggs:
        merged_vector.merge_from(aggregate)
    record("ixp/14-exchanges", merged_scalar, scalar_s, merged_vector, vector_s)

    if args.min_speedup is not None and isp_speedup < args.min_speedup:
        failures.append(
            f"isp/daily speedup {isp_speedup:.2f}x below required "
            f"{args.min_speedup}x"
        )

    section = {
        "scale": args.scale,
        "seed": BENCH_SEED,
        "clients": len(clients),
        "clients_per_ixp": clients_per_ixp,
        "machine": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        # High-water mark of this process over the scalar + vectorized runs.
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "equivalence": (
            "all vectorized aggregates byte-identical to the scalar reference"
            if not failures
            else failures
        ),
        "isp_daily_speedup": round(isp_speedup, 2),
        "cases": cases,
    }
    existing: Dict[str, object] = {}
    if os.path.exists(args.output):
        with open(args.output) as handle:
            existing = json.load(handle)
    existing["benchmark"] = (
        "vectorized passive-capture engine + parallel report generation"
    )
    existing["kernel"] = section
    with open(args.output, "w") as handle:
        json.dump(existing, handle, indent=2)
        handle.write("\n")
    print(f"results written to {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
