"""F7 — Figure 7 and the §6 headline ratios: ISP traffic to b.root's four
subnets before/after the renumbering.

Shape expectations: pre-change, the old subnets carry the traffic with a
small (~0.8%) testing trickle on the new ones; post-change the new IPv4
subnet dominates; in-family shift ratios land near the paper's 87.1%
(IPv4) and 96.3% (IPv6), with IPv6 the more eager family.
"""

from repro.analysis.report import render_traffic_series
from repro.util.timeutil import parse_ts


def test_fig7_isp_broot_traffic(
    benchmark, isp_pre_change_day, isp_post_change_month, analyze
):
    pre = analyze("trafficshift", aggregate=isp_pre_change_day)
    post = analyze("trafficshift", aggregate=isp_post_change_month)

    series = benchmark(post.broot_series)
    print()
    print(render_traffic_series(
        "Figure 7 (middle): ISP b.root traffic 2024-02-05 .. 2024-03-04",
        series,
    ))

    trickle = pre.new_address_share_before_change(
        parse_ts("2023-10-08"), parse_ts("2023-10-09")
    )
    print(f"pre-change new-subnet share: {100 * trickle:.2f}% (paper 0.8%)")
    assert trickle < 0.05

    ratios = post.shift_ratios(parse_ts("2024-02-05"), parse_ts("2024-03-04"))
    print(f"in-family shift: v4 {100 * ratios.v4_shifted:.1f}% (paper 87.1%), "
          f"v6 {100 * ratios.v6_shifted:.1f}% (paper 96.3%)")
    assert 0.75 < ratios.v4_shifted < 0.95
    assert 0.90 < ratios.v6_shifted <= 1.0
    assert ratios.v6_shifted > ratios.v4_shifted

    # Post-change, the new IPv4 subnet receives the majority of b traffic
    # (paper: 76.2%), and the old IPv4 subnet still rivals the new IPv6.
    window = (parse_ts("2024-02-05"), parse_ts("2024-03-04"))
    subset = list(post.b_addresses.values())
    v4new = post.series.window_share(post.b_addresses["V4new"], *window, subset)
    assert v4new > 0.5
