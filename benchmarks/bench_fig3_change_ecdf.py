"""F3 — Figure 3: complementary eCDF of catchment change events for
{b, g}.root.

Shape expectations (paper §4.2): b.root's routing is considerably more
stable than g.root's despite both deploying 6 sites; g.root churns more
over IPv6 than IPv4; the per-VP distribution is heavy-tailed.
"""

from repro.analysis.report import render_figure3


def test_fig3_change_ecdf(benchmark, results, analyze):
    stability = benchmark(analyze, "stability", results)
    print()
    print(render_figure3(stability))

    b_v4 = stability.median_changes("b", 4, "new")
    b_v6 = stability.median_changes("b", 6, "new")
    g_v4 = stability.median_changes("g", 4)
    g_v6 = stability.median_changes("g", 6)
    print(f"medians: b v4={b_v4:g} v6={b_v6:g} | g v4={g_v4:g} v6={g_v6:g} "
          f"(paper: b 8/8, g 36/64)")

    assert g_v4 > 2 * b_v4  # same site count, very different stability
    assert g_v6 > g_v4  # the IPv6 excess
    assert abs(b_v4 - b_v6) <= max(3.0, 0.5 * max(b_v4, b_v6))
    # Heavy tail: some VPs see far more changes than the median.
    series = stability.series_for("g")[0]
    assert max(series.changes_per_vp) > 2 * series.median_changes()
