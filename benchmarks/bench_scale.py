"""Paper-magnitude scaling matrix: wall, CPU and peak RSS per cell.

Two cell families, every cell measured in its own subprocess (peak RSS
is a per-process high-water mark):

* ``epoch-<ring_scale>`` — builds the epoch-compiled campaign plan at
  ring_scale 0.1 / 0.3 / 1.0 on the paper's 30-minute schedule, twice:
  materialized (every (VP, address) epoch list up front) and streamed
  (``EpochCampaignPlan(streamed=True)``, epochs per emitted chunk).
  Both emit the same opening chunks and must report identical collector
  summaries.  Each child samples its own RSS after the platform build
  (the floor) and after plan construction, so the cell attributes
  memory to the *plan* — the part the streamed path changes; emission
  (collector rows, allocator high-water) is identical either way.
  Streamed plan memory must sit well under materialized plan memory,
  and a chunk-size sweep (same rounds emitted at every chunk size)
  shows the retained state is O(chunk), not O(campaign).

* ``passive-<clients>`` — 3 000 / 100 000 / 1 000 000 clients through a
  week-long daily ISP capture.  ``indexed`` uses the paper-scale path
  (mixer-compiled ``ClientColumns``, blocked flow grid, columnar
  per-client ledger); ``legacy`` uses the original
  ``build_client_population`` + eager per-client dicts (skipped at 10⁶,
  where per-client Python objects stop being realistic).  Cells report
  total wall and the population/per-client *path* speedup — the capture
  kernel between those phases is the same vectorized engine either way.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py                  # full matrix
    PYTHONPATH=src python benchmarks/bench_scale.py \
        --cells epoch-0.3,passive-100000 \
        --max-epoch-rss-fraction 0.5 --min-passive-speedup 5.0       # CI smoke

Exits non-zero on a summary mismatch or a failed gate.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SEED = 2024

RING_SCALES = (0.1, 0.3, 1.0)
CLIENT_COUNTS = (3_000, 100_000, 1_000_000)

#: Rounds emitted per epoch cell: enough to exercise the full emission
#: path; the RSS signal is the plan itself.
EPOCH_CHUNK = 64
EPOCH_ROUNDS = 128
#: The streamed O(chunk) sweep (run at ring_scale 0.3) emits this many
#: rounds at each chunk size — same collector growth per run, so the
#: only RSS variable left is the per-chunk epoch buffer.
SWEEP_CHUNKS = (16, 64, 256)
SWEEP_ROUNDS = 512

PASSIVE_WINDOW_DAYS = 7


def _usage() -> Dict[str, float]:
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "cpu_seconds": round(usage.ru_utime + usage.ru_stime, 2),
        "peak_rss_kb": usage.ru_maxrss,
    }


def _vmrss_kb() -> int:
    """Current (not peak) resident set size, for in-process deltas."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def epoch_child(ring_scale: float, mode: str, chunk: int, rounds: int) -> int:
    from dataclasses import replace

    from repro.core.config import StudyConfig
    from repro.core.pipeline import build_platform, build_world
    from repro.vantage.epoch_engine import EpochCampaignPlan

    config = replace(
        StudyConfig.paper(seed=SEED),
        ring_scale=ring_scale,
        ring_min_per_region=1,
    )
    world = build_world(config, reuse=False)
    platform_artifacts = build_platform(config, world)
    floor_kb = _vmrss_kb()  # world + platform, before the first epoch

    started = time.perf_counter()
    plan = EpochCampaignPlan(
        platform_artifacts.prober,
        platform_artifacts.vps,
        platform_artifacts.schedule,
        streamed=(mode == "streamed"),
    )
    build_seconds = time.perf_counter() - started
    plan_kb = max(0, _vmrss_kb() - floor_kb)  # retained by the plan itself
    for lo in range(0, rounds, chunk):
        plan.emit_range(lo, min(lo + chunk, rounds))
    wall = time.perf_counter() - started

    collector = platform_artifacts.prober.collector
    print(json.dumps({
        "mode": mode,
        "chunk": chunk,
        "rounds_emitted": rounds,
        "vps": len(platform_artifacts.vps),
        "rounds": platform_artifacts.schedule.round_count(),
        "plan_build_seconds": round(build_seconds, 2),
        "wall_seconds": round(wall, 2),
        "floor_rss_kb": floor_kb,
        "plan_rss_kb": plan_kb,
        "summary": collector.summary(),
        **_usage(),
    }))
    return 0


def passive_child(clients: int, mode: str) -> int:
    from dataclasses import replace

    from repro.passive.clients import ISP_PROFILE, build_client_population
    from repro.passive.isp import IspCapture
    from repro.passive.population_engine import compile_population
    from repro.util.rng import RngFactory
    from repro.util.timeutil import DAY, parse_ts

    profile = replace(
        ISP_PROFILE, name=f"isp-scale-{clients}", n_clients=clients
    )
    window = (
        parse_ts("2024-02-05"),
        parse_ts("2024-02-05") + PASSIVE_WINDOW_DAYS * DAY,
    )

    started = time.perf_counter()
    if mode == "indexed":
        population = compile_population(profile, SEED)
    else:
        population = build_client_population(
            profile, RngFactory(SEED).fork("scale")
        )
    capture = IspCapture(population, seed=SEED)
    capture.client_columns()  # legacy pays the object -> columns walk here
    built = time.perf_counter()

    aggregate = capture.capture(*window, bucket_seconds=DAY)
    captured = time.perf_counter()

    if mode == "indexed":
        # Figure 8 read off the columnar ledger — no dicts, no strings.
        per_client = sum(
            len(aggregate.mean_daily_flows_per_client(sa.address))
            for sa in capture.addresses
        )
    else:
        # The pre-ledger behaviour: eager per-client dicts.
        per_client = len(aggregate.per_client_flows)
    finished = time.perf_counter()

    print(json.dumps({
        "mode": mode,
        "clients": clients,
        "population_seconds": round(built - started, 2),
        "capture_seconds": round(captured - built, 2),
        "per_client_seconds": round(finished - captured, 2),
        # Everything this PR's indexed path replaces; the capture kernel
        # in between is the same vectorized engine for both modes.
        "population_path_seconds": round(
            (built - started) + (finished - captured), 2
        ),
        "wall_seconds": round(finished - started, 2),
        "flow_cells": len(aggregate.flows),
        "per_client_series": per_client,
        **_usage(),
    }))
    return 0


def run_child(argv: List[str]) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__)] + argv,
        env=env, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child {argv} failed ({proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_epoch_cell(ring_scale: float, sweep: bool, failures: List[str]) -> dict:
    label = f"epoch-{ring_scale:g}"
    runs = {}
    for mode in ("materialized", "streamed"):
        runs[mode] = run_child(
            ["--epoch-child", mode, "--ring-scale", str(ring_scale),
             "--chunk", str(EPOCH_CHUNK), "--rounds", str(EPOCH_ROUNDS)]
        )
        print(f"{label:<16s} {mode:<13s} wall {runs[mode]['wall_seconds']:7.2f}s  "
              f"cpu {runs[mode]['cpu_seconds']:7.2f}s  "
              f"plan RSS {runs[mode]['plan_rss_kb'] / 1024:7.1f} MB  "
              f"peak RSS {runs[mode]['peak_rss_kb'] / 1024:7.1f} MB")
    if runs["streamed"]["summary"] != runs["materialized"]["summary"]:
        failures.append(f"{label}: streamed summary differs from materialized")

    # Plan-attributable memory: what each child retains over its own
    # world + platform floor once the plan exists.  Emission costs
    # (collector rows, allocator high-water over ~10^6 transient block
    # allocations) are mode-independent and reported via peak RSS.
    fraction = (
        runs["streamed"]["plan_rss_kb"] / runs["materialized"]["plan_rss_kb"]
        if runs["materialized"]["plan_rss_kb"]
        else 1.0
    )
    total_fraction = (
        runs["streamed"]["peak_rss_kb"] / runs["materialized"]["peak_rss_kb"]
    )
    print(f"{label:<16s} streamed plan RSS = {fraction:.2f}x materialized "
          f"(child peak RSS {total_fraction:.2f}x)")

    cell = {
        "cell": label,
        "ring_scale": ring_scale,
        "vps": runs["materialized"]["vps"],
        "rounds": runs["materialized"]["rounds"],
        "chunk": EPOCH_CHUNK,
        "rounds_emitted": EPOCH_ROUNDS,
        "plan_rss_kb": {
            "materialized": runs["materialized"]["plan_rss_kb"],
            "streamed": runs["streamed"]["plan_rss_kb"],
        },
        "plan_rss_fraction": round(fraction, 3),
        "total_rss_fraction": round(total_fraction, 3),
        "identical_summaries": (
            runs["streamed"]["summary"] == runs["materialized"]["summary"]
        ),
        "materialized": {k: v for k, v in runs["materialized"].items() if k != "summary"},
        "streamed": {k: v for k, v in runs["streamed"].items() if k != "summary"},
    }
    if sweep:
        # O(chunk) evidence: same rounds emitted at every chunk size, so
        # collector growth is constant across the sweep and the only RSS
        # variable is the per-chunk epoch buffer — which barely moves
        # over a 16x chunk range and never approaches the materialized
        # plan's O(campaign) footprint.
        cell["sweep_rounds"] = SWEEP_ROUNDS
        cell["chunk_sweep"] = []
        for chunk in SWEEP_CHUNKS:
            run = run_child(
                ["--epoch-child", "streamed", "--ring-scale", str(ring_scale),
                 "--chunk", str(chunk), "--rounds", str(SWEEP_ROUNDS)]
            )
            cell["chunk_sweep"].append({
                "chunk": chunk,
                "plan_rss_kb": run["plan_rss_kb"],
                "peak_rss_kb": run["peak_rss_kb"],
                "emission_rss_kb": max(
                    0, run["peak_rss_kb"] - run["floor_rss_kb"]
                ),
            })
            print(f"{label:<16s} streamed chunk={chunk:<4d} "
                  f"peak RSS {run['peak_rss_kb'] / 1024:7.1f} MB "
                  f"(over floor "
                  f"{cell['chunk_sweep'][-1]['emission_rss_kb'] / 1024:6.1f} MB)")
    return cell


def run_passive_cell(clients: int, failures: List[str]) -> dict:
    label = f"passive-{clients}"
    modes = ["indexed"] if clients >= 1_000_000 else ["legacy", "indexed"]
    runs = {}
    for mode in modes:
        runs[mode] = run_child(
            ["--passive-child", mode, "--clients", str(clients)]
        )
        print(f"{label:<16s} {mode:<13s} wall {runs[mode]['wall_seconds']:7.2f}s  "
              f"cpu {runs[mode]['cpu_seconds']:7.2f}s  "
              f"peak RSS {runs[mode]['peak_rss_kb'] / 1024:7.1f} MB")
    cell = {
        "cell": label,
        "clients": clients,
        **{mode: runs[mode] for mode in modes},
    }
    if "legacy" in runs:
        if runs["legacy"]["flow_cells"] != runs["indexed"]["flow_cells"]:
            failures.append(f"{label}: legacy/indexed flow cells differ")
        speedup = (
            runs["legacy"]["wall_seconds"] / runs["indexed"]["wall_seconds"]
            if runs["indexed"]["wall_seconds"]
            else 0.0
        )
        # The capture kernel between the two phases is the same
        # vectorized engine either way; this is the path the indexed
        # population replaces (object build + eager per-client dicts).
        path_speedup = (
            runs["legacy"]["population_path_seconds"]
            / runs["indexed"]["population_path_seconds"]
            if runs["indexed"]["population_path_seconds"]
            else 0.0
        )
        cell["speedup"] = round(speedup, 2)
        cell["population_path_speedup"] = round(path_speedup, 2)
        print(f"{label:<16s} indexed speedup = {speedup:.1f}x total, "
              f"{path_speedup:.1f}x on the population/per-client path")
    return cell


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cells", default=None,
        help="comma-separated cell filter, e.g. 'epoch-0.3,passive-100000' "
             "(default: the full matrix)",
    )
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_scale.json"),
        help="result file (default: BENCH_scale.json at the repo root)",
    )
    parser.add_argument(
        "--max-epoch-rss-fraction", type=float, default=None,
        help="fail any epoch cell whose plan-attributable streamed/"
             "materialized peak-RSS fraction is not below this",
    )
    parser.add_argument(
        "--min-passive-speedup", type=float, default=None,
        help="fail any passive cell of >= 100k clients whose "
             "population/per-client path speedup is below this (smaller "
             "cells are dominated by fixed costs and not gated)",
    )
    parser.add_argument(
        "--epoch-child", choices=("materialized", "streamed")
    )
    parser.add_argument("--ring-scale", type=float)
    parser.add_argument("--chunk", type=int, default=EPOCH_CHUNK)
    parser.add_argument("--rounds", type=int, default=EPOCH_ROUNDS)
    parser.add_argument("--passive-child", choices=("legacy", "indexed"))
    parser.add_argument("--clients", type=int)
    args = parser.parse_args(argv)

    if args.epoch_child:
        return epoch_child(
            args.ring_scale, args.epoch_child, args.chunk, args.rounds
        )
    if args.passive_child:
        return passive_child(args.clients, args.passive_child)

    wanted = set(args.cells.split(",")) if args.cells else None

    def selected(label: str) -> bool:
        return wanted is None or label in wanted

    failures: List[str] = []
    cells: List[dict] = []
    for ring_scale in RING_SCALES:
        label = f"epoch-{ring_scale:g}"
        if not selected(label):
            continue
        cell = run_epoch_cell(ring_scale, sweep=(ring_scale == 0.3), failures=failures)
        cells.append(cell)
        if (
            args.max_epoch_rss_fraction is not None
            and cell["plan_rss_fraction"] >= args.max_epoch_rss_fraction
        ):
            failures.append(
                f"{label}: streamed plan RSS fraction "
                f"{cell['plan_rss_fraction']} not below required "
                f"{args.max_epoch_rss_fraction}"
            )
    for clients in CLIENT_COUNTS:
        label = f"passive-{clients}"
        if not selected(label):
            continue
        cell = run_passive_cell(clients, failures)
        cells.append(cell)
        if (
            args.min_passive_speedup is not None
            and clients >= 100_000
            and "population_path_speedup" in cell
            and cell["population_path_speedup"] < args.min_passive_speedup
        ):
            failures.append(
                f"{label}: population-path speedup "
                f"{cell['population_path_speedup']}x below required "
                f"{args.min_passive_speedup}x"
            )

    if wanted is not None:
        known = {f"epoch-{r:g}" for r in RING_SCALES} | {
            f"passive-{c}" for c in CLIENT_COUNTS
        }
        for name in sorted(wanted - known):
            failures.append(f"unknown cell {name!r} (choose from {sorted(known)})")

    report = {
        "benchmark": "paper-magnitude scaling: streamed epoch plans + "
                     "indexed passive populations",
        "seed": SEED,
        "machine": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "cells": cells,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"results written to {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
