"""F13 — Figure 13: IXP traffic shares across all thirteen letters.

Shape expectation (paper Appendix D): exchange traffic is dominated by a
few letters, especially k.root and d.root.
"""

from repro.geo.continents import Continent
from repro.passive.ixp import regional_aggregate
from repro.util.tables import Table
from repro.util.timeutil import parse_ts

WINDOW = (parse_ts("2023-11-01"), parse_ts("2023-11-15"))


def test_fig13_ixp_all_roots(benchmark, ixp_captures, analyze):
    def build():
        aggregate = regional_aggregate(ixp_captures, Continent.EUROPE, *WINDOW)
        return analyze("trafficshift", aggregate=aggregate).letter_shares(*WINDOW)

    shares = benchmark.pedantic(build, rounds=1, iterations=1)

    print()
    table = Table(["Root", "share %"], float_digits=2)
    for letter in sorted(shares, key=shares.get, reverse=True):
        table.add_row([letter, 100 * shares[letter]])
    print(table.render("Figure 13: EU IXP traffic share per letter"))

    ordered = sorted(shares, key=shares.get, reverse=True)
    assert set(ordered[:2]) == {"k", "d"}  # the paper's dominant letters
    assert shares["k"] + shares["d"] > 0.3
    assert sum(shares.values()) > 0.99
