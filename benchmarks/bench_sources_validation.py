"""V1 — §4.2/§7: validation of the out-of-band zone channels.

Regenerates the roll-out audit of the CZDS and IANA download series:
no ZONEMD before 2023-09-13ish, a non-validatable placeholder until
2023-12-06, fully validating zones afterwards — with RRSIGs valid
throughout (the paper found no issues in these channels).
"""

from repro.analysis.report import render_source_audit
from repro.analysis import registry
from repro.dnssec.zonemd import ZonemdStatus
from repro.util.timeutil import DAY, format_ts, parse_ts
from repro.zone.rootzone import ZONEMD_VALIDATABLE_DATE
from repro.zone.sources import CzdsSource, IanaSource


def test_sources_validation_schedule(benchmark, results):
    iana = IanaSource(results.distributor)
    czds = CzdsSource(results.distributor)

    # Sample both channels every few days across the roll-out.
    sample_days = [
        parse_ts("2023-08-15"), parse_ts("2023-09-15"), parse_ts("2023-09-25"),
        parse_ts("2023-10-15"), parse_ts("2023-11-15"), parse_ts("2023-12-05"),
        parse_ts("2023-12-07"), parse_ts("2023-12-15"), parse_ts("2024-01-15"),
    ]

    def build():
        downloads = [iana.download(day + 12 * 3600) for day in sample_days]
        downloads += [czds.download(day) for day in sample_days]
        return registry.get("zonemd_audit").audit_downloads(downloads)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_source_audit(rows))

    # RRSIGs always validate in these channels (paper: no issues found).
    assert all(r.rrsig_valid for r in rows)
    # The ZONEMD status follows the roll-out calendar.
    for row in rows:
        if row.retrieved_at < parse_ts("2023-09-13"):
            assert row.zonemd_status is ZonemdStatus.ABSENT
        elif row.retrieved_at < ZONEMD_VALIDATABLE_DATE:
            assert row.zonemd_status in (
                ZonemdStatus.ABSENT, ZonemdStatus.UNSUPPORTED_ALGORITHM
            )
        elif row.retrieved_at > ZONEMD_VALIDATABLE_DATE + DAY:
            assert row.zonemd_status is ZonemdStatus.VALID

    first = ZonemdAudit.first_validating_download(rows)
    assert first is not None
    print(f"first fully-validating download: {first.source} at "
          f"{format_ts(first.retrieved_at)} (paper: IANA 2023-12-06T20:30)")
