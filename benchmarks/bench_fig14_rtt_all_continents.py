"""F14/F15 — Figures 14 and 15: RTT violin/box data for all six
continents, every letter and both families (the appendix versions of
Figure 6).
"""

import numpy as np

from repro.analysis.report import render_figure6
from repro.geo.continents import Continent


def test_fig14_fig15_rtt_all_continents(benchmark, results, analyze):
    rtt = analyze("rtt", results)
    addresses = [sa.address for sa in results.collector.addresses]
    continents = list(Continent)

    def build():
        cells = {}
        for address in addresses:
            for continent in continents:
                summary = rtt.summary(address, continent)
                if summary is not None:
                    cells[(address, continent)] = summary
        return cells

    cells = benchmark(build)
    print()
    print(render_figure6(rtt, continents, addresses, {}))

    # Every continent has data (the ring covers all six regions).
    covered = {continent for (_a, continent) in cells}
    assert covered == set(continents)

    # Violin data: densities normalised wherever a cell has samples.
    sample_addr, sample_continent = next(iter(cells))
    _edges, densities = rtt.violin_bins(sample_addr, sample_continent)
    assert np.isclose(densities.sum(), 1.0)

    # Sanity on magnitudes: medians within the plot's 1..1000 ms range.
    for summary in cells.values():
        assert 0.1 < summary.p50 < 1500.0
