"""Campaign hot-path benchmark: scalar engine vs the epoch-compiled engine.

Runs the same campaign on both execution engines (serial and sharded),
checks that every variant produces a byte-identical collector, and writes
the timings to ``BENCH_hotpath.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign_hotpath.py --scale bench
    PYTHONPATH=src python benchmarks/bench_campaign_hotpath.py --scale tiny \
        --min-speedup 1.0   # CI smoke: equivalence + "epoch not slower"

Exits non-zero when any variant's collector differs from the scalar
serial baseline, or when the epoch engine's serial speedup falls below
``--min-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core.config import StudyConfig
from repro.core.pipeline import StudyPipeline
from repro.util.timeutil import parse_ts
from repro.vantage.collector import CampaignCollector

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_config(scale: str) -> StudyConfig:
    if scale == "bench":
        # The BENCH_pipeline.json campaign: full timeline, ~89 VPs.
        return StudyConfig(
            seed=2024,
            ring_scale=0.1,
            ring_min_per_region=8,
            interval_scale=48.0,
            rtt_sample_every=1,
            traceroute_sample_every=2,
            axfr_sample_every=2,
            clean_transfer_keep_one_in=200,
        )
    # "tiny": a dozen VPs over a month around the ZONEMD switch —
    # CI-friendly, still exercising sampling, traceroutes, transfers and
    # enough rounds that engine timing differences beat scheduler noise.
    return StudyConfig(
        seed=77,
        ring_scale=0.02,
        interval_scale=96.0,
        campaign_start=parse_ts("2023-11-15"),
        campaign_end=parse_ts("2023-12-15"),
        rtt_sample_every=1,
        traceroute_sample_every=2,
        axfr_sample_every=2,
        clean_transfer_keep_one_in=20,
    )


def collector_mismatches(
    candidate: CampaignCollector, baseline: CampaignCollector
) -> List[str]:
    """Differences between two collectors; empty means byte-identical."""
    diffs: List[str] = []
    if candidate.summary() != baseline.summary():
        diffs.append("summary")
    if candidate.change_counts() != baseline.change_counts():
        diffs.append("change_counts")
    if candidate.sites.values != baseline.sites.values:
        diffs.append("sites interner")
    if candidate.hops.values != baseline.hops.values:
        diffs.append("hops interner")
    if candidate.identities != baseline.identities or any(
        list(candidate.identities[letter]) != list(baseline.identities[letter])
        for letter in baseline.identities
    ):
        diffs.append("identities")
    for getter in ("probe_columns", "traceroute_columns"):
        c_cols = getattr(candidate, getter)()
        b_cols = getattr(baseline, getter)()
        for name in b_cols:
            if not np.array_equal(c_cols[name], b_cols[name]):
                diffs.append(f"{getter}[{name}]")
    key = lambda o: (
        o.vp_id, o.true_ts, o.observed_ts, o.address.label, o.serial,
        o.fault, o.fault_detail,
    )
    if [key(o) for o in candidate.transfers] != [key(o) for o in baseline.transfers]:
        diffs.append("transfers")
    if candidate.transfer_clean != baseline.transfer_clean:
        diffs.append("transfer_clean")
    return diffs


def run_variant(
    config: StudyConfig, engine: str, shards: int, workers: int = 1
) -> Tuple[CampaignCollector, float, float]:
    """Run one campaign variant; returns (collector, build s, campaign s)."""
    variant = config.with_engine(engine)
    if shards > 1 or workers > 1:
        variant = variant.with_sharding(shards, workers=workers)
    pipeline = StudyPipeline(variant)
    pipeline.build_platform()
    collector = pipeline.run_campaign()
    seconds: Dict[str, float] = {}
    for timing in pipeline.timings:
        if not timing.reused:
            seconds[timing.stage] = seconds.get(timing.stage, 0.0) + timing.seconds
    build = seconds.get("build_world", 0.0) + seconds.get("build_platform", 0.0)
    return collector, build, seconds.get("run_campaign", 0.0)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("tiny", "bench"), default="bench")
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_hotpath.json"),
        help="result file (default: BENCH_hotpath.json at the repo root)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail unless serial epoch/scalar speedup reaches this factor",
    )
    args = parser.parse_args(argv)

    config = make_config(args.scale)
    variants = [
        ("scalar", 1, 1),
        ("scalar", 2, 1),
        ("epoch", 1, 1),
        ("epoch", 2, 1),
        ("epoch", 4, 1),
    ]

    # Un-timed warm-up: the variants share the checkpointed world, so the
    # first timed run must not be the one paying zone building, AXFR and
    # route-cache warm-up for everyone.
    run_variant(config, "epoch", 1)

    runs = []
    baseline: Optional[CampaignCollector] = None
    times: Dict[Tuple[str, int], float] = {}
    failures: List[str] = []
    for engine, shards, workers in variants:
        collector, build_s, campaign_s = run_variant(config, engine, shards, workers)
        times[(engine, shards)] = campaign_s
        if baseline is None:
            baseline = collector
            mismatches: List[str] = []
        else:
            mismatches = collector_mismatches(collector, baseline)
            if mismatches:
                failures.append(
                    f"{engine}/shards={shards} differs from scalar serial: "
                    + ", ".join(mismatches)
                )
        label = f"{engine:<6s} shards={shards}"
        status = "IDENTICAL" if not mismatches else "DIFFERS: " + ", ".join(mismatches)
        print(f"{label}  campaign {campaign_s:7.2f}s  build {build_s:5.2f}s  {status}")
        runs.append(
            {
                "engine": engine,
                "shards": shards,
                "workers": workers,
                "build_seconds": round(build_s, 2),
                "campaign_seconds": round(campaign_s, 2),
                "identical_to_baseline": not mismatches,
                "summary": collector.summary(),
            }
        )

    speedup = (
        times[("scalar", 1)] / times[("epoch", 1)] if times[("epoch", 1)] else 0.0
    )
    print(f"serial speedup (scalar/epoch): {speedup:.1f}x")
    if args.min_speedup is not None and speedup < args.min_speedup:
        failures.append(
            f"serial epoch speedup {speedup:.2f}x below required {args.min_speedup}x"
        )

    config_dict = asdict(config)
    report = {
        "benchmark": "campaign hot path: scalar engine vs epoch-compiled engine",
        "scale": args.scale,
        "config": config_dict,
        "machine": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        # High-water mark of this (parent) process over every variant.
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "equivalence": (
            "all variants byte-identical to the scalar serial baseline"
            if not failures
            else failures
        ),
        "serial_speedup": round(speedup, 2),
        "runs": runs,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"results written to {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
