"""F5 — Figure 5: distance to closest global site vs distance to the
actual site, per request, for b.root (new) and m.root.

Shape expectations (paper §6): ~78-82% of requests are routed to their
closest global instance or to an even closer local one; most clients see
under 1,000 km of extra distance, a minority face large detours.
"""

from repro.analysis.report import render_figure5
from repro.rss.operators import root_server


def test_fig5_distance_inflation(benchmark, results, analyze):
    distance = analyze("distance", results)
    b = root_server("b")
    m = root_server("m")
    addresses = [b.ipv4, b.ipv6, m.ipv4, m.ipv6]

    grids = benchmark(lambda: [distance.grid(a) for a in addresses])
    assert len(grids) == 4

    print()
    print(render_figure5(distance, addresses))

    for address in addresses:
        frac = distance.fraction_optimal(address)
        print(f"  {address}: {100 * frac:.1f}% optimal-or-closer (paper ~78-82%)")
        assert frac > 0.6, address

    under_1000 = distance.fraction_clients_under(b.ipv4, km=1000.0)
    print(f"  b.root v4 clients with <1,000 km extra: {100 * under_1000:.1f}% "
          f"(paper 79.5%)")
    assert under_1000 > 0.5
    # m.root: families behave similarly (paper: "only small differences").
    assert abs(
        distance.fraction_optimal(m.ipv4) - distance.fraction_optimal(m.ipv6)
    ) < 0.25
