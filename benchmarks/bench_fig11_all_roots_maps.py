"""F11 — Figure 11: coverage maps for all thirteen letters.

The per-letter analogue of Figure 1b: every site with observed /
not-observed status, summarised per continent.
"""

from repro.geo.continents import Continent
from repro.util.tables import Table


def test_fig11_all_roots_coverage_maps(benchmark, results, analyze):
    coverage = analyze("coverage", results)
    maps = benchmark(
        lambda: {letter: coverage.site_map(letter) for letter in "abcdefghijklm"}
    )

    print()
    table = Table(["Root"] + [str(c) for c in Continent])
    for letter, site_map in maps.items():
        cells = [letter]
        for continent in Continent:
            sites = [(s, o) for s, o in site_map if s.continent is continent]
            observed = sum(1 for _s, o in sites if o)
            cells.append(f"{observed}/{len(sites)}" if sites else "-")
        table.add_row(cells)
    print(table.render("Figure 11: observed/total sites per letter per region"))

    # Every letter has observations; none is fully observed at the
    # local-heavy deployments.
    for letter, site_map in maps.items():
        assert any(observed for _s, observed in site_map), letter
    f_map = maps["f"]
    assert sum(1 for _s, o in f_map if o) < len(f_map)
