"""Analysis-serving load test: cached HTTP latency vs cold computation.

Builds one campaign dataset, serves it with ``rootsim-serve`` (stdlib
backend, real subprocess, real sockets), and measures:

* **equivalence** — every registered analysis fetched over HTTP must be
  byte-identical to ``rootsim-analyze DIR NAME --json`` (the CLI run in
  its own subprocess, exactly as a user would);
* **cold vs warm** — the in-process computation time of each analysis
  (what every request would pay without the cache) against the served
  warm-cache p50; the two heaviest analyses gate the speedup
  (``--min-warm-speedup``, the ≥10x acceptance bar);
* **a concurrency sweep** — keep-alive clients at ``--concurrency``
  levels (default 1, 4, 16) hammering the analysis endpoints for
  ``--duration`` seconds each, reporting p50/p99 latency, requests/s and
  the server's cache hit ratio per level, plus a conditional
  (``If-None-Match``) pass measuring the 304 path.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py --scale bench \
        --min-warm-speedup 10
    PYTHONPATH=src python benchmarks/bench_serving.py --scale tiny \
        --duration 1.5 --output BENCH_serving_ci.json   # CI smoke

Exits non-zero on any equivalence mismatch, request error, or a failed
speedup gate.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import statistics
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from bench_campaign_hotpath import make_config
from benchutil import cpu_scaling_meta

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _env() -> Dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def build_dataset(scale: str, directory: str) -> Dict[str, object]:
    """Run the campaign and save it (passive tables included, so the
    passive analyses replay from disk like a real served dataset)."""
    from repro.core import RootStudy

    started = time.perf_counter()
    results = RootStudy(make_config(scale)).run()
    campaign_s = time.perf_counter() - started
    started = time.perf_counter()
    results.save(directory)
    save_s = time.perf_counter() - started
    return {
        "campaign_seconds": round(campaign_s, 2),
        "save_seconds": round(save_s, 2),
        "summary": results.collector.summary(),
    }


def start_server(dataset_dir: str) -> Tuple[subprocess.Popen, int]:
    """``rootsim-serve --port 0`` as a subprocess; returns (proc, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-c",
         "from repro.serving.app import serve_main; import sys; "
         "sys.exit(serve_main(sys.argv[1:]))",
         dataset_dir, "--port", "0"],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline()
    if "http://" not in line:
        proc.kill()
        raise RuntimeError(
            f"server failed to start: {line!r}\n{proc.stderr.read()}"
        )
    port = int(line.rsplit(":", 1)[1].split()[0])
    return proc, port


def fetch(
    port: int, path: str, headers: Optional[Dict[str, str]] = None,
    method: str = "GET",
) -> Tuple[int, Dict[str, str], bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(method, path, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


def sweep_level(
    port: int,
    dataset_id: str,
    analyses: List[str],
    concurrency: int,
    duration: float,
    conditional: bool,
) -> Dict[str, object]:
    """One load level: *concurrency* keep-alive clients looping over the
    analysis endpoints for *duration* seconds."""
    stop_at = time.perf_counter() + duration
    errors: List[str] = []
    per_thread: List[List[float]] = [[] for _ in range(concurrency)]
    statuses: Dict[int, int] = {}
    status_lock = threading.Lock()

    def client(worker: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        etags: Dict[str, str] = {}
        latencies = per_thread[worker]
        step = worker  # stagger starting offsets across workers
        try:
            while time.perf_counter() < stop_at:
                name = analyses[step % len(analyses)]
                step += 1
                path = f"/datasets/{dataset_id}/analyses/{name}"
                headers = {}
                if conditional and name in etags:
                    headers["If-None-Match"] = etags[name]
                started = time.perf_counter()
                conn.request("GET", path, headers=headers)
                resp = conn.getresponse()
                body = resp.read()
                latencies.append(time.perf_counter() - started)
                with status_lock:
                    statuses[resp.status] = statuses.get(resp.status, 0) + 1
                if resp.status == 200:
                    etag = resp.headers.get("ETag")
                    if etag:
                        etags[name] = etag
                elif resp.status != 304:
                    errors.append(f"{path} -> {resp.status}: {body[:120]!r}")
                    return
        except Exception as exc:  # connection failures are bench failures
            errors.append(f"worker {worker}: {type(exc).__name__}: {exc}")
        finally:
            conn.close()

    stats_before = json.loads(fetch(port, "/stats")[2])["cache"]
    started = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(worker,))
        for worker in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    stats_after = json.loads(fetch(port, "/stats")[2])["cache"]

    latencies = [sample for bucket in per_thread for sample in bucket]
    hits = stats_after["hits"] - stats_before["hits"]
    misses = stats_after["misses"] - stats_before["misses"]
    return {
        "concurrency": concurrency,
        "conditional": conditional,
        "duration_seconds": round(elapsed, 2),
        "requests": len(latencies),
        "requests_per_second": round(len(latencies) / elapsed, 1) if elapsed else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3) if latencies else None,
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3) if latencies else None,
        "statuses": {str(code): count for code, count in sorted(statuses.items())},
        "cache_hit_ratio": round(hits / (hits + misses), 4) if hits + misses else None,
        "errors": errors,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("tiny", "bench"), default="bench")
    parser.add_argument(
        "--concurrency", default="1,4,16",
        help="comma-separated client counts for the sweep (default 1,4,16)",
    )
    parser.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds of load per concurrency level (default 5)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="cold-computation timings per analysis; medians reported",
    )
    parser.add_argument(
        "--min-warm-speedup", type=float, default=None,
        help="fail unless warm-cache served p50 beats the cold in-process "
             "computation by this factor for the two heaviest analyses",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_serving.json"),
        help="result file (default: BENCH_serving.json at the repo root)",
    )
    parser.add_argument(
        "--dataset-dir", default=None,
        help="reuse a saved dataset instead of running the campaign",
    )
    args = parser.parse_args(argv)
    levels = [int(part) for part in args.concurrency.split(",") if part.strip()]
    if len(levels) < 3:
        print(
            f"warning: only {len(levels)} concurrency level(s); the "
            f"published sweep should cover at least 3",
            file=sys.stderr,
        )

    import shutil
    import tempfile

    failures: List[str] = []
    work = None
    if args.dataset_dir:
        dataset_dir = args.dataset_dir
        build = {"reused": dataset_dir}
    else:
        work = tempfile.mkdtemp(prefix="bench-serving-")
        dataset_dir = os.path.join(work, "ds")
        print(f"building {args.scale} dataset ...")
        build = build_dataset(args.scale, dataset_dir)
        print(f"  campaign {build['campaign_seconds']}s, "
              f"save {build['save_seconds']}s")
    dataset_id = os.path.basename(dataset_dir.rstrip(os.sep))

    # -- cold: what every request would pay without the cache ----------------
    from repro.analysis.summaries import analysis_json_bytes, analysis_inputs
    from repro.data import load_dataset
    from repro.serving.catalog import CatalogEntry

    entry = CatalogEntry(dataset_id, __import__("pathlib").Path(dataset_dir))
    analyses = entry.analyses()
    print(f"cold in-process computation ({args.repeats} repeats):")
    dataset = load_dataset(dataset_dir)
    cold: Dict[str, float] = {}
    served_bytes: Dict[str, bytes] = {}
    for name in analyses:
        runs = []
        for _ in range(max(args.repeats, 1)):
            fresh = load_dataset(dataset_dir)  # no warm mmap pages carried over
            started = time.perf_counter()
            served_bytes[name] = analysis_json_bytes(fresh, name)
            runs.append(time.perf_counter() - started)
        cold[name] = statistics.median(runs)
        print(f"  {name:<16s} {cold[name] * 1e3:9.1f} ms")
    heaviest = sorted(cold, key=cold.get, reverse=True)[:2]
    print(f"heaviest analyses: {', '.join(heaviest)}")

    proc, port = start_server(dataset_dir)
    try:
        # -- equivalence: served bytes == rootsim-analyze --json -------------
        print("equivalence: served JSON vs rootsim-analyze --json ...")
        for name in analyses:
            status, _, body = fetch(
                port, f"/datasets/{dataset_id}/analyses/{name}"
            )
            if status != 200:
                failures.append(f"{name}: HTTP {status}: {body[:200]!r}")
                continue
            cli = subprocess.run(
                [sys.executable, "-c",
                 "import sys; from repro.cli import analyze_main; "
                 "sys.exit(analyze_main(sys.argv[1:]))",
                 dataset_dir, name, "--json"],
                env=_env(), capture_output=True,
            )
            if cli.returncode != 0:
                failures.append(
                    f"{name}: rootsim-analyze --json failed: "
                    f"{cli.stderr.decode()[:200]}"
                )
            elif cli.stdout != body + b"\n":
                failures.append(
                    f"{name}: served bytes differ from rootsim-analyze --json"
                )
        if not any(failure for failure in failures):
            print(f"  all {len(analyses)} analyses byte-identical")

        # -- warm p50 per analysis (sequential, cache hot) --------------------
        warm: Dict[str, float] = {}
        for name in analyses:
            samples = []
            for _ in range(30):
                started = time.perf_counter()
                status, _, _ = fetch(
                    port, f"/datasets/{dataset_id}/analyses/{name}"
                )
                samples.append(time.perf_counter() - started)
                if status != 200:
                    failures.append(f"warm {name}: HTTP {status}")
                    break
            warm[name] = percentile(samples, 0.50)
        speedups = {
            name: (cold[name] / warm[name] if warm[name] else 0.0)
            for name in analyses
        }
        for name in heaviest:
            print(f"warm p50 {name}: {warm[name] * 1e3:.2f} ms "
                  f"({speedups[name]:.0f}x cold)")
            if (
                args.min_warm_speedup is not None
                and speedups[name] < args.min_warm_speedup
            ):
                failures.append(
                    f"{name}: warm speedup {speedups[name]:.1f}x below the "
                    f"--min-warm-speedup {args.min_warm_speedup}x gate"
                )

        # -- concurrency sweep ------------------------------------------------
        sweep: List[Dict[str, object]] = []
        for concurrency in levels:
            fetch(port, "/cache/clear", method="POST")
            # one untimed warm pass so the level measures steady state,
            # not the first-miss computation spike
            for name in analyses:
                fetch(port, f"/datasets/{dataset_id}/analyses/{name}")
            level = sweep_level(
                port, dataset_id, analyses, concurrency, args.duration,
                conditional=False,
            )
            sweep.append(level)
            failures.extend(level.pop("errors"))
            print(f"c={concurrency:<3d} {level['requests']:6d} req  "
                  f"{level['requests_per_second']:8.1f} req/s  "
                  f"p50 {level['p50_ms']:7.3f} ms  "
                  f"p99 {level['p99_ms']:7.3f} ms  "
                  f"hit {level['cache_hit_ratio']}")
        conditional = sweep_level(
            port, dataset_id, analyses, levels[-1], args.duration,
            conditional=True,
        )
        failures.extend(conditional.pop("errors"))
        print(f"conditional (If-None-Match) c={levels[-1]}: "
              f"{conditional['requests_per_second']:.1f} req/s  "
              f"p50 {conditional['p50_ms']:.3f} ms  "
              f"304s {conditional['statuses'].get('304', 0)}")
    finally:
        proc.terminate()
        proc.wait(timeout=30)

    report = {
        "benchmark": "analysis-serving layer: warm-cache HTTP latency vs "
                     "cold in-process computation, with a concurrency sweep",
        "scale": args.scale,
        "build": build,
        "machine": {
            "python": platform.python_version(),
            **cpu_scaling_meta(),
        },
        "analyses": analyses,
        "cold_seconds": {name: round(cold[name], 4) for name in analyses},
        "warm_p50_ms": {
            name: round(warm[name] * 1e3, 3) for name in analyses
        },
        "warm_speedup": {
            name: round(speedups[name], 1) for name in analyses
        },
        "heaviest": heaviest,
        "equivalence": (
            "served JSON byte-identical to rootsim-analyze --json for "
            "every registered analysis"
            if not failures else "FAILED (see failures)"
        ),
        "sweep": sweep,
        "conditional_sweep": conditional,
        "failures": failures,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"results written to {args.output}")

    if work:
        shutil.rmtree(work, ignore_errors=True)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
