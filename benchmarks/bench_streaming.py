"""Streaming campaign benchmark: peak RSS and wall time vs materialized.

Runs the same campaign twice in *separate subprocesses* — once through
the ordinary in-memory pipeline (``StudyPipeline.run().save()``), once
through the streaming checkpoint path (``run_streaming_campaign`` +
``finalize_streaming_campaign``) — and compares each child's
``ru_maxrss`` and wall time.  Subprocess isolation matters: peak RSS is
a per-process high-water mark, so the two paths cannot share a process.

The two output dataset directories must be byte-identical (the
streaming layer's core invariant); the streamed child's peak RSS should
sit well below the materialized child's, because it holds only one
chunk of probe/traceroute rows at a time.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming.py --scale bench
    PYTHONPATH=src python benchmarks/bench_streaming.py --scale tiny \
        --max-rss-fraction 0.95   # CI gate: streamed < 95% of materialized

Exits non-zero when the trees differ or the RSS gate fails.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import time
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from benchutil import cpu_scaling_meta, scaling_worker_levels

from repro.core.config import StudyConfig
from repro.util.timeutil import parse_ts

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKPOINT_EVERY = 8


def make_config(scale: str) -> StudyConfig:
    # Both scales keep rtt_sample_every=1 so the probe table — the thing
    # the streaming path is supposed to keep out of memory — dominates
    # the campaign's working set.
    end = "2023-12-15"
    start = "2023-10-01" if scale == "bench" else "2023-11-15"
    return StudyConfig(
        seed=77,
        ring_scale=0.15,
        interval_scale=24.0,
        campaign_start=parse_ts(start),
        campaign_end=parse_ts(end),
        rtt_sample_every=1,
        traceroute_sample_every=2,
        axfr_sample_every=2,
        clean_transfer_keep_one_in=20,
    )


def parse_workers_mode(mode: str) -> int:
    """``streamed-workersN`` -> N; 0 for the single-process modes."""
    match = re.fullmatch(r"streamed-workers(\d+)", mode)
    return int(match.group(1)) if match else 0


def child_main(mode: str, scale: str, out_dir: str) -> int:
    """One measured variant; prints a JSON result line for the parent."""
    import resource

    config = make_config(scale)
    workers = parse_workers_mode(mode)
    if workers:
        # multiprocess shard workers streaming into per-shard spills,
        # merged columnar-ly at each seal (DESIGN.md §12)
        config = config.with_sharding(workers, workers=workers)
    started = time.perf_counter()
    if mode == "materialized":
        from repro.core.pipeline import StudyPipeline

        results = StudyPipeline(config).run()
        results.save(out_dir, passive=False)
        summary = results.collector.summary()
    else:
        from repro.core.streaming import (
            finalize_streaming_campaign,
            run_streaming_campaign,
        )

        run = run_streaming_campaign(
            config, out_dir + ".ckpt", checkpoint_every=CHECKPOINT_EVERY
        )
        finalize_streaming_campaign(out_dir + ".ckpt", out_dir, passive=False)
        summary = run.collector.summary()
    wall = time.perf_counter() - started
    print(json.dumps({
        "mode": mode,
        "wall_seconds": round(wall, 2),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "summary": summary,
    }))
    return 0


def run_child(mode: str, scale: str, out_dir: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--child", mode, "--scale", scale, "--out-dir", out_dir],
        env=env, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{mode} child failed ({proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def trees_identical(left: str, right: str) -> List[str]:
    """Relative paths that differ between two dataset trees."""
    def tree(root):
        root = Path(root)
        return {
            str(p.relative_to(root)): p.read_bytes()
            for p in sorted(root.rglob("*")) if p.is_file()
        }

    a, b = tree(left), tree(right)
    return sorted(set(a) ^ set(b)) + [
        name for name in a if name in b and a[name] != b[name]
    ]


def trees_identical_modulo_sharding(left: str, right: str) -> List[str]:
    """Like :func:`trees_identical`, but ignores the shard/worker counts
    embedded in the manifest's study fingerprint — the one legitimate
    difference between a serial and a multiprocess run of one study."""
    differing = trees_identical(left, right)
    if differing != ["MANIFEST.json"]:
        return differing
    manifests = []
    for root in (left, right):
        manifest = json.loads((Path(root) / "MANIFEST.json").read_text())
        manifest.get("study", {}).pop("shards", None)
        manifest.get("study", {}).pop("workers", None)
        manifests.append(manifest)
    return [] if manifests[0] == manifests[1] else ["MANIFEST.json"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("tiny", "bench"), default="bench")
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_streaming.json"),
        help="result file (default: BENCH_streaming.json at the repo root)",
    )
    parser.add_argument(
        "--max-rss-fraction", type=float, default=None,
        help="fail unless streamed peak RSS is below this fraction of the "
             "materialized run's",
    )
    parser.add_argument(
        "--work-dir", default=None,
        help="scratch directory for datasets (default: a temp directory)",
    )
    parser.add_argument(
        "--child",
        help="(internal) one variant: materialized, streamed, or "
             "streamed-workersN",
    )
    parser.add_argument("--out-dir", help="(child only) dataset target")
    args = parser.parse_args(argv)

    if args.child:
        return child_main(args.child, args.scale, args.out_dir)

    import shutil
    import tempfile

    work = args.work_dir or tempfile.mkdtemp(prefix="bench-streaming-")
    os.makedirs(work, exist_ok=True)
    failures: List[str] = []
    # Always keep the workers=2 overhead row; on a multi-core container
    # extend it into the full scaling curve instead of silently recording
    # single-core numbers.
    worker_levels = sorted(
        {2} | {w for w in scaling_worker_levels() if w > 1}
    )
    modes = ["materialized", "streamed"] + [
        f"streamed-workers{w}" for w in worker_levels
    ]
    runs = {}
    for mode in modes:
        out_dir = os.path.join(work, mode)
        runs[mode] = run_child(mode, args.scale, out_dir)
        print(f"{mode:<18s}  wall {runs[mode]['wall_seconds']:7.2f}s  "
              f"peak RSS {runs[mode]['peak_rss_kb'] / 1024:7.1f} MB")

    differing = trees_identical(
        os.path.join(work, "materialized"), os.path.join(work, "streamed")
    )
    if differing:
        failures.append(f"dataset trees differ: {differing[:10]}")
    else:
        print("materialized and streamed datasets byte-identical")

    workers_identical = {}
    for workers in worker_levels:
        mode = f"streamed-workers{workers}"
        differing_mp = trees_identical_modulo_sharding(
            os.path.join(work, "streamed"), os.path.join(work, mode)
        )
        workers_identical[mode] = not differing_mp
        if differing_mp:
            failures.append(
                f"workers={workers} streamed dataset differs: "
                f"{differing_mp[:10]}"
            )
        else:
            print(f"workers={workers} streamed dataset byte-identical "
                  "(modulo study shard/worker counts)")

    fraction = (
        runs["streamed"]["peak_rss_kb"] / runs["materialized"]["peak_rss_kb"]
    )
    print(f"streamed peak RSS = {fraction:.2f}x materialized")
    if args.max_rss_fraction is not None and fraction >= args.max_rss_fraction:
        failures.append(
            f"streamed RSS fraction {fraction:.2f} not below required "
            f"{args.max_rss_fraction}"
        )

    report = {
        "benchmark": "streaming campaign: peak RSS and wall time vs "
                     "materialized pipeline",
        "scale": args.scale,
        "checkpoint_every": CHECKPOINT_EVERY,
        "config": asdict(make_config(args.scale)),
        "machine": {
            "python": platform.python_version(),
            **cpu_scaling_meta(levels=[1] + worker_levels),
        },
        "byte_identical": not differing,
        "workers_byte_identical": workers_identical,
        "rss_fraction": round(fraction, 3),
        "runs": [runs[mode] for mode in modes],
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"results written to {args.output}")

    if not args.work_dir:
        shutil.rmtree(work, ignore_errors=True)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
