"""F12 — Figure 12: ISP traffic shares across all thirteen letters.

Shape expectations (paper Appendix D): the ISP's traffic spreads across
all letters; b.root's share hardly changes despite the address change
(4.90% before vs 4.46% after).
"""

from repro.util.tables import Table
from repro.util.timeutil import parse_ts


def test_fig12_isp_all_roots(
    benchmark, isp_pre_change_day, isp_post_change_month, analyze
):
    pre = analyze("trafficshift", aggregate=isp_pre_change_day)
    post = analyze("trafficshift", aggregate=isp_post_change_month)

    pre_shares = pre.letter_shares(parse_ts("2023-10-07"), parse_ts("2023-10-09"))
    post_shares = benchmark(
        post.letter_shares, parse_ts("2024-02-05"), parse_ts("2024-03-04")
    )

    print()
    table = Table(["Root", "pre-change %", "post-change %"], float_digits=2)
    for letter in "abcdefghijklm":
        table.add_row(
            [letter, 100 * pre_shares[letter], 100 * post_shares[letter]]
        )
    print(table.render("Figure 12: ISP traffic share per letter"))

    assert sum(post_shares.values()) > 0.99
    # b.root's total share barely moves across the change (paper: 4.90 ->
    # 4.46%); we assert the *stability*, not the absolute number.
    assert abs(pre_shares["b"] - post_shares["b"]) < 0.02
    # No letter dominates the ISP mix.
    assert max(post_shares.values()) < 0.25

    # The a.root dip of 2024-02-26 (paper Appendix D: "should be
    # investigated in future work") shows up as a one-day drop.
    dip_day = parse_ts("2024-02-26")
    series = post.letter_share_series()["a"]
    by_day = dict(series)
    neighbours = [
        by_day[d] for d in (dip_day - 86400, dip_day + 86400) if d in by_day
    ]
    if dip_day in by_day and neighbours:
        baseline = sum(neighbours) / len(neighbours)
        print(f"a.root dip day share {100 * by_day[dip_day]:.2f}% vs "
              f"neighbours {100 * baseline:.2f}%")
        assert by_day[dip_day] < baseline * 0.75
