"""End-to-end ``rootsim-report`` generation: scalar serial vs vectorized parallel.

Runs one campaign, then times the whole report phase — dataset save,
passive captures, every artefact group — under three configurations:

* ``scalar/serial``      — reference engine, one process (the baseline)
* ``vectorized/serial``  — vectorized engine, one process
* ``vectorized/parallel``— vectorized engine, ``--workers N``

All three must produce byte-identical artefacts; the results land in the
``report_e2e`` section of ``BENCH_passive.json`` (shared with
``bench_passive_hotpath.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_report_e2e.py --scale bench \
        --min-speedup 2.0
    PYTHONPATH=src python benchmarks/bench_report_e2e.py --scale tiny \
        --min-speedup 1.0   # CI smoke: identity + "not slower"

Exits non-zero when any artefact differs from the scalar serial baseline,
or when the parallel vectorized speedup falls below ``--min-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from benchutil import cpu_scaling_meta, scaling_worker_levels

from repro.core import RootStudy, StudyConfig
from repro.reportgen import generate_all

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_config(scale: str) -> StudyConfig:
    if scale == "bench":
        # The rootsim-report default: the quick preset.
        return StudyConfig.quick(seed=2024)
    # "tiny": the same shape the test suite's full-window study uses,
    # thinned to a 4x interval scale for CI.
    return StudyConfig(
        seed=77,
        ring_scale=0.1,
        ring_min_per_region=8,
        interval_scale=96.0,
        rtt_sample_every=1,
        traceroute_sample_every=2,
        axfr_sample_every=2,
        clean_transfer_keep_one_in=200,
    )


def artefact_mismatches(
    candidate: Dict[str, object], baseline: Dict[str, object]
) -> List[str]:
    """Artefacts that differ from the baseline; empty means identical."""
    diffs: List[str] = []
    if set(candidate) != set(baseline):
        diffs.append("artefact-set")
    for name in sorted(set(candidate) & set(baseline)):
        if candidate[name].read_bytes() != baseline[name].read_bytes():
            diffs.append(name)
    return diffs


def run_variant(study, out_dir, seed, engine, workers):
    # Drop any passive captures a previous variant attached so that this
    # variant's engine choice actually takes effect.
    study.results().dataset.attach_passive(None)
    start = time.perf_counter()
    written = generate_all(
        study, str(out_dir), seed=seed, workers=workers, engine=engine
    )
    return written, time.perf_counter() - start


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("tiny", "bench"), default="bench")
    parser.add_argument(
        "--workers", type=int, default=min(4, os.cpu_count() or 1),
        help="worker processes for the parallel variant",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_passive.json"),
        help="result file (default: BENCH_passive.json at the repo root)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail unless scalar-serial / vectorized-parallel reaches this",
    )
    args = parser.parse_args(argv)

    import tempfile

    config = make_config(args.scale)
    print(f"running {args.scale} campaign (seed {config.seed}) ...")
    study = RootStudy(config)
    start = time.perf_counter()
    study.run()
    campaign_s = time.perf_counter() - start
    print(f"campaign finished in {campaign_s:.1f}s; timing report phase")

    failures: List[str] = []
    runs: List[Dict[str, object]] = []
    with tempfile.TemporaryDirectory(prefix="bench_report_") as tmp:
        # Warm-up (untimed): seals transfers and fills process-level
        # caches so every timed variant starts from the same state.
        run_variant(study, os.path.join(tmp, "warmup"), config.seed,
                    "vectorized", 1)

        # The requested worker count is always measured; a multi-core
        # container additionally sweeps the scaling levels so the
        # published numbers carry a real curve, not one point.
        parallel_levels = sorted(
            {args.workers} | {w for w in scaling_worker_levels() if w > 1}
        )
        variants = [
            ("scalar/serial", "scalar", 1),
            ("vectorized/serial", "vectorized", 1),
        ] + [
            (f"vectorized/parallel-{workers}", "vectorized", workers)
            for workers in parallel_levels
        ]
        timings: Dict[str, float] = {}
        baseline = None
        for label, engine, workers in variants:
            written, seconds = run_variant(
                study, os.path.join(tmp, label.replace("/", "_")),
                config.seed, engine, workers,
            )
            timings[label] = seconds
            if baseline is None:
                baseline = written
                mismatches: List[str] = []
            else:
                mismatches = artefact_mismatches(written, baseline)
                if mismatches:
                    failures.append(
                        f"{label}: differs from scalar/serial: "
                        f"{', '.join(mismatches)}"
                    )
            status = "BASELINE" if baseline is written else (
                "IDENTICAL" if not mismatches else "DIFFERS"
            )
            print(f"{label:<24s} {seconds:7.2f}s  {status}")
            runs.append(
                {
                    "variant": label,
                    "engine": engine,
                    "workers": workers,
                    "seconds": round(seconds, 3),
                    "identical_to_baseline": not mismatches,
                    "artefacts": len(written),
                }
            )

    parallel_label = variants[-1][0]
    speedup = (
        timings["scalar/serial"] / timings[parallel_label]
        if timings[parallel_label]
        else 0.0
    )
    print(f"end-to-end report speedup: {speedup:.2f}x")
    if args.min_speedup is not None and speedup < args.min_speedup:
        failures.append(
            f"report speedup {speedup:.2f}x below required {args.min_speedup}x"
        )

    section = {
        "scale": args.scale,
        "seed": config.seed,
        "workers": args.workers,
        "campaign_seconds": round(campaign_s, 2),
        "machine": {
            "python": platform.python_version(),
            **cpu_scaling_meta(levels=[1] + [w for w in parallel_levels if w > 1]),
        },
        "equivalence": (
            "all artefacts byte-identical to the scalar serial baseline"
            if not failures
            else failures
        ),
        "report_speedup": round(speedup, 2),
        "runs": runs,
    }
    existing: Dict[str, object] = {}
    if os.path.exists(args.output):
        with open(args.output) as handle:
            existing = json.load(handle)
    existing["benchmark"] = (
        "vectorized passive-capture engine + parallel report generation"
    )
    existing["report_e2e"] = section
    with open(args.output, "w") as handle:
        json.dump(existing, handle, indent=2)
        handle.write("\n")
    print(f"results written to {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
