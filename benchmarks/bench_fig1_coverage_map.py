"""F1 — Figure 1: VP locations and f.root instance coverage map.

Regenerates the map data: VP counts per continent (Fig. 1a) and, for
f.root, every site with its observed/not-observed flag (Fig. 1b),
summarised per continent.
"""

from repro.geo.continents import Continent
from repro.util.tables import Table


def test_fig1_coverage_map(benchmark, results, analyze):
    coverage = analyze("coverage", results)
    site_map = benchmark(coverage.site_map, "f")

    vp_counts = {}
    for vp in results.vps:
        vp_counts[vp.continent] = vp_counts.get(vp.continent, 0) + 1
    table_a = Table(["Region", "#VPs"])
    for continent in Continent:
        table_a.add_row([str(continent), vp_counts.get(continent, 0)])
    print()
    print(table_a.render("Figure 1a: VP locations (per continent)"))

    table_b = Table(["Region", "Global obs/total", "Local obs/total"])
    for continent in Continent:
        g_total = g_obs = l_total = l_obs = 0
        for site, observed in site_map:
            if site.continent is not continent:
                continue
            if site.is_global:
                g_total += 1
                g_obs += observed
            else:
                l_total += 1
                l_obs += observed
        table_b.add_row([str(continent), f"{g_obs}/{g_total}", f"{l_obs}/{l_total}"])
    print(table_b.render("Figure 1b: f.root instances observed"))

    observed = sum(1 for _s, seen in site_map if seen)
    assert 0 < observed < len(site_map)  # good but incomplete coverage
