"""Dataset reload benchmark: mmap-backed reload + analyze vs full re-run.

Quantifies what the dataset layer buys: the wall time from "I have a
saved dataset directory" to "analysis output" (``rootsim-analyze``'s
path — load the manifest, memory-map the columns, run the analyses),
against re-simulating the same campaign to produce the same output.
Every analysis summary is checked byte-identical across the two paths
before any timing is reported.

Usage::

    PYTHONPATH=src python benchmarks/bench_dataset_reload.py --scale bench
    PYTHONPATH=src python benchmarks/bench_dataset_reload.py --scale tiny \
        --min-speedup 1.0 --output BENCH_dataset_ci.json

Exits non-zero when any summary differs between the live and reloaded
runs, or when the reload speedup falls below ``--min-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import asdict
from typing import Callable, List, Optional, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from bench_campaign_hotpath import make_config

from repro.analysis import registry
from repro.analysis.summaries import PASSIVE_ANALYSES, render_summary
from repro.core import RootStudy
from repro.data import load_dataset

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The campaign-fed analyses (passive ones don't consume the dataset).
DATASET_ANALYSES = [n for n in registry.names() if n not in PASSIVE_ANALYSES]


def timed(fn: Callable):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_all(source) -> dict:
    return {
        name: render_summary(name, registry.run(name, source))
        for name in DATASET_ANALYSES
    }


def directory_bytes(path: str) -> int:
    total = 0
    for root, _dirs, files in os.walk(path):
        for name in files:
            total += os.path.getsize(os.path.join(root, name))
    return total


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("tiny", "bench"), default="bench")
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_dataset.json"),
        help="result file (default: BENCH_dataset.json at the repo root)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail unless the reload-path speedup reaches this factor",
    )
    args = parser.parse_args(argv)

    config = make_config(args.scale)

    results, rerun_s = timed(lambda: RootStudy(config).run())
    live, live_analyze_s = timed(lambda: run_all(results))
    print(f"simulate    {rerun_s:7.2f}s  analyze {live_analyze_s:6.2f}s  (live)")

    with tempfile.TemporaryDirectory(prefix="rootsim_bench_ds_") as tmp:
        directory = os.path.join(tmp, "dataset")
        path, save_s = timed(lambda: results.save(directory))
        disk_bytes = directory_bytes(directory)
        print(f"save        {save_s:7.2f}s  ({disk_bytes / 1e6:.1f} MB on disk)")

        dataset, load_s = timed(lambda: load_dataset(directory))
        reloaded, reload_analyze_s = timed(lambda: run_all(dataset))
        print(f"mmap reload {load_s:7.2f}s  analyze {reload_analyze_s:6.2f}s  (reloaded)")

    failures: List[str] = []
    mismatched = [n for n in DATASET_ANALYSES if live[n] != reloaded[n]]
    if mismatched:
        failures.append(
            "reloaded summaries differ from live run: " + ", ".join(mismatched)
        )

    rerun_total = rerun_s + live_analyze_s
    reload_total = load_s + reload_analyze_s
    speedup = rerun_total / reload_total if reload_total else 0.0
    print(
        f"reload+analyze {reload_total:.2f}s vs rerun+analyze "
        f"{rerun_total:.2f}s -> {speedup:.1f}x"
    )
    if args.min_speedup is not None and speedup < args.min_speedup:
        failures.append(
            f"reload speedup {speedup:.2f}x below required {args.min_speedup}x"
        )

    report = {
        "benchmark": "dataset mmap reload + analyze vs campaign re-run + analyze",
        "scale": args.scale,
        "config": asdict(config),
        "machine": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "analyses": DATASET_ANALYSES,
        "equivalence": (
            "all analysis summaries byte-identical across reload"
            if not mismatched
            else failures
        ),
        "dataset_bytes": disk_bytes,
        "seconds": {
            "simulate": round(rerun_s, 2),
            "analyze_live": round(live_analyze_s, 2),
            "save": round(save_s, 2),
            "load": round(load_s, 3),
            "analyze_reloaded": round(reload_analyze_s, 2),
        },
        "reload_speedup": round(speedup, 1),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"results written to {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
