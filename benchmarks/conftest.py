"""Shared fixtures for the table/figure reproduction benchmarks.

One campaign and one set of passive captures are built per session and
shared read-only by every benchmark; each bench then times its *analysis*
step and prints the regenerated table/figure rows.

Analyses are constructed by name through the ``analyze`` fixture (the
registry surface in :mod:`repro.analysis.registry`), never by
hand-wiring constructors: ``analyze("stability", results)`` for
campaign-side analyses, ``analyze("trafficshift", aggregate=capture)``
for passive ones.
"""

from __future__ import annotations

import pytest

from repro.core import RootStudy, StudyConfig
from repro.passive.clients import ISP_PROFILE, build_client_population
from repro.passive.isp import IspCapture
from repro.passive.ixp import build_ixp_captures
from repro.util.rng import RngFactory
from repro.util.timeutil import DAY, HOUR, parse_ts

BENCH_SEED = 2024


def pytest_configure(config):
    """Benchmarks print the tables/figures they regenerate; surface the
    captured output of passed benches in the run report (equivalent to
    passing ``-rP`` for benchmark runs only)."""
    if "P" not in config.option.reportchars:
        config.option.reportchars += "P"


@pytest.fixture(scope="session")
def study():
    """A full-timeline campaign at benchmark scale (~67 VPs, 24 h rounds,
    dense sampling).  Covers every event on the Figure 2 calendar."""
    config = StudyConfig(
        seed=BENCH_SEED,
        ring_scale=0.1,
        ring_min_per_region=8,
        interval_scale=48.0,
        rtt_sample_every=1,
        traceroute_sample_every=2,
        axfr_sample_every=2,
        clean_transfer_keep_one_in=200,
    )
    root_study = RootStudy(config)
    root_study.run()
    return root_study


@pytest.fixture(scope="session")
def results(study):
    return study.results()


@pytest.fixture(scope="session")
def analyze():
    """Construct an analysis by registry name: ``analyze(name, results)``
    or ``analyze(name, aggregate=capture)`` for passive analyses."""
    from repro.analysis import registry

    return registry.run


@pytest.fixture(scope="session")
def isp_capture():
    clients = build_client_population(ISP_PROFILE, RngFactory(BENCH_SEED))
    return IspCapture(clients, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def isp_pre_change_day(isp_capture):
    """Hourly traffic on 2023-10-07/08 (Figure 7 left panel)."""
    return isp_capture.capture(
        parse_ts("2023-10-07"), parse_ts("2023-10-09"), bucket_seconds=HOUR
    )


@pytest.fixture(scope="session")
def isp_post_change_month(isp_capture):
    """Daily traffic 2024-02-05 .. 2024-03-04 (Figure 7 middle panel)."""
    return isp_capture.capture(parse_ts("2024-02-05"), parse_ts("2024-03-04"))


@pytest.fixture(scope="session")
def isp_april_week(isp_capture):
    """Daily traffic 2024-04-22 .. 2024-04-29 (Figure 7 right panel)."""
    return isp_capture.capture(parse_ts("2024-04-22"), parse_ts("2024-04-29"))


@pytest.fixture(scope="session")
def ixp_captures():
    return build_ixp_captures(
        RngFactory(BENCH_SEED).fork("ixp"), seed=BENCH_SEED, clients_per_ixp=120
    )
