"""T1 — Table 1: worldwide coverage of root sites.

Regenerates, per letter, the number of global/local/total sites and how
many the campaign's vantage points observed.  Expected shape (paper):
100 % global coverage for the small all-global letters (b, c, g, h),
lower local-site coverage for the local-heavy deployments (d, e, f).
"""

from repro.analysis.report import render_table1


def test_table1_coverage(benchmark, results, analyze):
    coverage = benchmark(analyze, "coverage", results)
    print()
    print(render_table1(coverage))
    total, unmapped = coverage.observed_identifier_count()
    print(f"Observed identifiers: {total}, unmapped: {unmapped} "
          f"(paper: 1,604 observed / 135 unmapped)")

    worldwide = coverage.worldwide()
    # Shape assertions: who is fully covered, who is not.
    for letter in "bcgh":
        rows = {r.scope: r for r in worldwide[letter]}
        assert rows["global"].pct >= 80.0, letter
    for letter in "def":
        rows = {r.scope: r for r in worldwide[letter]}
        assert rows["local"].pct < rows["global"].pct, letter
