"""Service metrics (RSSAC047-style) over the campaign.

Not a paper artefact per se, but the operational lens the paper's intro
motivates via RSSAC037: response latency per letter, publication latency
across sites, and serial currency — with the stale d.root sites from the
Table 2 fault plan showing up as the currency violations.
"""

from repro.analysis.rssac import RESPONSE_LATENCY_THRESHOLD_MS
from repro.util.tables import Table
from repro.util.timeutil import parse_ts


def test_service_metrics(benchmark, results, analyze):
    metrics = analyze("rssac", results)

    latencies = benchmark(metrics.all_response_latencies)

    print()
    table = Table(["Root", "n", "p50 ms", "p95 ms", "<=250ms %"], float_digits=1)
    for latency in latencies:
        table.add_row(
            [
                latency.letter,
                latency.samples,
                latency.p50_ms,
                latency.p95_ms,
                100 * latency.within_threshold,
            ]
        )
    print(table.render("Response latency per letter (RSSAC047 lens)"))

    assert len(latencies) == 13
    # The RSS meets the threshold for the overwhelming majority of
    # requests everywhere.
    assert all(l.within_threshold > 0.7 for l in latencies)

    # Publication latency across a sample of sites.
    site_keys = [s.key for s in results.catalog.of_letter("k")[:8]]
    lags = metrics.publication_latency(site_keys, parse_ts("2023-09-01T12:00:00"))
    print(f"\npublication latency (k.root sample): "
          f"{sorted(v for v in lags.values() if v is not None)} seconds")
    assert all(v is not None and v < 86400 for v in lags.values())

    # Serial currency: the stale d.root windows are the violations.
    fraction, stale = metrics.serial_currency(results.collector.transfers)
    print(f"serial currency: {100 * fraction:.2f}% of observed transfers "
          f"current ({len(stale)} stale observations)")
    assert fraction > 0.9