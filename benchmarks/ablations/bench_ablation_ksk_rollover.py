"""Ablation: the KSK rollover as a study-under-change (extension).

The paper's related work (Mueller et al.) analysed the root's first KSK
rollover; this repository implements the rollover machinery (phased
DNSKEY sets, RFC 5011 trust-anchor tracking), and this ablation measures
the population effect the 2018 roll worried about: validators with
*static* trust anchors break at the swap, RFC 5011 followers do not.
"""

from repro.dnssec.trustanchor import KskRolloverSchedule, TrustAnchorTracker
from repro.dns.constants import RRType
from repro.dns.name import ROOT_NAME
from repro.util.timeutil import DAY, parse_ts
from repro.zone.rootzone import RootZoneBuilder

SCHEDULE = KskRolloverSchedule(
    publish_ts=parse_ts("2023-08-01"),
    swap_ts=parse_ts("2023-10-01"),
    revoke_ts=parse_ts("2023-11-15"),
    remove_ts=parse_ts("2024-01-01"),
)


def test_ablation_ksk_rollover_validator_population(benchmark):
    builder = RootZoneBuilder(
        seed=13, tlds=["com", "org", "world", "ruhr"], ksk_rollover=SCHEDULE
    )

    def build():
        # 20 RFC 5011 validators with varied polling cadence, plus the
        # static-anchor population that never updates.
        rfc5011 = [
            TrustAnchorTracker(builder.ksk.dnskey, bootstrap_ts=0)
            for _ in range(20)
        ]
        cadences = [1 + (i % 7) for i in range(20)]  # 1..7 day polling
        static_anchor_tag = builder.ksk.dnskey.key_tag()

        checkpoints = {}
        ts = SCHEDULE.publish_ts - 5 * DAY
        while ts < SCHEDULE.remove_ts + 5 * DAY:
            zone = builder.build(ts)
            rrset = zone.find_rrset(ROOT_NAME, RRType.DNSKEY)
            keys = [r.rdata for r in rrset]
            for tracker, cadence in zip(rfc5011, cadences):
                if (ts // DAY) % cadence == 0:
                    tracker.observe(keys, ts)
            active = builder.active_ksk(ts).key_tag
            surviving = sum(1 for t in rfc5011 if t.can_validate(active))
            static_ok = static_anchor_tag == active
            checkpoints[ts] = (surviving, static_ok)
            ts += 5 * DAY
        return checkpoints

    checkpoints = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("Ablation: validator survival through the KSK rollover")
    swap = SCHEDULE.swap_ts
    before = [v for ts, v in checkpoints.items() if ts < swap]
    after = [v for ts, v in checkpoints.items() if ts >= swap]
    print(f"  before swap: RFC5011 {min(s for s, _ in before)}/20 ok, "
          f"static anchors ok={all(ok for _, ok in before)}")
    print(f"  after swap:  RFC5011 {min(s for s, _ in after)}/20 ok, "
          f"static anchors ok={any(ok for _, ok in after)}")

    # RFC 5011 followers all survive the swap (hold-down long since met).
    assert all(s == 20 for s, _ok in after)
    # Static-anchor validators break exactly at the swap.
    assert all(ok for _s, ok in before)
    assert not any(ok for _s, ok in after)
