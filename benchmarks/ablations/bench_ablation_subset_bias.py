"""Ablation: does a subset of root servers generalise? (paper §8)

The paper cautions that conclusions drawn from a few letters do not
transfer to the whole RSS.  This ablation measures it: across 4-letter
subsets (the size of Schmidt et al.'s study), subset-level medians of
catchment churn and the IPv6-excess ratio scatter widely around the
all-letter values.
"""

from repro.analysis.variability import VariabilityAnalysis


def test_ablation_subset_generalisation(benchmark, results, analyze):
    analysis = analyze("variability", results)

    def build():
        return analysis.subset_spread(k=4, max_subsets=40)

    full, subsets = benchmark.pedantic(build, rounds=1, iterations=1)

    print()
    print("Ablation: 4-letter subset statistics vs the full RSS")
    print(f"  full RSS: median changes v4={full.median_changes_v4:g} "
          f"v6={full.median_changes_v6:g} v6-excess={full.v6_excess:.2f}")
    for metric in ("changes_v4", "changes_v6", "v6_excess"):
        lo, hi = VariabilityAnalysis.relative_spread(full, subsets, metric)
        print(f"  {metric:<12} subset/full ratio spans [{lo:.2f}, {hi:.2f}]")

    # The §8 point: subsets can be badly off in either direction.
    lo, hi = VariabilityAnalysis.relative_spread(full, subsets, "changes_v4")
    assert lo < 0.75 or hi > 1.33, "subsets unexpectedly homogeneous"
    # And the v6-excess conclusion can flip depending on the subset.
    lo_x, hi_x = VariabilityAnalysis.relative_spread(full, subsets, "v6_excess")
    assert hi_x / lo_x > 1.3


def test_ablation_single_letter_extremes(benchmark, results, analyze):
    """The b-vs-g contrast as the degenerate k=1 case."""
    analysis = analyze("variability", results)

    def build():
        return {
            letter: analysis.subset_stats([letter])
            for letter in ("b", "g", "f", "m")
        }

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    for letter, s in stats.items():
        print(f"  {letter}.root alone: changes v4={s.median_changes_v4:g} "
              f"v6={s.median_changes_v6:g}")
    assert stats["g"].median_changes_v4 > 2 * stats["b"].median_changes_v4