"""Ablation: IXP capture sampling rate vs traffic-share estimation error.

The paper's IXP traces are "heavily sampled"; this ablation quantifies
how far sampling can drop before the Figure 9 shifted-share estimate
degrades, validating that the privacy-driven aggregation does not
distort the headline ratios.
"""

from repro.analysis import registry
from repro.passive.clients import IXP_EU_PROFILE, build_client_population
from repro.passive.isp import IspCapture
from repro.passive.clients import LETTER_WEIGHTS_IXP
from repro.util.rng import RngFactory
from repro.util.timeutil import parse_ts

WINDOW = (parse_ts("2023-12-08"), parse_ts("2023-12-28"))


def shifted_share(clients, sampling_rate: float) -> float:
    capture = IspCapture(
        clients, seed=13, sampling_rate=sampling_rate,
        letter_weights=LETTER_WEIGHTS_IXP,
    ).capture(*WINDOW)
    shift = registry.run("trafficshift", aggregate=capture)
    return shift.shift_ratios(*WINDOW).v6_shifted


def test_ablation_sampling_rate(benchmark):
    clients = build_client_population(
        type(IXP_EU_PROFILE)(
            name="ablate-sampling",
            n_clients=800,
            ipv6_share=IXP_EU_PROFILE.ipv6_share,
            switch_fraction_v4=IXP_EU_PROFILE.switch_fraction_v4,
            switch_fraction_v6=IXP_EU_PROFILE.switch_fraction_v6,
            primer_share_v6=IXP_EU_PROFILE.primer_share_v6,
            primer_share_v4=IXP_EU_PROFILE.primer_share_v4,
            mean_adoption_delay_days=IXP_EU_PROFILE.mean_adoption_delay_days,
            volume_aware_switching=False,
        ),
        RngFactory(13),
    )

    def build():
        return {rate: shifted_share(clients, rate) for rate in (1.0, 0.1, 0.01)}

    estimates = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("Ablation: sampling rate vs v6 shifted-share estimate")
    reference = estimates[1.0]
    for rate, value in sorted(estimates.items(), reverse=True):
        print(f"  sampling {rate:5.2f}: shifted {100 * value:.1f}% "
              f"(error {100 * abs(value - reference):.1f} pp)")

    # Moderate sampling preserves the estimate; extreme sampling drifts
    # but keeps the qualitative picture (majority shifted).
    assert abs(estimates[0.1] - reference) < 0.08
    assert abs(estimates[0.01] - reference) < 0.25
