"""Ablation: NLNOG RING suite vs RIPE Atlas built-ins (Appendix E).

The paper argues it could not have been done on Atlas: the built-ins
carry no AXFR (no RQ3), no per-generation b.root probing (no Figure 3
old/new split), and coarser identity cadence.  This ablation runs both
platforms over the same world and measures what survives.
"""

from repro.util.timeutil import parse_ts
from repro.vantage.atlas import AtlasPlatform


def test_ablation_platform_choice(benchmark, results, study, analyze):
    window = (parse_ts("2023-11-20"), parse_ts("2023-11-27"))
    vps = results.vps[:40]

    def build():
        platform = AtlasPlatform(study.selector)
        return platform.run(
            vps, results.collector.addresses, *window, interval_scale=48.0
        )

    atlas = benchmark.pedantic(build, rounds=1, iterations=1)

    print()
    print("Ablation: what the Atlas built-ins would have captured")
    # 1. Coverage works on both platforms (identities are built in).
    atlas_coverage = analyze(
        "coverage", catalog=results.catalog, identities=atlas.collector.identities
    )
    nlnog_coverage = analyze("coverage", results)
    atlas_total, _ = atlas_coverage.observed_identifier_count()
    nlnog_total, _ = nlnog_coverage.observed_identifier_count()
    print(f"  identities observed: Atlas built-ins {atlas_total}, "
          f"NLNOG suite {nlnog_total}")
    assert atlas_total > 0

    # 2. RQ3 is impossible: no zone transfers at all.
    print(f"  zone transfers: Atlas {atlas.collector.transfer_total}, "
          f"NLNOG {results.collector.transfer_total}")
    assert not atlas.has_transfers
    assert results.collector.transfer_total > 0

    # 3. The b.root old/new distinction is lost.
    print(f"  b.root old/new distinguished: Atlas "
          f"{atlas.distinguishes_b_generations()}, NLNOG True")
    assert not atlas.distinguishes_b_generations()

    # NLNOG measures both generations separately.
    nlnog_generations = {
        results.collector.addresses[addr_idx].generation
        for _vp, addr_idx in results.collector.change_counts()
        if results.collector.addresses[addr_idx].letter == "b"
    }
    assert {"old", "new"} <= nlnog_generations