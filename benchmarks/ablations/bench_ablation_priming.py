"""Ablation: RFC 8109 priming share vs residual old-address traffic.

Isolates the mechanism behind Figures 7/8: varying the primer share of
the switching IPv6 clients changes the *client count* touching the old
subnet daily far more than its *traffic share* — exactly why the paper
needed Figure 8 (clients/day) on top of Figure 7 (traffic) to separate
priming from reluctance.
"""

from dataclasses import replace

from repro.analysis import registry
from repro.passive.clients import ISP_PROFILE, build_client_population
from repro.passive.isp import IspCapture
from repro.util.rng import RngFactory
from repro.util.timeutil import parse_ts

WINDOW = (parse_ts("2024-02-05"), parse_ts("2024-02-19"))


def measure(primer_share: float):
    profile = replace(
        ISP_PROFILE,
        name=f"ablate-priming-{primer_share}",
        n_clients=1500,
        primer_share_v6=primer_share,
    )
    clients = build_client_population(profile, RngFactory(11))
    capture = IspCapture(clients, seed=11).capture(*WINDOW)
    shift = registry.run("trafficshift", aggregate=capture)
    ratios = shift.shift_ratios(*WINDOW)
    behavior = registry.run("clientbehavior", aggregate=capture)
    old_v6 = behavior.distribution(shift.b_addresses["V6old"])
    return ratios.v6_shifted, old_v6.mean_clients_per_day()


def test_ablation_priming_share(benchmark):
    def build():
        return {share: measure(share) for share in (0.0, 0.5, 0.9)}

    outcomes = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("Ablation: primer share of switching IPv6 clients")
    for share, (shifted, clients) in sorted(outcomes.items()):
        print(f"  primer share {share:.1f}: v6 traffic shifted {100 * shifted:.1f}%, "
              f"old-v6 clients/day {clients}")

    # More primers -> many more clients touch the old subnet daily...
    assert outcomes[0.9][1] > outcomes[0.0][1] * 2
    # ...while the traffic shift barely budges (priming is a trickle).
    assert abs(outcomes[0.9][0] - outcomes[0.0][0]) < 0.10
