"""Ablation: failure of a shared facility (the §5 motivating scenario).

"A failure of such a clustered location can, instantaneously, shift
traffic to other locations. Moreover, an increase in RTT may cause
resolvers to switch to other root server deployments" — we take the
facility hosting the most letters offline and measure exactly that:
how many letters lose their preferred catchment *simultaneously* per
client, and what the RTT penalty of the shifted traffic is.
"""

import statistics

from repro.netsim.latency import route_rtt_ms


def test_ablation_facility_failure(benchmark, results):
    census = results.fabric.colocation_census()
    victim = max(census, key=census.get)
    letters_at_victim = census[victim]
    failed = frozenset({victim})
    selector = results.fabric.selector(seed=23, expected_rounds=10)

    def build():
        shifted_per_vp = []
        rtt_penalties = []
        for vp in results.vps:
            shifted = 0
            for letter in "abcdefghijklm":
                baseline = selector.best(vp.attachment, letter, 4)
                if baseline.facility.facility_id != victim:
                    continue
                fallback = selector.best_excluding(
                    vp.attachment, letter, 4, failed
                )
                assert fallback is not None
                shifted += 1
                before = route_rtt_ms(baseline, vp.last_mile_ms, 1)
                after = route_rtt_ms(fallback, vp.last_mile_ms, 1)
                rtt_penalties.append(after - before)
            shifted_per_vp.append(shifted)
        return shifted_per_vp, rtt_penalties

    shifted_per_vp, rtt_penalties = benchmark.pedantic(build, rounds=1, iterations=1)

    affected_vps = [n for n in shifted_per_vp if n > 0]
    print()
    print(f"Ablation: failure of {victim} (hosts {letters_at_victim} letters)")
    print(f"  VPs with at least one shifted catchment: {len(affected_vps)}"
          f"/{len(shifted_per_vp)}")
    if affected_vps:
        print(f"  max letters shifted simultaneously for one VP: "
              f"{max(affected_vps)}")
    if rtt_penalties:
        print(f"  RTT penalty of shifted traffic: mean "
              f"{statistics.mean(rtt_penalties):.1f} ms, max "
              f"{max(rtt_penalties):.1f} ms")

    # The co-location risk is real: some client loses several letters at
    # once when one facility fails...
    assert affected_vps
    assert max(affected_vps) >= 2
    # ...but the system as a whole absorbs it (every letter still
    # reachable — the paper does "not question reliability of the RSS").
    for vp in results.vps[:10]:
        for letter in "abcdefghijklm":
            assert selector.best_excluding(vp.attachment, letter, 4, failed)
