"""Ablation: the AS6939-like open-IPv6 transit.

The paper traces its strongest IPv6 anomalies to one AS.  This ablation
rebuilds South American/African attachments with and without the open-v6
provider and measures the RTT effect directly — isolating the mechanism
behind Figure 6's i.root/l.root asymmetries.
"""

import statistics

from repro.geo.cities import city
from repro.netsim.attachment import Attachment
from repro.netsim.latency import route_rtt_ms
from repro.netsim.transit import OPEN_V6_TRANSIT, TRANSIT_BY_ASN


def rtts_for(fabric, letter: str, iatas, transits) -> float:
    selector = fabric.selector(seed=3, expected_rounds=10)
    rtts = []
    for i, iata in enumerate(iatas):
        att = Attachment(
            asn=66000 + i,
            city=city(iata),
            transits_v4=transits,
            transits_v6=transits,
        )
        route = selector.best(att, letter, 6)
        rtts.append(route_rtt_ms(route, last_mile_ms=4.0, request_key=i))
    return statistics.mean(rtts)


def test_ablation_open_v6_transit_south_america(benchmark, results):
    sa_cities = ["GRU", "EZE", "SCL", "BOG", "LIM"]
    regional = (TRANSIT_BY_ASN[61832], TRANSIT_BY_ASN[3356])
    open_v6 = (OPEN_V6_TRANSIT,)

    def build():
        return (
            rtts_for(results.fabric, "i", sa_cities, regional),
            rtts_for(results.fabric, "i", sa_cities, open_v6),
        )

    with_regional, with_open_v6 = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("Ablation: i.root IPv6 RTT from South America")
    print(f"  via regional/tier-1 transit: {with_regional:6.1f} ms")
    print(f"  via open-v6 transit only:    {with_open_v6:6.1f} ms")
    # The open-v6 provider has no SA PoPs: it hauls traffic out of the
    # continent, inflating RTT (paper: i.root SA v6 +100% over v4).
    assert with_open_v6 > with_regional * 1.5


def test_ablation_open_v6_transit_north_america(benchmark, results):
    na_cities = ["IAD", "ORD", "DEN", "SEA", "DFW"]
    budget = (TRANSIT_BY_ASN[174],)
    open_v6 = (OPEN_V6_TRANSIT,)

    def build():
        return (
            rtts_for(results.fabric, "i", na_cities, budget),
            rtts_for(results.fabric, "i", na_cities, open_v6),
        )

    with_budget, with_open_v6 = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("Ablation: i.root IPv6 RTT from North America")
    print(f"  via budget transit:       {with_budget:6.1f} ms")
    print(f"  via open-v6 transit only: {with_open_v6:6.1f} ms")
    # At home (dense PoPs), the open-v6 provider is competitive (paper:
    # i.root NA v6 26% *below* v4, via AS6939).
    assert with_open_v6 < with_budget * 1.3
