"""Ablation: local-site share vs client distance and coverage.

d/e/f/j.root deploy hundreds of *local* sites (reachable only via the
exchange or country they live in).  This ablation isolates what those
local sites buy: compare each letter's mean client distance with local
sites reachable versus a counterfactual where only global sites exist —
and show the measurement-side cost, the low local-site coverage of
Tables 1/4 (local sites are only visible to nearby VPs).
"""

import statistics

from repro.rss.sites import SITE_PLAN


def mean_distance(results, letter: str, include_local: bool) -> float:
    selector = results.fabric.selector(seed=17, expected_rounds=10)
    distances = []
    for vp in results.vps:
        if include_local:
            route = selector.best(vp.attachment, letter, 4)
            distances.append(route.direct_km)
        else:
            candidates = selector.candidates(vp.attachment, letter, 4)
            global_only = [r for r in candidates if r.site.is_global]
            if global_only:
                distances.append(global_only[0].direct_km)
    return statistics.mean(distances)


def test_ablation_local_site_benefit(benchmark, results):
    letters = ("d", "f", "j")

    def build():
        return {
            letter: (
                mean_distance(results, letter, include_local=True),
                mean_distance(results, letter, include_local=False),
            )
            for letter in letters
        }

    outcomes = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("Ablation: local sites' contribution to client proximity")
    for letter, (with_local, without_local) in outcomes.items():
        n_local = sum(pair[1] for pair in SITE_PLAN[letter].values())
        print(f"  {letter}.root ({n_local:3d} local sites): "
              f"with locals {with_local:6.0f} km, "
              f"global-only {without_local:6.0f} km")
        # Local sites never hurt; they help where VPs can see them.
        assert with_local <= without_local + 1.0

    # At least one local-heavy letter gains measurably.
    gains = [
        without - with_ for (with_, without) in outcomes.values()
    ]
    assert max(gains) > 25.0


def test_ablation_local_site_coverage_cost(benchmark, results, analyze):
    """The flip side (Tables 1/4): local sites are hard for a VP fleet
    to observe — local coverage trails global coverage everywhere."""
    coverage = benchmark(analyze, "coverage", results)
    print()
    for letter in ("d", "e", "f", "j"):
        rows = {r.scope: r for r in coverage.worldwide()[letter]}
        print(f"  {letter}.root: global {rows['global'].pct:.0f}% vs "
              f"local {rows['local'].pct:.0f}% coverage")
        assert rows["local"].pct < rows["global"].pct
