"""Ablation: anycast deployment size vs client distance and stability.

DESIGN.md calls out two design choices worth isolating:

* larger deployments put clients nearer to replicas (Koch et al.'s
  observation the paper builds on), and
* catchment churn is not a function of deployment size alone — b.root
  and g.root both run 6 sites yet differ 4-8x in change counts, which in
  this model comes from the per-letter announcement dynamics, not the
  candidate set.
"""

import statistics

from repro.geo.coords import haversine_km
from repro.netsim.churn import TARGET_MEDIAN_CHANGES


def mean_best_distance(results, letter: str) -> float:
    distances = []
    for vp in results.vps:
        route = None
        selector = results.fabric.selector(seed=1, expected_rounds=10)
        route = selector.best(vp.attachment, letter, 4)
        distances.append(route.direct_km)
    return statistics.mean(distances)


def test_ablation_deployment_size_vs_distance(benchmark, results):
    letters = {"b": 6, "g": 6, "c": 12, "i": 81, "l": 132, "f": 129}

    def build():
        return {letter: mean_best_distance(results, letter) for letter in letters}

    means = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("Ablation: deployment size vs mean client-to-replica distance")
    for letter, n_sites in sorted(letters.items(), key=lambda kv: kv[1]):
        print(f"  {letter}.root ({n_sites:3d} global sites): {means[letter]:7.0f} km")

    # Big deployments serve clients from much closer than 6-site ones.
    small = statistics.mean([means["b"], means["g"]])
    large = statistics.mean([means["l"], means["f"]])
    assert large < small * 0.6


def test_ablation_stability_not_size(benchmark, results, analyze):
    """Same size, different churn: the b-vs-g contrast is driven by the
    per-letter dynamics targets, mirroring the paper's observation that
    deployment size alone does not predict stability."""
    stability = benchmark(analyze, "stability", results)
    b = stability.median_changes("b", 4, "new")
    g = stability.median_changes("g", 4)
    print()
    print(f"b.root (6 sites) median changes: {b:g}")
    print(f"g.root (6 sites) median changes: {g:g}")
    print(f"configured targets: b={TARGET_MEDIAN_CHANGES[('b', 4)]}, "
          f"g={TARGET_MEDIAN_CHANGES[('g', 4)]}")
    assert g > 2 * b
