"""F4 — Figure 4 and §5: reduced redundancy due to shared last hops (RQ1).

Shape expectations: co-location is prevalent (paper: ~70% of VPs observe
>= 2 co-located letters), concentrated at big exchanges, with moderate
per-continent averages (~0.7 - 1.3).
"""

from repro.analysis.report import render_figure4
from repro.geo.continents import Continent


def test_fig4_reduced_redundancy(benchmark, results, analyze):
    colocation = benchmark(analyze, "colocation", results)
    print()
    print(render_figure4(colocation))

    frac = colocation.fraction_with_colocation()
    print(f"VPs observing >=2 co-located letters: {100 * frac:.1f}% (paper ~70%)")
    assert frac > 0.5  # co-location is prevalent
    assert 2 <= colocation.max_observed_colocation() <= 13

    # Averages stay moderate: sharing exists, but shallow for most VPs.
    for continent in (Continent.EUROPE, Continent.NORTH_AMERICA):
        for family in (4, 6):
            avg = colocation.average(continent, family)
            assert avg is not None and 0.1 < avg < 4.0, (continent, family)

    # Histograms account for every view.
    views4 = [v for v in colocation.views() if v.family == 4]
    assert sum(sum(colocation.histogram(c, 4)) for c in Continent) == len(views4)
