"""F6 — Figure 6: RTTs of requests by continent (Africa, South America,
North America, Europe), per letter and address family.

Shape expectations (paper §6): per-family RTT differences vary by region
and letter in non-obvious ways; the open-v6 transit lowers i.root's
North American IPv6 RTTs but *raises* RTTs in regions it hauls out of
continent (i.root South America, l.root Africa).
"""

from repro.analysis.report import render_figure6, render_path_breakdown
from repro.geo.continents import Continent
from repro.rss.operators import root_server

FIG6_CONTINENTS = [
    Continent.AFRICA,
    Continent.SOUTH_AMERICA,
    Continent.NORTH_AMERICA,
    Continent.EUROPE,
]


def test_fig6_rtt_by_region(benchmark, results, analyze):
    rtt = analyze("rtt", results)
    addresses = [sa.address for sa in results.collector.addresses]

    summaries = benchmark(
        lambda: [
            rtt.summary(a, c) for a in addresses for c in FIG6_CONTINENTS
        ]
    )
    assert any(s is not None for s in summaries)

    print()
    print(render_figure6(rtt, FIG6_CONTINENTS, addresses, {}))

    # Europe is the best-served region for the Europe-dense letter k.
    k = root_server("k")
    eu = rtt.summary(k.ipv4, Continent.EUROPE)
    sa = rtt.summary(k.ipv4, Continent.SOUTH_AMERICA)
    assert eu is not None and sa is not None and eu.p50 < sa.p50

    # The paper's i.root asymmetry: IPv6 is competitive in North America
    # (46.2 vs 62.6 ms — the open-v6 transit is dense there) but markedly
    # more expensive in South America (out-of-continent hauling, >2x).
    ratio_na = rtt.family_ratio("i", Continent.NORTH_AMERICA)
    ratio_sa = rtt.family_ratio("i", Continent.SOUTH_AMERICA)
    print(f"i.root v6/v4 mean ratio: NA {ratio_na:.2f} (paper ~0.74), "
          f"SA {ratio_sa:.2f} (paper >2)")
    assert ratio_na is not None and ratio_na < 1.2
    assert ratio_sa is not None and ratio_sa > 1.1
    assert ratio_sa > ratio_na

    # l.root Africa: the open-v6 transit drags v6 out of continent
    # (paper: average 62.5 ms via the AS6939-like paths).
    ratio_af = rtt.family_ratio("l", Continent.AFRICA)
    print(f"l.root Africa v6/v4 mean ratio: {ratio_af:.2f} (paper >1)")
    assert ratio_af is not None and ratio_af > 1.0

    # §6 path drill-down: the AS6939-like network carries more of the
    # IPv6 paths than the IPv4 paths in the affected regions.
    paths = analyze("paths", results)
    print()
    for continent in (Continent.SOUTH_AMERICA, Continent.AFRICA):
        print(render_path_breakdown(paths, continent, "i"))
        v4_share, v6_share = paths.family_share_contrast(6939, continent, "i")
        assert v6_share >= v4_share, continent
