"""F10 — Figure 10: a bitflip in an RRSIG observed via AXFR.

Regenerates the paper's figure: the corrupted record line from a
non-verifying transfer side by side with the reference line from a clean
copy of the same serial (the paper compared against an ICANN download
with the same SOA).
"""



def test_fig10_bitflip_diff(benchmark, results, analyze):
    audit = analyze("zonemd_audit", results)
    examples = benchmark(audit.bitflip_examples)
    assert examples, "the fault plan schedules bitflipped transfers"

    print()
    print("Figure 10: bitflips in transferred zones")
    shown = 0
    for obs, description in examples:
        reference = results.distributor.zone_for_publication(
            *results.distributor.latest_publication(obs.true_ts)
        )
        if reference.serial != obs.serial:
            continue
        diff = audit.bitflip_diff(obs, reference)
        assert len(diff) == 1  # a single record differs
        before, after = diff[0]
        print(f"  VP {obs.vp_id}, {obs.address.label}, serial {obs.serial}: "
              f"{description}")
        print(f"    reference: {before[:110]}")
        print(f"    received:  {after[:110]}")
        shown += 1
        if shown >= 3:
            break
    assert shown >= 1
