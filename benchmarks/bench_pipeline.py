"""Campaign execution benchmark: serial vs sharded vs multiprocess.

Runs the campaign stage at a fixed config across execution variants —
serial, in-process sharded, and multiprocess with the mmap spill
handoff — each in its own subprocess, repeated, with medians reported.
Each child prints wall time, CPU time (self + children, so pool workers
count), a collector content digest, and the handoff accounting:

* the in-process sharded child reports ``handoff_pickle_bytes`` — what
  the old design would have pushed through the pool pipe (one pickled
  collector per shard);
* multiprocess children report ``handoff_payload_bytes`` (what actually
  crosses the pipe now: JSON with a path and a summary) and
  ``handoff_spill_bytes`` (what comes home via mmap instead).

Every variant must produce the same content digest — probe/traceroute
column bytes, aggregate state and transfer serials — which checks the
serial ↔ sharded ↔ multiprocess byte-identity without paying for a
dataset save (sealing transfers costs ~45 s of RSA at this config and
belongs to the export, not the campaign).

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --scale bench \
        --max-mp-overhead 1.15               # full run + overhead gate
    PYTHONPATH=src python benchmarks/bench_pipeline.py --scale tiny \
        --repeats 1                          # CI smoke: digests + spill
                                             # gate only — at tiny scale
                                             # fixed pool startup dwarfs
                                             # the campaign, so no
                                             # overhead gate there

Exits non-zero when digests diverge, a multiprocess run fails to spill
(handoff regressed to pickling), or the overhead gate fails.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import asdict
from typing import List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core.config import StudyConfig
from repro.util.timeutil import parse_ts

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from benchutil import cpu_scaling_meta, scaling_worker_levels, visible_cpus

#: (shards, workers) execution variants, in report order.  workers 1/2/4
#: is the scaling curve; on a single-CPU container the interesting number
#: is the multiprocess *overhead* over serial, not speedup.
VARIANTS = [(1, 1), (2, 1), (2, 2), (4, 4)]


def variants_for(cpus: int) -> List[tuple]:
    """The fixed overhead variants, plus — when the container actually
    has CPUs to scale over — one ``(N, N)`` row per scaling level, so a
    many-core host records a real speedup curve instead of silently
    publishing single-core numbers."""
    variants = list(VARIANTS)
    for level in scaling_worker_levels(cpus):
        if level > 1 and (level, level) not in variants:
            variants.append((level, level))
    return variants


def make_config(scale: str) -> StudyConfig:
    if scale == "tiny":
        return StudyConfig(
            seed=77,
            ring_scale=0.02,
            interval_scale=96.0,
            campaign_start=parse_ts("2023-11-25"),
            campaign_end=parse_ts("2023-11-30"),
            rtt_sample_every=1,
            traceroute_sample_every=2,
            axfr_sample_every=2,
            clean_transfer_keep_one_in=20,
        )
    return StudyConfig(
        seed=2024,
        ring_scale=0.2,
        interval_scale=8.0,
        rtt_sample_every=1,
        traceroute_sample_every=2,
        axfr_sample_every=2,
        clean_transfer_keep_one_in=200,
    )


def _cpu_seconds() -> float:
    import resource

    own = resource.getrusage(resource.RUSAGE_SELF)
    kids = resource.getrusage(resource.RUSAGE_CHILDREN)
    return own.ru_utime + own.ru_stime + kids.ru_utime + kids.ru_stime


def _collector_digest(collector) -> str:
    """Content digest of everything the campaign produced."""
    digest = hashlib.sha256()
    probes = collector.probe_columns()
    for name in sorted(probes):
        digest.update(probes[name].tobytes())
    traceroutes = collector.traceroute_columns()
    for name in sorted(traceroutes):
        digest.update(traceroutes[name].tobytes())
    digest.update(json.dumps(collector.state_dict(), sort_keys=True).encode())
    digest.update(
        json.dumps([int(o.serial) for o in collector.transfers]).encode()
    )
    return digest.hexdigest()


def child_main(scale: str, shards: int, workers: int) -> int:
    """One measured variant; prints a JSON result line for the parent."""
    import pickle

    from repro.core.pipeline import (
        StudyPipeline,
        _run_sharded,
        last_spill_stats,
    )

    config = make_config(scale)
    if shards > 1:
        config = config.with_sharding(shards, workers=workers)

    pipeline = StudyPipeline(config)
    build_started = time.perf_counter()
    pipeline.build_world()
    pipeline.build_platform()
    build_seconds = time.perf_counter() - build_started

    campaign_started = time.perf_counter()
    cpu_started = _cpu_seconds()
    collector = pipeline.run_campaign()
    campaign_seconds = time.perf_counter() - campaign_started
    cpu_seconds = _cpu_seconds() - cpu_started

    result = {
        "shards": shards,
        "workers": workers,
        "build_seconds": round(build_seconds, 2),
        "campaign_seconds": round(campaign_seconds, 2),
        "campaign_cpu_seconds": round(cpu_seconds, 2),
        "digest": _collector_digest(collector),
        "summary": collector.summary(),
    }

    spill = last_spill_stats()
    if spill is not None:
        result["handoff_payload_bytes"] = spill["payload_bytes"]
        result["handoff_spill_bytes"] = spill["spill_bytes"]
        # forkserver pool workers are invisible to RUSAGE_CHILDREN;
        # they report their own CPU through the spill stats
        result["campaign_cpu_seconds"] = round(
            cpu_seconds + spill["worker_cpu_seconds"], 2
        )
    elif shards > 1:
        # What the retired design would have pushed through the pool
        # pipe: one pickled collector per shard.  Re-run the shards
        # (untimed) to size it — run_campaign does not retain them.
        world = pipeline.store.get("world")
        platform_artifacts = pipeline.store.get("platform")
        shard_collectors = _run_sharded(config, world, platform_artifacts)
        result["handoff_pickle_bytes"] = sum(
            len(pickle.dumps(c, protocol=pickle.HIGHEST_PROTOCOL))
            for c in shard_collectors
        )

    print(json.dumps(result))
    return 0


def run_child(scale: str, shards: int, workers: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--child", "--scale", scale,
         "--shards", str(shards), "--workers", str(workers)],
        env=env, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"shards={shards} workers={workers} child failed "
            f"({proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("tiny", "bench"), default="bench")
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per variant; medians are reported (default 3)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_pipeline.json"),
        help="result file (default: BENCH_pipeline.json at the repo root)",
    )
    parser.add_argument(
        "--max-mp-overhead", type=float, default=None,
        help="fail unless the shards=2 workers=2 median wall time is "
             "within this factor of the serial median",
    )
    parser.add_argument("--child", action="store_true")
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)

    if args.child:
        return child_main(args.scale, args.shards, args.workers)

    failures: List[str] = []
    medians: List[dict] = []
    for shards, workers in variants_for(visible_cpus()):
        samples = [
            run_child(args.scale, shards, workers)
            for _ in range(max(args.repeats, 1))
        ]
        walls = [s["campaign_seconds"] for s in samples]
        cpus = [s["campaign_cpu_seconds"] for s in samples]
        median = dict(samples[0])
        median["campaign_seconds"] = round(statistics.median(walls), 2)
        median["campaign_cpu_seconds"] = round(statistics.median(cpus), 2)
        median["campaign_seconds_runs"] = walls
        medians.append(median)
        print(f"shards={shards} workers={workers}  "
              f"wall {median['campaign_seconds']:7.2f}s  "
              f"cpu {median['campaign_cpu_seconds']:7.2f}s  runs {walls}")

    digests = {m["digest"] for m in medians}
    if len(digests) != 1:
        failures.append(
            "variants diverged: "
            + ", ".join(
                f"({m['shards']},{m['workers']})={m['digest'][:12]}"
                for m in medians
            )
        )
    else:
        print(f"all variants byte-identical (digest {medians[0]['digest'][:12]})")

    by_variant = {(m["shards"], m["workers"]): m for m in medians}
    for m in medians:
        if m["workers"] > 1:
            if m.get("handoff_spill_bytes", 0) <= 0:
                failures.append(
                    f"shards={m['shards']} workers={m['workers']} produced "
                    f"no spill — the handoff regressed to pickling"
                )
            else:
                ratio = m["handoff_payload_bytes"] / max(
                    by_variant[(2, 1)].get("handoff_pickle_bytes", 0), 1
                )
                print(f"shards={m['shards']} workers={m['workers']}: "
                      f"{m['handoff_payload_bytes']} B through the pipe, "
                      f"{m['handoff_spill_bytes']} B via mmap spill "
                      f"(pipe traffic {ratio:.2e}x of the pickled handoff)")

    serial_wall = by_variant[(1, 1)]["campaign_seconds"]
    mp_wall = by_variant[(2, 2)]["campaign_seconds"]
    overhead = mp_wall / serial_wall
    print(f"shards=2 workers=2 wall = {overhead:.2f}x serial")
    if args.max_mp_overhead is not None and overhead > args.max_mp_overhead:
        failures.append(
            f"multiprocess overhead {overhead:.2f}x exceeds the "
            f"--max-mp-overhead {args.max_mp_overhead}x gate"
        )

    report = {
        "benchmark": "staged pipeline: serial vs sharded vs multiprocess "
                     "campaign execution with mmap spill handoff",
        "scale": args.scale,
        "repeats": max(args.repeats, 1),
        "config": asdict(make_config(args.scale)),
        "machine": {
            "python": platform.python_version(),
            **cpu_scaling_meta(),
        },
        "equivalence": "all variants produced identical collector content "
                       "digests (probe/traceroute column bytes, aggregate "
                       "state, transfer serials)"
                       if len(digests) == 1 else "DIVERGED",
        "mp_overhead_vs_serial": round(overhead, 3),
        "runs": medians,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"results written to {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
