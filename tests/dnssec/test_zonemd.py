"""ZONEMD (RFC 8976) computation and verification."""

import pytest

from repro.dns.constants import (
    RRClass,
    RRType,
    ZONEMD_ALG_PRIVATE,
    ZONEMD_ALG_SHA384,
    ZONEMD_ALG_SHA512,
)
from repro.dns.name import Name, ROOT_NAME
from repro.dns.rdata import NS, SOA, ZONEMD
from repro.dns.records import ResourceRecord
from repro.dnssec.zonemd import (
    ZonemdStatus,
    compute_zone_digest,
    make_zonemd_record,
    verify_zonemd,
)


def soa(serial: int = 42) -> ResourceRecord:
    return ResourceRecord(
        ROOT_NAME, RRType.SOA, RRClass.IN, 86400,
        SOA(Name.from_text("m."), Name.from_text("r."), serial, 2, 3, 4, 5),
    )


def delegation(tld: str) -> ResourceRecord:
    return ResourceRecord(
        Name.from_text(f"{tld}."), RRType.NS, RRClass.IN, 172800,
        NS(Name.from_text(f"ns1.nic.{tld}.")),
    )


class TestDigest:
    def test_deterministic(self):
        records = [soa(), delegation("world"), delegation("ruhr")]
        assert compute_zone_digest(records, ROOT_NAME) == compute_zone_digest(
            records, ROOT_NAME
        )

    def test_record_order_irrelevant(self):
        a = [soa(), delegation("world"), delegation("ruhr")]
        b = [delegation("ruhr"), soa(), delegation("world")]
        assert compute_zone_digest(a, ROOT_NAME) == compute_zone_digest(b, ROOT_NAME)

    def test_duplicates_excluded(self):
        base = [soa(), delegation("world")]
        doubled = base + [delegation("world")]
        assert compute_zone_digest(base, ROOT_NAME) == compute_zone_digest(
            doubled, ROOT_NAME
        )

    def test_content_changes_digest(self):
        a = [soa(), delegation("world")]
        b = [soa(), delegation("w0rld")]
        assert compute_zone_digest(a, ROOT_NAME) != compute_zone_digest(b, ROOT_NAME)

    def test_apex_zonemd_excluded_from_input(self):
        records = [soa(), delegation("world")]
        with_placeholder = records + [
            ResourceRecord(
                ROOT_NAME, RRType.ZONEMD, RRClass.IN, 86400,
                ZONEMD(42, 1, 1, b"\x00" * 48),
            )
        ]
        assert compute_zone_digest(records, ROOT_NAME) == compute_zone_digest(
            with_placeholder, ROOT_NAME
        )

    def test_sha512_supported(self):
        records = [soa(), delegation("world")]
        digest = compute_zone_digest(records, ROOT_NAME, ZONEMD_ALG_SHA512)
        assert len(digest) == 64

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            compute_zone_digest([soa()], ROOT_NAME, 99)


class TestVerify:
    def _zone_with_zonemd(self, alg=ZONEMD_ALG_SHA384):
        records = [soa(), delegation("world"), delegation("ruhr")]
        records.append(make_zonemd_record(records, ROOT_NAME, 42, hash_algorithm=alg))
        return records

    def test_valid(self):
        status, _ = verify_zonemd(self._zone_with_zonemd(), ROOT_NAME)
        assert status is ZonemdStatus.VALID

    def test_absent(self):
        status, _ = verify_zonemd([soa()], ROOT_NAME)
        assert status is ZonemdStatus.ABSENT

    def test_private_algorithm_inconclusive(self):
        records = self._zone_with_zonemd(alg=ZONEMD_ALG_PRIVATE)
        status, _ = verify_zonemd(records, ROOT_NAME)
        assert status is ZonemdStatus.UNSUPPORTED_ALGORITHM

    def test_serial_mismatch(self):
        records = [soa(7), delegation("world")]
        records.append(make_zonemd_record(records, ROOT_NAME, soa_serial=8))
        status, _ = verify_zonemd(records, ROOT_NAME)
        assert status is ZonemdStatus.SERIAL_MISMATCH

    def test_mismatch_after_mutation(self):
        records = self._zone_with_zonemd()
        records.append(delegation("inserted"))
        status, detail = verify_zonemd(records, ROOT_NAME)
        assert status is ZonemdStatus.MISMATCH
        assert "computed" in detail

    def test_mismatch_after_single_bitflip(self):
        records = self._zone_with_zonemd()
        # Flip one bit in a delegation target name.
        victim_index = next(
            i for i, r in enumerate(records)
            if r.rrtype == RRType.NS and r.name == Name.from_text("world.")
        )
        flipped = ResourceRecord(
            records[victim_index].name, RRType.NS, RRClass.IN,
            records[victim_index].ttl, NS(Name.from_text("ns1.nic.worle.")),
        )
        records[victim_index] = flipped
        status, _ = verify_zonemd(records, ROOT_NAME)
        assert status is ZonemdStatus.MISMATCH


class TestBuilderIntegration:
    def test_built_zone_zonemd_status_matches_rollout(self, zone_builder):
        from repro.util.timeutil import parse_ts

        cases = [
            ("2023-08-01T12:00:00", ZonemdStatus.ABSENT),
            ("2023-10-01T12:00:00", ZonemdStatus.UNSUPPORTED_ALGORITHM),
            ("2023-12-10T12:00:00", ZonemdStatus.VALID),
        ]
        for when, expected in cases:
            zone = zone_builder.build(parse_ts(when))
            status, _ = verify_zonemd(zone.records, ROOT_NAME)
            assert status is expected, when
