"""KSK rollover schedule, revoked keys, and the RFC 5011 tracker."""

import pytest

from repro.dnssec.keys import generate_keypair
from repro.dnssec.trustanchor import (
    ADD_HOLD_DOWN_S,
    AnchorState,
    DNSKEY_FLAG_REVOKE,
    KskRolloverSchedule,
    TrustAnchorTracker,
    is_revoked,
    revoked,
)
from repro.util.timeutil import DAY, parse_ts


@pytest.fixture(scope="module")
def old_ksk():
    return generate_keypair(b"roll-old", is_ksk=True)


@pytest.fixture(scope="module")
def new_ksk():
    return generate_keypair(b"roll-new", is_ksk=True)


@pytest.fixture(scope="module")
def schedule():
    return KskRolloverSchedule(
        publish_ts=parse_ts("2023-08-01"),
        swap_ts=parse_ts("2023-10-01"),
        revoke_ts=parse_ts("2023-11-15"),
        remove_ts=parse_ts("2024-01-01"),
    )


class TestSchedule:
    def test_phases(self, schedule):
        assert schedule.phase(parse_ts("2023-07-01")) == "pre"
        assert schedule.phase(parse_ts("2023-09-01")) == "published"
        assert schedule.phase(parse_ts("2023-10-15")) == "swapped"
        assert schedule.phase(parse_ts("2023-12-01")) == "revoked"
        assert schedule.phase(parse_ts("2024-02-01")) == "done"

    def test_order_enforced(self):
        with pytest.raises(ValueError):
            KskRolloverSchedule(10, 5, 20, 30)
        with pytest.raises(ValueError):
            KskRolloverSchedule(10, 10, 20, 30)


class TestRevocation:
    def test_revoked_sets_flag_and_changes_tag(self, old_ksk):
        rev = revoked(old_ksk.dnskey)
        assert is_revoked(rev)
        assert rev.flags & DNSKEY_FLAG_REVOKE
        assert rev.key_tag() != old_ksk.dnskey.key_tag()
        assert rev.public_key == old_ksk.dnskey.public_key


class TestTracker:
    def test_bootstrap_anchor_trusted(self, old_ksk):
        tracker = TrustAnchorTracker(old_ksk.dnskey)
        assert tracker.trusted_tags() == {old_ksk.dnskey.key_tag()}
        assert tracker.can_validate(old_ksk.dnskey.key_tag())

    def test_non_sep_anchor_rejected(self):
        zsk = generate_keypair(b"roll-zsk", is_ksk=False)
        with pytest.raises(ValueError):
            TrustAnchorTracker(zsk.dnskey)

    def test_new_key_needs_hold_down(self, old_ksk, new_ksk):
        tracker = TrustAnchorTracker(old_ksk.dnskey)
        t0 = parse_ts("2023-08-01")
        rrset = [old_ksk.dnskey, new_ksk.dnskey]
        tracker.observe(rrset, t0)
        assert tracker.state_of(new_ksk.dnskey.key_tag()) is AnchorState.PENDING
        assert not tracker.can_validate(new_ksk.dnskey.key_tag())
        # Seen again after 10 days: still pending.
        tracker.observe(rrset, t0 + 10 * DAY)
        assert not tracker.can_validate(new_ksk.dnskey.key_tag())
        # After the 30-day hold-down: trusted.
        tracker.observe(rrset, t0 + ADD_HOLD_DOWN_S)
        assert tracker.can_validate(new_ksk.dnskey.key_tag())

    def test_revocation_distrusts_old_key(self, old_ksk, new_ksk):
        tracker = TrustAnchorTracker(old_ksk.dnskey)
        t0 = parse_ts("2023-08-01")
        tracker.observe([old_ksk.dnskey, new_ksk.dnskey], t0)
        tracker.observe([old_ksk.dnskey, new_ksk.dnskey], t0 + ADD_HOLD_DOWN_S)
        tracker.observe(
            [revoked(old_ksk.dnskey), new_ksk.dnskey], t0 + 40 * DAY
        )
        assert not tracker.can_validate(old_ksk.dnskey.key_tag())
        assert tracker.can_validate(new_ksk.dnskey.key_tag())
        assert tracker.state_of(old_ksk.dnskey.key_tag()) is AnchorState.REVOKED

    def test_zsk_ignored(self, old_ksk):
        tracker = TrustAnchorTracker(old_ksk.dnskey)
        zsk = generate_keypair(b"roll-zsk-2", is_ksk=False)
        tracker.observe([old_ksk.dnskey, zsk.dnskey], 100)
        assert tracker.state_of(zsk.dnskey.key_tag()) is None


class TestBuilderRollover:
    @pytest.fixture(scope="class")
    def rolling_builder(self, schedule):
        from repro.zone.rootzone import RootZoneBuilder

        return RootZoneBuilder(
            seed=77, tlds=["com", "org", "world"], ksk_rollover=schedule
        )

    def _sep_keys(self, zone):
        from repro.dns.constants import RRType
        from repro.dns.name import ROOT_NAME

        rrset = zone.find_rrset(ROOT_NAME, RRType.DNSKEY)
        return [r.rdata for r in rrset if r.rdata.is_sep()]

    def test_pre_phase_single_ksk(self, rolling_builder):
        zone = rolling_builder.build(parse_ts("2023-07-10T16:00:00"))
        assert len(self._sep_keys(zone)) == 1

    def test_published_phase_two_ksks(self, rolling_builder):
        zone = rolling_builder.build(parse_ts("2023-08-15T16:00:00"))
        assert len(self._sep_keys(zone)) == 2

    def test_revoked_phase_marks_old(self, rolling_builder):
        zone = rolling_builder.build(parse_ts("2023-12-01T16:00:00"))
        seps = self._sep_keys(zone)
        assert len(seps) == 2
        assert sum(1 for k in seps if is_revoked(k)) == 1

    def test_done_phase_new_only(self, rolling_builder):
        zone = rolling_builder.build(parse_ts("2024-01-15T16:00:00"))
        seps = self._sep_keys(zone)
        assert len(seps) == 1
        assert seps[0] == rolling_builder.ksk_next.dnskey

    def test_zone_validates_in_every_phase(self, rolling_builder):
        from repro.dns.name import ROOT_NAME
        from repro.dnssec.validate import validate_zone

        for when in (
            "2023-07-10T16:00:00", "2023-08-15T16:00:00",
            "2023-10-15T16:00:00", "2023-12-01T16:00:00",
            "2024-01-15T16:00:00",
        ):
            ts = parse_ts(when)
            zone = rolling_builder.build(ts)
            report = validate_zone(zone.records, ROOT_NAME, now=ts)
            assert report.valid, (when, report.issues[:2])

    def test_rfc5011_client_survives_the_roll(self, rolling_builder, schedule):
        """End-to-end: a validator bootstrapped on the old anchor tracks
        the DNSKEY RRset through the roll and can still validate after
        the swap — the Mueller et al. success story."""
        from repro.dns.constants import RRType
        from repro.dns.name import ROOT_NAME
        from repro.util.timeutil import DAY

        tracker = TrustAnchorTracker(
            rolling_builder.ksk.dnskey, bootstrap_ts=schedule.publish_ts - 30 * DAY
        )
        ts = schedule.publish_ts
        while ts < schedule.remove_ts + 10 * DAY:
            zone = rolling_builder.build(ts)
            rrset = zone.find_rrset(ROOT_NAME, RRType.DNSKEY)
            tracker.observe([r.rdata for r in rrset], ts)
            active_tag = rolling_builder.active_ksk(ts).key_tag
            if ts >= schedule.swap_ts:
                assert tracker.can_validate(active_tag), ts
            ts += 5 * DAY
