"""NSEC chain construction and verification."""

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name, ROOT_NAME
from repro.dns.rdata import NS, NSEC, SOA
from repro.dns.records import ResourceRecord
from repro.dnssec.nsec import build_nsec_chain, verify_nsec_chain


def records_for(*tlds: str):
    out = [
        ResourceRecord(
            ROOT_NAME, RRType.SOA, RRClass.IN, 86400,
            SOA(Name.from_text("m."), Name.from_text("r."), 1, 2, 3, 4, 5),
        )
    ]
    for tld in tlds:
        out.append(
            ResourceRecord(
                Name.from_text(f"{tld}."), RRType.NS, RRClass.IN, 172800,
                NS(Name.from_text(f"ns1.nic.{tld}.")),
            )
        )
    return out


class TestBuildChain:
    def test_one_nsec_per_owner(self):
        records = records_for("com", "org", "world")
        chain = build_nsec_chain(records, ROOT_NAME)
        assert len(chain) == 4  # apex + 3 TLDs

    def test_chain_closes(self):
        records = records_for("com", "org", "world")
        chain = build_nsec_chain(records, ROOT_NAME)
        assert verify_nsec_chain(records + chain, ROOT_NAME) == []

    def test_canonical_order_links(self):
        records = records_for("org", "com")
        chain = build_nsec_chain(records, ROOT_NAME)
        by_owner = {r.name: r.rdata for r in chain}
        apex_nsec = by_owner[ROOT_NAME]
        assert isinstance(apex_nsec, NSEC)
        # Canonically, com < org; apex points at com.
        assert apex_nsec.next_name == Name.from_text("com.")

    def test_last_wraps_to_apex(self):
        records = records_for("com", "org")
        chain = build_nsec_chain(records, ROOT_NAME)
        by_owner = {r.name: r.rdata for r in chain}
        assert by_owner[Name.from_text("org.")].next_name == ROOT_NAME

    def test_type_bitmap_includes_present_types(self):
        records = records_for("com")
        chain = build_nsec_chain(records, ROOT_NAME)
        apex = next(r.rdata for r in chain if r.name == ROOT_NAME)
        assert int(RRType.SOA) in apex.types
        assert int(RRType.NSEC) in apex.types
        assert int(RRType.RRSIG) in apex.types


class TestVerifyChain:
    def test_detects_broken_link(self):
        records = records_for("com", "org")
        chain = build_nsec_chain(records, ROOT_NAME)
        # Corrupt one link.
        broken = []
        for record in chain:
            if record.name == ROOT_NAME:
                rdata = record.rdata
                broken.append(
                    ResourceRecord(
                        record.name, record.rrtype, record.rrclass, record.ttl,
                        NSEC(Name.from_text("zzz."), rdata.types),
                    )
                )
            else:
                broken.append(record)
        problems = verify_nsec_chain(records + broken, ROOT_NAME)
        assert problems

    def test_detects_missing_chain(self):
        assert verify_nsec_chain(records_for("com"), ROOT_NAME)
