"""RRSIG signing and full-zone validation, including the Table 2 error
taxonomy (bogus / not-incepted / expired)."""

import pytest

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name, ROOT_NAME
from repro.dns.rdata import NS, RRSIG, SOA
from repro.dns.records import ResourceRecord, RRset
from repro.dnssec.keys import generate_keypair, verify_bytes
from repro.dnssec.sign import sign_rrset, sign_zone_records
from repro.dnssec.validate import ValidationError, validate_rrset, validate_zone

INCEPTION = 1_700_000_000
EXPIRATION = INCEPTION + 13 * 86400
GOOD_TIME = INCEPTION + 86400


@pytest.fixture(scope="module")
def ksk():
    return generate_keypair(b"test-ksk", is_ksk=True)


@pytest.fixture(scope="module")
def zsk():
    return generate_keypair(b"test-zsk", is_ksk=False)


def apex_ns_rrset() -> RRset:
    return RRset(
        [
            ResourceRecord(
                ROOT_NAME, RRType.NS, RRClass.IN, 518400,
                NS(Name.from_text(f"{l}.root-servers.net.")),
            )
            for l in "ab"
        ]
    )


class TestKeys:
    def test_keypair_deterministic(self):
        a = generate_keypair(b"seed", is_ksk=False)
        b = generate_keypair(b"seed", is_ksk=False)
        assert a.dnskey == b.dnskey

    def test_ksk_has_sep_flag(self, ksk, zsk):
        assert ksk.dnskey.is_sep()
        assert not zsk.dnskey.is_sep()

    def test_sign_verify_roundtrip(self, zsk):
        sig = zsk.sign_bytes(b"hello")
        assert verify_bytes(zsk.dnskey, b"hello", sig)
        assert not verify_bytes(zsk.dnskey, b"hello!", sig)


class TestSignRrset:
    def test_signature_record_shape(self, zsk):
        rrset = apex_ns_rrset()
        sig = sign_rrset(rrset, zsk, ROOT_NAME, INCEPTION, EXPIRATION)
        assert sig.rrtype == RRType.RRSIG
        rdata = sig.rdata
        assert isinstance(rdata, RRSIG)
        assert rdata.type_covered == int(RRType.NS)
        assert rdata.key_tag == zsk.key_tag
        assert rdata.labels == 0  # root owner

    def test_invalid_window_rejected(self, zsk):
        with pytest.raises(ValueError):
            sign_rrset(apex_ns_rrset(), zsk, ROOT_NAME, EXPIRATION, INCEPTION)

    def test_validates(self, zsk):
        rrset = apex_ns_rrset()
        sig = sign_rrset(rrset, zsk, ROOT_NAME, INCEPTION, EXPIRATION)
        keys = {zsk.key_tag: zsk.dnskey}
        assert validate_rrset(rrset, [sig], keys, GOOD_TIME) == []

    def test_rdata_order_does_not_matter(self, zsk):
        forward = apex_ns_rrset()
        backward = RRset(list(reversed(forward.records)))
        sig_f = sign_rrset(forward, zsk, ROOT_NAME, INCEPTION, EXPIRATION)
        sig_b = sign_rrset(backward, zsk, ROOT_NAME, INCEPTION, EXPIRATION)
        assert sig_f.rdata.signature == sig_b.rdata.signature


class TestValidateRrset:
    def _signed(self, zsk):
        rrset = apex_ns_rrset()
        sig = sign_rrset(rrset, zsk, ROOT_NAME, INCEPTION, EXPIRATION)
        keys = {zsk.key_tag: zsk.dnskey}
        return rrset, sig, keys

    def test_not_incepted(self, zsk):
        rrset, sig, keys = self._signed(zsk)
        issues = validate_rrset(rrset, [sig], keys, INCEPTION - 10)
        assert issues[0].error is ValidationError.SIG_NOT_INCEPTED

    def test_expired(self, zsk):
        rrset, sig, keys = self._signed(zsk)
        issues = validate_rrset(rrset, [sig], keys, EXPIRATION + 10)
        assert issues[0].error is ValidationError.SIG_EXPIRED

    def test_bogus_after_content_change(self, zsk):
        rrset, sig, keys = self._signed(zsk)
        tampered = RRset(
            [rrset.records[0]]
            + [
                ResourceRecord(
                    ROOT_NAME, RRType.NS, RRClass.IN, 518400,
                    NS(Name.from_text("evil.example.")),
                )
            ]
        )
        issues = validate_rrset(tampered, [sig], keys, GOOD_TIME)
        assert issues[0].error is ValidationError.BOGUS_SIGNATURE

    def test_bogus_after_signature_bitflip(self, zsk):
        rrset, sig, keys = self._signed(zsk)
        rdata = sig.rdata
        flipped = RRSIG(
            rdata.type_covered, rdata.algorithm, rdata.labels,
            rdata.original_ttl, rdata.expiration, rdata.inception,
            rdata.key_tag, rdata.signer,
            bytes([rdata.signature[0] ^ 0x01]) + rdata.signature[1:],
        )
        bad_sig = ResourceRecord(sig.name, sig.rrtype, sig.rrclass, sig.ttl, flipped)
        issues = validate_rrset(rrset, [bad_sig], keys, GOOD_TIME)
        assert issues[0].error is ValidationError.BOGUS_SIGNATURE

    def test_missing_rrsig(self, zsk):
        rrset, _sig, keys = self._signed(zsk)
        issues = validate_rrset(rrset, [], keys, GOOD_TIME)
        assert issues[0].error is ValidationError.NO_RRSIG

    def test_unknown_key_tag(self, zsk, ksk):
        rrset, sig, _keys = self._signed(zsk)
        issues = validate_rrset(rrset, [sig], {ksk.key_tag: ksk.dnskey}, GOOD_TIME)
        assert issues[0].error is ValidationError.UNKNOWN_KEY_TAG

    def test_any_valid_signature_wins(self, zsk, ksk):
        rrset = apex_ns_rrset()
        good = sign_rrset(rrset, zsk, ROOT_NAME, INCEPTION, EXPIRATION)
        expired = sign_rrset(rrset, ksk, ROOT_NAME, INCEPTION - 10_000, INCEPTION - 1)
        keys = {zsk.key_tag: zsk.dnskey, ksk.key_tag: ksk.dnskey}
        assert validate_rrset(rrset, [expired, good], keys, GOOD_TIME) == []


class TestValidateZone:
    def _zone_records(self, zsk, ksk):
        soa = ResourceRecord(
            ROOT_NAME, RRType.SOA, RRClass.IN, 86400,
            SOA(Name.from_text("m."), Name.from_text("r."), 1, 2, 3, 4, 5),
        )
        dnskeys = [
            ResourceRecord(ROOT_NAME, RRType.DNSKEY, RRClass.IN, 172800, ksk.dnskey),
            ResourceRecord(ROOT_NAME, RRType.DNSKEY, RRClass.IN, 172800, zsk.dnskey),
        ]
        delegation = ResourceRecord(
            Name.from_text("world."), RRType.NS, RRClass.IN, 172800,
            NS(Name.from_text("ns1.nic.world.")),
        )
        return [soa] + dnskeys + [delegation]

    def test_signed_zone_validates(self, zsk, ksk):
        records = sign_zone_records(
            self._zone_records(zsk, ksk), zsk, ksk, ROOT_NAME, INCEPTION, EXPIRATION
        )
        report = validate_zone(records, ROOT_NAME, GOOD_TIME, check_zonemd=False)
        assert report.valid
        assert report.rrsets_checked >= 2

    def test_delegations_unsigned_and_accepted(self, zsk, ksk):
        records = sign_zone_records(
            self._zone_records(zsk, ksk), zsk, ksk, ROOT_NAME, INCEPTION, EXPIRATION
        )
        covered = {
            r.rdata.type_covered for r in records if r.rrtype == RRType.RRSIG
        }
        assert int(RRType.NS) not in covered  # only the delegation NS exists
        report = validate_zone(records, ROOT_NAME, GOOD_TIME, check_zonemd=False)
        assert report.valid

    def test_dnskey_signed_by_ksk(self, zsk, ksk):
        records = sign_zone_records(
            self._zone_records(zsk, ksk), zsk, ksk, ROOT_NAME, INCEPTION, EXPIRATION
        )
        dnskey_sigs = [
            r.rdata for r in records
            if r.rrtype == RRType.RRSIG
            and r.rdata.type_covered == int(RRType.DNSKEY)
        ]
        assert len(dnskey_sigs) == 1
        assert dnskey_sigs[0].key_tag == ksk.key_tag

    def test_missing_dnskey_reported(self, zsk, ksk):
        records = [
            r
            for r in sign_zone_records(
                self._zone_records(zsk, ksk), zsk, ksk, ROOT_NAME, INCEPTION, EXPIRATION
            )
            if r.rrtype != RRType.DNSKEY
        ]
        report = validate_zone(records, ROOT_NAME, GOOD_TIME, check_zonemd=False)
        assert not report.valid
        assert report.issues[0].error is ValidationError.NO_DNSKEY
