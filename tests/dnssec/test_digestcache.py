"""The content-keyed validation cache replays ``validate_zone`` exactly.

The cache must be a pure memoisation: for any zone content and any
validation time, :meth:`ZoneAnalysis.report_at` produces the same report
``validate_zone`` computes from scratch — including issue order, details
and counters — while running the signature cryptography only once per
distinct content.
"""

import pytest

from repro.dns.name import ROOT_NAME
from repro.dnssec.digestcache import (
    ZoneValidationCache,
    records_fingerprint,
    shared_cache,
    zone_fingerprint,
)
from repro.dnssec.validate import validate_zone
from repro.dnssec.zonemd import verify_zonemd
from repro.faults.bitflip import BitflipEvent, flip_bit_in_zone
from repro.util.timeutil import parse_ts
from repro.zone.distribution import ZoneDistributor
from repro.zone.rootzone import RootZoneBuilder
from repro.zone.zone import Zone

TS = parse_ts("2023-12-10T12:00:00")


@pytest.fixture(scope="module")
def zone() -> Zone:
    return ZoneDistributor(RootZoneBuilder(seed=77)).zone_at_site("cache-test", TS)


@pytest.fixture(scope="module")
def flipped(zone) -> Zone:
    event = BitflipEvent(vp_id=0, start_ts=TS - 1, end_ts=TS + 1)
    corrupted, _report = flip_bit_in_zone(zone, event, TS)
    return corrupted


def assert_same_report(cached, fresh):
    assert cached.validated_at == fresh.validated_at
    assert cached.rrsets_checked == fresh.rrsets_checked
    assert cached.signatures_checked == fresh.signatures_checked
    assert cached.valid == fresh.valid
    assert [
        (i.error, i.name, i.rrtype, i.detail) for i in cached.issues
    ] == [(i.error, i.name, i.rrtype, i.detail) for i in fresh.issues]


class TestFingerprint:
    def test_same_content_same_fingerprint(self, zone):
        assert zone_fingerprint(zone) == zone_fingerprint(zone.copy())

    def test_different_content_different_fingerprint(self, zone, flipped):
        assert zone_fingerprint(zone) != zone_fingerprint(flipped)

    def test_replace_record_invalidates_memo(self, zone):
        copy = zone.copy()
        before = zone_fingerprint(copy)
        event = BitflipEvent(vp_id=1, start_ts=TS - 1, end_ts=TS + 1)
        corrupted, report = flip_bit_in_zone(copy, event, TS)
        # flip_bit_in_zone works on its own copy; mutate ours directly.
        copy.replace_record(report.record_index, corrupted.records[report.record_index])
        assert zone_fingerprint(copy) != before
        assert zone_fingerprint(copy) == zone_fingerprint(corrupted)

    def test_records_fingerprint_is_order_sensitive(self, zone):
        records = list(zone.records)
        reordered = [records[1], records[0]] + records[2:]
        assert records_fingerprint(records) != records_fingerprint(reordered)


class TestReportReplay:
    @pytest.mark.parametrize("check_zonemd", [True, False])
    def test_matches_validate_zone_across_times(self, zone, check_zonemd):
        cache = ZoneValidationCache()
        analysis = cache.analyse_zone(zone, ROOT_NAME)
        max_inception, min_expiration = analysis.rrsig_envelope
        assert 0 < max_inception < min_expiration
        times = [
            max_inception - 86400,  # before inception: temporal errors
            (max_inception + min_expiration) // 2,  # in-window: valid
            min_expiration + 86400,  # expired: temporal errors
        ]
        for now in times:
            cached = analysis.report_at(now, check_zonemd=check_zonemd)
            fresh = validate_zone(
                zone.records, ROOT_NAME, now=now, check_zonemd=check_zonemd
            )
            assert_same_report(cached, fresh)

    def test_matches_validate_zone_on_corrupted_zone(self, flipped):
        cache = ZoneValidationCache()
        analysis = cache.analyse_zone(flipped, ROOT_NAME)
        midpoint = sum(analysis.rrsig_envelope) // 2
        cached = analysis.report_at(midpoint, check_zonemd=True)
        fresh = validate_zone(flipped.records, ROOT_NAME, now=midpoint)
        assert not cached.valid
        assert_same_report(cached, fresh)

    def test_zonemd_outcome_is_cached_verbatim(self, zone, flipped):
        cache = ZoneValidationCache()
        for z in (zone, flipped):
            assert cache.analyse_zone(z, ROOT_NAME).zonemd == verify_zonemd(
                z.records, ROOT_NAME
            )


class TestCacheBehaviour:
    def test_equal_content_hits_once_analysed(self, zone):
        cache = ZoneValidationCache()
        first = cache.analyse_zone(zone, ROOT_NAME)
        second = cache.analyse_zone(zone.copy(), ROOT_NAME)
        assert first is second
        assert cache.misses == 1
        assert cache.hits == 1
        assert len(cache) == 1

    def test_distinct_content_analysed_separately(self, zone, flipped):
        cache = ZoneValidationCache()
        a = cache.analyse_zone(zone, ROOT_NAME)
        b = cache.analyse_zone(flipped, ROOT_NAME)
        assert a is not b
        assert cache.misses == 2

    def test_shared_cache_is_a_singleton(self):
        assert shared_cache() is shared_cache()
