"""Path-share analysis and dataset export/import."""

import json

import pytest

from repro.analysis.paths import PEER_PATH, PathAnalysis
from repro.data import DatasetVersionError, TransferRecord
from repro.geo.continents import Continent
from repro.vantage.export import export_dataset, load_dataset


class TestPathAnalysis:
    @pytest.fixture(scope="class")
    def paths(self, full_window_study):
        return PathAnalysis(full_window_study.collector, full_window_study.vps)

    def test_shares_sum_to_one(self, paths):
        breakdown = paths.as_breakdown(continent=Continent.EUROPE, family=4)
        assert breakdown
        assert sum(s.share for s in breakdown) == pytest.approx(1.0)

    def test_labels(self, paths):
        breakdown = paths.as_breakdown()
        labels = {s.label for s in breakdown}
        assert any(l.startswith("AS") for l in labels)

    def test_open_v6_transit_more_frequent_on_v6(self, paths):
        """The paper's §6 observation: the AS6939-like network carries a
        larger share of IPv6 than IPv4 paths."""
        for region in (Continent.SOUTH_AMERICA, Continent.AFRICA):
            v4_share, v6_share = paths.family_share_contrast(6939, region)
            assert v6_share > v4_share, region

    def test_peer_paths_bucketed(self, paths):
        breakdown = paths.as_breakdown(continent=Continent.EUROPE)
        peer = [s for s in breakdown if s.asn == PEER_PATH]
        if peer:
            assert peer[0].label == "peer/local"
            assert peer[0].mean_rtt_ms > 0

    def test_empty_cell_empty_breakdown(self, paths):
        # Letter "a" has no sites in Africa — but paths exist anyway
        # (transit out of continent); use an impossible filter instead.
        assert paths.share_of(999999, Continent.EUROPE) == 0.0


class TestExport:
    @pytest.fixture(scope="class")
    def roundtrip(self, full_window_study, tmp_path_factory):
        directory = tmp_path_factory.mktemp("dataset")
        export_dataset(
            full_window_study.collector, str(directory), full_window_study.config
        )
        return full_window_study.collector, load_dataset(str(directory))

    def test_manifest_and_files(self, full_window_study, tmp_path):
        path = export_dataset(full_window_study.collector, str(tmp_path / "ds"))
        for name in (
            "MANIFEST.json",
            "identities.json",
            "transfers.jsonl",
            "tables/probes/rtt.bin",
            "tables/traceroutes/hop.bin",
            "tables/stability/changes.bin",
        ):
            assert (path / name).exists(), name

    def test_probe_columns_roundtrip(self, roundtrip):
        collector, loaded = roundtrip
        original = collector.probe_columns()
        reloaded = loaded.probe_columns()
        assert set(original) == set(reloaded)
        assert (original["rtt"] == reloaded["rtt"]).all()
        assert (original["transit"] == reloaded["transit"]).all()

    def test_stability_roundtrip(self, roundtrip):
        collector, loaded = roundtrip
        assert loaded.change_counts() == collector.change_counts()

    def test_identities_roundtrip(self, roundtrip):
        collector, loaded = roundtrip
        assert loaded.identities == collector.identities

    def test_summary_roundtrip(self, roundtrip):
        collector, loaded = roundtrip
        assert loaded.summary() == collector.summary()

    def test_transfers_full_fidelity(self, roundtrip):
        collector, loaded = roundtrip
        assert len(loaded.transfers) == len(collector.transfers)
        for obs, record in zip(collector.transfers, loaded.transfers):
            assert isinstance(record, TransferRecord)
            assert record.vp_id == obs.vp_id
            assert record.serial == obs.serial
            assert record.fault == obs.fault
            assert record.address == obs.address
            assert len(record.fingerprint) == 64  # sha-256 hex
            assert record.rrsig_envelope[0] <= record.rrsig_envelope[1]
            # The verdict matches re-deriving the errors at observation time.
            assert record.valid == (not record.errors_at(record.observed_ts))

    def test_analyses_run_on_loaded_dataset(self, roundtrip, full_window_study):
        from repro.analysis.coverage import CoverageAnalysis
        from repro.analysis.stability import StabilityAnalysis

        _collector, loaded = roundtrip
        stability = StabilityAnalysis(loaded)
        assert stability.median_changes("g", 4) > 0
        coverage = CoverageAnalysis(full_window_study.catalog, loaded.identities)
        total, _unmapped = coverage.observed_identifier_count()
        assert total > 0

    def test_version_check(self, tmp_path):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "MANIFEST.json").write_text(json.dumps({"schema_version": 99}))
        with pytest.raises(DatasetVersionError):
            load_dataset(str(bad))
