"""RSSAC047-style service metrics."""

import pytest

from repro.analysis.rssac import RESPONSE_LATENCY_THRESHOLD_MS, RssacMetrics
from repro.util.timeutil import DAY, parse_ts


@pytest.fixture(scope="module")
def metrics(full_window_study):
    return RssacMetrics(
        full_window_study.collector, full_window_study.distributor
    )


class TestResponseLatency:
    def test_all_letters_measured(self, metrics):
        latencies = metrics.all_response_latencies()
        assert len(latencies) == 13

    def test_threshold_mostly_met(self, metrics):
        # The RSS overwhelmingly answers within 250 ms.
        for latency in metrics.all_response_latencies():
            assert latency.within_threshold > 0.7, latency.letter

    def test_percentiles_ordered(self, metrics):
        for latency in metrics.all_response_latencies():
            assert latency.p50_ms <= latency.p95_ms

    def test_large_deployment_lower_median(self, metrics):
        # f.root (345 sites) should beat b.root (6 sites) on median RTT.
        f = metrics.response_latency("f")
        b = metrics.response_latency("b")
        assert f is not None and b is not None
        assert f.p50_ms < b.p50_ms

    def test_unknown_letter_none(self, metrics):
        assert metrics.response_latency("z") is None


class TestPublicationLatency:
    def test_healthy_sites_within_lag(self, metrics, full_window_study):
        sites = [s.key for s in full_window_study.catalog.of_letter("k")[:5]]
        at_ts = parse_ts("2023-09-01T12:00:00")
        lags = metrics.publication_latency(sites, at_ts)
        for site_key, lag in lags.items():
            assert lag is not None
            assert 0 <= lag <= DAY

    def test_frozen_site_reported_none(self, metrics, full_window_study):
        distributor = full_window_study.distributor
        site_key = "test-frozen-site"
        distributor.freeze_site(site_key, parse_ts("2023-09-01"))
        try:
            lags = metrics.publication_latency([site_key], parse_ts("2023-09-10"))
            assert lags[site_key] is None
        finally:
            distributor.unfreeze_site(site_key)

    def test_requires_distributor(self, full_window_study):
        bare = RssacMetrics(full_window_study.collector, distributor=None)
        with pytest.raises(RuntimeError):
            bare.publication_latency([], 0)


class TestSerialCurrency:
    def test_mostly_current(self, metrics, full_window_study):
        fraction, stale = metrics.serial_currency(
            full_window_study.collector.transfers
        )
        assert fraction > 0.9
        # The stale d.root site windows produce the stale observations.
        assert all(obs.fault == "stale" for obs in stale if obs.fault)

    def test_stale_site_transfers_flagged(self, metrics, full_window_study):
        stale_transfers = [
            t for t in full_window_study.collector.transfers if t.fault == "stale"
        ]
        if not stale_transfers:
            pytest.skip("no stale transfers in this run")
        fraction, stale = metrics.serial_currency(stale_transfers, allowed_lag=2)
        assert fraction < 1.0
        assert stale

    def test_empty_transfers_rejected(self, metrics):
        with pytest.raises(ValueError):
            metrics.serial_currency([])
