"""Fold invariance of the incremental analyses.

For every analysis with an ``update(chunk)`` form, folding over *any*
partition of the campaign into round-range chunks must give exactly the
batch result over the full dataset.  The campaign streams once into
single-round chunks; hypothesis then draws arbitrary chunk boundaries
and merges consecutive single-round chunks into coarser ones, so each
example exercises a different chunking of the same five rounds without
re-simulating.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.incremental import (
    create_incremental,
    incremental_names,
    run_incremental,
)
from repro.analysis.rssac import RssacMetrics
from repro.core.pipeline import StudyPipeline
from repro.core.streaming import run_streaming_campaign
from repro.data import CheckpointReader
from repro.rss.sites import build_site_catalog
from repro.util.rng import RngFactory

from tests.streamutil import TINY_STREAM_SEED, tiny_stream_config

N_ROUNDS = 5


@pytest.fixture(scope="module")
def round_chunks(tmp_path_factory):
    """The tiny campaign as five single-round chunk datasets."""
    ckpt = tmp_path_factory.mktemp("rounds") / "ckpt"
    run = run_streaming_campaign(
        tiny_stream_config(), ckpt, checkpoint_every=1
    )
    assert run.complete and run.chunks == N_ROUNDS
    return CheckpointReader(ckpt).chunk_datasets()


@pytest.fixture(scope="module")
def batch_dataset():
    return StudyPipeline(tiny_stream_config()).run().dataset


@pytest.fixture(scope="module")
def catalog():
    return build_site_catalog(RngFactory(TINY_STREAM_SEED))


class _MergedChunk:
    """Consecutive single-round chunks re-merged into one coarser chunk.

    Chunk deltas compose by concatenation (row tables, stability delta
    rows) and by summation (summaries, identity-count deltas), so any
    partition of the round range is expressible this way.
    """

    class _Table:
        def __init__(self, columns):
            self._columns = columns

        def __len__(self):
            return 0 if not self._columns else len(next(iter(self._columns.values())))

        def columns(self):
            return list(self._columns)

        def column(self, name):
            return self._columns[name]

    def __init__(self, chunks):
        self._chunks = chunks
        self.addresses = chunks[0].addresses
        self.identities = {}
        for chunk in chunks:
            for letter, bucket in chunk.identities.items():
                target = self.identities.setdefault(letter, {})
                for identity, count in bucket.items():
                    target[identity] = target.get(identity, 0) + count

    def summary(self):
        merged = {}
        for chunk in self._chunks:
            for key, value in chunk.summary().items():
                merged[key] = merged.get(key, 0) + int(value)
        return merged

    def table(self, name):
        columns = {}
        for spec_source in self._chunks[:1]:
            names = spec_source.table(name).columns()
        for column in names:
            columns[column] = np.concatenate(
                [chunk.table(name).column(column) for chunk in self._chunks]
            )
        return self._Table(columns)

    def probe_columns(self):
        return {
            name: self.table("probes").column(name)
            for name in ("addr", "rtt")
        }


def partitions():
    """Cut-point sets over the 5 round boundaries (1..4)."""
    return st.sets(st.integers(1, N_ROUNDS - 1), max_size=N_ROUNDS - 1)


def merge_by_cuts(chunks, cuts):
    bounds = [0] + sorted(cuts) + [N_ROUNDS]
    return [
        _MergedChunk(chunks[lo:hi])
        for lo, hi in zip(bounds, bounds[1:])
    ]


def test_registry_lists_all_incremental_forms():
    assert incremental_names() == ["counts", "coverage", "rssac", "stability"]
    with pytest.raises(KeyError, match="no incremental analysis"):
        create_incremental("nope")


@settings(max_examples=25, deadline=None)
@given(cuts=partitions())
def test_counts_fold_equals_batch(cuts, round_chunks, batch_dataset):
    folded = run_incremental("counts", merge_by_cuts(round_chunks, cuts))
    assert folded == batch_dataset.summary()


@settings(max_examples=25, deadline=None)
@given(cuts=partitions())
def test_coverage_fold_equals_batch(cuts, round_chunks, batch_dataset, catalog):
    from repro.analysis.coverage import CoverageAnalysis

    folded = run_incremental(
        "coverage", merge_by_cuts(round_chunks, cuts), catalog=catalog
    )
    batch = CoverageAnalysis(catalog, batch_dataset.identities)
    assert folded.observed_identities == batch.observed_identities
    assert folded.covered_sites == batch.covered_sites
    assert folded.unmapped == batch.unmapped
    assert folded.observed_identifier_count() == batch.observed_identifier_count()


@settings(max_examples=25, deadline=None)
@given(cuts=partitions())
def test_stability_fold_equals_batch(cuts, round_chunks, batch_dataset):
    folded = run_incremental(
        "stability", merge_by_cuts(round_chunks, cuts)
    )
    assert folded.dataset.change_counts() == batch_dataset.change_counts()


@settings(max_examples=25, deadline=None)
@given(cuts=partitions())
def test_rssac_fold_equals_batch(cuts, round_chunks, batch_dataset):
    folded = run_incremental("rssac", merge_by_cuts(round_chunks, cuts))
    batch = RssacMetrics(batch_dataset)
    assert folded.all_response_latencies() == batch.all_response_latencies()
