"""Analysis pipeline over the shared campaign fixtures."""

import pytest

from repro.analysis import (
    ColocationAnalysis,
    CoverageAnalysis,
    DistanceAnalysis,
    RttAnalysis,
    StabilityAnalysis,
    ZonemdAudit,
)
from repro.analysis import report
from repro.geo.continents import Continent
from repro.rss.operators import root_server


@pytest.fixture(scope="module")
def coverage(full_window_study):
    return CoverageAnalysis(
        full_window_study.catalog, full_window_study.collector.identities
    )


@pytest.fixture(scope="module")
def stability(full_window_study):
    return StabilityAnalysis(full_window_study.collector)


@pytest.fixture(scope="module")
def colocation(full_window_study):
    return ColocationAnalysis(full_window_study.collector, full_window_study.vps)


@pytest.fixture(scope="module")
def distance(full_window_study):
    return DistanceAnalysis(full_window_study.collector)


@pytest.fixture(scope="module")
def rtt(full_window_study):
    return RttAnalysis(full_window_study.collector, full_window_study.vps)


@pytest.fixture(scope="module")
def audit_results(full_window_study):
    audit = ZonemdAudit(full_window_study.collector.transfers)
    return audit, audit.validate_transfers()


class TestCoverage:
    def test_all_b_sites_covered(self, coverage):
        rows = {r.scope: r for r in coverage.worldwide()["b"]}
        # 6 global sites, no locals: everyone reaches them (paper: 100%).
        assert rows["global"].sites == 6
        assert rows["global"].covered >= 5

    def test_local_coverage_lower_than_global(self, coverage):
        for letter in ("d", "e", "f"):
            rows = {r.scope: r for r in coverage.worldwide()[letter]}
            assert rows["global"].pct > rows["local"].pct, letter

    def test_unmapped_identifiers_exist(self, coverage):
        total, unmapped = coverage.observed_identifier_count()
        assert total > 0
        assert 0 < unmapped < total * 0.3  # paper: 135 of 1,604

    def test_per_region_consistent_with_worldwide(self, coverage):
        worldwide = {
            letter: {r.scope: r for r in rows}
            for letter, rows in coverage.worldwide().items()
        }
        regional = coverage.per_region()
        for letter in "abcdefghijklm":
            total_sites = sum(
                {r.scope: r for r in regional[c][letter]}["total"].sites
                for c in Continent
            )
            assert total_sites == worldwide[letter]["total"].sites

    def test_site_map_flags(self, coverage, full_window_study):
        site_map = coverage.site_map("f")
        assert len(site_map) == len(full_window_study.catalog.of_letter("f"))
        assert any(observed for _site, observed in site_map)
        assert any(not observed for _site, observed in site_map)

    def test_render_tables(self, coverage):
        t1 = report.render_table1(coverage)
        assert "Table 1" in t1 and t1.count("\n") >= 14
        t4 = report.render_table4(coverage)
        assert "Europe" in t4 and "Africa" in t4


class TestStability:
    def test_g_churns_more_than_b(self, stability):
        b = stability.median_changes("b", 4, "new")
        g = stability.median_changes("g", 4)
        assert g > b

    def test_g_v6_exceeds_v4(self, stability):
        assert stability.median_changes("g", 6) > stability.median_changes("g", 4)

    def test_b_families_similar(self, stability):
        v4 = stability.median_changes("b", 4, "new")
        v6 = stability.median_changes("b", 6, "new")
        assert abs(v4 - v6) <= max(3.0, 0.5 * max(v4, v6))

    def test_heavy_tail_exists(self, stability):
        # A stable deployment's distribution still has a long tail
        # (paper Fig. 3: a few VPs see orders of magnitude more changes).
        series = next(
            s for s in stability.series_for("b") if s.address.generation == "new"
        )
        assert max(series.changes_per_vp) > 4 * max(1.0, series.median_changes())

    def test_v6_excess_letters_match_paper(self, stability):
        # The paper singles out c.root and h.root (besides g.root) as
        # showing clearly more IPv6 churn.
        excess = set(stability.letters_with_v6_excess())
        assert {"c", "h"} <= excess

    def test_ecdf_render(self, stability):
        out = report.render_figure3(stability)
        assert "b.root" in out and "g.root" in out


class TestColocation:
    def test_colocation_prevalent(self, colocation):
        # Paper §5: ~70% of VPs observe >= 2 co-located letters.
        assert colocation.fraction_with_colocation() > 0.5

    def test_max_colocation_bounded(self, colocation):
        assert 2 <= colocation.max_observed_colocation() <= 13

    def test_histogram_totals_match_views(self, colocation):
        views = [v for v in colocation.views() if v.family == 4]
        total = sum(
            sum(colocation.histogram(c, 4)) for c in Continent
        )
        assert total == len(views)

    def test_averages_modest(self, colocation):
        # Paper Fig. 4 averages are around 0.7 - 1.3.
        avg = colocation.average(Continent.EUROPE, 4)
        assert avg is not None and 0.2 < avg < 3.5

    def test_render(self, colocation):
        out = report.render_figure4(colocation)
        assert "Reduced redundancy" in out


class TestDistance:
    def test_most_requests_near_optimal(self, distance):
        b = root_server("b")
        frac = distance.fraction_optimal(b.ipv4)
        assert frac > 0.6  # paper: 78.2% for b.root v4

    def test_grid_percentages_sum(self, distance):
        b = root_server("b")
        grid = distance.grid(b.ipv4)
        assert sum(grid.cells.values()) == pytest.approx(100.0, abs=0.5)

    def test_m_root_similar_between_families(self, distance):
        m = root_server("m")
        v4 = distance.fraction_optimal(m.ipv4)
        v6 = distance.fraction_optimal(m.ipv6)
        assert abs(v4 - v6) < 0.25

    def test_client_extra_distance(self, distance):
        b = root_server("b")
        frac = distance.fraction_clients_under(b.ipv4, km=1000.0)
        assert 0.3 < frac <= 1.0

    def test_render(self, distance):
        b = root_server("b")
        out = report.render_figure5(distance, [b.ipv4, b.ipv6])
        assert "Figure 5" in out


class TestRtt:
    def test_summaries_exist_for_populated_regions(self, rtt):
        for letter in ("a", "k"):
            sa = root_server(letter)
            summary = rtt.summary(sa.ipv4, Continent.EUROPE)
            assert summary is not None and summary.count > 0

    def test_europe_rtt_lower_than_africa_for_k(self, rtt):
        k = root_server("k")
        eu = rtt.summary(k.ipv4, Continent.EUROPE)
        af = rtt.summary(k.ipv4, Continent.AFRICA)
        assert eu is not None and af is not None
        assert eu.p50 < af.p50

    def test_family_ratio_defined(self, rtt):
        ratio = rtt.family_ratio("i", Continent.NORTH_AMERICA)
        assert ratio is not None and ratio > 0

    def test_violin_bins_normalised(self, rtt):
        k = root_server("k")
        _edges, densities = rtt.violin_bins(k.ipv4, Continent.EUROPE)
        assert densities.sum() == pytest.approx(1.0)

    def test_render(self, rtt, full_window_study):
        addresses = [sa.address for sa in full_window_study.collector.addresses]
        out = report.render_figure6(
            rtt, [Continent.EUROPE], addresses, {}
        )
        assert "Europe" in out


class TestAudit:
    def test_findings_cover_fault_classes(self, audit_results):
        _audit, (findings, valid) = audit_results
        assert valid > 0
        reasons = {f.reason for f in findings}
        assert "Bogus Signature" in reasons  # bitflips
        faults = {f.fault for f in findings}
        assert "bitflip" in faults

    def test_clock_skew_produces_temporal_errors(self, audit_results):
        _audit, (findings, _valid) = audit_results
        temporal = [
            f for f in findings
            if f.reason in ("Sig. not incepted", "Signature expired") and not f.fault
        ]
        assert temporal  # the two skewed VPs

    def test_stale_sites_produce_expired(self, audit_results):
        _audit, (findings, _valid) = audit_results
        stale = [f for f in findings if f.fault == "stale"]
        assert stale
        assert any(f.reason == "Signature expired" for f in stale)

    def test_bitflip_examples_and_diff(self, audit_results, full_window_study):
        audit, _results = audit_results
        examples = audit.bitflip_examples()
        assert examples
        obs, description = examples[0]
        assert description
        reference = full_window_study.distributor.zone_for_publication(
            *full_window_study.distributor.latest_publication(obs.true_ts)
        )
        if reference.serial == obs.serial:
            diff = audit.bitflip_diff(obs, reference)
            assert len(diff) == 1  # exactly one record differs (Fig. 10)

    def test_render_table2(self, audit_results):
        _audit, (findings, valid) = audit_results
        out = report.render_table2(findings, valid)
        assert "Table 2" in out


class TestSourceAudit:
    def test_rollout_schedule_visible(self, full_window_study):
        from repro.zone.sources import IanaSource
        from repro.util.timeutil import parse_ts

        source = IanaSource(full_window_study.distributor)
        downloads = []
        for day in ("2023-08-15", "2023-10-15", "2023-12-15"):
            downloads.append(source.download(parse_ts(day + "T12:00:00")))
        rows = ZonemdAudit.audit_downloads(downloads)
        from repro.dnssec.zonemd import ZonemdStatus

        assert rows[0].zonemd_status is ZonemdStatus.ABSENT
        assert rows[1].zonemd_status is ZonemdStatus.UNSUPPORTED_ALGORITHM
        assert rows[2].zonemd_status is ZonemdStatus.VALID
        assert all(r.rrsig_valid for r in rows)
        first = ZonemdAudit.first_validating_download(rows)
        assert first is rows[2]
        assert "Out-of-band" in report.render_source_audit(rows)
