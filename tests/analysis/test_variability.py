"""Subset-generalisation analysis (§8)."""

import pytest

from repro.analysis.variability import SubsetStats, VariabilityAnalysis
from repro.rss.operators import ROOT_LETTERS


@pytest.fixture(scope="module")
def analysis(full_window_study):
    return VariabilityAnalysis(
        full_window_study.collector, full_window_study.vps
    )


class TestSubsetStats:
    def test_full_stats(self, analysis):
        full = analysis.full_stats()
        assert full.letters == tuple(ROOT_LETTERS)
        assert full.median_changes_v4 > 0
        assert full.median_rtt_ms is not None

    def test_single_letter_matches_stability(self, analysis):
        g = analysis.subset_stats(["g"])
        assert g.median_changes_v4 == analysis.stability.median_changes("g", 4)

    def test_v6_excess_defined(self, analysis):
        stats = analysis.subset_stats(["g", "c", "h"])
        assert stats.v6_excess > 1.0  # the paper's v6-churn letters

    def test_invalid_subset_rejected(self, analysis):
        with pytest.raises(ValueError):
            analysis.subset_stats(["z"])


class TestSpread:
    def test_spread_deterministic(self, analysis):
        a = analysis.subset_spread(k=4, max_subsets=10)
        b = analysis.subset_spread(k=4, max_subsets=10)
        assert [s.letters for s in a[1]] == [s.letters for s in b[1]]

    def test_subset_count_bounded(self, analysis):
        _full, subsets = analysis.subset_spread(k=3, max_subsets=15)
        assert 0 < len(subsets) <= 15
        assert all(len(s.letters) == 3 for s in subsets)

    def test_relative_spread_brackets_one(self, analysis):
        full, subsets = analysis.subset_spread(k=4, max_subsets=20)
        lo, hi = VariabilityAnalysis.relative_spread(full, subsets, "changes_v4")
        assert lo <= 1.05 and hi >= 0.95
        assert lo <= hi

    def test_k_validation(self, analysis):
        with pytest.raises(ValueError):
            analysis.subset_spread(k=0)
        with pytest.raises(ValueError):
            analysis.subset_spread(k=14)

    def test_unknown_metric_rejected(self, analysis):
        full, subsets = analysis.subset_spread(k=2, max_subsets=5)
        with pytest.raises(ValueError):
            VariabilityAnalysis.relative_spread(full, subsets, "nope")
