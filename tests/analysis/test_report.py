"""The plain-text report renderers (every table/figure printer)."""

import pytest

from repro.analysis import (
    ClientBehaviorAnalysis,
    ColocationAnalysis,
    CoverageAnalysis,
    DistanceAnalysis,
    PathAnalysis,
    RttAnalysis,
    StabilityAnalysis,
)
from repro.analysis import report
from repro.analysis.zonemd_audit import AuditFinding
from repro.geo.continents import Continent
from repro.rss.operators import root_server


@pytest.fixture(scope="module")
def world(full_window_study):
    return full_window_study


class TestTableRenderers:
    def test_table1_has_13_letters(self, world):
        coverage = CoverageAnalysis(world.catalog, world.collector.identities)
        out = report.render_table1(coverage)
        for letter in "abcdefghijklm":
            assert f"\n{letter:>4}" in out or out.splitlines()[0], letter
        assert len(out.splitlines()) == 16  # title + header + rule + 13

    def test_table2_empty_findings(self):
        out = report.render_table2([], valid_count=100)
        assert "Table 2" in out
        assert "100" in out

    def test_table2_row_fields(self):
        finding = AuditFinding(
            reason="Bogus Signature",
            serials=(2023121000, 2023121001),
            first_obs=1702200000,
            last_obs=1702300000,
            observations=3,
            servers=("d.root",),
            vp_ids=(7,),
            fault="bitflip",
        )
        out = report.render_table2([finding], valid_count=5)
        assert "Bogus Signature" in out
        assert finding.n_soa == 2
        assert "d.root" in out

    def test_table4_every_region(self, world):
        coverage = CoverageAnalysis(world.catalog, world.collector.identities)
        out = report.render_table4(coverage)
        for continent in Continent:
            assert str(continent) in out


class TestFigureRenderers:
    def test_figure3(self, world):
        out = report.render_figure3(StabilityAnalysis(world.collector))
        assert "median=" in out
        assert "ccdf=" in out

    def test_figure4(self, world):
        out = report.render_figure4(
            ColocationAnalysis(world.collector, world.vps)
        )
        assert "co-located" in out
        assert "IPv4" in out and "IPv6" in out

    def test_figure5(self, world):
        b = root_server("b")
        out = report.render_figure5(DistanceAnalysis(world.collector), [b.ipv4])
        assert "routed to closest" in out

    def test_figure6(self, world):
        rtt = RttAnalysis(world.collector, world.vps)
        addresses = [sa.address for sa in world.collector.addresses[:6]]
        out = report.render_figure6(rtt, [Continent.EUROPE], addresses, {})
        assert "Europe" in out
        assert "p50" in out

    def test_figure8(self, rng_factory):
        from repro.passive.clients import ISP_PROFILE, build_client_population
        from repro.passive.isp import IspCapture
        from repro.util.timeutil import parse_ts

        clients = build_client_population(
            ISP_PROFILE, rng_factory.fork("report-test")
        )[:300]
        capture = IspCapture(clients, seed=3).capture(
            parse_ts("2024-02-05"), parse_ts("2024-02-08")
        )
        out = report.render_figure8(ClientBehaviorAnalysis(capture), family=6)
        assert "IPv6" in out

    def test_traffic_series(self):
        series = {
            "V4new": [(1700000000, 0.7), (1700086400, 0.75)],
            "V4old": [(1700000000, 0.3), (1700086400, 0.25)],
        }
        out = report.render_traffic_series("T", series)
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "V4new" in lines[1] and "V4old" in lines[1]
        assert len(lines) == 4

    def test_path_breakdown(self, world):
        paths = PathAnalysis(world.collector, world.vps)
        out = report.render_path_breakdown(paths, Continent.EUROPE, "k")
        assert "IPv4" in out and "IPv6" in out
        assert "share" in out
