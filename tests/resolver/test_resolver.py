"""The recursive resolver: priming, selection, caching, referrals."""

import pytest

from repro.dns.constants import RRType, Rcode
from repro.dns.name import Name
from repro.resolver.hints import fresh_hints, stale_hints
from repro.resolver.resolver import SimResolver
from repro.rss.operators import B_ROOT_CHANGE_TS, root_server
from repro.util.timeutil import DAY, parse_ts

AFTER_CHANGE = parse_ts("2023-12-10T12:00:00")
BEFORE_CHANGE = parse_ts("2023-11-01T12:00:00")


class TestPriming:
    def test_priming_learns_13_addresses(self, make_client):
        resolver = SimResolver(make_client(), fresh_hints())
        resolver.resolve(Name.from_text("com."), RRType.NS, AFTER_CHANGE)
        assert len(resolver.known_root_addresses()) == 13
        assert resolver.primings == 1

    def test_stale_hints_learn_new_address_via_priming(self, make_client):
        """The RFC 8109 mechanism: a device with pre-renumbering hints
        still ends up using the *new* b.root address, because priming
        reads the current glue from the zone."""
        resolver = SimResolver(make_client(client_id=2), stale_hints())
        resolver.resolve(Name.from_text("com."), RRType.NS, AFTER_CHANGE)
        b = root_server("b")
        assert resolver.uses_address(b.ipv4)
        assert not resolver.uses_address(b.old_ipv4)
        # ...but the hint query itself touched the old address (the
        # once-per-prime residual traffic the paper measures).
        assert b.old_ipv4 in stale_hints().all_addresses(4)

    def test_before_change_priming_learns_old_address(self, make_client):
        resolver = SimResolver(make_client(client_id=3), stale_hints())
        resolver.resolve(Name.from_text("com."), RRType.NS, BEFORE_CHANGE)
        b = root_server("b")
        assert resolver.uses_address(b.old_ipv4)

    def test_reprime_after_ns_ttl(self, make_client):
        resolver = SimResolver(make_client(client_id=4), fresh_hints())
        resolver.resolve(Name.from_text("com."), RRType.NS, AFTER_CHANGE)
        assert resolver.primings == 1
        # root NS TTL is 518400s (6 days): within it, no re-prime.
        resolver.resolve(Name.from_text("org."), RRType.NS, AFTER_CHANGE + DAY)
        assert resolver.primings == 1
        resolver.resolve(Name.from_text("net."), RRType.NS, AFTER_CHANGE + 7 * DAY)
        assert resolver.primings == 2


class TestResolution:
    def test_tld_ns_answer(self, make_client):
        resolver = SimResolver(make_client(client_id=5), fresh_hints())
        result = resolver.resolve(Name.from_text("world."), RRType.NS, AFTER_CHANGE)
        assert result.rcode == Rcode.NOERROR
        assert result.answers
        assert not result.from_cache

    def test_cache_hit_on_second_lookup(self, make_client):
        resolver = SimResolver(make_client(client_id=6), fresh_hints())
        first = resolver.resolve(Name.from_text("world."), RRType.NS, AFTER_CHANGE)
        sent = resolver.queries_sent
        second = resolver.resolve(Name.from_text("world."), RRType.NS, AFTER_CHANGE + 60)
        assert second.from_cache
        assert resolver.queries_sent == sent
        assert [r.rdata for r in second.answers] == [r.rdata for r in first.answers]

    def test_nxdomain_negative_cached(self, make_client):
        resolver = SimResolver(make_client(client_id=7), fresh_hints())
        qname = Name.from_text("doesnotexist.")
        first = resolver.resolve(qname, RRType.A, AFTER_CHANGE)
        assert first.rcode == Rcode.NXDOMAIN
        second = resolver.resolve(qname, RRType.A, AFTER_CHANGE + 60)
        assert second.rcode == Rcode.NXDOMAIN
        assert second.from_cache

    def test_names_under_tld_get_referral(self, make_client):
        resolver = SimResolver(make_client(client_id=8), fresh_hints())
        result = resolver.resolve(
            Name.from_text("www.example.com."), RRType.A, AFTER_CHANGE
        )
        assert result.is_referral
        assert any("nic.com" in t.to_text() for t in result.referral)

    def test_invalid_family_rejected(self, make_client):
        with pytest.raises(ValueError):
            SimResolver(make_client(), fresh_hints(), family=5)


class TestServerSelection:
    def test_rtts_accumulate(self, make_client):
        resolver = SimResolver(make_client(client_id=9), fresh_hints())
        for i, tld in enumerate(("com", "org", "net", "de", "uk", "fr", "jp")):
            resolver.resolve(Name.from_text(f"{tld}."), RRType.NS, AFTER_CHANGE + i)
        assert len(resolver.smoothed_rtts) >= 5

    def test_selection_converges_to_fast_servers(self, make_client):
        resolver = SimResolver(make_client(client_id=10), fresh_hints())
        # Warm up all estimates with many distinct lookups.
        tlds = list("abcdefghij")
        for i in range(120):
            resolver.resolve(
                Name.from_text(f"x{i}.not-a-tld-{i}."), RRType.A, AFTER_CHANGE + i
            )
        srtt = resolver.smoothed_rtts
        if len(srtt) < 13:
            pytest.skip("not all addresses probed in this run")
        best = min(srtt.values())
        # The most-queried address should be among the fastest; count
        # queries indirectly by picking the current best and asserting it
        # is near the observed minimum.
        chosen = resolver._pick_root_address()
        assert srtt[chosen] <= best * 2.0
