"""Resolver test fixtures: a network client wired to a small world."""

import pytest

from repro.netsim.attachment import Attachment
from repro.netsim.topology import NetworkFabric
from repro.netsim.transit import TRANSIT_CATALOG
from repro.geo.cities import city
from repro.resolver.netclient import RootNetworkClient
from repro.rss.operators import ROOT_SERVERS
from repro.rss.server import RootServerDeployment
from repro.zone.distribution import ZoneDistributor


@pytest.fixture(scope="package")
def resolver_world(site_catalog, zone_builder, rng_factory):
    fabric = NetworkFabric(site_catalog, rng_factory.fork("resolver-tests"))
    distributor = ZoneDistributor(zone_builder)
    deployments = {
        letter: RootServerDeployment(
            ROOT_SERVERS[letter], site_catalog.of_letter(letter), distributor
        )
        for letter in ROOT_SERVERS
    }
    selector = fabric.selector(seed=5, expected_rounds=100_000)
    return fabric, deployments, selector, distributor


@pytest.fixture()
def make_client(resolver_world):
    _fabric, deployments, selector, _distributor = resolver_world

    def factory(iata: str = "FRA", client_id: int = 1) -> RootNetworkClient:
        attachment = Attachment(
            asn=64900 + client_id,
            city=city(iata),
            transits_v4=(TRANSIT_CATALOG[2], TRANSIT_CATALOG[3]),
            transits_v6=(TRANSIT_CATALOG[2],),
        )
        return RootNetworkClient(
            attachment, selector, deployments, client_id=client_id
        )

    return factory
