"""The resolver cache: TTL semantics, negative caching, eviction."""

import pytest

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.dns.records import ResourceRecord
from repro.resolver.cache import DnsCache


def a_record(owner: str, address: str = "192.0.2.1", ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(
        Name.from_text(owner), RRType.A, RRClass.IN, ttl, A(address)
    )


class TestPositiveCaching:
    def test_hit_within_ttl(self):
        cache = DnsCache()
        cache.put([a_record("x.example.")], now=1000)
        entry = cache.get(Name.from_text("x.example."), RRType.A, now=1200)
        assert entry is not None
        assert entry.remaining_ttl(1200) == 100

    def test_miss_after_expiry(self):
        cache = DnsCache()
        cache.put([a_record("x.example.")], now=1000)
        assert cache.get(Name.from_text("x.example."), RRType.A, now=1300) is None
        assert len(cache) == 0  # lazily dropped

    def test_ttl_is_rrset_minimum(self):
        cache = DnsCache()
        cache.put(
            [a_record("x.example.", ttl=300), a_record("x.example.", "192.0.2.2", ttl=60)],
            now=0,
        )
        entry = cache.get(Name.from_text("x.example."), RRType.A, now=0)
        assert entry.ttl == 60

    def test_mixed_rrset_rejected(self):
        cache = DnsCache()
        with pytest.raises(ValueError):
            cache.put([a_record("x.example."), a_record("y.example.")], now=0)

    def test_empty_put_rejected(self):
        with pytest.raises(ValueError):
            DnsCache().put([], now=0)

    def test_hit_miss_counters(self):
        cache = DnsCache()
        cache.put([a_record("x.example.")], now=0)
        cache.get(Name.from_text("x.example."), RRType.A, now=1)
        cache.get(Name.from_text("y.example."), RRType.A, now=1)
        assert cache.hits == 1
        assert cache.misses == 1


class TestNegativeCaching:
    def test_negative_entry(self):
        cache = DnsCache()
        cache.put_negative(Name.from_text("nope."), RRType.A, now=0, ttl=900)
        entry = cache.get(Name.from_text("nope."), RRType.A, now=100)
        assert entry is not None and entry.negative

    def test_negative_expires(self):
        cache = DnsCache()
        cache.put_negative(Name.from_text("nope."), RRType.A, now=0, ttl=900)
        assert cache.get(Name.from_text("nope."), RRType.A, now=901) is None


class TestMaintenance:
    def test_flush(self):
        cache = DnsCache()
        cache.put([a_record("x.example.")], now=0)
        cache.flush()
        assert len(cache) == 0

    def test_expire_all(self):
        cache = DnsCache()
        cache.put([a_record("x.example.", ttl=10)], now=0)
        cache.put([a_record("y.example.", ttl=1000)], now=0)
        dropped = cache.expire_all(now=500)
        assert dropped == 1
        assert len(cache) == 1

    def test_eviction_at_capacity(self):
        cache = DnsCache(max_entries=2)
        cache.put([a_record("a.example.", ttl=10)], now=0)
        cache.put([a_record("b.example.", ttl=1000)], now=0)
        cache.put([a_record("c.example.", ttl=1000)], now=0)
        assert len(cache) == 2
        # the soonest-expiring entry was evicted
        assert cache.get(Name.from_text("a.example."), RRType.A, now=1) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            DnsCache(max_entries=0)
