"""Network-client IXFR and the local-root incremental refresh path."""

import pytest

from repro.resolver.hints import fresh_hints
from repro.resolver.localroot import LocalRootManager, RefreshStatus
from repro.util.timeutil import DAY, parse_ts

NOW = parse_ts("2023-12-10T12:00:00")


class TestNetclientIxfr:
    def test_current_serial_gets_soa_only(self, make_client):
        client = make_client(client_id=40)
        transfer = client.axfr(fresh_hints().address("k", 4), NOW)
        response = client.ixfr(
            fresh_hints().address("k", 4), transfer.zone.serial, NOW
        )
        # The distributor's newest publication may be the same copy the
        # site served (no lag at this instant) — then "current"; with a
        # fresher publication upstream we get deltas.
        assert response.kind in ("current", "incremental")

    def test_stale_client_gets_deltas(self, make_client):
        client = make_client(client_id=41)
        address = fresh_hints().address("k", 4)
        old = client.axfr(address, NOW)
        response = client.ixfr(address, old.zone.serial, NOW + 2 * DAY)
        assert response.kind == "incremental"
        assert response.deltas
        assert response.transferred_records < len(old.zone) // 2

    def test_ancient_serial_full_fallback(self, make_client):
        client = make_client(client_id=42)
        address = fresh_hints().address("k", 4)
        response = client.ixfr(address, 2001010100, NOW)
        # Either a reconstructed window covers it or we get a full zone;
        # both are protocol-legal. A journal of 256 versions spans ~128
        # days, so a 2001 serial is far out of window.
        assert response.kind == "full"


class TestLocalRootIxfr:
    def test_incremental_refresh_used(self, make_client):
        manager = LocalRootManager(make_client(client_id=43), fresh_hints())
        manager.refresh(NOW)
        assert manager.axfr_refreshes == 1
        result = manager.refresh(NOW + DAY)
        assert result.status is RefreshStatus.UPDATED
        assert manager.ixfr_refreshes == 1

    def test_incremental_result_validates(self, make_client):
        from repro.dns.name import ROOT_NAME
        from repro.dnssec.validate import validate_zone

        manager = LocalRootManager(make_client(client_id=44), fresh_hints())
        manager.refresh(NOW)
        manager.refresh(NOW + DAY)
        report = validate_zone(
            manager.zone.records, ROOT_NAME, now=NOW + DAY
        )
        assert report.valid

    def test_ixfr_disabled_falls_back_to_axfr(self, make_client):
        manager = LocalRootManager(
            make_client(client_id=45), fresh_hints(), prefer_ixfr=False
        )
        manager.refresh(NOW)
        manager.refresh(NOW + DAY)
        assert manager.ixfr_refreshes == 0
        assert manager.axfr_refreshes == 2
