"""Root hints files and the network client."""

import pytest

from repro.dns.constants import RRType, RRClass
from repro.dns.message import Message
from repro.dns.name import Name, ROOT_NAME
from repro.resolver.hints import fresh_hints, hints_as_of, stale_hints
from repro.rss.operators import B_ROOT_CHANGE_TS, root_server
from repro.util.timeutil import DAY, parse_ts


class TestHints:
    def test_thirteen_letters(self):
        hints = fresh_hints()
        assert len(hints.letters) == 13
        assert len(hints.all_addresses(4)) == 13
        assert len(hints.all_addresses(6)) == 13

    def test_stale_vs_fresh_differ_only_in_b(self):
        stale = stale_hints()
        fresh = fresh_hints()
        for letter in stale.letters:
            if letter == "b":
                assert stale.address("b", 4) != fresh.address("b", 4)
                assert stale.address("b", 6) != fresh.address("b", 6)
            else:
                assert stale.address(letter, 4) == fresh.address(letter, 4)

    def test_generated_at_boundary(self):
        before = hints_as_of(B_ROOT_CHANGE_TS - 1)
        after = hints_as_of(B_ROOT_CHANGE_TS)
        b = root_server("b")
        assert before.address("b", 4) == b.old_ipv4
        assert after.address("b", 4) == b.ipv4

    def test_invalid_family(self):
        with pytest.raises(ValueError):
            fresh_hints().address("a", 7)


class TestNetclient:
    NOW = parse_ts("2023-12-10T12:00:00")

    def test_query_outcome_fields(self, make_client):
        client = make_client(client_id=60)
        query = Message.make_query(ROOT_NAME, RRType.SOA)
        outcome = client.query("198.41.0.4", query, self.NOW)
        assert outcome.letter == "a"
        assert outcome.rtt_ms > 0
        assert outcome.site_key.startswith("a-")
        assert outcome.response.answers

    def test_old_b_address_still_answers(self, make_client):
        client = make_client(client_id=61)
        query = Message.make_query(ROOT_NAME, RRType.SOA)
        outcome = client.query("199.9.14.201", query, self.NOW)
        assert outcome.letter == "b"
        assert outcome.response.answers

    def test_unknown_address_rejected(self, make_client):
        client = make_client(client_id=62)
        query = Message.make_query(ROOT_NAME, RRType.SOA)
        with pytest.raises(KeyError):
            client.query("8.8.8.8", query, self.NOW)

    def test_rtts_vary_across_letters(self, make_client):
        client = make_client(client_id=63)
        query = Message.make_query(ROOT_NAME, RRType.SOA)
        rtts = {
            letter: client.query(
                root_server(letter).ipv4, query, self.NOW
            ).rtt_ms
            for letter in "abcdefghijklm"
        }
        assert len(set(round(v, 3) for v in rtts.values())) > 3

    def test_axfr_returns_validatable_zone(self, make_client):
        from repro.dns.name import ROOT_NAME as apex
        from repro.dnssec.validate import validate_zone

        client = make_client(client_id=64)
        result = client.axfr("193.0.14.129", self.NOW)
        assert result is not None
        report = validate_zone(result.zone.records, apex, now=self.NOW)
        assert report.valid
