"""RFC 8806 local root: refresh, validation, failover."""

import pytest

from repro.dns.constants import RRType
from repro.dns.message import Message
from repro.dns.name import Name, ROOT_NAME
from repro.resolver.hints import fresh_hints
from repro.resolver.localroot import LocalRootManager, RefreshStatus
from repro.util.timeutil import DAY, parse_ts

NOW = parse_ts("2023-12-10T12:00:00")


class TestRefresh:
    def test_initial_refresh_installs_zone(self, make_client):
        manager = LocalRootManager(make_client(client_id=20), fresh_hints())
        result = manager.refresh(NOW)
        assert result.status is RefreshStatus.UPDATED
        assert manager.zone is not None
        assert result.serial == manager.zone.serial

    def test_current_when_no_new_serial(self, make_client):
        manager = LocalRootManager(make_client(client_id=21), fresh_hints())
        manager.refresh(NOW)
        result = manager.refresh(NOW + 60)
        assert result.status is RefreshStatus.CURRENT

    def test_updates_on_new_publication(self, make_client):
        manager = LocalRootManager(make_client(client_id=22), fresh_hints())
        manager.refresh(NOW)
        first_serial = manager.zone.serial
        result = manager.refresh(NOW + DAY)
        assert result.status is RefreshStatus.UPDATED
        assert manager.zone.serial > first_serial

    def test_needs_refresh_follows_soa_refresh(self, make_client):
        manager = LocalRootManager(make_client(client_id=23), fresh_hints())
        assert manager.needs_refresh(NOW)
        manager.refresh(NOW)
        assert not manager.needs_refresh(NOW + 60)
        assert manager.needs_refresh(NOW + 1801)  # SOA refresh = 1800s

    def test_require_zonemd_accepts_validatable_era(self, make_client):
        manager = LocalRootManager(
            make_client(client_id=24), fresh_hints(), require_zonemd=True
        )
        result = manager.refresh(NOW)
        assert result.status is RefreshStatus.UPDATED

    def test_require_zonemd_rejects_pre_rollout_zone(self, make_client):
        manager = LocalRootManager(
            make_client(client_id=25), fresh_hints(), require_zonemd=True
        )
        early = parse_ts("2023-08-01T12:00:00")  # no ZONEMD in the zone yet
        result = manager.refresh(early)
        assert result.status in (RefreshStatus.REJECTED, RefreshStatus.FAILED)
        assert manager.zone is None
        assert result.rejections


class TestFailover:
    def test_rejects_corrupt_transfer_and_fails_over(self, make_client, monkeypatch):
        from repro.faults.bitflip import BitflipEvent, flip_bit_in_zone

        client = make_client(client_id=26)
        manager = LocalRootManager(client, fresh_hints())

        original_axfr = client.axfr
        corrupted_addresses = {fresh_hints().address("a", 4)}

        def flaky_axfr(address, ts):
            result = original_axfr(address, ts)
            if result is not None and address in corrupted_addresses:
                event = BitflipEvent(vp_id=0, start_ts=ts - 1, end_ts=ts + 1)
                mutated, _report = flip_bit_in_zone(result.zone, event, ts)
                result = type(result)(
                    zone=mutated, serial=mutated.serial,
                    messages=result.messages, records=result.records,
                    shared=False,
                )
            return result

        monkeypatch.setattr(client, "axfr", flaky_axfr)
        result = manager.refresh(NOW)
        # a.root's transfer is rejected; the manager moves on and installs
        # a clean copy from the next letter (the paper's §7 fallback).
        assert result.status is RefreshStatus.UPDATED
        assert result.rejections
        assert result.rejections[0][0] in corrupted_addresses
        assert result.served_by not in corrupted_addresses


class TestLocalServing:
    def test_answers_from_local_copy(self, make_client):
        manager = LocalRootManager(make_client(client_id=27), fresh_hints())
        manager.refresh(NOW)
        query = Message.make_query(Name.from_text("world."), RRType.NS)
        answer = manager.answer_locally(query)
        assert answer is not None and answer.answers

    def test_no_zone_no_answer(self, make_client):
        manager = LocalRootManager(make_client(client_id=28), fresh_hints())
        assert manager.answer_locally(
            Message.make_query(ROOT_NAME, RRType.NS)
        ) is None
