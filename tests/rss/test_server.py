"""Root server instance/deployment behaviour: query answering, CHAOS
identities, AXFR serving and staleness."""

import pytest

from repro.dns.constants import RRClass, RRType, Rcode
from repro.dns.message import Message
from repro.dns.name import Name, ROOT_NAME
from repro.rss.instance import VERSION_STRINGS, RootInstance
from repro.rss.operators import root_server
from repro.rss.server import RootServerDeployment
from repro.util.timeutil import DAY, parse_ts
from repro.zone.distribution import ZoneDistributor

DEC_TS = parse_ts("2023-12-10T16:00:00")


@pytest.fixture(scope="module")
def deployment(site_catalog, zone_builder):
    distributor = ZoneDistributor(zone_builder)
    return RootServerDeployment(
        root_server("d"), site_catalog.of_letter("d"), distributor
    )


@pytest.fixture(scope="module")
def site_key(deployment):
    return deployment.sites[0].key


def query(qname: str, qtype: RRType, qclass: RRClass = RRClass.IN) -> Message:
    return Message.make_query(Name.from_text(qname), qtype, qclass)


class TestChaosQueries:
    def test_hostname_bind(self, deployment, site_key):
        answer = deployment.answer(site_key, query("hostname.bind.", RRType.TXT, RRClass.CH), DEC_TS)
        identity = answer.answers[0].rdata.single_text()
        assert identity == deployment.instance_at(site_key).identity()

    def test_id_server_same_identity(self, deployment, site_key):
        a = deployment.answer(site_key, query("hostname.bind.", RRType.TXT, RRClass.CH), DEC_TS)
        b = deployment.answer(site_key, query("id.server.", RRType.TXT, RRClass.CH), DEC_TS)
        assert a.answers[0].rdata.single_text() == b.answers[0].rdata.single_text()

    def test_version_bind(self, deployment, site_key):
        answer = deployment.answer(site_key, query("version.bind.", RRType.TXT, RRClass.CH), DEC_TS)
        assert answer.answers[0].rdata.single_text() == VERSION_STRINGS["d"]

    def test_unknown_chaos_name_nxdomain(self, deployment, site_key):
        answer = deployment.answer(site_key, query("nope.bind.", RRType.TXT, RRClass.CH), DEC_TS)
        assert answer.header.rcode == Rcode.NXDOMAIN

    def test_chaos_non_txt_notimpl(self, deployment, site_key):
        answer = deployment.answer(site_key, query("hostname.bind.", RRType.A, RRClass.CH), DEC_TS)
        assert answer.header.rcode == Rcode.NOTIMP


class TestInQueries:
    def test_apex_ns(self, deployment, site_key):
        answer = deployment.answer(site_key, query(".", RRType.NS), DEC_TS)
        assert len(answer.answers) >= 13  # 13 NS + RRSIG

    def test_root_servers_net_ns(self, deployment, site_key):
        answer = deployment.answer(site_key, query("root-servers.net.", RRType.NS), DEC_TS)
        assert len(answer.answers) == 13

    def test_glue_a_lookup(self, deployment, site_key):
        answer = deployment.answer(site_key, query("b.root-servers.net.", RRType.A), DEC_TS)
        records = answer.answer_rrs(RRType.A)
        assert records and records[0].rdata.address == "170.247.170.2"

    def test_dnssec_rrsig_attached_with_do_bit(self, deployment, site_key):
        from repro.dns.edns import add_edns

        dnssec_query = query(".", RRType.SOA)
        add_edns(dnssec_query, dnssec_ok=True)
        answer = deployment.answer(site_key, dnssec_query, DEC_TS)
        assert answer.answer_rrs(RRType.RRSIG)

    def test_no_rrsig_without_do_bit(self, deployment, site_key):
        answer = deployment.answer(site_key, query(".", RRType.SOA), DEC_TS)
        assert not answer.answer_rrs(RRType.RRSIG)

    def test_zonemd_query(self, deployment, site_key):
        answer = deployment.answer(site_key, query(".", RRType.ZONEMD), DEC_TS)
        assert answer.answer_rrs(RRType.ZONEMD)

    def test_txt_for_root_server_name_empty_noerror(self, deployment, site_key):
        answer = deployment.answer(site_key, query("a.root-servers.net.", RRType.TXT), DEC_TS)
        assert answer.header.rcode == Rcode.NOERROR
        assert not answer.answers

    def test_nonexistent_tld_nxdomain(self, deployment, site_key):
        answer = deployment.answer(site_key, query("doesnotexist.", RRType.A), DEC_TS)
        assert answer.header.rcode == Rcode.NXDOMAIN

    def test_name_under_delegation_gets_referral(self, deployment, site_key):
        answer = deployment.answer(site_key, query("www.example.com.", RRType.A), DEC_TS)
        assert answer.header.rcode == Rcode.NOERROR
        assert answer.authority
        assert answer.authority[0].rrtype == RRType.NS
        assert not answer.header.aa


class TestAxfrServing:
    def test_axfr_serial_matches_publication(self, deployment, site_key):
        # One hour past the 16:00 publication (sites pull with a lag).
        result = deployment.serve_axfr(site_key, DEC_TS + 3600)
        assert result.serial == 2023121001

    def test_axfr_cached_for_same_zone(self, deployment, site_key):
        a = deployment.serve_axfr(site_key, DEC_TS)
        b = deployment.serve_axfr(site_key, DEC_TS + 60)
        assert a is b

    def test_frozen_site_serves_stale_zone(self, deployment, site_key):
        other = deployment.sites[1].key
        deployment.freeze_site(site_key, DEC_TS)
        try:
            stale = deployment.serve_axfr(site_key, DEC_TS + 10 * DAY)
            fresh = deployment.serve_axfr(other, DEC_TS + 10 * DAY)
            assert stale.serial < fresh.serial
        finally:
            deployment.unfreeze_site(site_key)

    def test_unknown_site_rejected(self, deployment):
        with pytest.raises(KeyError):
            deployment.instance_at("zz-999")

    def test_empty_deployment_rejected(self, zone_builder):
        with pytest.raises(ValueError):
            RootServerDeployment(
                root_server("b"), [], ZoneDistributor(zone_builder)
            )
