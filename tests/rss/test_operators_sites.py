"""Root server letters, addresses and the site catalog."""

import pytest

from repro.geo.continents import Continent
from repro.rss.operators import (
    B_ROOT_CHANGE_TS,
    ROOT_LETTERS,
    address_owner,
    all_service_addresses,
    root_server,
)
from repro.rss.sites import IATA_ONLY_LETTERS, SITE_PLAN, build_site_catalog
from repro.util.timeutil import DAY


class TestOperators:
    def test_thirteen_letters(self):
        assert len(ROOT_LETTERS) == 13
        assert "".join(ROOT_LETTERS) == "abcdefghijklm"

    def test_known_addresses(self):
        assert root_server("a").ipv4 == "198.41.0.4"
        assert root_server("k").ipv6 == "2001:7fd::1"
        assert root_server("m").ipv4 == "202.12.27.33"

    def test_b_has_old_and_new(self):
        b = root_server("b")
        assert b.old_ipv4 == "199.9.14.201"
        assert b.ipv4 == "170.247.170.2"
        assert b.old_ipv6 == "2001:500:200::b"
        assert b.ipv6 == "2801:1b8:10::b"

    def test_28_probe_targets(self):
        addresses = all_service_addresses()
        assert len(addresses) == 28  # 14 v4 + 14 v6
        assert len({sa.address for sa in addresses}) == 28

    def test_address_for_flips_at_change(self):
        b = root_server("b")
        assert b.address_for(4, B_ROOT_CHANGE_TS - DAY) == b.old_ipv4
        assert b.address_for(4, B_ROOT_CHANGE_TS) == b.ipv4
        assert b.address_for(6, B_ROOT_CHANGE_TS + DAY) == b.ipv6

    def test_address_for_non_b_static(self):
        a = root_server("a")
        assert a.address_for(4, 0) == a.address_for(4, 2_000_000_000)

    def test_address_owner_reverse_lookup(self):
        sa = address_owner("199.9.14.201")
        assert sa.letter == "b" and sa.generation == "old"
        with pytest.raises(KeyError):
            address_owner("8.8.8.8")

    def test_unknown_letter_rejected(self):
        with pytest.raises(KeyError):
            root_server("z")

    def test_labels(self):
        assert address_owner("170.247.170.2").label == "b.root (new)"
        assert address_owner("198.41.0.4").label == "a.root"


class TestSitePlan:
    def test_plan_matches_paper_totals(self):
        # Worldwide global-site counts from the paper (§2 / Table 4 sums).
        expected_global = {
            "b": 6, "c": 12, "d": 23, "e": 97, "f": 129, "g": 6,
            "h": 12, "i": 81, "j": 61, "k": 105, "l": 132, "m": 7,
        }
        for letter, expected in expected_global.items():
            total = sum(pair[0] for pair in SITE_PLAN[letter].values())
            assert total == expected, letter

    def test_no_local_sites_for_single_scope_letters(self):
        for letter in "bcghil":
            assert all(pair[1] == 0 for pair in SITE_PLAN[letter].values()), letter

    def test_m_focusses_asia_pacific(self):
        plan = SITE_PLAN["m"]
        inside = sum(
            sum(plan.get(c, (0, 0))) for c in (Continent.ASIA, Continent.OCEANIA)
        )
        outside = sum(
            sum(pair) for c, pair in plan.items()
            if c not in (Continent.ASIA, Continent.OCEANIA)
        )
        assert outside == 2  # "only 2 sites outside the region"
        assert inside > outside


class TestCatalog:
    def test_catalog_counts_match_plan(self, site_catalog):
        for letter, plan in SITE_PLAN.items():
            expected = sum(g + l for g, l in plan.values())
            assert len(site_catalog.of_letter(letter)) == expected, letter

    def test_sites_on_planned_continents(self, site_catalog):
        for letter, plan in SITE_PLAN.items():
            for site in site_catalog.of_letter(letter):
                assert site.continent in plan, (letter, site.key)

    def test_site_keys_unique(self, site_catalog):
        keys = [s.key for s in site_catalog.sites]
        assert len(keys) == len(set(keys))

    def test_identity_conventions(self, site_catalog):
        for letter in IATA_ONLY_LETTERS:
            site = site_catalog.of_letter(letter)[0]
            assert site.identity().startswith("nnn1-")
        d_site = site_catalog.of_letter("d")[0]
        assert d_site.identity().startswith("d")

    def test_iata_letters_share_metro_identity(self, site_catalog):
        # Sites of an IATA-only letter in the same metro are
        # indistinguishable (paper §4.2 footnote 2).
        by_city = {}
        for site in site_catalog.of_letter("e"):
            by_city.setdefault(site.city.iata, []).append(site)
        multi = [sites for sites in by_city.values() if len(sites) > 1]
        if not multi:
            pytest.skip("no multi-site metro for e.root in this draw")
        sites = multi[0]
        assert len({s.identity() for s in sites}) == 1

    def test_identity_mapping_roundtrip(self, site_catalog):
        site = next(s for s in site_catalog.of_letter("k") if s.published)
        assert site_catalog.map_identity(site.identity()) is not None

    def test_unpublished_sites_unmappable(self, site_catalog):
        unpublished = [s for s in site_catalog.of_letter("j") if not s.published]
        assert unpublished, "j.root should have unmapped identifiers"
        for site in unpublished[:5]:
            mapped = site_catalog.map_identity(site.identity())
            # Either unmapped, or shadowed by a published site with the
            # same metro identity (IATA-only letters).
            assert mapped is None or mapped.key != site.key
