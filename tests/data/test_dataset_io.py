"""On-disk dataset format: mmap-backed reload and manifest validation.

The reload must be zero-copy (``np.memmap`` columns, no ``np.load`` of
full files), and the manifest must act as the format's contract: wrong
schema version, truncated columns, doctored dtypes and unknown
addresses all fail loudly instead of producing silently-wrong analyses.
"""

import json
import shutil

import numpy as np
import pytest

from repro.data import (
    BINARY_TABLES,
    SCHEMA_VERSION,
    DatasetError,
    DatasetVersionError,
    load_dataset,
    save_dataset,
)
from repro.data.io import MANIFEST_NAME


@pytest.fixture(scope="module")
def saved(mini_study, tmp_path_factory):
    """A pristine saved dataset directory (module-shared, read-only)."""
    directory = tmp_path_factory.mktemp("ds_io")
    return save_dataset(mini_study.results().dataset, directory)


@pytest.fixture()
def doctored(saved, tmp_path):
    """A private copy of the saved dataset, safe to corrupt."""
    target = tmp_path / "ds"
    shutil.copytree(saved, target)
    return target


class TestMmapReload:
    def test_columns_are_memory_mapped(self, saved):
        loaded = load_dataset(saved)
        for name, schema in BINARY_TABLES.items():
            table = loaded.table(name)
            if len(table) == 0:
                continue
            for spec in schema.columns:
                column = table.column(spec.name)
                assert isinstance(column, np.memmap), (name, spec.name)
                assert column.dtype == spec.disk_dtype

    def test_probe_dtypes_match_live_collector(self, mini_study, saved):
        live = mini_study.collector.probe_columns()
        loaded = load_dataset(saved).probe_columns()
        assert set(live) == set(loaded)
        for key, array in live.items():
            assert loaded[key].dtype == array.dtype, key
            assert (loaded[key] == array).all(), key

    def test_manifest_contents(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["study"]["seed"] == 1234
        for name in BINARY_TABLES:
            entry = manifest["tables"][name]
            assert entry["rows"] >= 0
            assert {c["name"] for c in entry["columns"]} == set(
                BINARY_TABLES[name].column_names()
            )

    def test_study_config_roundtrip(self, mini_study, saved):
        loaded = load_dataset(saved)
        assert loaded.study_config() == mini_study.config

    def test_study_inputs_without_simulation(self, mini_study, saved):
        inputs = load_dataset(saved).study_inputs()
        assert len(inputs["vps"]) == len(mini_study.vps)
        assert [vp.attachment.asn for vp in inputs["vps"]] == [
            vp.attachment.asn for vp in mini_study.vps
        ]
        assert len(inputs["catalog"]) == len(mini_study.catalog)
        assert [s.identity() for s in inputs["catalog"].of_letter("b")] == [
            s.identity() for s in mini_study.catalog.of_letter("b")
        ]


class TestManifestValidation:
    def test_missing_manifest(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(DatasetError, match="no dataset at"):
            load_dataset(empty)

    def test_corrupt_manifest(self, doctored):
        (doctored / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(DatasetError, match="corrupt manifest"):
            load_dataset(doctored)

    def test_version_mismatch(self, doctored):
        manifest = json.loads((doctored / MANIFEST_NAME).read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        (doctored / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(DatasetVersionError, match="Regenerate the dataset"):
            load_dataset(doctored)

    def test_version_error_is_dataset_error(self):
        assert issubclass(DatasetVersionError, DatasetError)

    def test_truncated_column_file(self, doctored):
        rtt = doctored / "tables" / "probes" / "rtt.bin"
        rtt.write_bytes(rtt.read_bytes()[:-4])
        with pytest.raises(DatasetError, match="bytes"):
            load_dataset(doctored)

    def test_missing_column_file(self, doctored):
        (doctored / "tables" / "probes" / "rtt.bin").unlink()
        with pytest.raises(DatasetError, match="missing column file"):
            load_dataset(doctored)

    def test_doctored_dtype(self, doctored):
        manifest = json.loads((doctored / MANIFEST_NAME).read_text())
        manifest["tables"]["probes"]["columns"][0]["dtype"] = "float64"
        (doctored / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="dtype"):
            load_dataset(doctored)

    def test_unknown_service_address(self, doctored):
        manifest = json.loads((doctored / MANIFEST_NAME).read_text())
        manifest["addresses"][0] = "203.0.113.99"
        (doctored / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="unknown service address"):
            load_dataset(doctored)


class TestTableRequirements:
    def test_require_tables_names_the_consumer(self, saved):
        loaded = load_dataset(saved)
        with pytest.raises(DatasetError, match="analysis 'demo'.*nosuch"):
            loaded.require_tables(["probes", "nosuch"], consumer="analysis 'demo'")

    def test_unknown_table_lists_available(self, saved):
        loaded = load_dataset(saved)
        with pytest.raises(DatasetError, match="available: .*probes"):
            loaded.table("nosuch")
