"""Shard spills: the mmap handoff format round-trips full fidelity.

A spill must hand the parent process exactly what pickling the shard
collector through the pool pipe used to: row tables, aggregate state,
and transfer observations with their zone copies.  These tests spill a
real (tiny) shard campaign and check the reload merges byte-identically,
plus the guard rails of the format itself.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.pipeline import (
    _run_sharded,
    build_platform,
    build_world,
)
from repro.data import DatasetError
from repro.data.spill import (
    SPILL_NAME,
    SPILL_VERSION,
    read_shard_spill,
    spill_nbytes,
    write_shard_spill,
)
from repro.vantage.collector import CampaignCollector

from tests.core.test_pipeline import tiny_config


@pytest.fixture(scope="module")
def shard_collectors():
    config = tiny_config().with_sharding(2)
    world = build_world(config)
    platform = build_platform(config, world)
    world.distributor.reset_faults()
    platform.prober.reset()
    return _run_sharded(config, world, platform)


def test_round_trip_preserves_rows_and_state(shard_collectors, tmp_path):
    original = shard_collectors[0]
    spill_dir = write_shard_spill(tmp_path / "s0", original)
    assert spill_nbytes(spill_dir) > 0
    reloaded = read_shard_spill(spill_dir)

    assert reloaded.state_dict() == original.state_dict()
    ours, ref = reloaded.probe_columns(), original.probe_columns()
    for name in ours:
        assert np.array_equal(ours[name], ref[name]), name
    ours, ref = reloaded.traceroute_columns(), original.traceroute_columns()
    for name in ours:
        assert np.array_equal(ours[name], ref[name]), name


def test_round_trip_preserves_transfer_zones(shard_collectors, tmp_path):
    original = shard_collectors[0]
    assert original.transfers, "tiny shard config produced no transfers"
    reloaded = read_shard_spill(write_shard_spill(tmp_path / "s0", original))
    assert len(reloaded.transfers) == len(original.transfers)
    for ours, ref in zip(reloaded.transfers, original.transfers):
        assert ours.vp_id == ref.vp_id
        assert ours.true_ts == ref.true_ts
        assert ours.serial == ref.serial
        assert ours.fault == ref.fault
        assert ours.address.address == ref.address.address
        # zone copies survive with identical wire content
        assert (ours.zone is None) == (ref.zone is None)
        if ref.zone is not None:
            assert ours.zone.serial == ref.zone.serial


def test_zone_pack_deduplicates_shared_zone_objects(shard_collectors, tmp_path):
    original = shard_collectors[0]
    write_shard_spill(tmp_path / "s0", original)
    meta = json.loads((tmp_path / "s0" / SPILL_NAME).read_text())
    distinct = len({id(o.zone) for o in original.transfers if o.zone is not None})
    assert meta["transfers"]["zones"] == distinct
    assert distinct < len(original.transfers)


def test_reloaded_shards_merge_byte_identical(shard_collectors, tmp_path):
    reloaded = [
        read_shard_spill(write_shard_spill(tmp_path / f"s{i}", collector))
        for i, collector in enumerate(shard_collectors)
    ]
    direct = CampaignCollector.merge(shard_collectors)
    via_spill = CampaignCollector.merge(reloaded)
    assert via_spill.state_dict() == direct.state_dict()
    ours, ref = via_spill.probe_columns(), direct.probe_columns()
    for name in ours:
        assert np.array_equal(ours[name], ref[name]), name
    ours, ref = via_spill.traceroute_columns(), direct.traceroute_columns()
    for name in ours:
        assert np.array_equal(ours[name], ref[name]), name
    assert [o.serial for o in via_spill.transfers] == (
        [o.serial for o in direct.transfers]
    )


def test_empty_collector_round_trips(tmp_path):
    empty = CampaignCollector()
    reloaded = read_shard_spill(write_shard_spill(tmp_path / "empty", empty))
    assert reloaded.state_dict() == empty.state_dict()
    assert len(reloaded.probe_columns()["vp"]) == 0
    assert reloaded.transfers == []
    assert not (tmp_path / "empty" / "zones.pkl").exists()


def test_missing_manifest_rejected(tmp_path):
    with pytest.raises(DatasetError, match="no shard spill"):
        read_shard_spill(tmp_path)


def test_version_mismatch_rejected(shard_collectors, tmp_path):
    write_shard_spill(tmp_path / "s0", shard_collectors[0])
    meta_path = tmp_path / "s0" / SPILL_NAME
    meta = json.loads(meta_path.read_text())
    meta["spill_version"] = SPILL_VERSION + 1
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(DatasetError, match="version"):
        read_shard_spill(tmp_path / "s0")


def test_attached_rows_are_read_only_merge_inputs(shard_collectors, tmp_path):
    from repro.vantage.collector import CollectorSealedError

    reloaded = read_shard_spill(
        write_shard_spill(tmp_path / "s0", shard_collectors[0])
    )
    with pytest.raises(CollectorSealedError, match="read-only"):
        reloaded._probes.append(0, 0, 0, 0, 0.0, 0.0, 0.0, False, 0)
