"""Save → load → analyze round-trip equality.

The property the dataset layer guarantees: for every registered
analysis, the canonical summary rendered from a reloaded dataset is
byte-identical to the one rendered from the in-memory study it was
saved from — serial and sharded (2 and 4 shards) runs alike.  The CLI
tests additionally prove the reload path executes zero re-simulation:
the world-building and campaign stages are poisoned and never fire.
"""

from __future__ import annotations

import pytest

from repro.analysis import registry
from repro.analysis.summaries import (
    PASSIVE_ANALYSES,
    passive_aggregate,
    render_summary,
    summary_names,
)
from repro.cli import analyze_main
from repro.core import RootStudy
from repro.data import load_dataset

ALL_ANALYSES = registry.names()


def test_every_registered_analysis_has_a_summary():
    assert summary_names() == ALL_ANALYSES


@pytest.fixture(scope="module")
def aggregate(mini_study_config):
    """The passive ISP capture both sides feed trafficshift and
    clientbehavior — a pure function of the study seed."""
    return passive_aggregate(mini_study_config.seed)


def _inputs(name, aggregate):
    return {"aggregate": aggregate} if name in PASSIVE_ANALYSES else {}


@pytest.fixture(scope="module", params=["serial", "shards2", "shards4"])
def sides(request, mini_study, mini_study_config, tmp_path_factory):
    """(live results, reloaded dataset) for a serial and two sharded runs."""
    if request.param == "serial":
        results = mini_study.results()
    else:
        shards = int(request.param[-1])
        results = RootStudy(mini_study_config.with_sharding(shards)).run()
    directory = tmp_path_factory.mktemp(f"ds_{request.param}")
    results.save(directory)
    return results, load_dataset(directory)


@pytest.mark.parametrize("name", ALL_ANALYSES)
def test_summary_identical_after_reload(sides, aggregate, name):
    results, loaded = sides
    inputs = _inputs(name, aggregate)
    live = render_summary(name, registry.run(name, results, **inputs))
    reloaded = render_summary(name, registry.run(name, loaded, **inputs))
    assert live == reloaded


def test_reloaded_transfers_carry_no_zone_content(sides):
    """The audit runs from fingerprints and sealed verdicts alone."""
    _results, loaded = sides
    assert loaded.transfers
    assert all(record.zone is None for record in loaded.transfers)


class TestAnalyzeCli:
    @pytest.fixture(scope="class")
    def saved(self, mini_study, tmp_path_factory):
        directory = tmp_path_factory.mktemp("ds_cli")
        return mini_study.results().save(directory)

    @pytest.fixture(autouse=True)
    def _no_resimulation(self, monkeypatch):
        """Poison every simulation stage: rootsim-analyze must never
        build a world or run a campaign."""
        import repro.core.pipeline as pipeline

        def _boom(*_args, **_kwargs):
            raise AssertionError("rootsim-analyze attempted re-simulation")

        monkeypatch.setattr(pipeline, "build_world", _boom)
        monkeypatch.setattr(pipeline, "build_platform", _boom)
        monkeypatch.setattr(pipeline, "run_campaign", _boom)
        monkeypatch.setattr(pipeline, "_execute_campaign", _boom)

    def test_listing(self, saved, capsys):
        assert analyze_main([str(saved)]) == 0
        out = capsys.readouterr().out
        assert "probes" in out
        for name in ("stability", "trafficshift"):
            assert name in out

    @pytest.mark.parametrize("name", ["stability", "rtt", "zonemd_audit"])
    def test_output_matches_in_process(self, saved, mini_study, name, capsys):
        assert analyze_main([str(saved), name]) == 0
        out = capsys.readouterr().out
        live = render_summary(name, registry.run(name, mini_study.results()))
        assert out == live + "\n"

    def test_unknown_analysis_fails_cleanly(self, saved, capsys):
        assert analyze_main([str(saved), "nosuch"]) == 2
        assert "unknown analysis" in capsys.readouterr().err

    def test_missing_dataset_fails_cleanly(self, tmp_path, capsys):
        assert analyze_main([str(tmp_path / "nope"), "rtt"]) == 2
        assert "no dataset" in capsys.readouterr().err
