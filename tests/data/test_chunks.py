"""Chunked checkpoint writer/reader: roundtrip, stitching, corruption.

The invariants under test:

* a streamed campaign finalizes into a dataset directory byte-identical
  to a batch ``results.save``,
* the sealed prefix stitches into a partial dataset whose tables equal
  the batch tables,
* every way a checkpoint directory can be damaged — torn JSON, version
  skew, round gaps, row-count lies, truncated or missing chunks — fails
  loudly with a typed :class:`CheckpointError`, never a silent
  mis-stitch,
* resume discards an unsealed tail chunk rather than trusting it.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.core.pipeline import StudyPipeline
from repro.core.streaming import (
    finalize_streaming_campaign,
    load_streaming_checkpoint,
    run_streaming_campaign,
)
from repro.data import (
    CHECKPOINT_NAME,
    CheckpointError,
    CheckpointReader,
    ChunkedDatasetWriter,
    load_dataset,
)
from repro.data.chunks import read_passive_aggregate, write_passive_aggregate
from repro.passive.recipes import build_capture

from tests.streamutil import (
    TINY_STREAM_SEED,
    assert_trees_identical,
    tiny_stream_config,
)


@pytest.fixture(scope="module")
def stream_config():
    return tiny_stream_config()


@pytest.fixture(scope="module")
def batch_dir(stream_config, tmp_path_factory):
    """The uninterrupted batch dataset for the tiny study."""
    out = tmp_path_factory.mktemp("batch") / "dataset"
    StudyPipeline(stream_config).run().save(out, passive=False)
    return out


@pytest.fixture(scope="module")
def checkpoint_dir(stream_config, tmp_path_factory):
    """A complete streamed checkpoint (5 rounds in chunks of 2)."""
    ckpt = tmp_path_factory.mktemp("ckpt") / "stream"
    run = run_streaming_campaign(stream_config, ckpt, checkpoint_every=2)
    assert run.complete and run.chunks == 3
    return ckpt


def _damaged_copy(checkpoint_dir, tmp_path):
    copy = tmp_path / "damaged"
    shutil.copytree(checkpoint_dir, copy)
    return copy


def _doctor(copy, **overrides):
    ckpt = json.loads((copy / CHECKPOINT_NAME).read_text())
    ckpt.update(overrides)
    (copy / CHECKPOINT_NAME).write_text(json.dumps(ckpt))
    return ckpt


# --- roundtrip ---------------------------------------------------------------------


def test_finalize_matches_batch_save_byte_for_byte(
    checkpoint_dir, batch_dir, tmp_path
):
    out = tmp_path / "finalized"
    finalize_streaming_campaign(checkpoint_dir, out, passive=False)
    assert_trees_identical(batch_dir, out)


def test_stitched_dataset_equals_batch_tables(checkpoint_dir, batch_dir):
    stitched = load_streaming_checkpoint(checkpoint_dir)
    batch = load_dataset(batch_dir)
    assert stitched.summary() == batch.summary()
    for table in ("probes", "traceroutes", "stability"):
        for column in stitched.table(table).columns():
            assert np.array_equal(
                stitched.table(table).column(column),
                batch.table(table).column(column),
            ), (table, column)
    assert stitched.identities == batch.identities
    assert len(stitched.transfers) == len(batch.transfers)


def test_load_dataset_dispatches_to_checkpoint_reader(checkpoint_dir):
    dataset = load_dataset(checkpoint_dir)
    info = dataset.meta["checkpoint"]
    assert info["rounds_done"] == info["n_rounds"] == 5
    assert info["chunks"] == 3
    assert dataset.study_config().seed == TINY_STREAM_SEED


def test_chunks_are_self_contained_datasets(checkpoint_dir):
    reader = CheckpointReader(checkpoint_dir)
    chunks = reader.chunk_datasets()
    assert [c.meta["chunk"]["round_lo"] for c in chunks] == [0, 2, 4]
    total_probes = sum(len(c.table("probes")) for c in chunks)
    assert total_probes == reader.checkpoint()["totals"]["probes"]
    # each chunk also loads through the ordinary dataset entry point
    entry = reader.chunk_entries()[0]
    direct = load_dataset(reader.chunk_path(entry))
    assert len(direct.table("probes")) == entry["rows"]["probes"]


def test_start_refuses_existing_checkpoint(checkpoint_dir):
    writer = ChunkedDatasetWriter(checkpoint_dir)
    with pytest.raises(CheckpointError, match="already"):
        writer.start(
            study=None, addresses=[], engine="epoch", shards=1,
            n_rounds=1, state={}, shard_states=[{}],
        )


def test_finalize_requires_complete_campaign(checkpoint_dir, tmp_path):
    copy = _damaged_copy(checkpoint_dir, tmp_path)
    # drop the tail chunk so the checkpoint is a valid 4-round prefix
    ckpt = json.loads((copy / CHECKPOINT_NAME).read_text())
    tail = ckpt["chunks"].pop()
    ckpt["rounds_done"] = tail["round_lo"]
    for key in ckpt["totals"]:
        ckpt["totals"][key] -= tail["rows"][key]
    (copy / CHECKPOINT_NAME).write_text(json.dumps(ckpt))
    shutil.rmtree(copy / "chunks" / tail["name"])
    with pytest.raises(CheckpointError, match="4 of 5"):
        finalize_streaming_campaign(copy, tmp_path / "out", passive=False)


# --- corruption --------------------------------------------------------------------


def test_missing_checkpoint_file_raises(tmp_path):
    with pytest.raises(CheckpointError, match="missing CHECKPOINT.json"):
        CheckpointReader(tmp_path).checkpoint()


def test_torn_checkpoint_json_raises(checkpoint_dir, tmp_path):
    copy = _damaged_copy(checkpoint_dir, tmp_path)
    payload = (copy / CHECKPOINT_NAME).read_bytes()
    (copy / CHECKPOINT_NAME).write_bytes(payload[: len(payload) // 2])
    with pytest.raises(CheckpointError, match="corrupt checkpoint"):
        CheckpointReader(copy).checkpoint()


def test_wrong_checkpoint_version_raises(checkpoint_dir, tmp_path):
    copy = _damaged_copy(checkpoint_dir, tmp_path)
    _doctor(copy, checkpoint_version=99)
    with pytest.raises(CheckpointError, match="version 99"):
        CheckpointReader(copy).checkpoint()


def test_wrong_schema_version_raises(checkpoint_dir, tmp_path):
    copy = _damaged_copy(checkpoint_dir, tmp_path)
    _doctor(copy, schema_version=0)
    with pytest.raises(CheckpointError, match="schema version"):
        CheckpointReader(copy).checkpoint()


def test_missing_required_key_raises(checkpoint_dir, tmp_path):
    copy = _damaged_copy(checkpoint_dir, tmp_path)
    ckpt = json.loads((copy / CHECKPOINT_NAME).read_text())
    del ckpt["state"]
    (copy / CHECKPOINT_NAME).write_text(json.dumps(ckpt))
    with pytest.raises(CheckpointError, match="required key 'state'"):
        CheckpointReader(copy).checkpoint()


def test_round_gap_raises(checkpoint_dir, tmp_path):
    copy = _damaged_copy(checkpoint_dir, tmp_path)
    ckpt = json.loads((copy / CHECKPOINT_NAME).read_text())
    ckpt["chunks"][1]["round_lo"] = 3
    (copy / CHECKPOINT_NAME).write_text(json.dumps(ckpt))
    with pytest.raises(CheckpointError, match="round gap"):
        CheckpointReader(copy).checkpoint()


def test_row_total_mismatch_raises(checkpoint_dir, tmp_path):
    copy = _damaged_copy(checkpoint_dir, tmp_path)
    ckpt = json.loads((copy / CHECKPOINT_NAME).read_text())
    ckpt["chunks"][0]["rows"]["probes"] += 1
    (copy / CHECKPOINT_NAME).write_text(json.dumps(ckpt))
    with pytest.raises(CheckpointError, match="do not match recorded totals"):
        CheckpointReader(copy).checkpoint()


def test_missing_chunk_dir_raises(checkpoint_dir, tmp_path):
    copy = _damaged_copy(checkpoint_dir, tmp_path)
    shutil.rmtree(copy / "chunks" / "000001")
    with pytest.raises(CheckpointError, match="000001"):
        CheckpointReader(copy).dataset()


def test_truncated_chunk_column_raises(checkpoint_dir, tmp_path):
    copy = _damaged_copy(checkpoint_dir, tmp_path)
    column = copy / "chunks" / "000000" / "tables" / "probes" / "rtt.bin"
    payload = column.read_bytes()
    column.write_bytes(payload[:-4])
    with pytest.raises(CheckpointError, match="chunk '000000'.*damaged"):
        CheckpointReader(copy).dataset()


def test_resume_discards_unsealed_tail_chunk(checkpoint_dir, tmp_path):
    copy = _damaged_copy(checkpoint_dir, tmp_path)
    junk = copy / "chunks" / "000007"
    junk.mkdir()
    (junk / "partial.bin").write_bytes(b"\x00" * 16)
    writer = ChunkedDatasetWriter(copy)
    ckpt = writer.resume()
    assert not junk.exists()
    assert ckpt["rounds_done"] == 5
    assert writer.rounds_done == 5


# --- passive aggregate cache -------------------------------------------------------


def test_passive_aggregate_cache_roundtrip(tmp_path):
    aggregate = build_capture("isp", TINY_STREAM_SEED)
    write_passive_aggregate(tmp_path, "isp", aggregate)
    reread = read_passive_aggregate(tmp_path, "isp")
    # a second write from the reread aggregate is byte-identical, so the
    # cache is a faithful codec
    write_passive_aggregate(tmp_path, "isp2", reread)
    cache = tmp_path / "passive"
    assert (cache / "isp.json").read_bytes() == (
        cache / "isp2.json"
    ).read_bytes()


def test_passive_aggregate_cache_missing_and_corrupt(tmp_path):
    with pytest.raises(CheckpointError, match="cache .* is missing"):
        read_passive_aggregate(tmp_path, "isp")
    (tmp_path / "passive").mkdir()
    (tmp_path / "passive" / "isp.json").write_text("{not json")
    with pytest.raises(CheckpointError, match="corrupt passive cache"):
        read_passive_aggregate(tmp_path, "isp")
