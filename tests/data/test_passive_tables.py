"""Passive captures persisted in the dataset layer.

``StudyResults.save`` ships the standard passive aggregates as the
``passive_flows`` / ``passive_clients`` tables; a reloaded dataset
replays them from disk — byte-identical values, zero re-simulation —
which is what lets ``rootsim-analyze`` and ``rootsim-report --dataset``
render Figures 7–13 without rebuilding any capture.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import registry
from repro.analysis.summaries import render_summary
from repro.cli import analyze_main
from repro.data import PASSIVE_TABLES, load_dataset
from repro.passive.recipes import STANDARD_CAPTURES, standard_captures


@pytest.fixture(scope="module")
def live_captures(mini_study_config):
    return standard_captures(mini_study_config.seed)


@pytest.fixture(scope="module")
def saved_dir(mini_study, tmp_path_factory):
    directory = tmp_path_factory.mktemp("ds_passive")
    return mini_study.results().save(directory)


@pytest.fixture(scope="module")
def loaded(saved_dir):
    return load_dataset(saved_dir)


class TestOnDiskFormat:
    def test_tables_and_manifest(self, saved_dir):
        manifest = json.loads((saved_dir / "MANIFEST.json").read_text())
        recorded = {
            capture["name"] for capture in manifest["passive"]["captures"]
        }
        assert recorded == set(STANDARD_CAPTURES)
        assert manifest["interners"]["captures"]
        assert manifest["interners"]["prefixes"]
        for table in PASSIVE_TABLES:
            assert table in manifest["tables"]
            for column in manifest["tables"][table]["columns"]:
                assert (saved_dir / column["file"]).exists()

    def test_save_is_deterministic(self, mini_study, saved_dir, tmp_path_factory):
        again = mini_study.results().save(tmp_path_factory.mktemp("ds_again"))
        for table in PASSIVE_TABLES:
            for column in ("capture", "flows"):
                a = (saved_dir / "tables" / table / f"{column}.bin").read_bytes()
                b = (again / "tables" / table / f"{column}.bin").read_bytes()
                assert a == b, (table, column)


class TestReload:
    def test_store_attached_with_all_captures(self, loaded):
        assert loaded.passive is not None
        assert loaded.passive.names() == sorted(STANDARD_CAPTURES)

    def test_aggregates_identical_to_live(self, loaded, live_captures):
        for name, live in live_captures.items():
            disk = loaded.passive.aggregate(name)
            assert disk.bucket_seconds == live.bucket_seconds
            assert disk.flows == live.flows
            assert disk.per_client_flows == live.per_client_flows
            assert disk.per_client_days == live.per_client_days
            for key in live.flows:
                assert disk.client_count(*key) == live.client_count(*key)

    def test_reloaded_aggregates_are_counts_only(self, loaded):
        disk = loaded.passive.aggregate("isp")
        with pytest.raises(RuntimeError, match="counts"):
            disk.clients

    def test_unknown_capture_named_cleanly(self, loaded):
        from repro.data import DatasetError

        with pytest.raises(DatasetError, match="isp"):
            loaded.passive.aggregate("nosuch")

    @pytest.mark.parametrize("name", ["trafficshift", "clientbehavior"])
    def test_render_identical_from_disk(self, loaded, live_captures, name):
        live = render_summary(
            name, registry.run(name, aggregate=live_captures["isp"])
        )
        disk = render_summary(
            name, registry.run(name, aggregate=loaded.passive.aggregate("isp"))
        )
        assert live == disk


class TestAnalyzeFromDisk:
    @pytest.fixture(autouse=True)
    def _no_rebuild(self, monkeypatch):
        """The CLI must feed passive analyses from the dataset's passive
        tables, not rebuild the capture from the seed."""
        import repro.analysis.summaries as summaries

        def _boom(*_args, **_kwargs):
            raise AssertionError("analyze rebuilt the passive capture")

        monkeypatch.setattr(summaries, "passive_aggregate", _boom)

    def test_trafficshift_from_passive_tables(
        self, saved_dir, live_captures, capsys
    ):
        assert analyze_main([str(saved_dir), "trafficshift"]) == 0
        out = capsys.readouterr().out
        live = render_summary(
            "trafficshift",
            registry.run("trafficshift", aggregate=live_captures["isp"]),
        )
        assert out == live + "\n"

    def test_listing_names_captures(self, saved_dir, capsys):
        assert analyze_main([str(saved_dir)]) == 0
        out = capsys.readouterr().out
        assert "passive captures: isp, ixp-eu, ixp-na" in out
