"""DNS-over-TCP framing and the wire-level AXFR stream."""

import pytest

from repro.dns.constants import RRType
from repro.dns.message import Message
from repro.dns.name import ROOT_NAME
from repro.dns.tcpframe import (
    FramingError,
    axfr_payload_size,
    deframe_stream,
    frame_message,
    frame_stream,
    iter_frames,
)
from repro.zone.transfer import AxfrServer


class TestFraming:
    def test_frame_roundtrip(self):
        query = Message.make_query(ROOT_NAME, RRType.NS, msg_id=42)
        payload = frame_stream([query])
        messages = deframe_stream(payload)
        assert len(messages) == 1
        assert messages[0].header.msg_id == 42

    def test_multiple_frames(self):
        queries = [
            Message.make_query(ROOT_NAME, RRType.NS, msg_id=i) for i in range(5)
        ]
        messages = deframe_stream(frame_stream(queries))
        assert [m.header.msg_id for m in messages] == list(range(5))

    def test_length_prefix_value(self):
        query = Message.make_query(ROOT_NAME, RRType.NS)
        framed = frame_message(query.to_wire())
        assert int.from_bytes(framed[:2], "big") == len(query.to_wire())

    def test_truncated_prefix_rejected(self):
        with pytest.raises(FramingError):
            list(iter_frames(b"\x00"))

    def test_truncated_body_rejected(self):
        with pytest.raises(FramingError):
            list(iter_frames(b"\x00\x10short"))

    def test_oversized_message_rejected(self):
        with pytest.raises(FramingError):
            frame_message(b"\x00" * 70_000)

    def test_empty_payload_is_empty_stream(self):
        assert deframe_stream(b"") == []


class TestAxfrOverTcp:
    def test_full_axfr_stream_frames(self, validatable_zone):
        server = AxfrServer(validatable_zone)
        query = Message.make_query(ROOT_NAME, RRType.AXFR)
        stream = list(server.stream(query))
        payload = frame_stream(stream)
        messages = deframe_stream(payload)
        assert len(messages) == len(stream)
        total_answers = sum(len(m.answers) for m in messages)
        assert total_answers == len(validatable_zone) + 1

    def test_payload_size_accounting(self, validatable_zone):
        server = AxfrServer(validatable_zone)
        query = Message.make_query(ROOT_NAME, RRType.AXFR)
        stream = list(server.stream(query))
        frames, octets = axfr_payload_size(stream)
        assert frames == len(stream)
        assert octets == len(frame_stream(stream))
        # ~140 synthetic TLDs transfer at tens of kB; the real root zone
        # (~1,450 TLDs) is ~2 MB — same order per delegation.
        assert 50_000 < octets < 5_000_000
