"""Name compression (writer side) and EDNS(0)."""

import pytest

from repro.dns.compress import CompressionContext, compress_names, compression_ratio
from repro.dns.constants import RRClass, RRType, Rcode
from repro.dns.edns import (
    DEFAULT_PAYLOAD_SIZE,
    EdnsOptions,
    add_edns,
    get_edns,
    strip_edns,
    wants_dnssec,
)
from repro.dns.message import Message
from repro.dns.name import Name, ROOT_NAME


class TestCompression:
    def test_repeated_name_becomes_pointer(self):
        name = Name.from_text("a.root-servers.net.")
        wire = compress_names([name, name])
        # first occurrence full (20 bytes), second a 2-byte pointer
        assert len(wire) == len(name.to_wire()) + 2

    def test_shared_suffix_compressed(self):
        a = Name.from_text("a.root-servers.net.")
        b = Name.from_text("b.root-servers.net.")
        wire = compress_names([a, b])
        assert len(wire) == len(a.to_wire()) + 2 + 2  # label 'b' + pointer

    def test_decoder_roundtrip(self):
        names = [
            Name.from_text("a.root-servers.net."),
            Name.from_text("b.root-servers.net."),
            Name.from_text("ns1.nic.world."),
            Name.from_text("world."),
        ]
        wire = compress_names(names)
        offset = 0
        decoded = []
        for _ in names:
            name, offset = Name.from_wire(wire, offset)
            decoded.append(name)
        assert decoded == names

    def test_case_insensitive_matching_preserves_case(self):
        upper = Name.from_text("WORLD.")
        lower = Name.from_text("world.")
        wire = compress_names([upper, lower])
        first, offset = Name.from_wire(wire, 0)
        second, _ = Name.from_wire(wire, offset)
        assert first.labels[0] == b"WORLD"  # original case kept
        assert second == lower  # pointer resolves to the first

    def test_root_name_is_single_zero(self):
        wire = compress_names([ROOT_NAME, ROOT_NAME])
        assert wire == b"\x00\x00"  # root never gets a pointer

    def test_ratio_on_zone_owner_names(self, validatable_zone):
        names = [r.name for r in validatable_zone.records]
        ratio = compression_ratio(names)
        assert ratio > 0.3  # root zone names compress well

    def test_offsets_respect_initial_prefix(self):
        name = Name.from_text("example.")
        out = bytearray(b"\x00" * 12)  # header-sized prefix
        context = CompressionContext()
        context.write_name(name, out)
        context.write_name(name, out)
        decoded, _ = Name.from_wire(bytes(out), 12 + len(name.to_wire()))
        assert decoded == name


class TestEdns:
    def test_add_and_get(self):
        query = Message.make_query(ROOT_NAME, RRType.NS)
        add_edns(query, payload_size=4096, dnssec_ok=True)
        options = get_edns(query)
        assert options is not None
        assert options.payload_size == 4096
        assert options.dnssec_ok
        assert options.version == 0

    def test_wants_dnssec(self):
        query = Message.make_query(ROOT_NAME, RRType.NS)
        assert not wants_dnssec(query)
        add_edns(query, dnssec_ok=True)
        assert wants_dnssec(query)
        add_edns(query, dnssec_ok=False)  # idempotent replace
        assert not wants_dnssec(query)
        assert len(query.additional) == 1

    def test_strip(self):
        query = Message.make_query(ROOT_NAME, RRType.NS)
        add_edns(query)
        strip_edns(query)
        assert get_edns(query) is None

    def test_wire_roundtrip(self):
        query = Message.make_query(ROOT_NAME, RRType.SOA)
        add_edns(query, payload_size=1232, dnssec_ok=True)
        decoded = Message.from_wire(query.to_wire())
        options = get_edns(decoded)
        assert options is not None
        assert options.payload_size == DEFAULT_PAYLOAD_SIZE
        assert options.dnssec_ok

    def test_options_record_roundtrip(self):
        options = EdnsOptions(payload_size=512, version=0, dnssec_ok=False)
        assert EdnsOptions.from_record(options.to_record()) == options

    def test_from_non_opt_rejected(self):
        query = Message.make_query(ROOT_NAME, RRType.NS)
        with pytest.raises(ValueError):
            EdnsOptions.from_record(
                # abuse: question not a record; build a simple NS record
                __import__("repro.dns.records", fromlist=["ResourceRecord"]).ResourceRecord(
                    ROOT_NAME, RRType.NS, RRClass.IN, 1,
                    __import__("repro.dns.rdata", fromlist=["NS"]).NS(ROOT_NAME),
                )
            )


class TestServerDnssecBehaviour:
    def test_rrsig_only_with_do_bit(self, site_catalog, zone_builder):
        from repro.rss.operators import root_server
        from repro.rss.server import RootServerDeployment
        from repro.util.timeutil import parse_ts
        from repro.zone.distribution import ZoneDistributor

        deployment = RootServerDeployment(
            root_server("k"), site_catalog.of_letter("k"), ZoneDistributor(zone_builder)
        )
        site_key = deployment.sites[0].key
        ts = parse_ts("2023-12-10T12:00:00")

        plain = Message.make_query(ROOT_NAME, RRType.SOA)
        answer_plain = deployment.answer(site_key, plain, ts)
        assert not answer_plain.answer_rrs(RRType.RRSIG)

        dnssec = Message.make_query(ROOT_NAME, RRType.SOA)
        add_edns(dnssec, dnssec_ok=True)
        answer_do = deployment.answer(site_key, dnssec, ts)
        assert answer_do.answer_rrs(RRType.RRSIG)
        options = get_edns(answer_do)
        assert options is not None and options.dnssec_ok
