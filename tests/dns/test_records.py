"""Resource records and RRsets."""

import pytest

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name, ROOT_NAME
from repro.dns.rdata import A, NS
from repro.dns.records import ResourceRecord, RRset, group_rrsets


def ns(target: str, owner: str = ".", ttl: int = 518400) -> ResourceRecord:
    return ResourceRecord(
        Name.from_text(owner), RRType.NS, RRClass.IN, ttl, NS(Name.from_text(target))
    )


class TestResourceRecord:
    def test_wire_roundtrip(self):
        record = ns("a.root-servers.net.")
        decoded, end = ResourceRecord.from_wire(record.to_wire(), 0)
        assert decoded.name == record.name
        assert decoded.rdata == record.rdata
        assert decoded.ttl == record.ttl
        assert end == len(record.to_wire())

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            ns("a.example.", ttl=-1)

    def test_canonical_wire_lowercases_owner(self):
        upper = ResourceRecord(
            Name.from_text("WORLD."), RRType.NS, RRClass.IN, 1,
            NS(Name.from_text("ns1.nic.world.")),
        )
        lower = ResourceRecord(
            Name.from_text("world."), RRType.NS, RRClass.IN, 1,
            NS(Name.from_text("ns1.nic.world.")),
        )
        assert upper.canonical_wire() == lower.canonical_wire()

    def test_canonical_wire_ttl_override(self):
        record = ns("a.example.", ttl=100)
        assert record.canonical_wire(200) != record.canonical_wire()
        assert record.canonical_wire(100) == record.canonical_wire()

    def test_canonical_wire_memoised(self):
        record = ns("a.example.")
        assert record.canonical_wire() is record.canonical_wire()

    def test_to_text_fields(self):
        fields = ns("a.root-servers.net.").to_text().split("\t")
        assert fields[0] == "."
        assert fields[2] == "IN"
        assert fields[3] == "NS"


class TestRRset:
    def test_groups_same_key(self):
        rrset = RRset([ns("a.example."), ns("b.example.")])
        assert len(rrset) == 2
        assert rrset.rrtype == RRType.NS

    def test_rejects_mixed_keys(self):
        a = ns("a.example.")
        other = ResourceRecord(
            Name.from_text("com."), RRType.NS, RRClass.IN, 1,
            NS(Name.from_text("x.example.")),
        )
        with pytest.raises(ValueError):
            RRset([a, other])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RRset([])

    def test_ttl_is_minimum(self):
        rrset = RRset([ns("a.example.", ttl=100), ns("b.example.", ttl=50)])
        assert rrset.ttl == 50

    def test_canonical_records_sorted_by_rdata(self):
        rrset = RRset([ns("zz.example."), ns("aa.example.")])
        ordered = rrset.canonical_records()
        assert ordered[0].rdata.canonical_wire() < ordered[1].rdata.canonical_wire()

    def test_canonical_wire_is_concatenation(self):
        rrset = RRset([ns("b.example."), ns("a.example.")])
        wire = rrset.canonical_wire()
        parts = [r.canonical_wire() for r in rrset.canonical_records()]
        assert wire == b"".join(parts)


class TestGrouping:
    def test_group_rrsets_partitions(self):
        a1 = ns("a.example.")
        a2 = ns("b.example.")
        glue = ResourceRecord(
            Name.from_text("a.example."), RRType.A, RRClass.IN, 1, A("192.0.2.1")
        )
        groups = group_rrsets([a1, glue, a2])
        assert len(groups) == 2
        assert {len(g) for g in groups} == {1, 2}

    def test_group_preserves_first_seen_order(self):
        glue = ResourceRecord(
            Name.from_text("x."), RRType.A, RRClass.IN, 1, A("192.0.2.1")
        )
        groups = group_rrsets([ns("a.example."), glue])
        assert groups[0].rrtype == RRType.NS
        assert groups[1].rrtype == RRType.A
