"""DNS message codec."""

import pytest

from repro.dns.constants import Opcode, RRClass, RRType, Rcode
from repro.dns.message import FLAG_AA, FLAG_QR, Header, Message, Question
from repro.dns.name import Name, ROOT_NAME
from repro.dns.rdata import A, NS, TXT
from repro.dns.records import ResourceRecord


class TestHeader:
    def test_flags_roundtrip(self):
        header = Header(msg_id=7, qr=True, aa=True, rd=True, rcode=Rcode.NXDOMAIN)
        got = Header.from_flags_word(7, header.flags_word())
        assert got == header

    def test_qr_bit_position(self):
        assert Header(qr=True).flags_word() & FLAG_QR

    def test_aa_bit_position(self):
        assert Header(aa=True).flags_word() & FLAG_AA

    def test_opcode_encoded(self):
        word = Header(opcode=Opcode.NOTIFY).flags_word()
        assert (word >> 11) & 0xF == 4


class TestMessageCodec:
    def test_query_roundtrip(self):
        query = Message.make_query(ROOT_NAME, RRType.NS, msg_id=99)
        got = Message.from_wire(query.to_wire())
        assert got.header.msg_id == 99
        assert got.question.qname.is_root()
        assert got.question.qtype == RRType.NS

    def test_chaos_query_roundtrip(self):
        query = Message.make_query(
            Name.from_text("hostname.bind."), RRType.TXT, RRClass.CH
        )
        got = Message.from_wire(query.to_wire())
        assert got.question.qclass == RRClass.CH

    def test_response_with_answers_roundtrip(self):
        query = Message.make_query(ROOT_NAME, RRType.NS)
        response = query.make_response()
        response.answers.append(
            ResourceRecord(
                ROOT_NAME, RRType.NS, RRClass.IN, 518400,
                NS(Name.from_text("a.root-servers.net.")),
            )
        )
        response.additional.append(
            ResourceRecord(
                Name.from_text("a.root-servers.net."), RRType.A, RRClass.IN,
                518400, A("198.41.0.4"),
            )
        )
        got = Message.from_wire(response.to_wire())
        assert len(got.answers) == 1
        assert len(got.additional) == 1
        assert got.answers[0].rdata == response.answers[0].rdata

    def test_response_echoes_id_and_question(self):
        query = Message.make_query(ROOT_NAME, RRType.SOA, msg_id=1234)
        response = query.make_response()
        assert response.header.msg_id == 1234
        assert response.header.qr
        assert response.questions == query.questions

    def test_trailing_garbage_rejected(self):
        wire = Message.make_query(ROOT_NAME, RRType.NS).to_wire() + b"\x00"
        with pytest.raises(ValueError):
            Message.from_wire(wire)

    def test_short_message_rejected(self):
        with pytest.raises(ValueError):
            Message.from_wire(b"\x00" * 11)

    def test_answer_rrs_filters_by_type(self):
        msg = Message()
        msg.answers.append(
            ResourceRecord(ROOT_NAME, RRType.NS, RRClass.IN, 1,
                           NS(Name.from_text("a.example.")))
        )
        msg.answers.append(
            ResourceRecord(ROOT_NAME, RRType.TXT, RRClass.IN, 1,
                           TXT.from_string("x"))
        )
        assert len(msg.answer_rrs(RRType.NS)) == 1
        assert len(msg.answer_rrs(RRType.TXT)) == 1
        assert len(msg.answer_rrs(RRType.A)) == 0
