"""Domain name encoding, parsing and canonical ordering."""

import pytest

from repro.dns.name import Name, NameError_, ROOT_NAME


class TestParsing:
    def test_root_from_dot(self):
        assert Name.from_text(".").is_root()

    def test_root_text_form(self):
        assert ROOT_NAME.to_text() == "."

    def test_simple_name(self):
        name = Name.from_text("www.example.com.")
        assert name.labels == (b"www", b"example", b"com")

    def test_trailing_dot_optional(self):
        assert Name.from_text("example.com") == Name.from_text("example.com.")

    def test_escaped_dot_in_label(self):
        name = Name.from_text(r"a\.b.example.")
        assert name.labels[0] == b"a.b"

    def test_decimal_escape(self):
        name = Name.from_text(r"a\065.example.")
        assert name.labels[0] == b"aA"

    def test_dangling_escape_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("example\\")

    def test_oversized_label_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("a" * 64 + ".example.")

    def test_oversized_name_rejected(self):
        labels = ".".join("a" * 63 for _ in range(5))
        with pytest.raises(NameError_):
            Name.from_text(labels + ".")


class TestWire:
    def test_root_wire_is_single_zero(self):
        assert ROOT_NAME.to_wire() == b"\x00"

    def test_wire_roundtrip(self):
        name = Name.from_text("ns1.nic.world.")
        decoded, end = Name.from_wire(name.to_wire())
        assert decoded == name
        assert end == len(name.to_wire())

    def test_compression_pointer_followed(self):
        # "example.com." at offset 0, then a pointer to it at offset 13.
        base = Name.from_text("example.com.").to_wire()
        wire = base + b"\xc0\x00"
        decoded, end = Name.from_wire(wire, len(base))
        assert decoded == Name.from_text("example.com.")
        assert end == len(wire)

    def test_forward_pointer_rejected(self):
        with pytest.raises(NameError_):
            Name.from_wire(b"\xc0\x05")

    def test_truncated_name_rejected(self):
        with pytest.raises(NameError_):
            Name.from_wire(b"\x05abc")

    def test_pointer_with_prefix_label(self):
        base = Name.from_text("example.com.").to_wire()
        wire = base + b"\x03www\xc0\x00"
        decoded, end = Name.from_wire(wire, len(base))
        assert decoded == Name.from_text("www.example.com.")
        assert end == len(wire)


class TestCanonical:
    def test_case_insensitive_equality(self):
        assert Name.from_text("EXAMPLE.com.") == Name.from_text("example.COM.")

    def test_hash_case_insensitive(self):
        assert hash(Name.from_text("A.b.")) == hash(Name.from_text("a.B."))

    def test_canonical_wire_lowercases(self):
        assert Name.from_text("WWW.Example.").canonical_wire() == (
            Name.from_text("www.example.").to_wire()
        )

    def test_rfc4034_ordering_example(self):
        # RFC 4034 §6.1's canonical ordering example.
        ordered_texts = [
            "example.",
            "a.example.",
            "yljkjljk.a.example.",
            "Z.a.example.",
            "zABC.a.EXAMPLE.",
            "z.example.",
        ]
        names = [Name.from_text(t) for t in ordered_texts]
        assert sorted(names, key=lambda n: n.canonical_key()) == names

    def test_root_sorts_first(self):
        names = [Name.from_text("com."), ROOT_NAME, Name.from_text("a.com.")]
        assert sorted(names, key=lambda n: n.canonical_key())[0].is_root()


class TestStructure:
    def test_parent(self):
        assert Name.from_text("www.example.com.").parent() == Name.from_text(
            "example.com."
        )

    def test_root_has_no_parent(self):
        with pytest.raises(NameError_):
            ROOT_NAME.parent()

    def test_subdomain(self):
        assert Name.from_text("a.b.com.").is_subdomain_of(Name.from_text("com."))
        assert not Name.from_text("com.").is_subdomain_of(Name.from_text("a.com."))

    def test_everything_is_subdomain_of_root(self):
        assert Name.from_text("x.y.").is_subdomain_of(ROOT_NAME)

    def test_concatenate(self):
        combined = Name.from_text("www.").concatenate(Name.from_text("example.com."))
        assert combined == Name.from_text("www.example.com.")

    def test_len_counts_labels(self):
        assert len(Name.from_text("a.b.c.")) == 3
        assert len(ROOT_NAME) == 0

    def test_immutable(self):
        name = Name.from_text("example.")
        with pytest.raises(AttributeError):
            name.anything = 1
