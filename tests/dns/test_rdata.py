"""RDATA types: wire round-trips, text forms, validation."""

import pytest

from repro.dns.constants import RRType
from repro.dns.name import Name
from repro.dns import rdata as rd


def roundtrip(rdata):
    wire = rdata.to_wire()
    return type(rdata).decode(wire, 0, len(wire))


class TestAddresses:
    def test_a_roundtrip(self):
        a = rd.A("198.41.0.4")
        assert roundtrip(a) == a

    def test_a_wire_is_packed(self):
        assert rd.A("1.2.3.4").to_wire() == b"\x01\x02\x03\x04"

    def test_a_rejects_bad_address(self):
        with pytest.raises(ValueError):
            rd.A("300.1.1.1")

    def test_a_wrong_rdlength_rejected(self):
        with pytest.raises(rd.RdataError):
            rd.A.decode(b"\x01\x02\x03", 0, 3)

    def test_aaaa_roundtrip(self):
        aaaa = rd.AAAA("2001:500:200::b")
        assert roundtrip(aaaa) == aaaa

    def test_aaaa_normalises_text(self):
        assert rd.AAAA("2001:0500:0200::000b").address == "2001:500:200::b"

    def test_aaaa_text(self):
        assert rd.AAAA("2001:7fe::53").to_text() == "2001:7fe::53"


class TestNamesInRdata:
    def test_ns_roundtrip(self):
        ns = rd.NS(Name.from_text("a.root-servers.net."))
        assert roundtrip(ns) == ns

    def test_ns_canonical_lowercases(self):
        upper = rd.NS(Name.from_text("A.ROOT-SERVERS.NET."))
        lower = rd.NS(Name.from_text("a.root-servers.net."))
        assert upper.canonical_wire() == lower.canonical_wire()

    def test_mx_roundtrip(self):
        mx = rd.MX(10, Name.from_text("mail.example."))
        assert roundtrip(mx) == mx

    def test_soa_roundtrip(self):
        soa = rd.SOA(
            Name.from_text("a.root-servers.net."),
            Name.from_text("nstld.verisign-grs.com."),
            2023112700, 1800, 900, 604800, 86400,
        )
        assert roundtrip(soa) == soa

    def test_soa_text_fields(self):
        soa = rd.SOA(
            Name.from_text("m."), Name.from_text("r."), 1, 2, 3, 4, 5
        )
        assert soa.to_text().split()[2:] == ["1", "2", "3", "4", "5"]


class TestTxt:
    def test_single_string_roundtrip(self):
        txt = rd.TXT.from_string("io.ams.k.root-servers.org")
        assert roundtrip(txt) == txt

    def test_long_string_split(self):
        txt = rd.TXT.from_string("x" * 300)
        assert len(txt.strings) == 2
        assert txt.single_text() == "x" * 300

    def test_empty_forbidden(self):
        with pytest.raises(rd.RdataError):
            rd.TXT(())

    def test_oversize_string_forbidden(self):
        with pytest.raises(rd.RdataError):
            rd.TXT((b"x" * 256,))


class TestDnskey:
    def test_roundtrip(self):
        key = rd.DNSKEY(257, 3, 8, b"\x01\x02\x03\x04" * 8)
        assert roundtrip(key) == key

    def test_key_tag_stable(self):
        key = rd.DNSKEY(256, 3, 8, bytes(range(32)))
        assert key.key_tag() == rd.DNSKEY(256, 3, 8, bytes(range(32))).key_tag()

    def test_key_tag_varies_with_key(self):
        a = rd.DNSKEY(256, 3, 8, b"a" * 32)
        b = rd.DNSKEY(256, 3, 8, b"b" * 32)
        assert a.key_tag() != b.key_tag()

    def test_sep_flag(self):
        assert rd.DNSKEY(257, 3, 8, b"k").is_sep()
        assert not rd.DNSKEY(256, 3, 8, b"k").is_sep()


class TestRrsig:
    def make(self):
        return rd.RRSIG(
            type_covered=int(RRType.NSEC),
            algorithm=8,
            labels=1,
            original_ttl=86400,
            expiration=1701406800,
            inception=1700283600,
            key_tag=46780,
            signer=Name.from_text("."),
            signature=b"\xaa" * 32,
        )

    def test_roundtrip(self):
        sig = self.make()
        assert roundtrip(sig) == sig

    def test_signed_data_prefix_excludes_signature(self):
        sig = self.make()
        prefix = sig.signed_data_prefix()
        assert not prefix.endswith(sig.signature)
        assert len(prefix) == len(sig.to_wire()) - len(sig.signature)

    def test_text_mentions_covered_type(self):
        assert self.make().to_text().startswith("NSEC ")


class TestNsec:
    def test_roundtrip_with_bitmap(self):
        nsec = rd.NSEC(
            Name.from_text("world."),
            (int(RRType.NS), int(RRType.DS), int(RRType.RRSIG), int(RRType.NSEC)),
        )
        got = roundtrip(nsec)
        assert got.next_name == nsec.next_name
        assert set(got.types) == set(nsec.types)

    def test_high_type_window(self):
        nsec = rd.NSEC(Name.from_text("a."), (1, 300))
        assert set(roundtrip(nsec).types) == {1, 300}

    def test_text_lists_mnemonics(self):
        nsec = rd.NSEC(Name.from_text("a."), (int(RRType.NS),))
        assert "NS" in nsec.to_text()


class TestZonemd:
    def test_roundtrip(self):
        z = rd.ZONEMD(2023120600, 1, 1, b"\x12" * 48)
        assert roundtrip(z) == z

    def test_digest_too_short_rejected(self):
        with pytest.raises(rd.RdataError):
            rd.ZONEMD(1, 1, 1, b"\x00" * 11)

    def test_text_contains_serial_and_hex(self):
        z = rd.ZONEMD(42, 1, 1, b"\xab" * 12)
        text = z.to_text()
        assert text.startswith("42 1 1 ")
        assert "AB" * 12 in text


class TestGeneric:
    def test_unknown_type_parsed_as_generic(self):
        got = rd.Rdata.parse(65280, b"\xde\xad\xbe\xef", 0, 4)
        assert isinstance(got, rd.Generic)
        assert got.data == b"\xde\xad\xbe\xef"

    def test_generic_text_rfc3597(self):
        generic = rd.Generic(65280, b"\x01\x02")
        assert generic.to_text() == "\\# 2 0102"
