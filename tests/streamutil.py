"""Shared helpers for the streaming-campaign test suites.

Byte-level dataset-tree comparison (the checkpoint/resume invariant is
*byte* identity of the finalized directory, not structural equality) and
the tiny five-round study configuration the streaming tests stream in
multiple small chunks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

from repro.core import StudyConfig
from repro.util.timeutil import parse_ts

# Five rounds at 2023-11-25..11-30 with interval_scale 96 — small enough
# to stream in seconds, and not a multiple of checkpoint_every=2, so the
# tail chunk is shorter than the others.
TINY_STREAM_SEED = 77


def tiny_stream_config(**overrides) -> StudyConfig:
    base = dict(
        seed=TINY_STREAM_SEED,
        ring_scale=0.02,
        interval_scale=96.0,
        campaign_start=parse_ts("2023-11-25"),
        campaign_end=parse_ts("2023-11-30"),
        rtt_sample_every=1,
        traceroute_sample_every=2,
        axfr_sample_every=2,
        clean_transfer_keep_one_in=20,
    )
    base.update(overrides)
    return StudyConfig(**base)


def tree_bytes(root) -> Dict[str, bytes]:
    """Every file under *root*, keyed by relative path."""
    root = Path(root)
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


def assert_trees_identical(expected, actual) -> None:
    """Both directory trees hold byte-for-byte the same files."""
    left, right = tree_bytes(expected), tree_bytes(actual)
    assert set(left) == set(right), sorted(set(left) ^ set(right))
    different = [name for name in left if left[name] != right[name]]
    assert not different, different
