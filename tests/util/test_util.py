"""Utility layer: RNG streams, time, statistics, tables."""

import pytest

from repro.util.rng import RngFactory, derive_seed
from repro.util.stats import Ecdf, describe, histogram, median, percentile, shares
from repro.util.tables import Table, render_histogram, render_series
from repro.util.timeutil import (
    DAY,
    SimClock,
    day_of,
    format_day,
    format_ts,
    parse_ts,
)


class TestRng:
    def test_streams_independent_and_stable(self):
        factory = RngFactory(1)
        a1 = factory.stream("a").random()
        factory2 = RngFactory(1)
        b = factory2.stream("b").random()
        a2 = factory2.stream("a")
        # Re-seeded factory reproduces stream "a" regardless of "b" use.
        assert a2.random() == a1
        assert b != a1

    def test_stream_identity(self):
        factory = RngFactory(1)
        assert factory.stream("x") is factory.stream("x")

    def test_fork_independent(self):
        factory = RngFactory(1)
        forked = factory.fork("child")
        assert forked.stream("a").random() != factory.stream("a").random()

    def test_derive_seed_differs(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_reset(self):
        factory = RngFactory(1)
        first = factory.stream("a").random()
        factory.reset()
        assert factory.stream("a").random() == first

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("nope")


class TestTime:
    def test_parse_format_roundtrip(self):
        ts = parse_ts("2023-11-27T12:34:56")
        assert format_ts(ts) == "2023-11-27T12:34:56"

    def test_parse_day(self):
        assert parse_ts("2023-11-27") % DAY == 0

    def test_format_day(self):
        assert format_day(parse_ts("2023-11-27T23:59:59")) == "2023-11-27"

    def test_day_of(self):
        ts = parse_ts("2023-11-27T13:00:00")
        assert day_of(ts) == parse_ts("2023-11-27")

    def test_clock_advance(self):
        clock = SimClock(100)
        assert clock.advance(50) == 150
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_clock_no_backwards_set(self):
        clock = SimClock(100)
        clock.set(200)
        with pytest.raises(ValueError):
            clock.set(100)


class TestStats:
    def test_percentile_interpolates(self):
        assert percentile([0, 10], 50) == 5.0
        assert percentile([1, 2, 3, 4], 100) == 4.0

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_median(self):
        assert median([3, 1, 2]) == 2

    def test_describe(self):
        summary = describe([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == 2.5

    def test_ecdf_basic(self):
        ecdf = Ecdf([1, 2, 2, 4])
        assert ecdf.cdf(2) == 0.75
        assert ecdf.ccdf(2) == 0.25
        assert ecdf.cdf(0) == 0.0
        assert ecdf.cdf(5) == 1.0

    def test_ecdf_points_distinct_ascending(self):
        points = Ecdf([3, 1, 1, 2]).points()
        xs = [x for x, _ in points]
        assert xs == [1, 2, 3]

    def test_ecdf_quantile(self):
        assert Ecdf([0, 10]).quantile(0.5) == 5.0

    def test_histogram(self):
        counts = histogram([0.5, 1.5, 1.6, 3.0], bins=[0, 1, 2, 3])
        assert counts == [1, 2, 1]  # last bin closed

    def test_shares(self):
        assert shares({"a": 1, "b": 3}) == {"a": 0.25, "b": 0.75}
        assert shares({"a": 0}) == {"a": 0.0}


class TestTables:
    def test_render_alignment(self):
        table = Table(["name", "value"])
        table.add_row(["x", 1])
        table.add_row(["longer", 123.456])
        rendered = table.render("T")
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert len({len(l) for l in lines[1:]}) == 1  # aligned widths

    def test_row_length_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_none_renders_dash(self):
        table = Table(["a"])
        table.add_row([None])
        assert "-" in table.render().splitlines()[-1]

    def test_histogram_render(self):
        out = render_histogram(["x", "y"], [2, 4], width=8)
        assert "####" in out

    def test_histogram_length_mismatch(self):
        with pytest.raises(ValueError):
            render_histogram(["x"], [1, 2])

    def test_series_render(self):
        out = render_series([1, 2], [0.5, 0.25], "s")
        assert out.splitlines()[0] == "s"
        assert len(out.splitlines()) == 3
