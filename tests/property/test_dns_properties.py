"""Property-based tests on the DNS core data structures."""

import string

from hypothesis import given, settings, strategies as st

from repro.dns.constants import RRClass, RRType
from repro.dns.message import Header, Message
from repro.dns.name import Name
from repro.dns.rdata import A, AAAA, NSEC, TXT, ZONEMD
from repro.dns.records import ResourceRecord

label_st = st.text(
    alphabet=string.ascii_letters + string.digits + "-", min_size=1, max_size=20
).filter(lambda s: not s.startswith("-"))

name_st = st.lists(label_st, min_size=0, max_size=5).map(
    lambda labels: Name(tuple(l.encode() for l in labels))
)

ipv4_st = st.tuples(*[st.integers(0, 255)] * 4).map(
    lambda t: ".".join(str(b) for b in t)
)

ipv6_st = st.tuples(*[st.integers(0, 0xFFFF)] * 8).map(
    lambda t: ":".join(f"{w:x}" for w in t)
)


class TestNameProperties:
    @given(name_st)
    @settings(max_examples=200)
    def test_wire_roundtrip(self, name):
        decoded, end = Name.from_wire(name.to_wire())
        assert decoded == name
        assert end == len(name.to_wire())

    @given(name_st)
    @settings(max_examples=200)
    def test_text_roundtrip(self, name):
        assert Name.from_text(name.to_text()) == name

    @given(name_st)
    def test_canonical_wire_idempotent(self, name):
        lowered = name.lowered()
        assert lowered.canonical_wire() == name.canonical_wire()
        assert lowered.lowered() == lowered

    @given(name_st, name_st)
    def test_ordering_total(self, a, b):
        # canonical order is a total order: exactly one of <, ==, > holds.
        ka, kb = a.canonical_key(), b.canonical_key()
        assert (ka < kb) + (ka == kb) + (ka > kb) == 1

    @given(name_st, name_st)
    def test_concatenate_subdomain(self, prefix, suffix):
        try:
            combined = prefix.concatenate(suffix)
        except ValueError:
            return  # exceeded 255 octets — fine
        assert combined.is_subdomain_of(suffix)

    @given(name_st)
    def test_hash_consistent_with_eq(self, name):
        clone = Name.from_text(name.to_text())
        assert clone == name
        assert hash(clone) == hash(name)


class TestRdataProperties:
    @given(ipv4_st)
    def test_a_roundtrip(self, address):
        rdata = A(address)
        assert A.decode(rdata.to_wire(), 0, 4) == rdata

    @given(ipv6_st)
    def test_aaaa_roundtrip(self, address):
        rdata = AAAA(address)
        assert AAAA.decode(rdata.to_wire(), 0, 16) == rdata

    @given(st.lists(st.binary(min_size=0, max_size=255), min_size=1, max_size=4))
    def test_txt_roundtrip(self, strings):
        rdata = TXT(tuple(strings))
        wire = rdata.to_wire()
        assert TXT.decode(wire, 0, len(wire)) == rdata

    @given(st.sets(st.integers(1, 500), min_size=0, max_size=20), name_st)
    def test_nsec_bitmap_roundtrip(self, types, next_name):
        rdata = NSEC(next_name, tuple(sorted(types)))
        wire = rdata.to_wire()
        decoded = NSEC.decode(wire, 0, len(wire))
        assert set(decoded.types) == types

    @given(
        st.integers(0, 2**32 - 1),
        st.binary(min_size=12, max_size=64),
    )
    def test_zonemd_roundtrip(self, serial, digest):
        rdata = ZONEMD(serial, 1, 1, digest)
        wire = rdata.to_wire()
        assert ZONEMD.decode(wire, 0, len(wire)) == rdata


class TestMessageProperties:
    @given(
        st.integers(0, 0xFFFF),
        name_st,
        st.sampled_from([RRType.A, RRType.NS, RRType.SOA, RRType.TXT, RRType.ZONEMD]),
        st.sampled_from([RRClass.IN, RRClass.CH]),
    )
    @settings(max_examples=200)
    def test_query_roundtrip(self, msg_id, qname, qtype, qclass):
        query = Message.make_query(qname, qtype, qclass, msg_id=msg_id)
        decoded = Message.from_wire(query.to_wire())
        assert decoded.header.msg_id == msg_id
        assert decoded.question.qname == qname
        assert decoded.question.qtype == qtype
        assert decoded.question.qclass == qclass

    @given(st.integers(0, 0xFFFF), st.booleans(), st.booleans(), st.booleans())
    def test_header_flags_roundtrip(self, msg_id, qr, aa, rd):
        header = Header(msg_id=msg_id, qr=qr, aa=aa, rd=rd)
        decoded = Header.from_flags_word(msg_id, header.flags_word())
        assert decoded == header
