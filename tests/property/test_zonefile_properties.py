"""Property-based tests: master-file rendering round-trips arbitrary
record mixes, and the zone container's invariants hold."""

import string

from hypothesis import given, settings, strategies as st

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name, ROOT_NAME
from repro.dns.rdata import A, AAAA, NS, SOA, TXT
from repro.dns.records import ResourceRecord
from repro.zone.zone import Zone
from repro.zone.zonefile import parse_zone_text, render_zone_text

label_st = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=12)

tld_name_st = label_st.map(lambda l: Name.from_text(f"{l}."))

ipv4_st = st.tuples(*[st.integers(0, 255)] * 4).map(
    lambda t: ".".join(str(b) for b in t)
)

ipv6_st = st.tuples(*[st.integers(0, 0xFFFF)] * 8).map(
    lambda t: ":".join(f"{w:x}" for w in t)
)

ttl_st = st.integers(0, 10_000_000)


@st.composite
def record_st(draw):
    owner = draw(tld_name_st)
    kind = draw(st.sampled_from(["NS", "A", "AAAA", "TXT"]))
    ttl = draw(ttl_st)
    if kind == "NS":
        return ResourceRecord(
            owner, RRType.NS, RRClass.IN, ttl, NS(draw(tld_name_st))
        )
    if kind == "A":
        return ResourceRecord(owner, RRType.A, RRClass.IN, ttl, A(draw(ipv4_st)))
    if kind == "AAAA":
        return ResourceRecord(owner, RRType.AAAA, RRClass.IN, ttl, AAAA(draw(ipv6_st)))
    text = draw(st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=40))
    return ResourceRecord(owner, RRType.TXT, RRClass.IN, ttl, TXT.from_string(text))


@st.composite
def zone_st(draw):
    soa = ResourceRecord(
        ROOT_NAME, RRType.SOA, RRClass.IN, 86400,
        SOA(
            Name.from_text("m."), Name.from_text("r."),
            draw(st.integers(0, 2**32 - 1)), 1800, 900, 604800, 86400,
        ),
    )
    records = draw(st.lists(record_st(), min_size=0, max_size=20))
    return Zone(ROOT_NAME, [soa] + records)


class TestZonefileProperties:
    @given(zone_st())
    @settings(max_examples=60, deadline=None)
    def test_render_parse_roundtrip(self, zone):
        text = render_zone_text(zone)
        parsed = parse_zone_text(text)
        original = sorted(r.canonical_wire() for r in zone.records)
        roundtripped = sorted(r.canonical_wire() for r in parsed.records)
        assert roundtripped == original

    @given(zone_st())
    @settings(max_examples=30, deadline=None)
    def test_render_deterministic(self, zone):
        assert render_zone_text(zone) == render_zone_text(zone)

    @given(zone_st())
    @settings(max_examples=30, deadline=None)
    def test_serial_preserved(self, zone):
        parsed = parse_zone_text(render_zone_text(zone))
        assert parsed.serial == zone.serial


class TestZoneProperties:
    @given(zone_st())
    @settings(max_examples=30, deadline=None)
    def test_names_sorted_canonically(self, zone):
        names = zone.names()
        keys = [n.canonical_key() for n in names]
        assert keys == sorted(keys)

    @given(zone_st())
    @settings(max_examples=30, deadline=None)
    def test_stats_consistent(self, zone):
        records, rrsets, owners = zone.stats()
        assert records == len(zone.records)
        assert rrsets <= records
        assert owners <= rrsets

    @given(zone_st())
    @settings(max_examples=30, deadline=None)
    def test_copy_independent(self, zone):
        clone = zone.copy()
        clone.records.pop()
        assert len(clone) == len(zone) - 1
