"""Property-based tests on system invariants: serial arithmetic, ZONEMD
permutation-invariance, statistics helpers, churn bounds, geo metrics."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name, ROOT_NAME
from repro.dns.rdata import NS, SOA
from repro.dns.records import ResourceRecord
from repro.dnssec.zonemd import compute_zone_digest
from repro.geo.coords import GeoPoint, haversine_km
from repro.netsim.churn import ChurnModel
from repro.netsim.mix import mix_float
from repro.util.stats import Ecdf, percentile
from repro.zone.serial import SERIAL_MODULO, serial_add, serial_compare

serial_st = st.integers(0, SERIAL_MODULO - 1)
small_inc = st.integers(0, (1 << 31) - 1)


class TestSerialProperties:
    @given(serial_st, small_inc)
    def test_addition_stays_in_range(self, serial, inc):
        assert 0 <= serial_add(serial, inc) < SERIAL_MODULO

    @given(serial_st, st.integers(1, (1 << 31) - 1))
    def test_added_serial_is_greater(self, serial, inc):
        assert serial_compare(serial, serial_add(serial, inc)) == -1

    @given(serial_st, serial_st)
    def test_comparison_antisymmetric(self, a, b):
        try:
            forward = serial_compare(a, b)
        except ValueError:
            return  # undefined distance
        assert serial_compare(b, a) == -forward


class TestZonemdProperties:
    @st.composite
    def zone_records(draw):
        tlds = draw(
            st.lists(
                st.text(alphabet="abcdefghij", min_size=2, max_size=6),
                min_size=1,
                max_size=8,
                unique=True,
            )
        )
        records = [
            ResourceRecord(
                ROOT_NAME, RRType.SOA, RRClass.IN, 86400,
                SOA(Name.from_text("m."), Name.from_text("r."), 1, 2, 3, 4, 5),
            )
        ]
        for tld in tlds:
            records.append(
                ResourceRecord(
                    Name.from_text(f"{tld}."), RRType.NS, RRClass.IN, 172800,
                    NS(Name.from_text(f"ns.{tld}.")),
                )
            )
        return records

    @given(zone_records(), st.randoms(use_true_random=False))
    @settings(max_examples=50)
    def test_digest_permutation_invariant(self, records, rng):
        digest_a = compute_zone_digest(records, ROOT_NAME)
        shuffled = list(records)
        rng.shuffle(shuffled)
        assert compute_zone_digest(shuffled, ROOT_NAME) == digest_a

    @given(zone_records())
    @settings(max_examples=50)
    def test_digest_duplicate_invariant(self, records):
        assert compute_zone_digest(records + records[1:], ROOT_NAME) == (
            compute_zone_digest(records, ROOT_NAME)
        )


class TestStatsProperties:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    def test_percentile_bounds(self, values):
        p0 = percentile(values, 0)
        p100 = percentile(values, 100)
        p50 = percentile(values, 50)
        assert p0 == min(values)
        assert p100 == max(values)
        assert p0 <= p50 <= p100

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    def test_ecdf_monotone(self, values):
        ecdf = Ecdf(values)
        points = ecdf.points()
        ys = [y for _x, y in points]
        assert all(0.0 <= y <= 1.0 for y in ys)
        # ccdf is non-increasing in x
        assert all(a >= b for a, b in zip(ys, ys[1:]))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50), st.floats(-1e6, 1e6))
    def test_ecdf_cdf_ccdf_complementary(self, values, x):
        ecdf = Ecdf(values)
        assert ecdf.cdf(x) + ecdf.ccdf(x) == 1.0


class TestChurnProperties:
    @given(
        st.integers(0, 10_000),
        st.integers(1, 10),
        st.integers(100, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_index_always_in_range(self, client_id, n_candidates, rounds):
        model = ChurnModel(seed=1, expected_rounds=rounds)
        for rnd in range(min(rounds, 200)):
            index = model.select_index(client_id, "1.2.3.4", "g", 6, rnd, n_candidates)
            assert 0 <= index < n_candidates

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_starts_on_preferred_route(self, client_id):
        model = ChurnModel(seed=9, expected_rounds=8352)
        # The flap probability is capped; round 0 overwhelmingly starts
        # at index 0, and after enough rounds the index returns there.
        indices = [
            model.select_index(client_id, "x", "b", 4, rnd, 5) for rnd in range(100)
        ]
        assert indices.count(0) >= 50


class TestGeoProperties:
    coord_st = st.tuples(
        st.floats(-90.0, 90.0), st.floats(-180.0, 180.0)
    ).map(lambda t: GeoPoint(*t))

    @given(coord_st, coord_st)
    def test_symmetry(self, a, b):
        assert math.isclose(
            haversine_km(a, b), haversine_km(b, a), rel_tol=1e-9, abs_tol=1e-9
        )

    @given(coord_st, coord_st)
    def test_bounds(self, a, b):
        d = haversine_km(a, b)
        assert 0.0 <= d <= 20_038.0  # half circumference

    @given(coord_st, coord_st, coord_st)
    @settings(max_examples=100)
    def test_triangle_inequality(self, a, b, c):
        assert haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-6


class TestMixProperties:
    @given(st.lists(st.integers(0, 2**63 - 1), min_size=1, max_size=5))
    def test_mix_float_in_unit_interval(self, values):
        f = mix_float(*values)
        assert 0.0 <= f < 1.0

    @given(st.integers(0, 2**63 - 1), st.integers(0, 2**63 - 1))
    def test_mix_deterministic(self, a, b):
        assert mix_float(a, b) == mix_float(a, b)
