"""Property tests: columnar shard recombination is a record-level merge.

:mod:`repro.data.columnar` recombines shard outputs at array level —
concatenate, remap interned ids, one stable lexsort.  The contract is
that this is *exactly* the merge a record-at-a-time implementation would
produce: walk every shard's rows, pool them, and stable-sort into
campaign scan order (timestamp, then vp, ties kept in shard order).
These tests pit the vectorised primitives against that naive reference
over generated inputs (uneven shards, empty shards, duplicate keys) and
pit the full :meth:`CampaignCollector.merge` against the serial campaign
across shard counts, with fault injection active.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.columnar import (
    merge_shard_columns,
    remap_lookup,
    scan_order,
    stitch_columns,
)

# (vp, ts, payload) rows; narrow key ranges force duplicate (ts, vp)
# pairs so the stability of the sort is actually exercised.
row_st = st.tuples(
    st.integers(0, 5),
    st.integers(0, 20),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
shards_st = st.lists(
    st.lists(row_st, max_size=30), min_size=1, max_size=8
)

_DTYPES = {"vp": np.int32, "ts": np.int64, "x": np.float32}
_NAMES = ["vp", "ts", "x"]


def _as_part(rows):
    return {
        "vp": np.array([r[0] for r in rows], dtype=np.int32),
        "ts": np.array([r[1] for r in rows], dtype=np.int64),
        "x": np.array([r[2] for r in rows], dtype=np.float32),
    }


class TestMergeShardColumns:
    @given(shards_st)
    @settings(max_examples=100, deadline=None)
    def test_matches_record_level_merge(self, shards):
        merged = merge_shard_columns(
            _NAMES, [_as_part(rows) for rows in shards], empty_dtypes=_DTYPES
        )
        # reference: pool rows in shard order, stable-sort by (ts, vp)
        pooled = [r for rows in shards for r in rows]
        reference = sorted(
            range(len(pooled)), key=lambda i: (pooled[i][1], pooled[i][0])
        )
        assert merged["vp"].tolist() == [pooled[i][0] for i in reference]
        assert merged["ts"].tolist() == [pooled[i][1] for i in reference]
        ref_x = np.array(
            [pooled[i][2] for i in reference], dtype=np.float32
        )
        assert np.array_equal(merged["x"], ref_x)

    @given(shards_st)
    @settings(max_examples=50, deadline=None)
    def test_dtypes_survive_merge(self, shards):
        merged = merge_shard_columns(
            _NAMES, [_as_part(rows) for rows in shards], empty_dtypes=_DTYPES
        )
        for name, dtype in _DTYPES.items():
            assert merged[name].dtype == np.dtype(dtype)

    def test_all_empty_shards_yield_typed_empty_columns(self):
        merged = merge_shard_columns(
            _NAMES, [_as_part([]) for _ in range(4)], empty_dtypes=_DTYPES
        )
        for name, dtype in _DTYPES.items():
            assert len(merged[name]) == 0
            assert merged[name].dtype == np.dtype(dtype)


class TestStitchAndOrder:
    @given(shards_st)
    @settings(max_examples=50, deadline=None)
    def test_stitch_is_plain_concatenation(self, shards):
        stitched = stitch_columns(
            _NAMES, [_as_part(rows) for rows in shards], empty_dtypes=_DTYPES
        )
        pooled = [r for rows in shards for r in rows]
        assert stitched["vp"].tolist() == [r[0] for r in pooled]
        assert stitched["ts"].tolist() == [r[1] for r in pooled]

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 20)), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_scan_order_is_stable(self, pairs):
        columns = {
            "vp": np.array([p[0] for p in pairs], dtype=np.int32),
            "ts": np.array([p[1] for p in pairs], dtype=np.int64),
        }
        order = scan_order(columns)
        reference = sorted(range(len(pairs)), key=lambda i: (pairs[i][1], pairs[i][0]))
        assert order.tolist() == reference


class TestRemapLookup:
    @given(
        st.dictionaries(st.integers(0, 30), st.integers(0, 100), max_size=31),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_gather_equals_dict_lookup(self, mapping, data):
        lookup = remap_lookup(mapping)
        keys = data.draw(
            st.lists(st.sampled_from(sorted(mapping)), max_size=50)
        ) if mapping else []
        ids = np.array(keys, dtype=np.int64)
        assert lookup[ids].tolist() == [mapping[k] for k in keys]

    def test_sized_lookup_covers_unmapped_slots(self):
        lookup = remap_lookup({0: 5}, size=4)
        assert len(lookup) == 4
        assert lookup[0] == 5


class TestCampaignShardCounts:
    """The end-to-end invariant: any shard count merges byte-identically
    to the serial campaign (fault injection active in the tiny config)."""

    @pytest.fixture(scope="class")
    def serial_collector(self):
        from repro.core.pipeline import StudyPipeline

        from tests.core.test_pipeline import tiny_config

        return StudyPipeline(tiny_config()).run().collector

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_merge_equals_serial(self, shards, serial_collector):
        from repro.core.pipeline import (
            StudyPipeline,
        )

        from tests.core.test_pipeline import tiny_config

        merged = StudyPipeline(
            tiny_config().with_sharding(shards)
        ).run().collector
        assert merged.state_dict() == serial_collector.state_dict()
        ours, ref = merged.probe_columns(), serial_collector.probe_columns()
        for name in ours:
            assert np.array_equal(ours[name], ref[name]), name
        ours, ref = (
            merged.traceroute_columns(),
            serial_collector.traceroute_columns(),
        )
        for name in ours:
            assert np.array_equal(ours[name], ref[name]), name
        assert [o.serial for o in merged.transfers] == (
            [o.serial for o in serial_collector.transfers]
        )

    def test_empty_shards_are_neutral_merge_inputs(self, serial_collector):
        """A shard that owned zero VPs contributes an empty collector;
        merging it in must not perturb the result."""
        from repro.core.pipeline import (
            _run_sharded,
            build_platform,
            build_world,
        )
        from repro.vantage.collector import CampaignCollector

        from tests.core.test_pipeline import tiny_config

        config = tiny_config().with_sharding(2)
        world = build_world(config)
        platform = build_platform(config, world)
        world.distributor.reset_faults()
        platform.prober.reset()
        shard_collectors = _run_sharded(config, world, platform)

        empty = CampaignCollector()
        empty.rounds_processed = shard_collectors[0].rounds_processed
        merged = CampaignCollector.merge(shard_collectors + [empty])
        assert merged.state_dict() == serial_collector.state_dict()
        ours, ref = merged.probe_columns(), serial_collector.probe_columns()
        for name in ours:
            assert np.array_equal(ours[name], ref[name]), name
