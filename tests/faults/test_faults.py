"""Fault injectors: bitflips, stale zones, clock skew, and the plan."""

import pytest

from repro.dns.constants import RRType
from repro.dns.name import ROOT_NAME
from repro.dnssec.validate import ValidationError, validate_zone
from repro.dnssec.zonemd import ZonemdStatus, verify_zonemd
from repro.faults.bitflip import BitflipEvent, flip_bit_in_zone
from repro.faults.clock import ClockSkewPlan, SkewEpisode
from repro.faults.plan import default_fault_plan
from repro.faults.stale import StaleZoneEvent
from repro.util.timeutil import DAY, parse_ts

DEC_TS = parse_ts("2023-12-10T16:00:00")


class TestBitflip:
    def event(self, kind="rrsig"):
        return BitflipEvent(
            vp_id=3, start_ts=DEC_TS - 100, end_ts=DEC_TS + 100,
            address="199.7.91.13", kind=kind,
        )

    def test_applies_matching_window_and_address(self):
        event = self.event()
        assert event.applies(3, DEC_TS, "199.7.91.13")
        assert not event.applies(4, DEC_TS, "199.7.91.13")
        assert not event.applies(3, DEC_TS + 200, "199.7.91.13")
        assert not event.applies(3, DEC_TS, "198.41.0.4")

    def test_address_wildcard(self):
        event = BitflipEvent(vp_id=3, start_ts=0, end_ts=10, address=None)
        assert event.applies(3, 5, "anything")

    def test_rrsig_flip_changes_one_record(self, validatable_zone):
        mutated, report = flip_bit_in_zone(validatable_zone, self.event(), DEC_TS)
        assert mutated is not validatable_zone
        differing = [
            i
            for i, (a, b) in enumerate(zip(validatable_zone.records, mutated.records))
            if a.canonical_wire() != b.canonical_wire()
        ]
        assert differing == [report.record_index]
        assert mutated.records[report.record_index].rrtype == RRType.RRSIG

    def test_rrsig_flip_breaks_validation(self, validatable_zone):
        mutated, _report = flip_bit_in_zone(validatable_zone, self.event(), DEC_TS)
        zone_report = validate_zone(mutated.records, ROOT_NAME, now=DEC_TS)
        assert not zone_report.valid
        errors = {i.error for i in zone_report.issues}
        assert ValidationError.BOGUS_SIGNATURE in errors

    def test_rrsig_flip_breaks_zonemd(self, validatable_zone):
        mutated, _ = flip_bit_in_zone(validatable_zone, self.event(), DEC_TS)
        status, _ = verify_zonemd(mutated.records, ROOT_NAME)
        assert status is ZonemdStatus.MISMATCH

    def test_label_flip_renames_tld(self, validatable_zone):
        mutated, report = flip_bit_in_zone(
            validatable_zone, self.event(kind="label"), DEC_TS
        )
        record = mutated.records[report.record_index]
        original = validatable_zone.records[report.record_index]
        assert record.name != original.name
        assert "->" in report.description

    def test_flip_deterministic(self, validatable_zone):
        a, ra = flip_bit_in_zone(validatable_zone, self.event(), DEC_TS)
        b, rb = flip_bit_in_zone(validatable_zone, self.event(), DEC_TS)
        assert ra == rb

    def test_original_zone_untouched(self, validatable_zone):
        before = [r.canonical_wire() for r in validatable_zone.records]
        flip_bit_in_zone(validatable_zone, self.event(), DEC_TS)
        after = [r.canonical_wire() for r in validatable_zone.records]
        assert before == after

    def test_unknown_kind_rejected(self, validatable_zone):
        with pytest.raises(ValueError):
            flip_bit_in_zone(
                validatable_zone, self.event(kind="weird"), DEC_TS
            )


class TestStale:
    def test_window_semantics(self):
        event = StaleZoneEvent("d", "d-001", 100, 200)
        assert not event.active(99)
        assert event.active(100)
        assert event.active(199)
        assert not event.active(200)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            StaleZoneEvent("d", "d-001", 200, 200)


class TestClockSkew:
    def test_episode_window(self):
        episode = SkewEpisode(offset_s=-5 * DAY, start_ts=100, end_ts=200)
        assert episode.offset_at(150) == -5 * DAY
        assert episode.offset_at(50) == 0
        assert episode.offset_at(250) == 0

    def test_plan_lookup(self):
        plan = ClockSkewPlan.paper_like(behind_vp=1, ahead_vp=2)
        assert plan.vp_ids == (1, 2)
        inside = parse_ts("2023-12-22")
        assert plan.offset_for(1, inside) < 0
        assert plan.offset_for(1, parse_ts("2023-08-01")) == 0
        assert plan.offset_for(99, inside) == 0


class TestDefaultPlan:
    def test_every_fault_class_present(self, site_catalog):
        plan = default_fault_plan(site_catalog, n_vps=500)
        assert plan.bitflips
        assert plan.stale_sites
        assert plan.clocks.vp_ids

    def test_scales_to_small_rings(self, site_catalog):
        plan = default_fault_plan(site_catalog, n_vps=10)
        for event in plan.bitflips:
            assert 0 <= event.vp_id < 10

    def test_stale_override(self, site_catalog):
        keys = [site_catalog.of_letter("d")[0].key]
        plan = default_fault_plan(site_catalog, n_vps=10, stale_site_keys=keys)
        assert [e.site_key for e in plan.stale_sites] == keys

    def test_label_flip_scheduled(self, site_catalog):
        plan = default_fault_plan(site_catalog, n_vps=500)
        kinds = {e.kind for e in plan.bitflips}
        assert kinds == {"rrsig", "label"}

    def test_bitflip_for_lookup(self, site_catalog):
        plan = default_fault_plan(site_catalog, n_vps=500)
        event = plan.bitflips[0]
        mid = (event.start_ts + event.end_ts) // 2
        assert plan.bitflip_for(event.vp_id, mid, event.address) is event
        assert plan.bitflip_for(event.vp_id + 1, mid, event.address) is None
