"""Shared fixtures.

The heavyweight fixtures (a campaign run, passive captures) are
session-scoped: they take seconds to build and every analysis test reads
them without mutation.
"""

from __future__ import annotations

import pytest

from repro.core import RootStudy, StudyConfig
from repro.rss.sites import build_site_catalog
from repro.util.rng import RngFactory
from repro.util.timeutil import parse_ts
from repro.zone.rootzone import RootZoneBuilder


TEST_SEED = 1234


@pytest.fixture(scope="session")
def rng_factory() -> RngFactory:
    return RngFactory(TEST_SEED)


@pytest.fixture(scope="session")
def site_catalog(rng_factory):
    return build_site_catalog(rng_factory)


@pytest.fixture(scope="session")
def zone_builder() -> RootZoneBuilder:
    return RootZoneBuilder(seed=TEST_SEED)


@pytest.fixture(scope="session")
def validatable_zone(zone_builder):
    """A zone from the verifiable-ZONEMD era (post 2023-12-06)."""
    return zone_builder.build(parse_ts("2023-12-10T16:00:00"))


@pytest.fixture(scope="session")
def mini_study_config() -> StudyConfig:
    """A two-week window around the b.root change: small but exercises
    the high-resolution schedule phase and the renumbering."""
    return StudyConfig(
        seed=TEST_SEED,
        ring_scale=0.06,
        interval_scale=24.0,
        campaign_start=parse_ts("2023-11-20"),
        campaign_end=parse_ts("2023-12-08"),
        rtt_sample_every=1,
        traceroute_sample_every=1,
        axfr_sample_every=2,
        clean_transfer_keep_one_in=50,
    )


@pytest.fixture(scope="session")
def mini_study(mini_study_config):
    """A completed small campaign (shared read-only)."""
    study = RootStudy(mini_study_config)
    study.run()
    return study


@pytest.fixture(scope="session")
def full_window_study():
    """A coarse campaign over the full 174-day window (faults included),
    used by analyses that need the whole timeline (ZONEMD roll-out,
    stability medians)."""
    config = StudyConfig(
        seed=TEST_SEED,
        ring_scale=0.1,
        ring_min_per_region=8,
        interval_scale=48.0,  # 24 h base interval
        rtt_sample_every=1,
        traceroute_sample_every=2,
        axfr_sample_every=2,
        clean_transfer_keep_one_in=200,
    )
    study = RootStudy(config)
    study.run()
    return study
