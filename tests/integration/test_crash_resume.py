"""Crash-injection harness: SIGKILL at a chunk boundary, then resume.

The acceptance invariant of the streaming layer, checked end-to-end with
real process death: a campaign killed with SIGKILL immediately after a
chunk seal, resumed in a *fresh* process, finalizes into a dataset
directory byte-identical to an uninterrupted run — for both engines and
for sharded rings.  The kill point is drawn from a seeded RNG so the
suite stays deterministic while the boundary under test varies across
the matrix.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.streaming import finalize_streaming_campaign
from repro.data import CHECKPOINT_NAME

from tests.streamutil import assert_trees_identical

REPO_ROOT = Path(__file__).resolve().parents[2]
N_CHUNKS = 3  # 5 rounds, checkpoint_every=2 -> [0,2) [2,4) [4,5)


def _run_child(
    checkpoint_dir, engine, shards, *, workers=1, kill_after=None, resume=False
):
    argv = [
        sys.executable,
        "-m",
        "tests.integration._crash_child",
        str(checkpoint_dir),
        "--engine", engine,
        "--shards", str(shards),
        "--workers", str(workers),
    ]
    if kill_after is not None:
        argv += ["--kill-after-chunk", str(kill_after)]
    if resume:
        argv.append("--resume")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    # Capture into *files*, not pipes: a SIGKILLed child's pool workers
    # hold its inherited stdout/stderr for a moment before the orphan
    # watchdog fires, and pipe capture would wait on them for EOF
    # instead of returning when the child itself is reaped.
    out_path = Path(str(checkpoint_dir) + ".stdout")
    err_path = Path(str(checkpoint_dir) + ".stderr")
    with open(out_path, "w") as out, open(err_path, "w") as err:
        proc = subprocess.run(
            argv, cwd=REPO_ROOT, env=env, stdout=out, stderr=err,
            timeout=600,
        )
    proc.stdout = out_path.read_text()
    proc.stderr = err_path.read_text()
    return proc


@pytest.mark.parametrize("engine", ["epoch", "scalar"])
@pytest.mark.parametrize("shards", [1, 2])
def test_sigkill_at_chunk_boundary_resumes_byte_identical(
    engine, shards, tmp_path
):
    # uninterrupted reference, streamed in its own process
    clean_ckpt = tmp_path / "clean-ckpt"
    done = _run_child(clean_ckpt, engine, shards)
    assert done.returncode == 0, done.stderr
    reference = tmp_path / "reference"
    finalize_streaming_campaign(clean_ckpt, reference, passive=False)

    # kill after a seeded-random sealed boundary (never the final seal,
    # so the resumed process has real work left)
    kill_after = random.Random(f"{engine}-{shards}").randrange(N_CHUNKS - 1)
    ckpt = tmp_path / "crash-ckpt"
    killed = _run_child(ckpt, engine, shards, kill_after=kill_after)
    assert killed.returncode == -signal.SIGKILL, (
        killed.returncode, killed.stderr
    )
    ckpt_state = json.loads((ckpt / CHECKPOINT_NAME).read_text())
    assert 0 < ckpt_state["rounds_done"] < 5

    resumed = _run_child(ckpt, engine, shards, resume=True)
    assert resumed.returncode == 0, resumed.stderr

    out = tmp_path / "resumed"
    finalize_streaming_campaign(ckpt, out, passive=False)
    assert_trees_identical(reference, out)


@pytest.mark.parametrize("engine", ["epoch", "scalar"])
def test_sigkill_with_multiprocess_workers_resumes_byte_identical(
    engine, tmp_path
):
    """SIGKILL of the *parent* mid-campaign with shard workers on a
    process pool: the sealed prefix survives, the resume (also with
    workers) finalizes byte-identically to an uninterrupted multiprocess
    run."""
    shards, workers = 2, 2
    clean_ckpt = tmp_path / "clean-ckpt"
    done = _run_child(clean_ckpt, engine, shards, workers=workers)
    assert done.returncode == 0, done.stderr
    reference = tmp_path / "reference"
    finalize_streaming_campaign(clean_ckpt, reference, passive=False)

    kill_after = random.Random(f"mp-{engine}").randrange(N_CHUNKS - 1)
    ckpt = tmp_path / "crash-ckpt"
    killed = _run_child(
        ckpt, engine, shards, workers=workers, kill_after=kill_after
    )
    assert killed.returncode == -signal.SIGKILL, (
        killed.returncode, killed.stderr
    )
    ckpt_state = json.loads((ckpt / CHECKPOINT_NAME).read_text())
    assert 0 < ckpt_state["rounds_done"] < 5

    resumed = _run_child(ckpt, engine, shards, workers=workers, resume=True)
    assert resumed.returncode == 0, resumed.stderr

    out = tmp_path / "resumed"
    finalize_streaming_campaign(ckpt, out, passive=False)
    assert_trees_identical(reference, out)


def test_resume_survives_a_second_kill(tmp_path):
    """Two crashes in one campaign: kill, resume-and-kill again, resume."""
    engine, shards = "epoch", 1
    clean_ckpt = tmp_path / "clean-ckpt"
    assert _run_child(clean_ckpt, engine, shards).returncode == 0
    reference = tmp_path / "reference"
    finalize_streaming_campaign(clean_ckpt, reference, passive=False)

    ckpt = tmp_path / "crash-ckpt"
    first = _run_child(ckpt, engine, shards, kill_after=0)
    assert first.returncode == -signal.SIGKILL
    second = _run_child(ckpt, engine, shards, kill_after=1, resume=True)
    assert second.returncode == -signal.SIGKILL
    final = _run_child(ckpt, engine, shards, resume=True)
    assert final.returncode == 0, final.stderr

    out = tmp_path / "resumed"
    finalize_streaming_campaign(ckpt, out, passive=False)
    assert_trees_identical(reference, out)
