"""Subprocess target for the crash-injection harness.

Runs the tiny streamed campaign and — when told to — SIGKILLs itself at
a chunk boundary, right after the seal returns.  Dying *here* is the
worst honest crash the checkpoint protocol must survive: the chunk and
checkpoint are durable, every in-memory structure past them is lost.

Invoked by tests/integration/test_crash_resume.py as::

    python -m tests.integration._crash_child CKPT_DIR \
        --engine epoch --shards 2 [--workers N] \
        [--kill-after-chunk N] [--resume]
"""

from __future__ import annotations

import argparse
import os
import signal
import sys

from repro.core.streaming import run_streaming_campaign

from tests.streamutil import tiny_stream_config


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("checkpoint_dir")
    parser.add_argument("--engine", default="epoch")
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--checkpoint-every", type=int, default=2)
    parser.add_argument("--kill-after-chunk", type=int, default=-1)
    parser.add_argument("--resume", action="store_true")
    args = parser.parse_args(argv)

    config = tiny_stream_config(
        engine=args.engine, shards=args.shards, workers=args.workers
    )

    def maybe_kill(index, _chunk_dir, _lo, _hi):
        if index == args.kill_after_chunk:
            os.kill(os.getpid(), signal.SIGKILL)

    run = run_streaming_campaign(
        config,
        args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        after_chunk=maybe_kill,
    )
    return 0 if run.complete else 1


if __name__ == "__main__":
    sys.exit(main())
