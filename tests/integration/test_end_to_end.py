"""Cross-module integration: the full pipeline from zone bytes to paper
headline statistics."""

import pytest

from repro.analysis import TrafficShiftAnalysis, ClientBehaviorAnalysis
from repro.dns.constants import RRType
from repro.dns.message import Message
from repro.dns.name import ROOT_NAME
from repro.dnssec.validate import validate_zone
from repro.passive.clients import ISP_PROFILE, build_client_population
from repro.passive.isp import IspCapture
from repro.rss.operators import B_ROOT_CHANGE_TS, root_server
from repro.util.rng import RngFactory
from repro.util.timeutil import DAY, parse_ts
from repro.zone.transfer import AxfrClient, AxfrServer
from repro.zone.zonefile import parse_zone_text, render_zone_text


class TestZonePipeline:
    """Zone built -> distributed -> transferred -> serialised -> validated."""

    def test_axfr_then_file_roundtrip_revalidates(self, mini_study):
        ts = parse_ts("2023-12-01T12:00:00")
        deployment = mini_study.deployments["k"]
        site = deployment.sites[0]
        result = deployment.serve_axfr(site.key, ts)
        text = render_zone_text(result.zone)
        reparsed = parse_zone_text(text)
        report = validate_zone(reparsed.records, ROOT_NAME, now=ts)
        assert report.valid

    def test_all_letters_serve_same_serial(self, mini_study):
        ts = parse_ts("2023-12-01T12:00:00")
        serials = set()
        for letter, deployment in mini_study.deployments.items():
            result = deployment.serve_axfr(deployment.sites[0].key, ts)
            serials.add(result.serial)
        assert len(serials) == 1  # same publication everywhere (no faults)

    def test_wire_level_axfr_stream(self, validatable_zone):
        server = AxfrServer(validatable_zone)
        query = Message.make_query(ROOT_NAME, RRType.AXFR)
        # Push every envelope through the wire codec.
        total = 0
        for msg in server.stream(query):
            reparsed = Message.from_wire(msg.to_wire())
            total += len(reparsed.answers)
        assert total == len(validatable_zone) + 1


class TestPassivePipeline:
    """Clients -> capture -> traffic-shift analysis -> headline ratios."""

    @pytest.fixture(scope="class")
    def shift(self):
        clients = build_client_population(ISP_PROFILE, RngFactory(2024))
        isp = IspCapture(clients, seed=2024)
        aggregate = isp.capture(
            parse_ts("2024-02-05"), parse_ts("2024-02-19")
        )
        return TrafficShiftAnalysis(aggregate), aggregate

    def test_shift_ratio_shape(self, shift):
        analysis, _agg = shift
        ratios = analysis.shift_ratios(parse_ts("2024-02-05"), parse_ts("2024-02-19"))
        # Paper §6: 87.1% v4 / 96.3% v6 — v6 more eager, both high.
        assert ratios.v6_shifted > ratios.v4_shifted
        assert ratios.v4_shifted > 0.7
        assert ratios.v6_shifted > 0.9

    def test_letter_shares_sum_to_one(self, shift):
        analysis, _agg = shift
        shares = analysis.letter_shares(parse_ts("2024-02-05"), parse_ts("2024-02-19"))
        assert sum(shares.values()) == pytest.approx(1.0)
        assert 0.02 < shares["b"] < 0.10  # paper: ~4.5-4.9%

    def test_priming_signal(self, shift):
        _analysis, aggregate = shift
        behavior = ClientBehaviorAnalysis(aggregate)
        signal = behavior.priming_signal()
        # Old IPv6 subnet: many clients touch it only ~once a day.
        assert signal["V6old"] > signal["V6new"]

    def test_broot_series_families(self, shift):
        analysis, _agg = shift
        v6_only = analysis.broot_series(families=(6,))
        assert set(v6_only) == {"V6new", "V6old"}
        both = analysis.broot_series()
        assert set(both) == {"V4new", "V4old", "V6new", "V6old"}


class TestActivePassiveConsistency:
    def test_change_date_consistency(self, mini_study):
        """The zone glue flip and the passive adoption both anchor at the
        same renumbering instant."""
        before = mini_study.distributor.zone_for_publication(
            *mini_study.distributor.latest_publication(B_ROOT_CHANGE_TS - DAY)
        )
        after = mini_study.distributor.zone_for_publication(
            *mini_study.distributor.latest_publication(B_ROOT_CHANGE_TS + DAY)
        )
        from repro.dns.name import Name

        b_name = Name.from_text("b.root-servers.net.")
        b = root_server("b")
        assert before.find_rrset(b_name, RRType.A).records[0].rdata.address == b.old_ipv4
        assert after.find_rrset(b_name, RRType.A).records[0].rdata.address == b.ipv4
