"""Integration: export → reload → identical analysis results, and the
resolver stack running against a study's world."""

import pytest

from repro.analysis.stability import StabilityAnalysis
from repro.dns.constants import RRType
from repro.dns.name import Name
from repro.resolver import RootNetworkClient, SimResolver
from repro.resolver.hints import fresh_hints
from repro.util.timeutil import parse_ts
from repro.vantage.export import export_dataset, load_dataset


class TestExportedAnalysisEquivalence:
    def test_stability_identical_after_reload(self, mini_study, tmp_path):
        export_dataset(mini_study.collector, str(tmp_path / "ds"))
        loaded = load_dataset(str(tmp_path / "ds"))
        live = StabilityAnalysis(mini_study.collector)
        reloaded = StabilityAnalysis(loaded)
        for letter in ("b", "g"):
            live_series = {
                s.label: s.changes_per_vp for s in live.series_for(letter)
            }
            reloaded_series = {
                s.label: s.changes_per_vp for s in reloaded.series_for(letter)
            }
            assert live_series == reloaded_series


class TestResolverOnStudyWorld:
    def test_resolver_reuses_study_infrastructure(self, mini_study):
        vp = mini_study.vps[0]
        client = RootNetworkClient(
            vp.attachment,
            mini_study.selector,
            mini_study.deployments,
            client_id=9999,
            last_mile_ms=vp.last_mile_ms,
        )
        resolver = SimResolver(client, fresh_hints())
        now = parse_ts("2023-12-01T12:00:00")
        result = resolver.resolve(Name.from_text("world."), RRType.NS, now)
        assert result.answers
        assert len(resolver.known_root_addresses()) == 13

    def test_resolver_referral_matches_zone_delegation(self, mini_study):
        vp = mini_study.vps[1]
        client = RootNetworkClient(
            vp.attachment, mini_study.selector, mini_study.deployments, 9998
        )
        resolver = SimResolver(client, fresh_hints())
        now = parse_ts("2023-12-01T12:00:00")
        result = resolver.resolve(
            Name.from_text("shop.example.ruhr."), RRType.A, now
        )
        assert result.is_referral
        targets = {t.to_text() for t in result.referral}
        assert targets == {"ns1.nic.ruhr.", "ns2.nic.ruhr."}
