"""Result-cache correctness: LRU bounds, single-flight, invalidation."""

from __future__ import annotations

import threading

import pytest

from repro.serving.cache import ResultCache, ResultKey


def key(name: str, fingerprint: str = "scenario:aaaa", watermark: str = "final:1:1") -> ResultKey:
    return ResultKey(
        fingerprint=fingerprint, kind="analysis", name=name, watermark=watermark
    )


class TestLRUBounds:
    def test_entry_bound_evicts_least_recently_used(self):
        cache = ResultCache(max_entries=3)
        for name in ("a", "b", "c"):
            cache.put(key(name), name.encode())
        assert cache.get(key("a")) == b"a"  # refresh a: b is now LRU
        cache.put(key("d"), b"d")
        assert cache.get(key("b")) is None
        assert cache.get(key("a")) == b"a"
        assert cache.get(key("c")) == b"c"
        assert cache.get(key("d")) == b"d"
        assert cache.stats.snapshot()["evictions"] == 1

    def test_byte_bound_evicts_under_memory_pressure(self):
        cache = ResultCache(max_entries=100, max_bytes=100)
        cache.put(key("a"), b"x" * 60)
        cache.put(key("b"), b"y" * 30)
        assert len(cache) == 2
        cache.put(key("c"), b"z" * 50)  # 140 B total: a (LRU) must go
        assert cache.get(key("a")) is None
        assert cache.cached_bytes == 80
        assert len(cache) == 2

    def test_sole_oversized_entry_is_kept(self):
        # Serving one over-large result beats recomputing it per request.
        cache = ResultCache(max_entries=4, max_bytes=10)
        cache.put(key("big"), b"x" * 50)
        assert cache.get(key("big")) == b"x" * 50
        cache.put(key("b"), b"y")  # next insert displaces the giant
        assert cache.get(key("big")) is None
        assert cache.get(key("b")) == b"y"

    def test_reput_same_key_updates_bytes(self):
        cache = ResultCache(max_entries=4, max_bytes=100)
        cache.put(key("a"), b"x" * 80)
        cache.put(key("a"), b"y" * 10)
        assert cache.cached_bytes == 10
        assert len(cache) == 1

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)


class TestSingleFlight:
    def test_thundering_herd_computes_once(self):
        cache = ResultCache()
        computes = []
        gate = threading.Event()

        def compute() -> bytes:
            computes.append(1)
            gate.wait(timeout=5)
            return b"result"

        results = []

        def request():
            results.append(cache.get_or_compute(key("slow"), compute))

        threads = [threading.Thread(target=request) for _ in range(8)]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join()

        assert len(computes) == 1
        assert results == [b"result"] * 8
        stats = cache.stats.snapshot()
        assert stats["misses"] == 1
        assert stats["coalesced"] == 7

    def test_failed_compute_propagates_and_leaves_uncached(self):
        cache = ResultCache()

        def boom() -> bytes:
            raise RuntimeError("compute failed")

        with pytest.raises(RuntimeError):
            cache.get_or_compute(key("bad"), boom)
        # the key is not poisoned: a later compute succeeds
        assert cache.get_or_compute(key("bad"), lambda: b"ok") == b"ok"

    def test_waiters_see_leader_failure(self):
        cache = ResultCache()
        gate = threading.Event()
        outcomes = []

        def boom() -> bytes:
            gate.wait(timeout=5)
            raise RuntimeError("leader failed")

        def request():
            try:
                cache.get_or_compute(key("bad"), boom)
                outcomes.append("ok")
            except RuntimeError:
                outcomes.append("error")

        threads = [threading.Thread(target=request) for _ in range(4)]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join()
        assert outcomes == ["error"] * 4

    def test_hit_skips_compute(self):
        cache = ResultCache()
        cache.put(key("a"), b"cached")
        value = cache.get_or_compute(
            key("a"), lambda: pytest.fail("must not compute")
        )
        assert value == b"cached"


class TestInvalidation:
    def test_invalidate_fingerprint_drops_only_that_study(self):
        cache = ResultCache()
        cache.put(key("a", fingerprint="scenario:one"), b"1")
        cache.put(key("b", fingerprint="scenario:one"), b"2")
        cache.put(key("a", fingerprint="scenario:two"), b"3")
        dropped = cache.invalidate_fingerprint("scenario:one")
        assert dropped == 2
        assert cache.get(key("a", fingerprint="scenario:one")) is None
        assert cache.get(key("a", fingerprint="scenario:two")) == b"3"
        assert cache.stats.snapshot()["invalidations"] == 2

    def test_keep_watermark_spares_current_entries(self):
        cache = ResultCache()
        cache.put(key("a", watermark="rounds:1/4:chunks:1"), b"old")
        cache.put(key("a", watermark="rounds:2/4:chunks:2"), b"new")
        dropped = cache.invalidate_fingerprint(
            "scenario:aaaa", keep_watermark="rounds:2/4:chunks:2"
        )
        assert dropped == 1
        assert cache.get(key("a", watermark="rounds:1/4:chunks:1")) is None
        assert cache.get(key("a", watermark="rounds:2/4:chunks:2")) == b"new"

    def test_clear_drops_everything(self):
        cache = ResultCache()
        cache.put(key("a"), b"1")
        cache.put(key("b"), b"2")
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.cached_bytes == 0

    def test_snapshot_shape(self):
        cache = ResultCache(max_entries=7, max_bytes=1000)
        cache.put(key("a"), b"12345")
        snapshot = cache.snapshot()
        assert snapshot["entries"] == 1
        assert snapshot["bytes"] == 5
        assert snapshot["max_entries"] == 7
        assert snapshot["max_bytes"] == 1000
        for counter in ("hits", "misses", "evictions", "invalidations", "coalesced"):
            assert counter in snapshot
