"""Served-state probes and the checkpoint watcher.

The serving layer's correctness hinges on the watcher: a cached result
must never outlive the data extent it was computed over.  These tests
drive a real streamed campaign and check that every sealed chunk moves
the watermark, that content-free rewrites of ``CHECKPOINT.json`` do
*not*, and that the service invalidates exactly the stale entries as the
checkpoint grows underneath it.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.core.streaming import (
    finalize_streaming_campaign,
    run_streaming_campaign,
)
from repro.data import (
    DatasetError,
    DatasetWatcher,
    probe_state,
    study_fingerprint,
)
from repro.data.chunks import CHECKPOINT_NAME

from tests.streamutil import tiny_stream_config


@pytest.fixture(scope="module")
def checkpoint_dir(tmp_path_factory):
    """A complete streamed checkpoint (5 rounds in chunks of 2)."""
    ckpt = tmp_path_factory.mktemp("watch") / "stream"
    run = run_streaming_campaign(tiny_stream_config(), ckpt, checkpoint_every=2)
    assert run.complete
    return ckpt


@pytest.fixture(scope="module")
def dataset_dir(checkpoint_dir, tmp_path_factory):
    out = tmp_path_factory.mktemp("watch-ds") / "dataset"
    finalize_streaming_campaign(checkpoint_dir, out, passive=False)
    return out


class TestStudyFingerprint:
    def test_no_study_is_unstamped(self):
        assert study_fingerprint(None) == "unstamped"
        assert study_fingerprint({}) == "unstamped"

    def test_scenario_stamp_wins(self):
        study = {
            "seed": 1,
            "scenario": {"name": "default", "fingerprint": "abcd1234"},
        }
        assert study_fingerprint(study) == "scenario:abcd1234"

    def test_config_hash_is_deterministic_and_content_sensitive(self):
        study = {"seed": 1, "ring_scale": 0.5}
        assert study_fingerprint(study) == study_fingerprint(dict(study))
        assert study_fingerprint(study) != study_fingerprint(
            {"seed": 2, "ring_scale": 0.5}
        )
        assert study_fingerprint(study).startswith("study:")


class TestProbeState:
    def test_finalized_dataset(self, dataset_dir):
        state = probe_state(dataset_dir)
        assert state.kind == "dataset"
        assert state.final
        assert state.watermark.startswith("final:")
        assert state.fingerprint.startswith("study:")
        # immutable: re-probe reports the identical state
        assert probe_state(dataset_dir) == state

    def test_streaming_checkpoint(self, checkpoint_dir):
        state = probe_state(checkpoint_dir)
        assert state.kind == "checkpoint"
        assert not state.final
        assert state.watermark == "rounds:5/5:chunks:3"

    def test_checkpoint_and_dataset_share_fingerprint(
        self, checkpoint_dir, dataset_dir
    ):
        assert (
            probe_state(checkpoint_dir).fingerprint
            == probe_state(dataset_dir).fingerprint
        )

    def test_unservable_directory_raises(self, tmp_path):
        with pytest.raises(DatasetError, match="nothing servable"):
            probe_state(tmp_path)

    def test_corrupt_checkpoint_raises(self, checkpoint_dir, tmp_path):
        copy = tmp_path / "corrupt"
        shutil.copytree(checkpoint_dir, copy)
        (copy / CHECKPOINT_NAME).write_text("{torn")
        with pytest.raises(DatasetError, match="corrupt checkpoint"):
            probe_state(copy)


class TestWatcher:
    def test_every_seal_moves_the_watermark(self, tmp_path):
        ckpt = tmp_path / "stream"
        seen = []
        watcher = None

        def after_chunk(index, chunk_dir, lo, hi):
            nonlocal watcher
            if watcher is None:
                watcher = DatasetWatcher(ckpt)
                seen.append(watcher.state.watermark)
                return
            changed = watcher.poll()
            assert changed is not None, "sealed chunk must move the watermark"
            seen.append(changed.watermark)
            assert watcher.poll() is None  # steady state between seals

        run = run_streaming_campaign(
            tiny_stream_config(), ckpt, checkpoint_every=2,
            after_chunk=after_chunk,
        )
        assert run.complete
        assert seen == [
            "rounds:2/5:chunks:1",
            "rounds:4/5:chunks:2",
            "rounds:5/5:chunks:3",
        ]

    def test_content_free_rewrite_is_not_a_change(self, checkpoint_dir, tmp_path):
        # note_passive_done rewrites CHECKPOINT.json without changing the
        # servable extent; the watcher must not report it.
        copy = tmp_path / "rewrite"
        shutil.copytree(checkpoint_dir, copy)
        watcher = DatasetWatcher(copy)
        payload = json.loads((copy / CHECKPOINT_NAME).read_text())
        (copy / CHECKPOINT_NAME).write_text(json.dumps(payload))
        os.utime(copy / CHECKPOINT_NAME)
        assert watcher.poll() is None
        assert watcher.state.watermark == "rounds:5/5:chunks:3"

    def test_finalized_dataset_polls_free(self, dataset_dir):
        watcher = DatasetWatcher(dataset_dir)
        assert watcher.poll() is None
        assert watcher.state.final

    def test_checkpoint_to_dataset_transition(
        self, checkpoint_dir, dataset_dir, tmp_path
    ):
        served = tmp_path / "served"
        shutil.copytree(checkpoint_dir, served)
        watcher = DatasetWatcher(served)
        assert watcher.state.kind == "checkpoint"
        # the directory is finalized in place: dataset files land next to
        # the checkpoint debris, and the manifest takes over
        for item in dataset_dir.iterdir():
            target = served / item.name
            if item.is_dir():
                shutil.copytree(item, target, dirs_exist_ok=True)
            else:
                shutil.copy2(item, target)
        changed = watcher.poll()
        assert changed is not None
        assert changed.kind == "dataset"
        assert changed.watermark.startswith("final:")
        assert watcher.poll() is None  # final: now free forever

    def test_lost_governing_file_raises(self, checkpoint_dir, tmp_path):
        copy = tmp_path / "lost"
        shutil.copytree(checkpoint_dir, copy)
        watcher = DatasetWatcher(copy)
        (copy / CHECKPOINT_NAME).unlink()
        with pytest.raises(DatasetError, match="lost its governing file"):
            watcher.poll()


class TestServiceInvalidation:
    def test_growing_checkpoint_invalidates_stale_entries(self, tmp_path):
        """The tentpole invariant end-to-end: while a streamed campaign
        seals chunks into a served directory, every request observes the
        current watermark, stale cache lines die on each seal, and the
        cached bytes always match a fresh computation."""
        from repro.analysis.summaries import analysis_json_bytes
        from repro.data import load_dataset
        from repro.serving import AnalysisService, Catalog

        ckpt = tmp_path / "stream"
        probes = []
        service = None

        def after_chunk(index, chunk_dir, lo, hi):
            nonlocal service
            if service is None:
                service = AnalysisService(Catalog([ckpt]))
            response = service.handle(
                "GET", "/datasets/stream/analyses/coverage"
            )
            assert response.status == 200
            etag = response.headers["ETag"]
            expected = analysis_json_bytes(load_dataset(ckpt), "coverage")
            assert response.body == expected
            # stale watermarks were dropped: every cached key is current
            watermark = service.catalog.entry("stream").state.watermark
            for key in service.cache.keys():
                assert key.watermark == watermark
            probes.append((etag, len(response.body)))

        run = run_streaming_campaign(
            tiny_stream_config(), ckpt, checkpoint_every=2,
            after_chunk=after_chunk,
        )
        assert run.complete
        assert len(probes) == 3
        # each seal produced a distinct ETag (watermark moved every time)
        assert len({etag for etag, _ in probes}) == 3
        stats = service.cache.stats.snapshot()
        assert stats["misses"] == 3  # recomputed per watermark
        assert stats["invalidations"] >= 2  # stale lines reclaimed
