"""The analysis service over a real saved dataset.

Exercises the routing layer through ``AnalysisService.handle`` (no
socket needed — the stdlib and FastAPI backends are thin shims over it)
plus one socket-level pass through the stdlib server, and pins the
tentpole equivalence: served analysis bytes are exactly what
``rootsim-analyze DIR NAME --json`` prints.
"""

from __future__ import annotations

import json
import sys
import threading

import pytest

from repro.serving import AnalysisService, Catalog, ResultCache, discover
from repro.serving.catalog import CatalogEntry


@pytest.fixture(scope="module")
def dataset_dir(mini_study, tmp_path_factory):
    """The shared mini study saved with its passive tables."""
    return mini_study.results().save(tmp_path_factory.mktemp("serve") / "mini")


@pytest.fixture(scope="module")
def service(dataset_dir):
    return AnalysisService(Catalog.from_paths([dataset_dir]))


class TestDiscovery:
    def test_direct_directory(self, dataset_dir):
        assert discover([dataset_dir]) == [dataset_dir]

    def test_parent_scan(self, dataset_dir):
        assert discover([dataset_dir.parent]) == [dataset_dir]

    def test_nothing_servable_raises(self, tmp_path):
        from repro.data import DatasetError

        with pytest.raises(DatasetError, match="nothing servable"):
            discover([tmp_path])

    def test_id_collision_suffixes(self, dataset_dir):
        catalog = Catalog([dataset_dir, dataset_dir, dataset_dir])
        assert catalog.ids() == ["mini", "mini-2", "mini-3"]


class TestRoutes:
    def test_healthz(self, service):
        response = service.handle("GET", "/healthz")
        assert response.status == 200
        assert json.loads(response.body) == {"status": "ok", "datasets": 1}

    def test_catalog_lists_resources(self, service):
        response = service.handle("GET", "/catalog")
        assert response.status == 200
        document = json.loads(response.body)
        (entry,) = document["datasets"]
        assert entry["id"] == "mini"
        assert entry["kind"] == "dataset"
        assert entry["fingerprint"].startswith("study:")
        assert entry["watermark"].startswith("final:")
        # all 13 registered analyses are servable: the passive three ride
        # on the dataset's saved passive tables
        from repro.analysis import registry
        from repro.analysis.summaries import PASSIVE_ANALYSES

        assert set(entry["analyses"]) == set(registry.names())
        assert set(PASSIVE_ANALYSES) <= set(entry["analyses"])
        assert entry["figures"]  # at least the core artefact groups

    def test_describe_matches_catalog(self, service):
        catalog_entry = json.loads(
            service.handle("GET", "/catalog").body
        )["datasets"][0]
        described = json.loads(service.handle("GET", "/datasets/mini").body)
        assert described == catalog_entry

    def test_unknown_dataset_404(self, service):
        response = service.handle("GET", "/datasets/nope")
        assert response.status == 404
        assert "mini" in json.loads(response.body)["hosted"]

    def test_unknown_analysis_404_lists_available(self, service):
        response = service.handle("GET", "/datasets/mini/analyses/nope")
        assert response.status == 404
        assert "coverage" in json.loads(response.body)["available"]

    def test_unknown_route_404(self, service):
        assert service.handle("GET", "/not/a/route").status == 404

    def test_post_only_on_cache_clear(self, service):
        assert service.handle("POST", "/catalog").status == 405
        assert service.handle("PUT", "/healthz").status == 405

    def test_stats_shape(self, service):
        document = json.loads(service.handle("GET", "/stats").body)
        assert "hits" in document["cache"]
        assert document["datasets"]["mini"]["kind"] == "dataset"

    def test_cache_clear(self, service):
        service.handle("GET", "/datasets/mini/analyses/stability")
        assert len(service.cache) > 0
        response = service.handle("POST", "/cache/clear")
        assert response.status == 200
        assert len(service.cache) == 0


class TestConditionalRequests:
    def test_etag_roundtrip_304(self, service):
        first = service.handle("GET", "/datasets/mini/analyses/stability")
        assert first.status == 200
        etag = first.headers["ETag"]
        assert etag.startswith('"study:')
        again = service.handle(
            "GET", "/datasets/mini/analyses/stability",
            headers={"If-None-Match": etag},
        )
        assert again.status == 304
        assert again.body == b""
        assert again.headers["ETag"] == etag

    def test_stale_etag_gets_full_body(self, service):
        response = service.handle(
            "GET", "/datasets/mini/analyses/stability",
            headers={"If-None-Match": '"study:old:final:0:0"'},
        )
        assert response.status == 200
        assert response.body

    def test_fingerprint_pin_matches(self, service):
        fingerprint = service.catalog.entry("mini").state.fingerprint
        response = service.handle(
            "GET", "/datasets/mini/analyses/stability",
            query={"fingerprint": fingerprint},
        )
        assert response.status == 200

    def test_fingerprint_mismatch_409(self, service):
        response = service.handle(
            "GET", "/datasets/mini/analyses/stability",
            query={"fingerprint": "scenario:deadbeef"},
        )
        assert response.status == 409
        document = json.loads(response.body)
        assert document["expected"] == "scenario:deadbeef"
        assert document["actual"].startswith("study:")


class TestServedBytes:
    def test_analyses_byte_identical_to_cli_json(self, service, dataset_dir, capsys):
        """The tentpole gate, in-process: every registered analysis
        served over the service equals ``rootsim-analyze --json``."""
        from repro.cli import analyze_main

        analyses = json.loads(
            service.handle("GET", "/catalog").body
        )["datasets"][0]["analyses"]
        for name in analyses:
            served = service.handle(
                "GET", f"/datasets/mini/analyses/{name}"
            )
            assert served.status == 200, (name, served.body[:200])
            assert analyze_main([str(dataset_dir), name, "--json"]) == 0
            printed = capsys.readouterr().out.encode()
            assert printed == served.body + b"\n", name

    def test_repeat_requests_hit_the_cache(self, service):
        service.handle("POST", "/cache/clear")
        before = service.cache.stats.snapshot()
        for _ in range(3):
            service.handle("GET", "/datasets/mini/analyses/coverage")
        after = service.cache.stats.snapshot()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 2

    def test_figure_document_shape(self, service):
        response = service.handle("GET", "/datasets/mini/figures/coverage")
        assert response.status == 200
        document = json.loads(response.body)
        assert document["figure"] == "coverage"
        assert set(document["contents"])  # artefact name -> rendered text

    def test_figures_match_reportgen(self, service, dataset_dir):
        from repro.data import load_dataset
        from repro.reportgen import render_group

        dataset = load_dataset(dataset_dir)
        figures = json.loads(
            service.handle("GET", "/catalog").body
        )["datasets"][0]["figures"]
        for name in figures:
            document = json.loads(
                service.handle("GET", f"/datasets/mini/figures/{name}").body
            )
            assert document["contents"] == render_group(name, dataset), name


class TestStdlibServer:
    def test_socket_roundtrip(self, service):
        import http.client

        from repro.serving import run_server

        server = run_server(service, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("GET", "/datasets/mini/analyses/stability")
            response = conn.getresponse()
            body = response.read()
            assert response.status == 200
            etag = response.headers["ETag"]
            in_process = service.handle(
                "GET", "/datasets/mini/analyses/stability"
            )
            assert body == in_process.body
            # keep-alive: second request on the same connection, now 304
            conn.request(
                "GET", "/datasets/mini/analyses/stability",
                headers={"If-None-Match": etag},
            )
            response = conn.getresponse()
            assert response.status == 304
            assert response.read() == b""
            conn.close()
        finally:
            server.shutdown()
            server.server_close()

    def test_herd_on_cold_key_computes_once(self, dataset_dir):
        service = AnalysisService(
            Catalog.from_paths([dataset_dir]), cache=ResultCache()
        )
        results = []

        def request():
            results.append(
                service.handle("GET", "/datasets/mini/analyses/coverage")
            )

        threads = [threading.Thread(target=request) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        bodies = {response.body for response in results}
        assert len(bodies) == 1
        stats = service.cache.stats.snapshot()
        assert stats["misses"] == 1
        assert stats["coalesced"] + stats["hits"] == 5


class TestOptionalFastAPI:
    def test_stdlib_import_needs_no_extras(self):
        # the serving package must import (and serve) without fastapi
        assert "repro.serving" in sys.modules

    def test_make_fastapi_app_gates_cleanly(self, service):
        from repro.serving import make_fastapi_app

        try:
            import fastapi  # noqa: F401
        except ImportError:
            with pytest.raises(RuntimeError, match=r"\[serving\] extra"):
                make_fastapi_app(service)
        else:
            assert make_fastapi_app(service) is not None
