"""The typed spec layers: round-trip identity and strict loading.

Every spec must survive ``to_dict -> from_dict`` unchanged (the
fingerprint normalises layer documents through exactly that round
trip), and every ``from_dict`` must reject unknown keys with a
"did you mean" hint naming the offending layer — the satellite-2
strict-loading contract.
"""

from __future__ import annotations

import pytest

from repro.passive.clients import ISP_PROFILE
from repro.passive.querymix import QueryBurst, QueryMixSpec
from repro.scenarios.specs import (
    BuildoutStage,
    FaultSpec,
    PlatformSpec,
    TrafficSpec,
    WorldSpec,
    reject_unknown_keys,
)


SPEC_SAMPLES = [
    WorldSpec(),
    WorldSpec(
        ring_scale=0.5,
        ring_min_per_region=2,
        region_scale={"ASIA": 1.6, "OCEANIA": 1.5},
        site_scale={"f": 0.8},
        buildout=(
            BuildoutStage("wave-1", "2023-06-01", {"f/ASIA": 0.7}),
            BuildoutStage("wave-2", "2023-11-01", {"f/ASIA": 1.0}),
        ),
        buildout_stage=1,
    ),
    PlatformSpec(),
    PlatformSpec(interval_scale=1.0, rtt_sample_every=8, engine="scalar"),
    TrafficSpec(),
    TrafficSpec(
        profiles={"isp": {"n_clients": 4000}},
        querymix=QueryMixSpec(
            zipf_alpha=1.1,
            bursts=(QueryBurst("2024-02-12", "2024-02-15", 3.0, "junk"),),
        ),
    ),
    FaultSpec(),
    FaultSpec(include_faults=True, bitflips=False, clock_skew=False),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec", SPEC_SAMPLES, ids=lambda s: type(s).__name__
    )
    def test_to_dict_from_dict_identity(self, spec):
        assert type(spec).from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "spec", SPEC_SAMPLES, ids=lambda s: type(s).__name__
    )
    def test_double_round_trip_is_stable(self, spec):
        once = type(spec).from_dict(spec.to_dict())
        assert once.to_dict() == spec.to_dict()

    def test_buildout_stages_accepted_as_dicts(self):
        spec = WorldSpec.from_dict(
            {
                "buildout": [
                    {"label": "w", "start": "2023-06-01",
                     "site_scale": {"f": 0.5}}
                ]
            }
        )
        assert spec.buildout[0] == BuildoutStage(
            "w", "2023-06-01", {"f": 0.5}
        )


class TestStrictLoading:
    def test_did_you_mean_on_typoed_key(self):
        with pytest.raises(ValueError) as err:
            WorldSpec.from_dict({"ring_scal": 0.5})
        message = str(err.value)
        assert "world spec" in message
        assert "unknown key 'ring_scal'" in message
        assert "did you mean 'ring_scale'" in message

    def test_unknown_key_lists_known_keys(self):
        with pytest.raises(ValueError, match="known keys:.*include_faults"):
            FaultSpec.from_dict({"totally_unknown": True})

    @pytest.mark.parametrize(
        "cls,bad_key",
        [
            (WorldSpec, "ring_sizes"),
            (PlatformSpec, "interval_scales"),
            (TrafficSpec, "profile"),
            (FaultSpec, "bitflip"),
        ],
    )
    def test_every_layer_rejects_unknown_keys(self, cls, bad_key):
        with pytest.raises(ValueError, match="unknown key"):
            cls.from_dict({bad_key: 1})

    def test_reject_unknown_keys_names_the_layer(self):
        with pytest.raises(ValueError, match="my layer: unknown key 'z'"):
            reject_unknown_keys("my layer", {"a": 1, "z": 2}, ["a", "b"])

    def test_traffic_profile_overrides_are_strict(self):
        with pytest.raises(ValueError) as err:
            TrafficSpec(profiles={"isp": {"n_client": 4000}})
        assert "did you mean 'n_clients'" in str(err.value)

    def test_unknown_capture_point_rejected(self):
        with pytest.raises(ValueError, match="unknown capture profile"):
            TrafficSpec(profiles={"cdn": {"n_clients": 10}})


class TestValidationNamesTheLayer:
    def test_world_ring_scale(self):
        with pytest.raises(ValueError, match="world spec: ring_scale"):
            WorldSpec(ring_scale=0.0)

    def test_world_unknown_continent(self):
        with pytest.raises(ValueError, match="world spec: region_scale key"):
            WorldSpec(region_scale={"ATLANTIS": 2.0})

    def test_world_unknown_letter(self):
        with pytest.raises(ValueError, match="world spec: site_scale key"):
            WorldSpec(site_scale={"z": 1.0})

    def test_world_scaling_to_zero_sites(self):
        with pytest.raises(ValueError, match="world spec: .*no sites"):
            WorldSpec(site_scale={"f": 0.0})

    def test_world_buildout_stage_range(self):
        with pytest.raises(ValueError, match="world spec: buildout_stage"):
            WorldSpec(buildout_stage=3)

    def test_platform_interval_scale(self):
        with pytest.raises(ValueError, match="platform spec: interval_scale"):
            PlatformSpec(interval_scale=-1.0)

    def test_platform_window_order(self):
        with pytest.raises(ValueError, match="platform spec: campaign_end"):
            PlatformSpec(
                campaign_start="2023-11-30", campaign_end="2023-11-25"
            )

    def test_platform_engine(self):
        with pytest.raises(ValueError, match="platform spec: engine"):
            PlatformSpec(engine="warp")

    def test_fault_flags_must_be_boolean(self):
        with pytest.raises(ValueError, match="fault spec: bitflips"):
            FaultSpec(bitflips=1)


class TestSpecBehaviour:
    def test_effective_profile_applies_overrides(self):
        spec = TrafficSpec(profiles={"isp": {"n_clients": 4000}})
        assert spec.profile("isp").n_clients == 4000
        assert spec.profile("isp").ipv6_share == ISP_PROFILE.ipv6_share
        assert spec.profile("ixp-eu").n_clients > 0

    def test_default_world_has_no_site_plan(self):
        # None is the byte-identity fast path: the default catalog is
        # built from SITE_PLAN itself, untouched.
        assert WorldSpec().site_plan() is None

    def test_buildout_stages_stack_cumulatively(self):
        spec = WorldSpec(
            buildout=(
                BuildoutStage("a", "2023-01-01", {"f": 0.5, "k": 0.5}),
                BuildoutStage("b", "2023-06-01", {"f": 1.0}),
            ),
        )
        assert spec._site_scales() == {"f": 1.0, "k": 0.5}
        pinned = WorldSpec(buildout=spec.buildout, buildout_stage=1)
        assert pinned._site_scales() == {"f": 0.5, "k": 0.5}

    def test_fault_spec_apply_filters_classes(self):
        from repro.faults.plan import FaultPlan

        plan = FaultPlan()
        assert FaultSpec(include_faults=False).apply(plan) == FaultPlan()
