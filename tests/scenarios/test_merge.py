"""Property tests: the overlay deep-merge is associative and deterministic.

Overlay folding must not depend on how the fold is parenthesised —
``compose`` merges left to right, but a scenario author reasoning about
``base + (a + b)`` has to get the same layers.  Associativity only holds
because :func:`repro.scenarios.merge.deep_merge` enforces *category
stability* (a path is either a mapping everywhere or a leaf everywhere);
these tests generate layer documents that share a random shape tree and
check both parenthesisations agree byte-for-byte, including key order,
and that category changes raise instead of silently winning.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.scenarios.merge import MergeError, deep_merge, merge_layers

# A random *shape*: each key is either a leaf or a nested mapping.  All
# documents drawn against one shape agree on every path's category, so
# they are category-stable by construction — the regime deep_merge
# guarantees associativity for.
leaf_st = st.one_of(
    st.integers(-100, 100),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
    st.lists(st.integers(0, 9), max_size=4),
)
key_st = st.sampled_from(["a", "b", "c", "d", "e", "scale", "stage"])

shape_st = st.recursive(
    st.just("leaf"),
    lambda inner: st.dictionaries(key_st, inner, min_size=1, max_size=4),
    max_leaves=12,
)


@st.composite
def doc_for_shape(draw, shape):
    """A document drawn against *shape*: random subset of keys, leaves
    filled with random values, mappings recursed into."""
    if shape == "leaf":
        return draw(leaf_st)
    doc = {}
    for key, sub in shape.items():
        if draw(st.booleans()):
            doc[key] = draw(doc_for_shape(sub))
    return doc


@st.composite
def stable_triple(draw):
    shape = draw(shape_st.filter(lambda s: s != "leaf"))
    return (
        draw(doc_for_shape(shape)),
        draw(doc_for_shape(shape)),
        draw(doc_for_shape(shape)),
    )


def canonical(doc) -> str:
    # sort_keys=False: key *order* is part of the determinism contract.
    return json.dumps(doc, sort_keys=False)


class TestAssociativity:
    @given(stable_triple())
    @settings(max_examples=200, deadline=None)
    def test_both_parenthesisations_agree(self, docs):
        a, b, c = docs
        left = deep_merge(deep_merge(a, b), c)
        right = deep_merge(a, deep_merge(b, c))
        assert canonical(left) == canonical(right)

    @given(stable_triple())
    @settings(max_examples=100, deadline=None)
    def test_merge_is_deterministic(self, docs):
        a, b, c = docs
        assert canonical(merge_layers(a, b, c)) == canonical(
            merge_layers(a, b, c)
        )

    @given(stable_triple())
    @settings(max_examples=100, deadline=None)
    def test_merged_mappings_have_sorted_keys(self, docs):
        a, b, _ = docs

        def assert_sorted(doc):
            if not isinstance(doc, dict):
                return
            assert list(doc) == sorted(doc)
            for value in doc.values():
                assert_sorted(value)

        assert_sorted(deep_merge(a, b))


class TestMergeSemantics:
    def test_overlay_wins_on_leaves(self):
        assert deep_merge({"x": 1, "y": 2}, {"y": 3}) == {"x": 1, "y": 3}

    def test_nested_mappings_merge_keywise(self):
        merged = deep_merge(
            {"world": {"ring_scale": 0.3, "buildout_stage": -1}},
            {"world": {"buildout_stage": 2}},
        )
        assert merged == {"world": {"ring_scale": 0.3, "buildout_stage": 2}}

    def test_lists_are_replaced_wholesale(self):
        merged = deep_merge({"bursts": [1, 2, 3]}, {"bursts": [9]})
        assert merged == {"bursts": [9]}

    def test_category_change_mapping_to_leaf_raises(self):
        with pytest.raises(MergeError, match="category"):
            deep_merge({"a": {"b": 1}}, {"a": 5})

    def test_category_change_leaf_to_mapping_raises(self):
        with pytest.raises(MergeError, match="category"):
            deep_merge({"a": 5}, {"a": {"b": 1}})

    def test_error_names_the_offending_path(self):
        with pytest.raises(MergeError, match=r"world\.site_scale"):
            deep_merge(
                {"world": {"site_scale": {"f": 1.0}}},
                {"world": {"site_scale": 0.5}},
            )

    def test_inputs_are_not_mutated(self):
        base = {"a": {"b": 1}}
        overlay = {"a": {"c": 2}}
        deep_merge(base, overlay)
        assert base == {"a": {"b": 1}}
        assert overlay == {"a": {"c": 2}}
