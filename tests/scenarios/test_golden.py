"""Golden test: the default scenario reproduces the pre-refactor
campaign byte-identically.

``GOLDEN_DIGEST`` was recorded on the commit *before* the scenario
refactor, from a tiny five-day campaign at seed 77 — the exact
``tiny_stream_config`` shape — hashed over every output surface: all
probe and traceroute columns, the dataset-size summary, and the CHAOS
identity counts.  The same digest must fall out of a config
materialised through ``compose("default")`` today, on both engines and
either shard count.  Any drift in VP placement, scheduling, sampling
or fault injection caused by the config decomposition shows up here as
a digest mismatch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace

import numpy as np
import pytest

from repro.core import RootStudy, StudyConfig
from repro.scenarios import compose
from tests.streamutil import tiny_stream_config

#: sha256 over the tiny seed-77 campaign's outputs, recorded pre-refactor.
GOLDEN_DIGEST = (
    "61456d8b06b96d45ffe45d0467d516469548e77d2e9cf7bb01947197aab9c05d"
)


def campaign_digest(collector) -> str:
    h = hashlib.sha256()
    for name in sorted(collector.probe_columns()):
        h.update(name.encode())
        h.update(np.ascontiguousarray(collector.probe_columns()[name]).tobytes())
    for name in sorted(collector.traceroute_columns()):
        h.update(name.encode())
        h.update(
            np.ascontiguousarray(collector.traceroute_columns()[name]).tobytes()
        )
    h.update(json.dumps(collector.summary(), sort_keys=True).encode())
    h.update(json.dumps(collector.identities, sort_keys=True).encode())
    return h.hexdigest()


def scenario_tiny_config(engine: str, shards: int) -> StudyConfig:
    """The tiny golden campaign config, derived through the scenario
    path: compose the default scenario, then shrink only the execution
    scale (the same shrink the smoke runner applies)."""
    config = compose("default").study_config(
        seed=77, engine=engine, shards=shards
    )
    tiny = tiny_stream_config(engine=engine, shards=shards)
    return replace(
        config,
        ring_scale=tiny.ring_scale,
        interval_scale=tiny.interval_scale,
        campaign_start=tiny.campaign_start,
        campaign_end=tiny.campaign_end,
        rtt_sample_every=tiny.rtt_sample_every,
        traceroute_sample_every=tiny.traceroute_sample_every,
        axfr_sample_every=tiny.axfr_sample_every,
        clean_transfer_keep_one_in=tiny.clean_transfer_keep_one_in,
    )


class TestGoldenByteIdentity:
    @pytest.mark.parametrize("engine", ["epoch", "scalar"])
    @pytest.mark.parametrize("shards", [1, 2])
    def test_default_scenario_matches_pre_refactor_digest(
        self, engine, shards
    ):
        config = scenario_tiny_config(engine, shards)
        # the scenario stamp rides along but is pure provenance
        assert config.scenario_name == "default"
        assert config.without_scenario() == tiny_stream_config(
            engine=engine, shards=shards
        )
        study = RootStudy(config)
        study.run()
        assert campaign_digest(study.collector) == GOLDEN_DIGEST

    def test_classic_config_still_matches(self):
        # The flat, scenario-free path must stay pinned too: this is
        # the half that proves the *facade* didn't drift.
        study = RootStudy(tiny_stream_config())
        study.run()
        assert campaign_digest(study.collector) == GOLDEN_DIGEST
