"""The scenario registry: composition, identity, and the facade bridge.

The contracts under test: ``compose`` folds overlays deterministically;
the fingerprint identifies scenario *content* (stable under execution
knobs and seed, sensitive to layer changes and overlays); and
``study_config`` materialises the default scenario into exactly the
hand-built ``StudyConfig()`` — the refactor's byte-identity anchor.
"""

from __future__ import annotations

import json

import pytest

from repro.core import StudyConfig
from repro.scenarios import (
    Overlay,
    Scenario,
    compose,
    get_overlay,
    get_scenario,
    overlay_names,
    register_overlay,
    register_scenario,
    scenario_names,
)


class TestRegistry:
    def test_shipped_packs_are_registered(self):
        assert scenario_names() == [
            "broot-querymix", "default", "froot-sea", "paper",
        ]
        assert overlay_names() == [
            "froot-sea-stage1", "froot-sea-stage2", "no-faults",
        ]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(Scenario(name="default"))
        with pytest.raises(ValueError, match="already registered"):
            register_overlay(Overlay(name="no-faults"))

    def test_unknown_names_list_the_registry(self):
        with pytest.raises(KeyError, match="unknown scenario 'nope'"):
            get_scenario("nope")
        with pytest.raises(KeyError, match="unknown overlay 'nope'"):
            get_overlay("nope")


class TestComposition:
    def test_overlay_folds_onto_world_layer(self):
        base = compose("froot-sea")
        staged = compose("froot-sea", ["froot-sea-stage1"])
        assert base.world.get("buildout_stage") is None
        assert staged.world["buildout_stage"] == 1
        assert staged.overlays == ("froot-sea-stage1",)
        # untouched layer keys survive the fold
        assert staged.world["region_scale"] == base.world["region_scale"]

    def test_later_overlay_wins(self):
        composed = compose(
            "froot-sea", ["froot-sea-stage1", "froot-sea-stage2"]
        )
        assert composed.world["buildout_stage"] == 2
        assert composed.overlays == ("froot-sea-stage1", "froot-sea-stage2")

    def test_no_faults_overlay_disables_fault_injection(self):
        config = compose("default", ["no-faults"]).study_config()
        assert config.include_faults is False

    def test_overlay_strictness_is_key_level(self):
        with pytest.raises(ValueError, match="overlay 'typo'.*unknown key"):
            Overlay(name="typo", world={"ring_scal": 1.0})


class TestFingerprint:
    def test_stable_and_content_addressed(self):
        a = compose("default").fingerprint()
        b = compose("default").fingerprint()
        assert a == b
        assert len(a) == 16 and int(a, 16) >= 0
        # distinct content, distinct fingerprint
        names = ["default", "paper", "froot-sea", "broot-querymix"]
        prints = {name: compose(name).fingerprint() for name in names}
        assert len(set(prints.values())) == len(names)

    def test_overlays_change_the_fingerprint(self):
        assert (
            compose("froot-sea").fingerprint()
            != compose("froot-sea", ["froot-sea-stage1"]).fingerprint()
        )

    def test_execution_knobs_and_seed_do_not(self):
        scenario = compose("default")
        base = scenario.fingerprint()
        sharded = Scenario(
            name=scenario.name,
            description=scenario.description,
            platform={"shards": 4, "workers": 4, "engine": "scalar"},
            analyses=scenario.analyses,
        )
        assert sharded.fingerprint() == base
        # seed is a study_config argument, never part of the layers
        assert scenario.study_config(seed=1).scenario_fingerprint == base
        assert scenario.study_config(seed=2).scenario_fingerprint == base

    def test_equivalent_spellings_normalise_identically(self):
        # int vs float scale, mapping vs pair-list: same normalised doc
        a = Scenario(name="x", world={"site_scale": {"f": 1}})
        b = Scenario(name="x", world={"site_scale": [("f", 1.0)]})
        assert a.fingerprint() == b.fingerprint()

    def test_identity_stamp_shape(self):
        identity = compose("froot-sea", ["froot-sea-stage1"]).identity()
        assert identity == {
            "name": "froot-sea",
            "version": 1,
            "overlays": ["froot-sea-stage1"],
            "fingerprint": identity["fingerprint"],
        }


class TestStudyConfigBridge:
    def test_default_scenario_equals_hand_built_config(self):
        config = compose("default").study_config()
        assert config.without_scenario() == StudyConfig()
        assert config.scenario_name == "default"

    def test_paper_scenario_equals_paper_scale_preset(self):
        config = compose("paper").study_config(seed=5)
        assert config.without_scenario() == StudyConfig.paper_scale(seed=5)
        assert StudyConfig.paper(seed=5) == config

    def test_extras_stay_none_for_default(self):
        config = compose("default").study_config()
        assert config.world is None
        assert config.traffic is None
        assert config.faults is None

    def test_execution_overrides_apply_without_fingerprint_change(self):
        scenario = compose("default")
        config = scenario.study_config(shards=2, workers=2, engine="scalar")
        assert (config.shards, config.workers, config.engine) == (2, 2, "scalar")
        assert config.scenario_fingerprint == scenario.fingerprint()

    def test_unknown_execution_override_rejected(self):
        with pytest.raises(ValueError, match="execution overrides"):
            compose("default").study_config(shard=2)

    def test_config_round_trips_through_json(self):
        config = compose("froot-sea", ["froot-sea-stage1"]).study_config()
        from dataclasses import asdict

        thawed = StudyConfig.from_dict(
            json.loads(json.dumps(asdict(config)))
        )
        assert thawed == config

    def test_scenario_round_trips_through_dict(self):
        scenario = compose("broot-querymix")
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        assert (
            Scenario.from_dict(scenario.to_dict()).fingerprint()
            == scenario.fingerprint()
        )

    def test_strict_config_from_dict_did_you_mean(self):
        with pytest.raises(ValueError) as err:
            StudyConfig.from_dict({"sed": 7})
        assert "did you mean 'seed'" in str(err.value)
