"""Provenance flow: the scenario fingerprint travels with the data.

A scenario-built campaign stamps its identity into ``MANIFEST.json``
(batch save) and ``CHECKPOINT.json`` (streaming), and the consumers
validate it: ``rootsim-analyze --scenario`` refuses a dataset produced
by a different scenario, and ``rootsim-study --resume --scenario``
refuses a checkpoint whose fingerprint mismatches — both exit 2 with a
"refusing" message rather than silently analysing mislabelled data.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.cli import analyze_main, study_main
from repro.core import RootStudy
from repro.scenarios import Scenario, compose
from repro.util.timeutil import parse_ts


@pytest.fixture
def tiny_scenario_configs(monkeypatch):
    """Shrink every scenario materialisation to the five-day tiny
    campaign so the CLI paths run in test time.  The scenario identity
    stamp (and so the fingerprint) is untouched — only execution scale
    changes, which the fingerprint excludes by design."""
    original = Scenario.study_config

    def tiny(self, seed=77, **execution):
        config = original(self, seed=seed, **execution)
        return replace(
            config,
            ring_scale=min(config.ring_scale, 0.02),
            interval_scale=max(config.interval_scale, 96.0),
            campaign_start=parse_ts("2023-11-25"),
            campaign_end=parse_ts("2023-11-30"),
            rtt_sample_every=1,
            traceroute_sample_every=2,
            axfr_sample_every=2,
            clean_transfer_keep_one_in=20,
        )

    monkeypatch.setattr(Scenario, "study_config", tiny)


class TestManifestStamp:
    def test_fingerprint_lands_in_manifest(
        self, tmp_path, tiny_scenario_configs
    ):
        scenario = compose("default", ["no-faults"])
        results = RootStudy(scenario.study_config(seed=77)).run()
        saved = results.save(str(tmp_path / "ds"))

        manifest = json.loads((saved / "MANIFEST.json").read_text())
        stamp = manifest["study"]["scenario"]
        assert stamp["name"] == "default"
        assert stamp["overlays"] == ["no-faults"]
        assert stamp["fingerprint"] == scenario.fingerprint()

    def test_analyze_refuses_mismatched_scenario(
        self, tmp_path, tiny_scenario_configs, capsys
    ):
        results = RootStudy(compose("default").study_config(seed=77)).run()
        saved = results.save(str(tmp_path / "ds"))

        code = analyze_main([str(saved), "--scenario", "froot-sea"])
        err = capsys.readouterr().err
        assert code == 2
        assert "was produced by scenario 'default'" in err
        assert "refusing to analyze" in err

    def test_analyze_accepts_matching_scenario(
        self, tmp_path, tiny_scenario_configs, capsys
    ):
        results = RootStudy(compose("default").study_config(seed=77)).run()
        saved = results.save(str(tmp_path / "ds"))

        code = analyze_main([str(saved), "--scenario", "default"])
        out = capsys.readouterr().out
        assert code == 0
        assert "runnable analyses" in out

    def test_analyze_refuses_unstamped_dataset_as_scenario(
        self, tmp_path, capsys
    ):
        from tests.streamutil import tiny_stream_config

        results = RootStudy(tiny_stream_config()).run()
        saved = results.save(str(tmp_path / "ds"))

        code = analyze_main([str(saved), "--scenario", "default"])
        err = capsys.readouterr().err
        assert code == 2
        assert "no registered scenario" in err


class TestCheckpointStamp:
    def test_fingerprint_lands_in_checkpoint_and_gates_resume(
        self, tmp_path, tiny_scenario_configs, capsys
    ):
        ckpt = tmp_path / "ckpt"
        code = study_main(
            ["--scenario", "default", "--seed", "77",
             "--checkpoint", str(ckpt), "--checkpoint-every", "2"]
        )
        assert code == 0, capsys.readouterr().err

        checkpoint = json.loads((ckpt / "CHECKPOINT.json").read_text())
        stamp = checkpoint["study"]["scenario"]
        assert stamp["name"] == "default"
        assert stamp["fingerprint"] == compose("default").fingerprint()
        capsys.readouterr()

        # wrong scenario: refuse before touching the campaign
        code = study_main(
            ["--resume", str(ckpt), "--scenario", "froot-sea"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "was produced by scenario 'default'" in err
        assert "refusing to resume" in err

        # right scenario: resume, finalize, and keep the stamp in the
        # finalized manifest
        code = study_main(
            ["--resume", str(ckpt), "--scenario", "default",
             "--save", str(tmp_path / "ds")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "resuming streamed study" in out
        manifest = json.loads(
            (tmp_path / "ds" / "MANIFEST.json").read_text()
        )
        assert (
            manifest["study"]["scenario"]["fingerprint"]
            == compose("default").fingerprint()
        )
