"""Every shipped pack runs end to end: config → campaign → saved
dataset → its headline analyses → rendered figure text.

This is the in-suite twin of CI's scenario-smoke job
(``python -m repro.scenarios.smoke``): each registered scenario is
driven through the full path at tiny scale, and the figure text each
pack exists to produce is asserted on — the froot-sea build-out
annotation, the broot-querymix burst amplification, and so on.
"""

from __future__ import annotations

import pytest

from repro.scenarios import scenario_names
from repro.scenarios.smoke import run_scenario_smoke


@pytest.fixture(scope="module")
def smoke_artifacts(tmp_path_factory):
    out = tmp_path_factory.mktemp("packs")
    return {
        name: run_scenario_smoke(name, str(out))
        for name in scenario_names()
    }


class TestEveryPackRunsEndToEnd:
    def test_all_registered_scenarios_covered(self, smoke_artifacts):
        assert sorted(smoke_artifacts) == [
            "broot-querymix", "default", "froot-sea", "paper",
        ]

    @pytest.mark.parametrize(
        "name", ["broot-querymix", "default", "froot-sea", "paper"]
    )
    def test_pack_saves_dataset_and_figures(self, smoke_artifacts, name):
        written = smoke_artifacts[name]
        assert (written["dataset"] / "MANIFEST.json").exists()
        figures = [key for key in written if key != "dataset"]
        assert figures, f"scenario {name} wrote no analysis output"
        for key in figures:
            assert written[key].read_text().strip()

    def test_default_and_paper_render_headline_analyses(
        self, smoke_artifacts
    ):
        for name in ("default", "paper"):
            assert {"rtt", "stability"} <= set(smoke_artifacts[name])

    def test_froot_sea_reports_the_buildout(self, smoke_artifacts):
        text = smoke_artifacts["froot-sea"]["regional_rtt"].read_text()
        assert "f.root RTT per region" in text
        assert "build-out: pre-expansion @ 2023-01-01" in text
        assert "sea-wave-2 @ 2023-11-01" in text

    def test_broot_querymix_reports_the_burst(self, smoke_artifacts):
        text = smoke_artifacts["broot-querymix"]["querymix"].read_text()
        assert "Query composition" in text
        assert "com." in text  # the Zipf head
        assert "burst 2024-02-12..2024-02-15 (junk x3)" in text
        # the burst lands inside the ISP capture window, so it must
        # actually amplify the window's traffic
        amplification = float(
            text.split("observed amplification ")[1].split("x")[0]
        )
        assert amplification > 1.1
