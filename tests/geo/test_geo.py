"""Geography: coordinates, distances, cities, continents."""

import pytest

from repro.geo.cities import CITY_CATALOG, HUB_CITIES, City, cities_in, city
from repro.geo.continents import Continent, continent_of_country, known_countries
from repro.geo.coords import GeoPoint, fiber_rtt_ms, haversine_km


class TestCoords:
    def test_zero_distance(self):
        p = GeoPoint(50.0, 8.0)
        assert haversine_km(p, p) == 0.0

    def test_known_distance_frankfurt_amsterdam(self):
        d = haversine_km(city("FRA").location, city("AMS").location)
        assert 300 < d < 420  # ~365 km

    def test_antipodal_close_to_half_circumference(self):
        d = haversine_km(GeoPoint(0, 0), GeoPoint(0, 180))
        assert 19_900 < d < 20_100

    def test_symmetry(self):
        a, b = city("NRT").location, city("GRU").location
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_coordinate_validation(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)

    def test_fiber_rtt_rule_of_thumb(self):
        # Paper §6: every 1,000 km induces ~10 ms of delay.
        assert fiber_rtt_ms(1000.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            fiber_rtt_ms(-1.0)


class TestContinents:
    def test_paper_regions_complete(self):
        assert {c.value for c in Continent} == {
            "Africa", "Asia", "Europe", "North America", "South America", "Oceania",
        }

    def test_lookup(self):
        assert continent_of_country("DE") is Continent.EUROPE
        assert continent_of_country("br") is Continent.SOUTH_AMERICA

    def test_unknown_country_raises(self):
        with pytest.raises(KeyError):
            continent_of_country("XX")

    def test_known_countries_copy(self):
        mapping = known_countries()
        mapping["DE"] = Continent.ASIA
        assert continent_of_country("DE") is Continent.EUROPE


class TestCities:
    def test_catalog_unique_iata(self):
        assert len(CITY_CATALOG) >= 180

    def test_lookup_case_insensitive(self):
        assert city("fra") is city("FRA")

    def test_every_city_country_known(self):
        for c in CITY_CATALOG.values():
            assert isinstance(c.continent, Continent)

    def test_cities_in_every_continent(self):
        for continent in Continent:
            assert cities_in(continent), continent

    def test_hub_cities_exist(self):
        for iata in HUB_CITIES:
            assert iata in CITY_CATALOG
