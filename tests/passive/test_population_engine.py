"""The paper-scale population engine and the widened address plan.

Two contracts: (1) `client_prefix_v4`/`client_prefix_v6` stay unique out
to 10⁶ clients and byte-compatible with the historical strings below
id 65 536 (the old plan silently collided v4 /24s and emitted invalid
v6 groups there); (2) `compile_population`'s vectorized kernels are
byte-identical to the scalar golden reference for every profile shape,
and captures over a columns-only population match captures over the
reference client list.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.passive.clients import (
    ISP_PROFILE,
    IXP_NA_PROFILE,
    MAX_CLIENTS,
    client_prefix_v4,
    client_prefix_v6,
)
from repro.passive.flow_engine import ClientColumns
from repro.passive.isp import IspCapture
from repro.passive.population_engine import (
    POPULATION_ENGINES,
    build_population_clients,
    compile_population,
)
from repro.util.timeutil import parse_ts

SEED = 2024


class TestAddressPlan:
    def test_first_block_matches_historical_strings(self):
        """Ids below 2**16 must keep the exact old prefixes — cache keys
        and golden captures depend on them."""
        for client_id in (0, 1, 255, 256, 4095, 65535):
            assert client_prefix_v4(client_id) == (
                f"203.{(client_id >> 8) & 0xFF}.{client_id & 0xFF}.0/24"
            )
            assert client_prefix_v6(client_id) == f"2001:4d0:{client_id:x}::/48"

    def test_old_plan_collision_is_fixed(self):
        """Id 65 536 used to wrap back onto id 0's /24."""
        assert client_prefix_v4(65536) != client_prefix_v4(0)
        assert client_prefix_v4(65536) == "204.0.0.0/24"
        assert client_prefix_v6(65536) == "2001:4d1:0::/48"

    @pytest.mark.parametrize("family", [4, 6])
    def test_unique_at_one_million(self, family):
        fn = client_prefix_v4 if family == 4 else client_prefix_v6
        n = 1_000_000
        prefixes = {fn(i) for i in range(n)}
        assert len(prefixes) == n

    def test_v4_octets_stay_valid_at_one_million(self):
        for client_id in (999_999, MAX_CLIENTS - 1):
            octets = client_prefix_v4(client_id).split("/")[0].split(".")
            assert all(0 <= int(o) <= 255 for o in octets)

    def test_v6_groups_stay_valid_at_one_million(self):
        for client_id in (999_999, MAX_CLIENTS - 1):
            groups = client_prefix_v6(client_id).split("/")[0].split(":")
            assert all(len(g) <= 4 for g in groups)

    def test_plan_bounds(self):
        with pytest.raises(ValueError, match="address plan"):
            client_prefix_v4(MAX_CLIENTS)
        with pytest.raises(ValueError, match="address plan"):
            client_prefix_v6(-1)


def assert_columns_identical(got: ClientColumns, want: ClientColumns) -> None:
    assert got.client_ids.tobytes() == want.client_ids.tobytes()
    assert got.volumes.tobytes() == want.volumes.tobytes()
    assert got.has_v6.tobytes() == want.has_v6.tobytes()
    assert got.adoption_ts.tobytes() == want.adoption_ts.tobytes()
    for family in (4, 6):
        assert got.switchish[family].tobytes() == want.switchish[family].tobytes()
        assert got.primer[family].tobytes() == want.primer[family].tobytes()
        assert got.prefixes[family] == want.prefixes[family]


#: Small versions of both profile shapes (volume-aware and stratified):
#: the scalar reference is a Python loop.
VOLUME_AWARE = replace(ISP_PROFILE, name="isp-pe-test", n_clients=400)
STRATIFIED = replace(IXP_NA_PROFILE, name="ixp-pe-test", n_clients=400)


class TestEngineEquivalence:
    @pytest.mark.parametrize(
        "profile", [VOLUME_AWARE, STRATIFIED], ids=["volume-aware", "stratified"]
    )
    def test_vectorized_matches_scalar_reference(self, profile):
        got = compile_population(profile, SEED)
        want = compile_population(profile, SEED, engine="scalar")
        assert_columns_identical(got, want)

    def test_engine_validation(self):
        assert set(POPULATION_ENGINES) == {"vectorized", "scalar"}
        with pytest.raises(ValueError, match="engine"):
            compile_population(VOLUME_AWARE, SEED, engine="gpu")

    def test_seed_and_profile_separate_populations(self):
        base = compile_population(VOLUME_AWARE, SEED)
        other_seed = compile_population(VOLUME_AWARE, SEED + 1)
        assert base.volumes.tobytes() != other_seed.volumes.tobytes()

    def test_reference_clients_compile_to_same_columns(self):
        clients = build_population_clients(STRATIFIED, SEED)
        assert [c.client_id for c in clients] == list(range(400))
        assert_columns_identical(
            ClientColumns.from_clients(clients),
            compile_population(STRATIFIED, SEED),
        )

    def test_volume_distribution_is_paper_shaped(self):
        """Lognormal with median ~30/day and a heavy tail."""
        columns = compile_population(
            replace(ISP_PROFILE, name="isp-pe-big", n_clients=20_000), SEED
        )
        median = float(np.median(columns.volumes))
        assert 25.0 < median < 36.0
        assert float(columns.volumes.max()) > 30.0 * 50.0


class TestColumnsOnlyCapture:
    WINDOW = (parse_ts("2024-02-05"), parse_ts("2024-02-12"))

    def test_capture_over_columns_matches_capture_over_clients(self):
        columns = compile_population(VOLUME_AWARE, SEED)
        clients = build_population_clients(VOLUME_AWARE, SEED)
        via_columns = IspCapture(columns, seed=SEED).capture(*self.WINDOW)
        via_clients = IspCapture(clients, seed=SEED).capture(*self.WINDOW)
        assert via_columns.flows == via_clients.flows
        assert via_columns.per_client_flows == via_clients.per_client_flows
        assert via_columns.per_client_days == via_clients.per_client_days

    def test_scalar_engine_rejects_columns_only_population(self):
        columns = compile_population(VOLUME_AWARE, SEED)
        capture = IspCapture(columns, seed=SEED, engine="scalar")
        with pytest.raises(ValueError, match="columns-only"):
            capture.capture(*self.WINDOW)
