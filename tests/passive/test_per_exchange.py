"""Per-exchange capture behaviour (IXP-DNS-1 details)."""

import pytest

from repro.geo.continents import Continent
from repro.netsim.facilities import PASSIVE_IXP_IDS
from repro.passive.ixp import build_ixp_captures
from repro.util.rng import RngFactory
from repro.util.timeutil import parse_ts

WINDOW = (parse_ts("2023-11-01"), parse_ts("2023-11-04"))


@pytest.fixture(scope="module")
def captures():
    return build_ixp_captures(
        RngFactory(55).fork("per-exchange"), seed=55, clients_per_ixp=60
    )


class TestPerExchange:
    def test_every_passive_exchange_present(self, captures):
        assert {c.ixp.ixp_id for c in captures} == set(PASSIVE_IXP_IDS)

    def test_independent_client_populations(self, captures):
        a, b = captures[0], captures[1]
        assert a.engine.clients is not b.engine.clients
        vols_a = [c.daily_flows for c in a.engine.clients]
        vols_b = [c.daily_flows for c in b.engine.clients]
        assert vols_a != vols_b

    def test_sampling_rate_applied(self, captures):
        # IXP captures are heavily sampled compared to the ISP default.
        assert all(c.engine.sampling_rate < 1.0 for c in captures)

    def test_capture_deterministic_per_exchange(self, captures):
        first = captures[0].capture(*WINDOW)
        second = captures[0].capture(*WINDOW)
        assert first.flows == second.flows

    def test_eu_exchange_profile(self, captures):
        eu = [c for c in captures if c.region is Continent.EUROPE]
        na = [c for c in captures if c.region is Continent.NORTH_AMERICA]
        assert len(eu) == 8
        assert len(na) == 6

    def test_exchange_traffic_nonzero(self, captures):
        aggregate = captures[0].capture(*WINDOW)
        assert sum(aggregate.flows.values()) > 0
