"""The radix LPM index answers exactly like the linear-scan reference."""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.passive.clients import ISP_PROFILE, client_prefix_v4, client_prefix_v6
from repro.passive.population_engine import compile_population
from repro.passive.prefix_index import (
    PREFIX_INDEX_ENGINES,
    LinearPrefixIndex,
    RadixPrefixIndex,
    build_prefix_index,
    population_prefix_index,
)


class TestSemantics:
    @pytest.mark.parametrize("engine", PREFIX_INDEX_ENGINES)
    def test_exact_slash24_match(self, engine):
        index = build_prefix_index(
            [client_prefix_v4(i) for i in range(300)], engine=engine
        )
        assert index.lookup("203.0.7.99") == "203.0.7.0/24"
        assert index.lookup("203.1.43.1") == "203.1.43.0/24"  # id 299
        assert index.lookup("203.9.9.9") is None  # id 2313 not inserted
        assert index.lookup("2001:4d0:1::1") is None  # family separated

    @pytest.mark.parametrize("engine", PREFIX_INDEX_ENGINES)
    def test_exact_slash48_match(self, engine):
        index = build_prefix_index(
            [client_prefix_v6(i) for i in range(300)], engine=engine
        )
        assert index.lookup("2001:4d0:2a:dead::beef") == "2001:4d0:2a::/48"
        assert index.lookup("2001:4d0:ffff::1") is None

    @pytest.mark.parametrize("engine", PREFIX_INDEX_ENGINES)
    def test_longest_match_wins_in_nested_plans(self, engine):
        index = build_prefix_index(
            ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"], engine=engine
        )
        assert index.lookup("10.1.2.3") == "10.1.2.0/24"
        assert index.lookup("10.1.9.1") == "10.1.0.0/16"
        assert index.lookup("10.9.9.9") == "10.0.0.0/8"
        assert index.lookup("11.0.0.1") is None

    @pytest.mark.parametrize("engine", PREFIX_INDEX_ENGINES)
    def test_default_route_and_none_skipping(self, engine):
        index = build_prefix_index(["0.0.0.0/0", None, "192.0.2.0/24"], engine=engine)
        assert len(index) == 2
        assert index.lookup("8.8.8.8") == "0.0.0.0/0"
        assert index.lookup("192.0.2.1") == "192.0.2.0/24"

    def test_engine_validation(self):
        assert set(PREFIX_INDEX_ENGINES) == {"radix", "linear"}
        with pytest.raises(ValueError, match="engine"):
            build_prefix_index([], engine="bloom")
        assert isinstance(build_prefix_index([]), RadixPrefixIndex)
        assert isinstance(
            build_prefix_index([], engine="linear"), LinearPrefixIndex
        )

    @pytest.mark.parametrize("engine", PREFIX_INDEX_ENGINES)
    def test_duplicate_insert_keeps_first_payload(self, engine):
        index = build_prefix_index([], engine=engine)
        index.add("198.51.100.0/24", "first")
        index.add("198.51.100.0/24", "second")
        assert len(index) == 1
        assert index.lookup("198.51.100.7") == "first"


class TestEngineEquivalence:
    def test_random_nested_plans(self):
        """Random prefix plans with nesting: both engines agree on every
        lookup, hit or miss."""
        rng = random.Random(7)
        for _trial in range(20):
            prefixes = []
            for _ in range(60):
                length = rng.choice([8, 12, 16, 20, 24, 28, 32])
                value = rng.getrandbits(32) & ~((1 << (32 - length)) - 1)
                octets = ".".join(str((value >> s) & 0xFF) for s in (24, 16, 8, 0))
                prefixes.append(f"{octets}/{length}")
            radix = build_prefix_index(prefixes, engine="radix")
            linear = build_prefix_index(prefixes, engine="linear")
            for _ in range(200):
                if rng.random() < 0.5:
                    probe = rng.getrandbits(32)
                else:  # bias toward hits: probe inside a known prefix
                    base = prefixes[rng.randrange(len(prefixes))].split("/")[0]
                    parts = [int(p) for p in base.split(".")]
                    parts[3] = rng.randrange(256)
                    probe = (
                        (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]
                    )
                address = ".".join(str((probe >> s) & 0xFF) for s in (24, 16, 8, 0))
                assert radix.lookup(address) == linear.lookup(address), address

    def test_v6_equivalence(self):
        rng = random.Random(11)
        prefixes = [client_prefix_v6(rng.randrange(200_000)) for _ in range(300)]
        prefixes += ["2001:4d0::/32", "2001::/16"]
        radix = build_prefix_index(prefixes, engine="radix")
        linear = build_prefix_index(prefixes, engine="linear")
        for _ in range(300):
            address = f"2001:{rng.randrange(0x5000):x}:{rng.getrandbits(16):x}::{rng.getrandbits(16):x}"
            assert radix.lookup(address) == linear.lookup(address), address


class TestPopulationRoundTrip:
    def test_every_sampled_client_maps_to_its_own_prefix(self):
        """At 10⁵ clients, addresses inside a client's /24 (or /48) come
        back as exactly that client's prefix."""
        profile = replace(ISP_PROFILE, name="isp-pfx-test", n_clients=100_000)
        columns = compile_population(profile, 99)
        for family in (4, 6):
            index = population_prefix_index(columns, family)
            prefixes = columns.prefixes[family]
            rng = random.Random(family)
            checked = 0
            for client_id in rng.sample(range(100_000), 500):
                prefix = prefixes[client_id]
                if prefix is None:
                    continue
                host = prefix.split("/")[0]
                probe = (
                    host.rsplit(".", 1)[0] + f".{rng.randrange(1, 255)}"
                    if family == 4
                    else host + f"{rng.getrandbits(16):x}"
                )
                assert index.lookup(probe) == prefix
                checked += 1
            # All 500 samples check for v4; only dual-stack ones for v6.
            assert checked >= 250
