"""Client population behaviour models."""

import pytest

from repro.passive.clients import (
    ClientBehavior,
    ISP_PROFILE,
    IXP_EU_PROFILE,
    IXP_NA_PROFILE,
    PopulationProfile,
    build_client_population,
)
from repro.rss.operators import B_ROOT_CHANGE_TS
from repro.util.rng import RngFactory
from repro.util.timeutil import DAY


@pytest.fixture(scope="module")
def isp_clients(rng_factory):
    return build_client_population(ISP_PROFILE, rng_factory.fork("clients-test"))


class TestProfiles:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            PopulationProfile("x", 10, 1.5, 0.5, 0.5, 0.5, 0.5, 1.0)
        with pytest.raises(ValueError):
            PopulationProfile("x", 0, 0.5, 0.5, 0.5, 0.5, 0.5, 1.0)

    def test_regional_asymmetry_encoded(self):
        # EU switches more v6 traffic than NA (paper Fig. 9).
        assert IXP_EU_PROFILE.switch_fraction_v6 > IXP_NA_PROFILE.switch_fraction_v6

    def test_isp_v6_more_eager_than_v4(self):
        assert ISP_PROFILE.switch_fraction_v6 > ISP_PROFILE.switch_fraction_v4


class TestPopulation:
    def test_population_size(self, isp_clients):
        assert len(isp_clients) == ISP_PROFILE.n_clients

    def test_prefix_anonymisation(self, isp_clients):
        for client in isp_clients[:50]:
            assert client.prefix_v4.endswith(".0/24")
            if client.prefix_v6 is not None:
                assert client.prefix_v6.endswith("::/48")

    def test_dual_stack_share(self, isp_clients):
        dual = sum(1 for c in isp_clients if c.prefix_v6 is not None)
        assert abs(dual / len(isp_clients) - ISP_PROFILE.ipv6_share) < 0.05

    def test_v4_only_clients_have_no_v6_behavior(self, isp_clients):
        for client in isp_clients:
            if client.prefix_v6 is None:
                assert client.behavior(6) is None

    def test_heavy_tailed_volumes(self, isp_clients):
        volumes = sorted(c.daily_flows for c in isp_clients)
        top1pct = volumes[int(len(volumes) * 0.99):]
        assert sum(top1pct) > sum(volumes) * 0.2  # tail dominates

    def test_adoption_after_change(self, isp_clients):
        switcher = next(
            c for c in isp_clients if c.behavior_v4 is ClientBehavior.SWITCHER
        )
        assert switcher.adoption_ts >= B_ROOT_CHANGE_TS
        assert not switcher.has_adopted(B_ROOT_CHANGE_TS - DAY, 4)
        assert switcher.has_adopted(switcher.adoption_ts, 4)

    def test_reluctant_never_adopts(self, isp_clients):
        reluctant = next(
            c for c in isp_clients if c.behavior_v4 is ClientBehavior.RELUCTANT
        )
        assert not reluctant.has_adopted(B_ROOT_CHANGE_TS + 1000 * DAY, 4)

    def test_deterministic(self):
        a = build_client_population(ISP_PROFILE, RngFactory(77))
        b = build_client_population(ISP_PROFILE, RngFactory(77))
        assert [c.daily_flows for c in a] == [c.daily_flows for c in b]
        assert [c.behavior_v4 for c in a] == [c.behavior_v4 for c in b]

    def test_traffic_weighted_reluctance_calibrated(self, rng_factory):
        clients = build_client_population(
            IXP_NA_PROFILE, rng_factory.fork("strata-test")
        )
        total = sum(c.daily_flows for c in clients if c.prefix_v6 is not None)
        reluctant = sum(
            c.daily_flows
            for c in clients
            if c.prefix_v6 is not None and c.behavior_v6 is ClientBehavior.RELUCTANT
        )
        target = 1.0 - IXP_NA_PROFILE.switch_fraction_v6
        assert abs(reluctant / total - target) < 0.08
