"""Traffic anomalies and noise in passive captures."""

import pytest

from repro.passive.clients import ISP_PROFILE, build_client_population
from repro.passive.isp import DEFAULT_DIPS, IspCapture, TrafficDip
from repro.util.rng import RngFactory
from repro.util.timeutil import DAY, parse_ts

DIP_DAY = parse_ts("2024-02-26")


@pytest.fixture(scope="module")
def clients(rng_factory):
    return build_client_population(
        ISP_PROFILE, rng_factory.fork("anomaly-test")
    )[:500]


class TestTrafficDip:
    def test_default_calendar_has_a_root_dip(self):
        assert any(d.letter == "a" for d in DEFAULT_DIPS)
        dip = next(d for d in DEFAULT_DIPS if d.letter == "a")
        assert dip.start_ts == DIP_DAY

    def test_scale_semantics(self):
        dip = TrafficDip("a", 100, 200, 0.5)
        assert dip.scale("a", 150) == 0.5
        assert dip.scale("a", 250) == 1.0
        assert dip.scale("b", 150) == 1.0

    def test_dip_visible_in_capture(self, clients):
        capture = IspCapture(clients, seed=5)
        aggregate = capture.capture(DIP_DAY - DAY, DIP_DAY + 2 * DAY)
        a_series = dict(aggregate.series("198.41.0.4"))
        before = a_series[DIP_DAY - DAY]
        during = a_series[DIP_DAY]
        after = a_series[DIP_DAY + DAY]
        assert during < 0.7 * before
        assert during < 0.7 * after

    def test_other_letters_unaffected(self, clients):
        capture = IspCapture(clients, seed=5)
        aggregate = capture.capture(DIP_DAY - DAY, DIP_DAY + DAY)
        k_series = dict(aggregate.series("193.0.14.129"))
        assert k_series[DIP_DAY] > 0.6 * k_series[DIP_DAY - DAY]

    def test_dips_can_be_disabled(self, clients):
        capture = IspCapture(clients, seed=5, dips=())
        aggregate = capture.capture(DIP_DAY - DAY, DIP_DAY + DAY)
        a_series = dict(aggregate.series("198.41.0.4"))
        assert a_series[DIP_DAY] > 0.6 * a_series[DIP_DAY - DAY]


class TestNoise:
    def test_noise_increases_totals(self, clients):
        window = (parse_ts("2023-09-01"), parse_ts("2023-09-03"))
        clean = IspCapture(clients, seed=5, noise_fraction=0.0).capture(*window)
        noisy = IspCapture(clients, seed=5, noise_fraction=0.0175).capture(*window)
        clean_total = sum(clean.flows.values())
        noisy_total = sum(noisy.flows.values())
        assert noisy_total == pytest.approx(clean_total * 1.0175, rel=0.01)

    def test_noise_fraction_validated(self, clients):
        with pytest.raises(ValueError):
            IspCapture(clients, seed=5, noise_fraction=1.0)
