"""Golden equivalence: the vectorized capture engine vs the scalar loop.

The scalar triple loop in :meth:`IspCapture._capture_scalar` is the
reference semantics; :mod:`repro.passive.flow_engine` must reproduce it
**byte-identically** — same dict keys, same float bit patterns, same
distinct-client sets — for the ISP capture and all 14 IXP captures,
with and without traffic dips, and across the b.root renumbering
boundary.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.geo.continents import Continent
from repro.passive.clients import ISP_PROFILE, build_client_population
from repro.passive.isp import CAPTURE_ENGINES, IspCapture
from repro.passive.ixp import build_ixp_captures, regional_aggregate
from repro.passive.traces import FlowAggregate
from repro.util.rng import RngFactory
from repro.util.timeutil import DAY, HOUR, parse_ts

SEED = 42

#: Spans the 2023-11-27 b.root renumbering: adoption flips mid-window.
BOUNDARY_START = parse_ts("2023-11-24")
BOUNDARY_END = parse_ts("2023-12-02")

POST_START = parse_ts("2024-02-05")
POST_END = parse_ts("2024-02-19")

#: A reduced ISP population for the sub-daily variants (the scalar
#: reference is slow at full scale on hourly buckets).
SMALL_PROFILE = replace(ISP_PROFILE, name="isp-small", n_clients=250)


def assert_identical(scalar: FlowAggregate, vectorized: FlowAggregate) -> None:
    """Byte-identity: keys, float bit patterns, counts."""
    assert scalar.bucket_seconds == vectorized.bucket_seconds
    assert set(scalar.flows) == set(vectorized.flows)
    for key, value in scalar.flows.items():
        assert value.hex() == vectorized.flows[key].hex(), key
        assert scalar.client_count(*key) == vectorized.client_count(*key), key
    assert set(scalar.per_client_flows) == set(vectorized.per_client_flows)
    for key, value in scalar.per_client_flows.items():
        assert value.hex() == vectorized.per_client_flows[key].hex(), key
    assert scalar.per_client_days == vectorized.per_client_days


@pytest.fixture(scope="module")
def clients():
    return build_client_population(
        ISP_PROFILE, RngFactory(SEED).fork("flow-engine-test")
    )


@pytest.fixture(scope="module")
def small_clients():
    return build_client_population(
        SMALL_PROFILE, RngFactory(SEED).fork("flow-engine-test")
    )


def engine_pair(clients, **kwargs):
    return (
        IspCapture(clients, seed=SEED, engine="scalar", **kwargs),
        IspCapture(clients, seed=SEED, engine="vectorized", **kwargs),
    )


class TestIspEquivalence:
    def test_daily_post_change_window(self, clients):
        """Full ISP population, daily buckets, the Fig. 7/8/12 window
        (includes the default a.root TrafficDip)."""
        scalar, vectorized = engine_pair(clients)
        assert_identical(
            scalar.capture(POST_START, POST_END),
            vectorized.capture(POST_START, POST_END),
        )

    def test_daily_across_renumbering_boundary(self, clients):
        scalar, vectorized = engine_pair(clients)
        assert_identical(
            scalar.capture(BOUNDARY_START, BOUNDARY_END),
            vectorized.capture(BOUNDARY_START, BOUNDARY_END),
        )

    def test_hourly_buckets(self, small_clients):
        """Sub-daily buckets exercise the diurnal factor."""
        scalar, vectorized = engine_pair(small_clients)
        start = parse_ts("2023-11-26")
        assert_identical(
            scalar.capture(start, start + 2 * DAY, bucket_seconds=HOUR),
            vectorized.capture(start, start + 2 * DAY, bucket_seconds=HOUR),
        )

    def test_without_dips(self, small_clients):
        scalar, vectorized = engine_pair(small_clients, dips=())
        assert_identical(
            scalar.capture(POST_START, POST_END),
            vectorized.capture(POST_START, POST_END),
        )

    def test_sampled_capture(self, small_clients):
        """sampling_rate < 1 exercises the drop draw on every cell."""
        scalar, vectorized = engine_pair(small_clients, sampling_rate=0.1)
        assert_identical(
            scalar.capture(POST_START, POST_END),
            vectorized.capture(POST_START, POST_END),
        )

    def test_client_sets_materialize_identically(self, small_clients):
        """The lazy membership masks expand to the exact scalar sets."""
        scalar, vectorized = engine_pair(small_clients)
        scalar_agg = scalar.capture(BOUNDARY_START, BOUNDARY_END)
        vector_agg = vectorized.capture(BOUNDARY_START, BOUNDARY_END)
        assert vector_agg.clients == scalar_agg.clients

    def test_counts_match_set_sizes(self, small_clients):
        _scalar, vectorized = engine_pair(small_clients)
        aggregate = vectorized.capture(POST_START, POST_END)
        for key, prefixes in aggregate.clients.items():
            assert aggregate.client_count(*key) == len(prefixes)

    def test_engine_validation(self, small_clients):
        assert set(CAPTURE_ENGINES) == {"vectorized", "scalar"}
        with pytest.raises(ValueError, match="engine"):
            IspCapture(small_clients, seed=SEED, engine="gpu")


class TestClientBlocking:
    """The client-axis blocked grid is byte-identical at any width."""

    @pytest.mark.parametrize("block", [1, 37, 100_000])
    def test_blocked_matches_scalar_and_default(self, small_clients, block):
        from repro.passive.flow_engine import capture_vectorized

        scalar, vectorized = engine_pair(small_clients, sampling_rate=0.1)
        blocked = capture_vectorized(
            vectorized, POST_START, POST_END, DAY, client_block=block
        )
        assert_identical(scalar.capture(POST_START, POST_END), blocked)
        default = vectorized.capture(POST_START, POST_END)
        assert blocked.flows == default.flows

    def test_blocked_membership_matches(self, small_clients):
        from repro.passive.flow_engine import capture_vectorized

        scalar, vectorized = engine_pair(small_clients)
        blocked = capture_vectorized(
            vectorized, BOUNDARY_START, BOUNDARY_END, DAY, client_block=41
        )
        assert blocked.clients == scalar.capture(BOUNDARY_START, BOUNDARY_END).clients

    def test_rejects_bad_block(self, small_clients):
        from repro.passive.flow_engine import capture_vectorized

        _scalar, vectorized = engine_pair(small_clients)
        with pytest.raises(ValueError, match="client_block"):
            capture_vectorized(
                vectorized, POST_START, POST_END, DAY, client_block=0
            )


class TestIxpEquivalence:
    WINDOW = (parse_ts("2023-12-08"), parse_ts("2023-12-15"))

    @pytest.fixture(scope="class")
    def capture_lists(self):
        return (
            build_ixp_captures(
                RngFactory(SEED).fork("ixp"), seed=SEED,
                clients_per_ixp=60, engine="scalar",
            ),
            build_ixp_captures(
                RngFactory(SEED).fork("ixp"), seed=SEED,
                clients_per_ixp=60, engine="vectorized",
            ),
        )

    def test_all_14_exchanges_equivalent(self, capture_lists):
        scalar_caps, vector_caps = capture_lists
        assert len(scalar_caps) == len(vector_caps) == 14
        for scalar_cap, vector_cap in zip(scalar_caps, vector_caps):
            assert scalar_cap.ixp.ixp_id == vector_cap.ixp.ixp_id
            assert_identical(
                scalar_cap.capture(*self.WINDOW),
                vector_cap.capture(*self.WINDOW),
            )

    def test_regional_merges_equivalent(self, capture_lists):
        scalar_caps, vector_caps = capture_lists
        for region in (Continent.EUROPE, Continent.NORTH_AMERICA):
            assert_identical(
                regional_aggregate(scalar_caps, region, *self.WINDOW),
                regional_aggregate(vector_caps, region, *self.WINDOW),
            )


class TestCountsOnlyAggregates:
    """Aggregates reloaded from a dataset carry counts, not sets."""

    def test_clients_property_raises(self):
        aggregate = FlowAggregate.from_parts(
            DAY,
            flows={(0, "a"): 2.0},
            client_counts={(0, "a"): 2},
            per_client_flows={("a", "p1"): 1.0, ("a", "p2"): 1.0},
            per_client_days={("a", "p1"): 1, ("a", "p2"): 1},
        )
        assert aggregate.client_count(0, "a") == 2
        assert aggregate.unique_clients("a") == [(0, 2)]
        with pytest.raises(RuntimeError, match="counts"):
            aggregate.clients


class TestReadCaches:
    """The memoized read views invalidate on every write."""

    def test_buckets_cache_invalidates_on_add(self):
        aggregate = FlowAggregate(bucket_seconds=DAY)
        aggregate.add_flows(0, "a", 1.0, "p1")
        assert aggregate.buckets() == [0]
        aggregate.add_flows(DAY, "a", 2.0, "p1")
        assert aggregate.buckets() == [0, DAY]
        assert list(aggregate.buckets_array()) == [0, DAY]

    def test_flow_arrays_invalidate_on_add(self):
        aggregate = FlowAggregate(bucket_seconds=DAY)
        aggregate.add_flows(0, "a", 1.0, "p1")
        assert aggregate.flows_by_bucket("a").tolist() == [1.0]
        aggregate.add_flows(0, "a", 2.0, "p2")
        assert aggregate.flows_by_bucket("a").tolist() == [3.0]
        assert aggregate.unique_clients("a") == [(0, 2)]

    def test_merge_unions_client_sets(self):
        left = FlowAggregate(bucket_seconds=DAY)
        left.add_flows(0, "a", 1.0, "p1")
        right = FlowAggregate(bucket_seconds=DAY)
        right.add_flows(0, "a", 2.0, "p1")
        right.add_flows(0, "a", 2.0, "p2")
        left.merge_from(right)
        assert left.flows[(0, "a")] == 5.0
        # p1 seen at both exchanges is one client, not two.
        assert left.client_count(0, "a") == 2
        assert left.per_client_days[("a", "p1")] == 1

    def test_merge_rejects_mismatched_buckets(self):
        left = FlowAggregate(bucket_seconds=DAY)
        right = FlowAggregate(bucket_seconds=HOUR)
        with pytest.raises(ValueError, match="bucket_seconds"):
            left.merge_from(right)
