"""ISP and IXP capture pipelines and the traffic aggregates."""

import pytest

from repro.geo.continents import Continent
from repro.passive.clients import ISP_PROFILE, build_client_population
from repro.passive.isp import IspCapture
from repro.passive.ixp import build_ixp_captures, regional_aggregate
from repro.passive.traces import FlowAggregate, TrafficTimeSeries
from repro.rss.operators import all_service_addresses, root_server
from repro.util.timeutil import DAY, HOUR, parse_ts

PRE_DAY = parse_ts("2023-10-08")
POST_START = parse_ts("2024-02-05")
POST_END = parse_ts("2024-02-19")  # two weeks are enough for tests


@pytest.fixture(scope="module")
def isp(rng_factory):
    clients = build_client_population(
        ISP_PROFILE, rng_factory.fork("capture-test")
    )
    return IspCapture(clients, seed=42)


@pytest.fixture(scope="module")
def pre_aggregate(isp):
    return isp.capture(PRE_DAY, PRE_DAY + DAY)


@pytest.fixture(scope="module")
def post_aggregate(isp):
    return isp.capture(POST_START, POST_END)


def b_subnets():
    b = root_server("b")
    return {"v4new": b.ipv4, "v4old": b.old_ipv4, "v6new": b.ipv6, "v6old": b.old_ipv6}


class TestFlowAggregate:
    def test_add_and_series(self):
        agg = FlowAggregate(bucket_seconds=DAY)
        agg.add_flows(100, "1.2.3.4", 5.0, "203.0.0.0/24")
        agg.add_flows(100 + DAY, "1.2.3.4", 3.0, "203.0.0.0/24")
        series = agg.series("1.2.3.4")
        assert [v for _ts, v in series] == [5.0, 3.0]

    def test_zero_flows_ignored(self):
        agg = FlowAggregate(bucket_seconds=DAY)
        agg.add_flows(100, "1.2.3.4", 0.0, "x")
        assert not agg.flows

    def test_unique_clients(self):
        agg = FlowAggregate(bucket_seconds=DAY)
        agg.add_flows(100, "a", 1.0, "p1")
        agg.add_flows(200, "a", 1.0, "p2")
        agg.add_flows(200, "a", 1.0, "p2")
        assert agg.unique_clients("a")[0][1] == 2


class TestIspCapture:
    def test_pre_change_old_dominates(self, isp, pre_aggregate):
        ts = isp.time_series(pre_aggregate)
        b = b_subnets()
        subset = list(b.values())
        old_share = ts.window_share(b["v4old"], PRE_DAY, PRE_DAY + DAY, subset)
        new_share = ts.window_share(b["v4new"], PRE_DAY, PRE_DAY + DAY, subset)
        assert old_share > 0.7
        assert new_share < 0.05  # testing trickle only

    def test_post_change_new_dominates(self, isp, post_aggregate):
        ts = isp.time_series(post_aggregate)
        b = b_subnets()
        subset = list(b.values())
        assert ts.window_share(b["v4new"], POST_START, POST_END, subset) > 0.5

    def test_v6_shift_exceeds_v4_shift(self, isp, post_aggregate):
        ts = isp.time_series(post_aggregate)
        b = b_subnets()
        shift = {}
        for fam in (4, 6):
            new, old = b[f"v{fam}new"], b[f"v{fam}old"]
            shift[fam] = ts.window_share(new, POST_START, POST_END, [new, old])
        assert shift[6] > shift[4]
        assert shift[4] > 0.7

    def test_all_letters_receive_traffic(self, isp, pre_aggregate):
        for sa in all_service_addresses():
            if sa.generation == "new":
                continue
            total = sum(v for _ts, v in pre_aggregate.series(sa.address))
            assert total > 0, sa.address

    def test_hourly_resolution(self, isp):
        agg = isp.capture(PRE_DAY, PRE_DAY + 6 * HOUR, bucket_seconds=HOUR)
        assert len(agg.buckets()) == 6

    def test_sampling_rate_validated(self, isp):
        with pytest.raises(ValueError):
            IspCapture(isp.clients, seed=1, sampling_rate=0.0)

    def test_capture_window_validated(self, isp):
        with pytest.raises(ValueError):
            isp.capture(PRE_DAY, PRE_DAY)

    def test_deterministic(self, isp):
        a = isp.capture(PRE_DAY, PRE_DAY + DAY)
        b = isp.capture(PRE_DAY, PRE_DAY + DAY)
        assert a.flows == b.flows


class TestIxpCaptures:
    def test_fourteen_exchanges(self, rng_factory):
        captures = build_ixp_captures(
            rng_factory.fork("ixp-test"), seed=9, clients_per_ixp=50
        )
        assert len(captures) == 14
        regions = {c.region for c in captures}
        assert regions == {Continent.EUROPE, Continent.NORTH_AMERICA}

    def test_regional_v6_shift_asymmetry(self, rng_factory):
        captures = build_ixp_captures(
            rng_factory.fork("ixp-test-2"), seed=9, clients_per_ixp=100
        )
        b = b_subnets()
        window = (parse_ts("2023-12-10"), parse_ts("2023-12-28"))
        shares = {}
        for region in (Continent.EUROPE, Continent.NORTH_AMERICA):
            agg = regional_aggregate(captures, region, *window)
            ts = TrafficTimeSeries(agg, all_service_addresses())
            shares[region] = ts.window_share(
                b["v6new"], *window, [b["v6new"], b["v6old"]]
            )
        assert shares[Continent.EUROPE] > shares[Continent.NORTH_AMERICA] + 0.15

    def test_letter_skew_at_ixps(self, rng_factory):
        captures = build_ixp_captures(
            rng_factory.fork("ixp-test-3"), seed=9, clients_per_ixp=60
        )
        agg = captures[0].capture(parse_ts("2023-11-01"), parse_ts("2023-11-04"))
        totals = {}
        for sa in all_service_addresses():
            totals[sa.letter] = totals.get(sa.letter, 0.0) + sum(
                v for _t, v in agg.series(sa.address)
            )
        # k and d dominate (paper Fig. 13).
        ordered = sorted(totals, key=totals.get, reverse=True)
        assert set(ordered[:2]) == {"k", "d"}


class TestTimeSeries:
    def test_shares_sum_to_one(self, isp, pre_aggregate):
        ts = isp.time_series(pre_aggregate)
        shares = ts.normalized_shares()
        for bucket_idx in range(len(pre_aggregate.buckets())):
            total = sum(series[bucket_idx][1] for series in shares.values())
            assert total == pytest.approx(1.0)

    def test_subset_normalisation(self, isp, pre_aggregate):
        ts = isp.time_series(pre_aggregate)
        b = b_subnets()
        shares = ts.normalized_shares(list(b.values()))
        total = sum(series[0][1] for series in shares.values())
        assert total == pytest.approx(1.0)

    def test_empty_window_share_zero(self, isp, pre_aggregate):
        ts = isp.time_series(pre_aggregate)
        assert ts.window_share("198.41.0.4", 0, 1) == 0.0
