"""The collector's growth policy never changes what readers see.

`_ColumnTable` stores rows in geometrically-doubled preallocated numpy
buffers; scalar ``append``, batch ``extend`` (which writes into slack),
``drain_rows`` and ``merge`` must all be byte-transparent against the
obvious row-at-a-time reference no matter how operations interleave
with reallocation boundaries.  Plus the PR 7 ``attach_rows`` contract:
adopting drained (possibly slack-backed) columns is zero-copy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vantage.collector import (
    CampaignCollector,
    _ColumnTable,
    _PROBE_SPEC,
)

_SITE_POOL = [f"site-{i}" for i in range(6)]


# -- _ColumnTable vs a row-list reference ---------------------------------------------

_SPEC = (
    ("a", np.dtype(np.int32)),
    ("b", np.dtype(np.float64)),
    ("c", np.dtype(bool)),
)


def _rows(draw_ints, draw_floats, draw_bools):
    return list(zip(draw_ints, draw_floats, draw_bools))


_row = st.tuples(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
)

_op = st.one_of(
    st.tuples(st.just("append"), _row),
    st.tuples(st.just("extend"), st.lists(_row, min_size=0, max_size=700)),
)


class TestColumnTableGrowth:
    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(_op, min_size=0, max_size=12))
    def test_interleaved_append_extend_matches_reference(self, ops):
        table = _ColumnTable(_SPEC)
        reference = []
        for kind, payload in ops:
            if kind == "append":
                table.append(*payload)
                reference.append(payload)
            else:
                table.extend(
                    a=np.array([r[0] for r in payload], dtype=np.int32),
                    b=np.array([r[1] for r in payload], dtype=np.float64),
                    c=np.array([r[2] for r in payload], dtype=bool),
                )
                reference.extend(payload)
        assert len(table) == len(reference)
        for i, (name, dtype) in enumerate(_SPEC):
            col = table.column(name)
            assert col.dtype == dtype
            want = np.array([r[i] for r in reference], dtype=dtype)
            assert np.array_equal(col, want)
        # Capacity is the doubling schedule's: initial * 2^k, >= rows.
        assert table.capacity >= max(len(reference), 1)
        cap = table.capacity
        while cap > _ColumnTable._INITIAL and cap % 2 == 0:
            cap //= 2
        assert cap == _ColumnTable._INITIAL

    def test_reserve_skips_reallocation(self):
        table = _ColumnTable(_SPEC)
        table.reserve(5000)
        assert table.capacity >= 5000
        bufs = [table._buffers[name] for name, _ in _SPEC]
        for i in range(5000):
            table.append(i, float(i), i % 2 == 0)
        assert [table._buffers[name] for name, _ in _SPEC] == bufs
        table.reserve(10)  # no-op shrink request
        assert table.capacity >= 5000

    def test_extend_rejects_ragged_and_mismatched(self):
        table = _ColumnTable(_SPEC)
        with pytest.raises(ValueError, match="ragged"):
            table.extend(
                a=np.zeros(2, np.int32),
                b=np.zeros(3, np.float64),
                c=np.zeros(2, bool),
            )
        with pytest.raises(ValueError, match="mismatch"):
            table.extend(a=np.zeros(2, np.int32), b=np.zeros(2, np.float64))


# -- collector-level interleavings -----------------------------------------------------


def _probe_block(rng, n):
    return {
        "vp": rng.integers(0, 40, n).astype(np.int32),
        "ts": np.sort(rng.integers(10_000, 99_000, n)).astype(np.int64),
        "addr": rng.integers(0, 28, n).astype(np.int16),
        "site_key": [_SITE_POOL[k] for k in rng.integers(0, len(_SITE_POOL), n)],
        "rtt": rng.random(n) * 300.0,
        "direct_km": rng.random(n) * 9000.0,
        "closest_km": rng.random(n) * 2000.0,
        "peer": rng.random(n) < 0.5,
        "transit": rng.integers(0, 65000, n).astype(np.int32),
    }


def _ingest_scalar(collector, block):
    for i in range(len(block["vp"])):
        collector.add_probe_sample(
            int(block["vp"][i]),
            int(block["ts"][i]),
            int(block["addr"][i]),
            block["site_key"][i],
            float(block["rtt"][i]),
            float(block["direct_km"][i]),
            float(block["closest_km"][i]),
            bool(block["peer"][i]),
            int(block["transit"][i]),
        )


def _ingest_batch(collector, block):
    site = np.array(
        [
            collector.sites.intern(key, (collector.rounds_processed, int(vp), int(addr)))
            for key, vp, addr in zip(block["site_key"], block["vp"], block["addr"])
        ],
        dtype=np.int64,
    )
    collector.add_probe_block(
        vp=block["vp"],
        ts=block["ts"],
        addr=block["addr"],
        site=site,
        rtt=block["rtt"],
        direct_km=block["direct_km"],
        closest_km=block["closest_km"],
        peer=block["peer"],
        transit=block["transit"],
    )


def _drained_concat(drains):
    names = [name for name, _ in _PROBE_SPEC]
    return {name: np.concatenate([d[name] for d in drains]) for name in names}


class TestCollectorGrowthInterleavings:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        sizes=st.lists(st.integers(min_value=0, max_value=900), min_size=1, max_size=8),
        batch_flags=st.lists(st.booleans(), min_size=8, max_size=8),
        drain_flags=st.lists(st.booleans(), min_size=8, max_size=8),
    )
    def test_any_interleaving_matches_scalar_no_drain(
        self, seed, sizes, batch_flags, drain_flags
    ):
        """Scalar/batch ingest with arbitrary drain points concatenates
        to the same bytes as pure scalar ingest with no drains."""
        rng = np.random.default_rng(seed)
        blocks = [_probe_block(rng, n) for n in sizes]

        reference = CampaignCollector()
        for block in blocks:
            _ingest_scalar(reference, block)

        subject = CampaignCollector()
        drains = []
        for i, block in enumerate(blocks):
            (_ingest_batch if batch_flags[i] else _ingest_scalar)(subject, block)
            if drain_flags[i]:
                probes, _traces, _transfers = subject.drain_rows()
                drains.append(probes)
        probes, _traces, _transfers = subject.drain_rows()
        drains.append(probes)

        got = _drained_concat(drains)
        assert subject.sites.values == reference.sites.values
        for name, dtype in _PROBE_SPEC:
            want = reference._probes.column(name)
            assert got[name].dtype == want.dtype == dtype
            assert np.array_equal(got[name], want), name

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        batch_flags=st.lists(st.booleans(), min_size=4, max_size=4),
    )
    def test_merge_indifferent_to_ingest_mode(self, seed, batch_flags):
        """merge() output is byte-identical whether its shard inputs
        were filled scalar row-by-row or through batch extends."""
        rng = np.random.default_rng(seed)
        blocks = [_probe_block(rng, n) for n in (700, 120, 0, 333)]

        def shards(flags):
            out = [CampaignCollector(), CampaignCollector()]
            for i, block in enumerate(blocks):
                ingest = _ingest_batch if flags[i] else _ingest_scalar
                ingest(out[i % 2], block)
            return out

        merged = CampaignCollector.merge(shards(batch_flags))
        reference = CampaignCollector.merge(shards([False] * 4))
        assert merged.sites.values == reference.sites.values
        for name, _dtype in _PROBE_SPEC:
            assert np.array_equal(
                merged._probes.column(name), reference._probes.column(name)
            ), name


class TestAttachRowsAfterGrowth:
    def test_attach_is_zero_copy_over_grown_buffers(self):
        """Columns drained out of a grown (slack-carrying) table are
        adopted by attach_rows without copying a byte."""
        rng = np.random.default_rng(7)
        source = CampaignCollector()
        _ingest_scalar(source, _probe_block(rng, 3000))  # > _INITIAL: grown twice
        assert source._probes.capacity > len(source._probes)
        state = source.state_dict()
        probes, traceroutes, transfers = source.drain_rows()

        restored = CampaignCollector()
        restored.restore_state_dict(state)
        restored.attach_rows(probes, traceroutes, transfers)
        for name, _dtype in _PROBE_SPEC:
            assert np.shares_memory(restored._probes.column(name), probes[name]), name
            assert np.array_equal(restored._probes.column(name), probes[name])
        with pytest.raises(Exception):
            restored.add_probe_sample(1, 1, 1, "site-0", 1.0, 1.0, 1.0, False, 0)

    def test_attach_requires_empty_tables(self):
        rng = np.random.default_rng(8)
        full = CampaignCollector()
        _ingest_scalar(full, _probe_block(rng, 5))
        probes, traceroutes, transfers = CampaignCollector().drain_rows()
        with pytest.raises(ValueError, match="empty row tables"):
            full.attach_rows(probes, traceroutes, transfers)
