"""Collector sealing and row draining.

A :class:`~repro.data.Dataset` takes zero-copy ownership of the
collector's column buffers, and the streaming engine detaches them
chunk-by-chunk; both moves are only safe if later appends fail loudly
instead of silently corrupting (or vanishing from) the handed-off
arrays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.vantage.collector import (
    CampaignCollector,
    CollectorSealedError,
    TransferObservation,
)


def _populated_collector() -> CampaignCollector:
    collector = CampaignCollector()
    collector.note_site(3, 1, "k-FRA-1")
    collector.note_identity("k", "k1.ams", vp_id=3, addr_idx=1)
    collector.add_probe_sample(3, 1000, 1, "k-FRA-1", 12.5, 100.0, 90.0, False)
    collector.add_traceroute(3, 1000, 1, "peer-1")
    collector.count_transfer(clean=True)
    return collector


def test_sealed_collector_rejects_every_ingest_path():
    collector = _populated_collector()
    collector.seal()
    assert collector.sealed
    one = np.ones(1, np.int32)
    ingests = [
        lambda: collector.note_site(3, 1, "k-FRA-1"),
        lambda: collector.note_identity("k", "k1.ams"),
        lambda: collector.add_probe_sample(
            3, 1001, 1, "k-FRA-1", 9.0, 80.0, 70.0, True
        ),
        lambda: collector.add_probe_block(
            vp=one, ts=one, addr=one, site=one, rtt=one.astype(np.float64),
            direct_km=one.astype(np.float64),
            closest_km=one.astype(np.float64),
            peer=one.astype(bool), transit=one,
        ),
        lambda: collector.add_traceroute(3, 1001, 1, None),
        lambda: collector.add_traceroute_block(vp=one, ts=one, addr=one, hop=one),
        lambda: collector.count_transfer(clean=False),
        lambda: collector.add_transfer_observation(
            TransferObservation(
                vp_id=3, true_ts=1000, observed_ts=1000, address=None,
                serial=1, zone=None,
            )
        ),
        lambda: collector.drain_rows(),
    ]
    for ingest in ingests:
        with pytest.raises(CollectorSealedError):
            ingest()
    # seal is idempotent and read-side access still works
    collector.seal()
    assert collector.summary()["probe_samples"] == 1


def test_to_dataset_seals_the_collector():
    collector = _populated_collector()
    dataset = collector.to_dataset()
    assert collector.sealed
    assert len(dataset.table("probes")) == 1
    with pytest.raises(CollectorSealedError):
        collector.add_probe_sample(3, 1001, 1, "k-FRA-1", 9.0, 80.0, 70.0, True)


def test_drain_rows_detaches_rows_but_keeps_aggregates():
    collector = _populated_collector()
    probes, traceroutes, transfers = collector.drain_rows()
    assert len(probes["vp"]) == 1 and len(traceroutes["vp"]) == 1
    assert transfers == []
    # row tables are empty now, aggregate state survives
    assert len(collector.probe_columns()["vp"]) == 0
    assert collector.summary()["transfers"] == 1
    assert collector.change_counts()
    # and the collector keeps ingesting after a drain
    collector.add_probe_sample(3, 2000, 1, "k-FRA-1", 11.0, 100.0, 90.0, False)
    assert len(collector.probe_columns()["vp"]) == 1
