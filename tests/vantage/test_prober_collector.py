"""The prober and the streaming collector, exercised on the mini study."""

import pytest

from repro.dns.constants import RRType, Rcode
from repro.rss.operators import all_service_addresses
from repro.util.timeutil import parse_ts
from repro.vantage.collector import CampaignCollector


class TestCollector:
    def test_28_addresses_indexed(self):
        collector = CampaignCollector()
        assert len(collector.addresses) == 28
        for i, sa in enumerate(collector.addresses):
            assert collector.addr_index[sa.address] == i

    def test_note_site_counts_changes(self):
        collector = CampaignCollector()
        for site in ("a-001", "a-001", "a-002", "a-001"):
            collector.note_site(1, 0, site)
        counts = collector.change_counts()
        assert counts[(1, 0)] == (2, 4)

    def test_identity_counting(self):
        collector = CampaignCollector()
        collector.note_identity("k", "k001.fra-g.root-servers.org")
        collector.note_identity("k", "k001.fra-g.root-servers.org")
        assert collector.identities["k"]["k001.fra-g.root-servers.org"] == 2

    def test_probe_columns_roundtrip(self):
        collector = CampaignCollector()
        collector.add_probe_sample(3, 1000, 2, "c-001", 25.0, 500.0, 400.0, True)
        cols = collector.probe_columns()
        assert cols["vp"][0] == 3
        assert cols["rtt"][0] == pytest.approx(25.0)
        samples = collector.probe_samples()
        assert samples[0].site_key == "c-001"
        assert samples[0].address.letter == "b"  # index 2 is b's second addr

    def test_traceroute_missing_hop(self):
        collector = CampaignCollector()
        collector.add_traceroute(1, 100, 0, None)
        collector.add_traceroute(1, 200, 0, "edge.fra-ix")
        samples = collector.traceroute_samples()
        assert samples[0].second_to_last_hop is None
        assert samples[1].second_to_last_hop == "edge.fra-ix"


class TestCampaign:
    def test_summary_counts(self, mini_study):
        summary = mini_study.results().summary()
        assert summary["rounds"] > 0
        assert summary["probe_samples"] > 0
        assert summary["transfers"] > 0
        assert summary["queries"] > summary["transfers"]

    def test_every_address_probed(self, mini_study):
        counts = mini_study.collector.change_counts()
        addr_indices = {addr_idx for _vp, addr_idx in counts}
        assert addr_indices == set(range(28))

    def test_every_vp_participates(self, mini_study):
        counts = mini_study.collector.change_counts()
        vp_ids = {vp_id for vp_id, _addr in counts}
        assert vp_ids == {vp.vp_id for vp in mini_study.vps}

    def test_rounds_match_schedule(self, mini_study):
        assert (
            mini_study.collector.rounds_processed
            == mini_study.schedule.round_count()
        )

    def test_identities_for_all_letters(self, mini_study):
        assert set(mini_study.collector.identities) == set("abcdefghijklm")

    def test_transfer_observations_have_zones(self, mini_study):
        for obs in mini_study.collector.transfers[:10]:
            assert obs.zone.serial == obs.serial

    def test_bitflip_faults_recorded(self, mini_study):
        # The mini window (2023-11-20 .. 12-08) covers two scheduled flips.
        flips = [t for t in mini_study.collector.transfers if t.fault == "bitflip"]
        assert flips
        letters = {t.address.letter for t in flips}
        assert letters <= {"b", "g"}


class TestFullFidelity:
    def test_appendix_f_suite(self, mini_study):
        vp = mini_study.vps[0]
        sa = next(s for s in all_service_addresses() if s.letter == "k")
        responses = mini_study.prober.probe_full_fidelity(
            vp, sa, round_no=0, ts=parse_ts("2023-11-25T12:00:00")
        )
        # 7 base queries + 13 letters x 3 record types
        assert len(responses) == 7 + 39
        ns = responses["NS ."]
        assert ns.header.rcode == Rcode.NOERROR
        assert len(ns.answer_rrs(RRType.NS)) == 13
        identity = responses["CH TXT hostname.bind"].answers[0].rdata.single_text()
        assert "root-servers.org" in identity
        zonemd = responses["ZONEMD ."]
        assert zonemd.answer_rrs(RRType.ZONEMD)

    def test_glue_answers_match_publication_time(self, mini_study):
        vp = mini_study.vps[0]
        sa = next(s for s in all_service_addresses() if s.letter == "a")
        before = mini_study.prober.probe_full_fidelity(
            vp, sa, 0, parse_ts("2023-11-25T12:00:00")
        )
        after = mini_study.prober.probe_full_fidelity(
            vp, sa, 1, parse_ts("2023-12-01T12:00:00")
        )
        b_name = "A b.root-servers.net."
        old = before[b_name].answer_rrs(RRType.A)[0].rdata.address
        new = after[b_name].answer_rrs(RRType.A)[0].rdata.address
        assert old == "199.9.14.201"
        assert new == "170.247.170.2"
