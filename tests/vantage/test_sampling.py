"""Sampling policy behaviour in the prober."""

import pytest

from repro.core import RootStudy, StudyConfig
from repro.util.timeutil import parse_ts

WINDOW = dict(
    campaign_start=parse_ts("2023-09-01"),
    campaign_end=parse_ts("2023-09-08"),
    include_faults=False,
)


def run(seed: int, **overrides):
    config = StudyConfig(
        seed=seed, ring_scale=0.02, ring_min_per_region=1,
        interval_scale=48.0, **WINDOW, **overrides,
    )
    study = RootStudy(config)
    study.run()
    return study


class TestSamplingDensity:
    def test_rtt_sampling_scales_row_count(self):
        dense = run(5, rtt_sample_every=1)
        sparse = run(5, rtt_sample_every=4)
        dense_rows = len(dense.collector.probe_columns()["rtt"])
        sparse_rows = len(sparse.collector.probe_columns()["rtt"])
        assert dense_rows == pytest.approx(4 * sparse_rows, rel=0.3)

    def test_stability_counts_independent_of_sampling(self):
        dense = run(5, rtt_sample_every=1)
        sparse = run(5, rtt_sample_every=4)
        # Catchment selection happens every round regardless of sampling.
        assert dense.collector.change_counts() == sparse.collector.change_counts()

    def test_query_count_matches_suite_size(self):
        study = run(5)
        summary = study.collector.summary()
        rounds = study.schedule.round_count()
        # 47 queries per address per round (Appendix F), 28 addresses.
        expected = rounds * len(study.vps) * 28 * 47
        assert summary["queries"] == expected

    def test_traceroute_sampling_desynchronised_across_vps(self):
        study = run(5, traceroute_sample_every=4)
        cols = study.collector.traceroute_columns()
        # Multiple VPs contribute in every sampled window, i.e. sampling
        # phase varies by VP rather than firing all at once.
        ts_values = sorted(set(cols["ts"].tolist()))
        assert len(ts_values) >= study.schedule.round_count() // 2
