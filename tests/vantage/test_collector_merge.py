"""Sharded collection merges back to the serial collector, exactly.

The property the sharded execution path rests on: partition the VP ring
into any number of disjoint shards, probe each shard over the full
schedule, merge the shard collectors — and the result is the collector a
serial run produces.  Same summary, same change counts, same columnar
tables, same interner contents *in the same order*, same identity
dictionaries (including dict insertion order).
"""

import numpy as np
import pytest

from repro.core import RootStudy, StudyConfig
from repro.util.timeutil import parse_ts
from repro.vantage.collector import CampaignCollector


def tiny_config(**overrides) -> StudyConfig:
    """A days-long, dozen-VP campaign: fast, but exercises sampling,
    traceroutes, transfers and the fault plan."""
    base = dict(
        seed=77,
        ring_scale=0.02,
        interval_scale=96.0,
        campaign_start=parse_ts("2023-11-25"),
        campaign_end=parse_ts("2023-11-30"),
        rtt_sample_every=1,
        traceroute_sample_every=2,
        axfr_sample_every=2,
        clean_transfer_keep_one_in=20,
    )
    base.update(overrides)
    return StudyConfig(**base)


@pytest.fixture(scope="module")
def serial_collector() -> CampaignCollector:
    study = RootStudy(tiny_config())
    study.run()
    return study.collector


def assert_collectors_identical(
    merged: CampaignCollector, serial: CampaignCollector
) -> None:
    assert merged.summary() == serial.summary()
    assert merged.change_counts() == serial.change_counts()

    # Interners: same values in the same (first-occurrence) order, so
    # every stored index means the same thing in both collectors.
    assert merged.sites.values == serial.sites.values
    assert merged.hops.values == serial.hops.values

    # Identity counts, including per-letter dict insertion order.
    assert merged.identities == serial.identities
    assert list(merged.identities) == list(serial.identities)
    for letter in serial.identities:
        assert list(merged.identities[letter]) == list(serial.identities[letter])

    for getter in ("probe_columns", "traceroute_columns"):
        m_cols = getattr(merged, getter)()
        s_cols = getattr(serial, getter)()
        assert set(m_cols) == set(s_cols)
        for name in s_cols:
            assert np.array_equal(m_cols[name], s_cols[name]), (getter, name)

    assert [
        (o.vp_id, o.true_ts, o.observed_ts, o.serial, o.fault)
        for o in merged.transfers
    ] == [
        (o.vp_id, o.true_ts, o.observed_ts, o.serial, o.fault)
        for o in serial.transfers
    ]


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_run_equals_serial(serial_collector, shards):
    study = RootStudy(tiny_config().with_sharding(shards))
    study.run()
    assert_collectors_identical(study.collector, serial_collector)


def test_merge_of_explicit_split_equals_serial(serial_collector):
    """Drive the shard path by hand (no RootStudy plumbing): split, run,
    merge in scrambled shard order — merge is order-independent."""
    from repro.core.pipeline import (
        build_platform,
        build_world,
        shard_vp_lists,
    )
    from repro.vantage.probes import Prober

    config = tiny_config()
    world = build_world(config)
    platform = build_platform(config, world)
    collectors = []
    for shard_vps in shard_vp_lists(platform.vps, 3):
        world.distributor.reset_faults()
        collector = CampaignCollector()
        prober = Prober(
            fabric=world.fabric,
            selector=platform.selector,
            deployments=world.deployments,
            fault_plan=platform.fault_plan,
            collector=collector,
            sampling=platform.prober.sampling,
        )
        prober.run_campaign(shard_vps, platform.schedule)
        collectors.append(collector)
    world.distributor.reset_faults()

    merged = CampaignCollector.merge([collectors[2], collectors[0], collectors[1]])
    assert_collectors_identical(merged, serial_collector)


class TestMergeUnit:
    def test_empty_merge(self):
        merged = CampaignCollector.merge([])
        assert merged.summary()["rounds"] == 0
        assert merged.summary()["probe_samples"] == 0

    def test_round_mismatch_rejected(self):
        a, b = CampaignCollector(), CampaignCollector()
        a.rounds_processed = 3
        b.rounds_processed = 4
        with pytest.raises(ValueError, match="different round counts"):
            CampaignCollector.merge([a, b])

    def test_overlapping_vp_pair_rejected(self):
        a, b = CampaignCollector(), CampaignCollector()
        a.note_site(0, 0, "site-x")
        b.note_site(0, 0, "site-y")
        with pytest.raises(ValueError, match="overlap"):
            CampaignCollector.merge([a, b])

    def test_interner_rebuilt_in_first_occurrence_order(self):
        # In the serial scan VP 0 is probed before VP 1 in each round, so
        # the site VP 0 saw must come first in the merged interner even
        # when its shard is listed last.
        a, b = CampaignCollector(), CampaignCollector()
        b.note_site(1, 0, "later-site")
        a.note_site(0, 0, "earlier-site")
        a.rounds_processed = b.rounds_processed = 1
        merged = CampaignCollector.merge([b, a])
        assert merged.sites.values == ["earlier-site", "later-site"]

    def test_probe_rows_remapped_and_reordered(self):
        a, b = CampaignCollector(), CampaignCollector()
        # Shard A: VP 0 at ts=100 hits "beta"; shard B: VP 1 at ts=50
        # hits "alpha".  Serial row order is by (ts, vp).
        a.add_probe_sample(0, 100, 2, "beta", 1.0, 10.0, 5.0, False)
        b.add_probe_sample(1, 50, 2, "alpha", 2.0, 20.0, 5.0, True, transit_asn=7)
        a.rounds_processed = b.rounds_processed = 1
        merged = CampaignCollector.merge([a, b])
        cols = merged.probe_columns()
        assert cols["ts"].tolist() == [50, 100]
        assert cols["vp"].tolist() == [1, 0]
        assert cols["transit"].tolist() == [7, 0]
        # Site indices are remapped into the merged interner.
        assert [merged.sites[i] for i in cols["site"].tolist()] == ["alpha", "beta"]

    def test_identity_counts_sum(self):
        a, b = CampaignCollector(), CampaignCollector()
        a.note_identity("b", "b1-ams", 0, 0)
        a.note_identity("b", "b1-ams", 0, 0)
        b.note_identity("b", "b1-ams", 1, 0)
        b.note_identity("b", "b2-lax", 1, 0)
        a.rounds_processed = b.rounds_processed = 1
        merged = CampaignCollector.merge([a, b])
        assert merged.identities["b"] == {"b1-ams": 3, "b2-lax": 1}
        assert list(merged.identities["b"]) == ["b1-ams", "b2-lax"]
