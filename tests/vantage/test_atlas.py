"""The Atlas-built-ins platform simulator."""

import pytest

from repro.util.timeutil import parse_ts
from repro.vantage.atlas import BUILTIN_INTERVALS, AtlasPlatform


@pytest.fixture(scope="module")
def atlas_run(mini_study):
    platform = AtlasPlatform(mini_study.selector)
    return platform.run(
        mini_study.vps[:10],
        mini_study.collector.addresses,
        parse_ts("2023-11-21"),
        parse_ts("2023-11-23"),
        interval_scale=12.0,
    )


class TestBuiltins:
    def test_paper_intervals(self):
        assert BUILTIN_INTERVALS["soa"] == 1800
        assert BUILTIN_INTERVALS["hostname.bind"] == 240
        assert BUILTIN_INTERVALS["version.bind"] == 43200

    def test_no_transfers(self, atlas_run):
        assert atlas_run.collector.transfer_total == 0
        assert not atlas_run.has_transfers

    def test_no_old_generation_measured(self, atlas_run):
        measured = {
            atlas_run.collector.addresses[addr_idx].generation
            for _vp, addr_idx in atlas_run.collector.change_counts()
        }
        assert "old" not in measured
        assert not atlas_run.distinguishes_b_generations()

    def test_identities_collected(self, atlas_run):
        assert set(atlas_run.collector.identities) == set("abcdefghijklm")

    def test_queries_counted(self, atlas_run):
        assert atlas_run.queries == atlas_run.collector.queries_simulated > 0

    def test_stability_counters_exist(self, atlas_run):
        # The built-ins do allow catchment-change counting (hostname.bind
        # every 240 s), just not the per-generation b.root split.
        counts = atlas_run.collector.change_counts()
        assert counts
        assert all(rounds > 0 for _changes, rounds in counts.values())
