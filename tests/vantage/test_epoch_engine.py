"""The epoch-compiled campaign engine reproduces the scalar prober exactly.

Golden equivalence: same summary, same interner order, same columnar
tables byte-for-byte, same transfer observations — serial and sharded,
with and without active faults.  Plus a record-level cross-check of the
engine's fast path against the full-fidelity wire prober.
"""

import numpy as np
import pytest

from repro.core import RootStudy, StudyConfig
from repro.util.timeutil import parse_ts

from tests.vantage.test_collector_merge import (
    assert_collectors_identical,
    tiny_config,
)


def fault_window_config() -> StudyConfig:
    """A campaign window where every fault class actually fires: stale
    d.root sites, bitflipped transfers and skewed VP clocks."""
    return StudyConfig(
        seed=2024,
        ring_scale=0.05,
        interval_scale=96.0,
        campaign_start=parse_ts("2023-09-20"),
        campaign_end=parse_ts("2023-10-26"),
        rtt_sample_every=1,
        traceroute_sample_every=2,
        axfr_sample_every=2,
        clean_transfer_keep_one_in=50,
    )


@pytest.fixture(scope="module")
def scalar_collector():
    study = RootStudy(tiny_config(engine="scalar"))
    study.run()
    return study.collector


class TestGoldenEquivalence:
    def test_configs_default_to_epoch_engine(self):
        assert tiny_config().engine == "epoch"
        assert tiny_config(engine="scalar").engine == "scalar"

    def test_serial_epoch_matches_scalar(self, scalar_collector):
        study = RootStudy(tiny_config())
        study.run()
        assert_collectors_identical(study.collector, scalar_collector)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_epoch_matches_scalar(self, scalar_collector, shards):
        study = RootStudy(tiny_config().with_sharding(shards))
        study.run()
        assert_collectors_identical(study.collector, scalar_collector)

    def test_epoch_matches_scalar_under_faults(self):
        config = fault_window_config()
        scalar = RootStudy(config.with_engine("scalar"))
        scalar.run()
        # The window must exercise the slow transfer path, or this proves
        # nothing: stale zones, bitflips and clock skew all present.
        faults = {o.fault for o in scalar.collector.transfers}
        assert {"stale", "bitflip"} <= faults
        assert any(
            o.observed_ts != o.true_ts for o in scalar.collector.transfers
        )

        epoch = RootStudy(config)
        epoch.run()
        assert_collectors_identical(epoch.collector, scalar.collector)


class TestFastPathVsFullFidelity:
    """The engine's sampled fast path and the wire-level prober agree on
    what each recorded observation actually observed."""

    @pytest.fixture(scope="class")
    def study(self):
        study = RootStudy(tiny_config())
        study.run()
        return study

    def _sites_by_key(self, study):
        return {
            site.key: site
            for letter in study.deployments
            for site in study.catalog.of_letter(letter)
        }

    def test_recorded_sites_match_chaos_identity(self, study):
        collector = study.collector
        cols = collector.probe_columns()
        assert len(cols["vp"]) > 0
        round_of = {ts: i for i, ts in enumerate(study.schedule.instants())}
        vps_by_id = {vp.vp_id: vp for vp in study.vps}
        sites_by_key = self._sites_by_key(study)

        picks = np.linspace(0, len(cols["vp"]) - 1, 8).astype(int)
        for i in picks:
            vp = vps_by_id[int(cols["vp"][i])]
            sa = collector.addresses[int(cols["addr"][i])]
            ts = int(cols["ts"][i])
            recorded_key = collector.sites.values[int(cols["site"][i])]

            responses = study.prober.probe_full_fidelity(vp, sa, round_of[ts], ts)
            answer = responses["CH TXT hostname.bind"].answers[0]
            wire_identity = b"".join(answer.rdata.strings).decode()
            assert wire_identity == sites_by_key[recorded_key].identity()

    def test_recorded_transfers_match_served_serial(self, study):
        """A clean fast-path transfer observation records the serial the
        site actually serves at that instant (checked over the wire)."""
        collector = study.collector
        cols = collector.probe_columns()
        round_of = {ts: i for i, ts in enumerate(study.schedule.instants())}
        vps_by_id = {vp.vp_id: vp for vp in study.vps}

        clean = [o for o in collector.transfers if o.fault == ""][:5]
        assert clean, "tiny campaign must keep some clean transfers"
        for obs in clean:
            vp = vps_by_id[obs.vp_id]
            responses = study.prober.probe_full_fidelity(
                vp, obs.address, round_of[obs.true_ts], obs.true_ts
            )
            zonemd = responses["ZONEMD ."].answers[0]
            assert zonemd.rdata.serial == obs.serial
            assert obs.observed_ts == obs.true_ts  # clean => no skew
            assert obs.zone.serial == obs.serial


class TestStreamedPlan:
    """streamed=True materialises epochs per range, byte-identically."""

    @staticmethod
    def _collector(streamed, ranges, config=None):
        from repro.core.pipeline import build_platform, build_world
        from repro.vantage.epoch_engine import EpochCampaignPlan

        config = config or fault_window_config()
        world = build_world(config)
        platform = build_platform(config, world)
        world.distributor.reset_faults()
        platform.prober.reset()
        plan = EpochCampaignPlan(
            platform.prober, platform.vps, platform.schedule, streamed=streamed
        )
        if ranges is None:
            ranges = [(0, plan.n_rounds)]
        for lo, hi in ranges:
            plan.emit_range(lo, hi)
        return plan, platform.prober.collector

    def test_streamed_whole_range_matches_materialized(self):
        _, want = self._collector(False, None)
        _, got = self._collector(True, None)
        assert_collectors_identical(got, want)

    @pytest.mark.parametrize("chunk", [1, 7, 64])
    def test_streamed_chunked_matches_materialized(self, chunk):
        plan, want = self._collector(False, None)
        n = plan.n_rounds
        ranges = [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]
        _, got = self._collector(True, ranges)
        assert_collectors_identical(got, want)

    def test_streamed_mid_campaign_start_matches(self):
        """A resumed runner's first emit_range starts past round 0."""
        plan, _ = self._collector(False, [])
        k, n = plan.n_rounds // 3, plan.n_rounds
        _, want = self._collector(False, [(k, n)])
        _, got = self._collector(True, [(k, n)])
        assert_collectors_identical(got, want)

    def test_streamed_holds_no_epoch_lists_between_ranges(self):
        plan, _ = self._collector(True, [(0, 4)])
        assert plan.pairs == []
        buffered = sum(len(p.stream._buffer) for p in plan._pair_streams)
        # Only epochs still open past the range boundary stay buffered —
        # at most the boundary-spanning gap epoch plus the excursion
        # after it, nothing like the full campaign's lists.
        assert buffered <= 2 * len(plan._pair_streams)

    def test_streamed_rejects_descending_ranges(self):
        plan, _ = self._collector(True, [(0, 8)])
        with pytest.raises(ValueError, match="cannot rewind"):
            plan.emit_range(4, 12)
