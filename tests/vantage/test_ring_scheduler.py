"""VP population (Table 3 shape) and the Figure 2 measurement schedule."""

import pytest

from repro.geo.continents import Continent
from repro.util.rng import RngFactory
from repro.util.timeutil import MINUTE, parse_ts
from repro.vantage.ring import REGION_PLAN, RingConfig, build_ring
from repro.vantage.scheduler import (
    BASE_INTERVAL_S,
    CAMPAIGN_END,
    CAMPAIGN_START,
    HIGH_RES_INTERVAL_S,
    HIGH_RES_WINDOWS,
    MeasurementSchedule,
)


class TestRing:
    def test_full_scale_is_675_vps(self):
        ring = build_ring(RngFactory(1), RingConfig(scale=1.0))
        assert len(ring) == 675

    def test_table3_regional_distribution(self):
        ring = build_ring(RngFactory(1), RingConfig(scale=1.0))
        by_continent = {}
        for vp in ring:
            by_continent[vp.continent] = by_continent.get(vp.continent, 0) + 1
        for continent, (expected, _c, _n) in REGION_PLAN.items():
            assert by_continent[continent] == expected, continent

    def test_network_sharing(self):
        # 675 VPs in ~523 networks: some ASes host several nodes.
        ring = build_ring(RngFactory(1), RingConfig(scale=1.0))
        networks = {vp.asn for vp in ring}
        assert 400 <= len(networks) <= 560

    def test_country_diversity(self):
        ring = build_ring(RngFactory(1), RingConfig(scale=1.0))
        countries = {vp.country for vp in ring}
        assert len(countries) >= 30  # paper: 62 with a larger city pool

    def test_scaling_preserves_mix(self):
        ring = build_ring(RngFactory(1), RingConfig(scale=0.2))
        by_continent = {}
        for vp in ring:
            by_continent[vp.continent] = by_continent.get(vp.continent, 0) + 1
        assert by_continent[Continent.EUROPE] > by_continent[Continent.AFRICA]
        # every region is represented even when scaled down
        assert set(by_continent) == set(REGION_PLAN)

    def test_deterministic(self):
        a = build_ring(RngFactory(5), RingConfig(scale=0.1))
        b = build_ring(RngFactory(5), RingConfig(scale=0.1))
        assert [vp.name for vp in a] == [vp.name for vp in b]

    def test_every_vp_has_dual_stack_transit(self):
        ring = build_ring(RngFactory(1), RingConfig(scale=0.1))
        for vp in ring:
            assert vp.attachment.transits(4)
            assert vp.attachment.transits(6)

    def test_vp_ids_dense(self):
        ring = build_ring(RngFactory(1), RingConfig(scale=0.1))
        assert [vp.vp_id for vp in ring] == list(range(len(ring)))

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            from repro.core import StudyConfig

            StudyConfig(ring_scale=0)


class TestSchedule:
    def test_campaign_dates(self):
        assert CAMPAIGN_START == parse_ts("2023-07-03")
        assert CAMPAIGN_END == parse_ts("2023-12-24")

    def test_base_interval_30min(self):
        schedule = MeasurementSchedule()
        assert schedule.interval_at(parse_ts("2023-08-15")) == 30 * MINUTE

    def test_high_res_windows_15min(self):
        schedule = MeasurementSchedule()
        assert schedule.interval_at(parse_ts("2023-09-15")) == 15 * MINUTE
        assert schedule.interval_at(parse_ts("2023-11-25")) == 15 * MINUTE

    def test_windows_match_paper(self):
        (w1, w2) = HIGH_RES_WINDOWS
        assert w1 == (parse_ts("2023-09-08"), parse_ts("2023-10-02"))
        assert w2 == (parse_ts("2023-11-20"), parse_ts("2023-12-06"))

    def test_round_count_full_campaign(self):
        schedule = MeasurementSchedule()
        count = schedule.round_count()
        # 174 days at >= 30 min, plus extra rounds in the two windows.
        base = (CAMPAIGN_END - CAMPAIGN_START) // BASE_INTERVAL_S
        extra = sum((hi - lo) // (30 * MINUTE) for lo, hi in HIGH_RES_WINDOWS)
        assert base < count <= base + extra + 2

    def test_instants_ascending(self):
        schedule = MeasurementSchedule(interval_scale=48.0)
        instants = schedule.rounds()
        assert instants == sorted(instants)
        assert instants[0] == CAMPAIGN_START

    def test_interval_scale(self):
        schedule = MeasurementSchedule(interval_scale=2.0)
        assert schedule.interval_at(parse_ts("2023-08-15")) == 60 * MINUTE

    def test_invalid_schedule_rejected(self):
        with pytest.raises(ValueError):
            MeasurementSchedule(start=10, end=5)
        with pytest.raises(ValueError):
            MeasurementSchedule(interval_scale=0)
