"""Latency model and traceroute rendering."""

import pytest

from repro.geo.cities import city
from repro.netsim.attachment import Attachment
from repro.netsim.latency import route_rtt_ms
from repro.netsim.mix import mix64, mix_float, mix_str
from repro.netsim.topology import NetworkFabric
from repro.netsim.traceroute import run_traceroute
from repro.netsim.transit import TRANSIT_CATALOG


@pytest.fixture(scope="module")
def fabric(site_catalog, rng_factory):
    return NetworkFabric(site_catalog, rng_factory.fork("latency-tests"))


@pytest.fixture(scope="module")
def sample_route(fabric):
    selector = fabric.selector(seed=7, expected_rounds=100)
    att = Attachment(
        asn=65500, city=city("NBO"),
        transits_v4=(TRANSIT_CATALOG[6],), transits_v6=(TRANSIT_CATALOG[0],),
    )
    return att, selector.best(att, "l", 6)


class TestMix:
    def test_mix64_deterministic(self):
        assert mix64(1, 2, 3) == mix64(1, 2, 3)

    def test_mix64_sensitive_to_order(self):
        assert mix64(1, 2) != mix64(2, 1)

    def test_mix_float_range(self):
        values = [mix_float(i, 99) for i in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        # roughly uniform
        assert 0.4 < sum(values) / len(values) < 0.6

    def test_mix_str_stable(self):
        assert mix_str("edge.fra-ix") == mix_str("edge.fra-ix")
        assert mix_str("a", "b") != mix_str("ab")


class TestRtt:
    def test_rtt_at_least_propagation_floor(self, sample_route):
        _att, route = sample_route
        rtt = route_rtt_ms(route, last_mile_ms=2.0, request_key=1)
        assert rtt >= route.path_km * 0.01 * 0.9  # jitter floor is 1-J

    def test_rtt_deterministic_per_request_key(self, sample_route):
        _att, route = sample_route
        assert route_rtt_ms(route, 2.0, 42) == route_rtt_ms(route, 2.0, 42)
        assert route_rtt_ms(route, 2.0, 42) != route_rtt_ms(route, 2.0, 43)

    def test_last_mile_additive(self, sample_route):
        _att, route = sample_route
        low = route_rtt_ms(route, 0.0, 1)
        high = route_rtt_ms(route, 20.0, 1)
        assert high > low


class TestTraceroute:
    def test_hop_structure(self, sample_route):
        att, route = sample_route
        result = run_traceroute(att, route, "2001:500:9f::42", 80.0, probe_key=1)
        identifiers = [h.identifier for h in result.hops]
        assert identifiers[-1] == "2001:500:9f::42"
        assert identifiers[0] == f"gw.as{att.asn}"
        # second-to-last is the facility edge (or silent)
        stlh = result.second_to_last_hop
        assert stlh is None or stlh == route.second_to_last_hop

    def test_destination_rtt_preserved(self, sample_route):
        att, route = sample_route
        result = run_traceroute(att, route, "x", 123.0, probe_key=2)
        assert result.destination_rtt_ms == 123.0

    def test_hop_rtts_nondecreasing_to_destination(self, sample_route):
        att, route = sample_route
        result = run_traceroute(att, route, "x", 90.0, probe_key=3)
        assert result.hops[0].rtt_ms <= result.hops[-1].rtt_ms

    def test_transit_route_shows_provider_pop(self, sample_route):
        att, route = sample_route
        assert route.via == "transit"
        result = run_traceroute(att, route, "x", 90.0, probe_key=4)
        labels = [h.identifier for h in result.hops if h.identifier]
        assert any(l.startswith(f"pop.as{route.transit.asn}.") for l in labels)

    def test_some_hops_go_silent(self, sample_route):
        att, route = sample_route
        silent = 0
        for key in range(300):
            result = run_traceroute(att, route, "x", 90.0, probe_key=key)
            silent += sum(1 for h in result.hops if h.identifier is None)
        assert silent > 0  # ~3% loss materialises over 300 probes
