"""Fabric construction: facilities, site placement, scoping, census."""

import pytest

from repro.geo.cities import CITY_CATALOG, HUB_CITIES
from repro.netsim.facilities import IXP_CATALOG, PASSIVE_IXP_IDS, build_facilities, ixp_by_id
from repro.netsim.topology import NetworkFabric
from repro.geo.continents import Continent


@pytest.fixture(scope="module")
def fabric(site_catalog, rng_factory):
    return NetworkFabric(site_catalog, rng_factory.fork("topology-tests"))


class TestFacilities:
    def test_one_ix_facility_per_ixp(self):
        facilities = build_facilities()
        ix = [f for f in facilities.values() if f.ixp is not None]
        assert len(ix) == len(IXP_CATALOG)

    def test_private_facilities_per_city(self):
        facilities = build_facilities()
        dcs = [f for f in facilities.values() if f.ixp is None]
        assert len(dcs) == 6 * len(CITY_CATALOG)

    def test_edge_router_identifier(self):
        facilities = build_facilities()
        any_f = next(iter(facilities.values()))
        assert any_f.edge_router == f"edge.{any_f.facility_id}"

    def test_ixp_lookup(self):
        assert ixp_by_id("decix-fra").city.iata == "FRA"
        with pytest.raises(KeyError):
            ixp_by_id("nope")

    def test_ixp_cities_are_hubs(self):
        for ixp in IXP_CATALOG:
            assert ixp.city.iata in HUB_CITIES, ixp.ixp_id

    def test_passive_ixps_eu_na_only(self):
        for ixp_id in PASSIVE_IXP_IDS:
            continent = ixp_by_id(ixp_id).continent
            assert continent in (Continent.EUROPE, Continent.NORTH_AMERICA)
        assert len(PASSIVE_IXP_IDS) == 14  # the paper's 14 IXPs


class TestSitePlacement:
    def test_every_site_has_facility(self, fabric, site_catalog):
        for site in site_catalog.sites:
            facility = fabric.facility_of(site)
            assert facility.city.iata == site.city.iata

    def test_global_sites_registry(self, fabric, site_catalog):
        for letter in "abcdefghijklm":
            expected = [s for s in site_catalog.of_letter(letter) if s.is_global]
            assert len(fabric.global_sites(letter)) == len(expected)

    def test_local_sites_not_in_global_registry(self, fabric, site_catalog):
        global_keys = {
            s.key for letter in "abcdefghijklm" for s in fabric.global_sites(letter)
        }
        for site in site_catalog.sites:
            if not site.is_global:
                assert site.key not in global_keys

    def test_country_scoped_sites_outside_ixp_cities(self, fabric):
        ixp_cities = {ixp.city.iata for ixp in IXP_CATALOG}
        for (country, _letter), sites in fabric._country_local.items():
            for site in sites:
                assert site.city.iata not in ixp_cities
                assert site.city.country == country

    def test_colocation_concentrates_at_exchanges(self, fabric):
        census = fabric.colocation_census()
        ix_counts = [
            n for fid, n in census.items() if fabric.facilities[fid].ixp is not None
        ]
        dc_counts = [
            n for fid, n in census.items() if fabric.facilities[fid].ixp is None
        ]
        assert max(ix_counts) > max(dc_counts)

    def test_letters_at_big_exchange(self, fabric):
        # The major exchanges host several letters (the paper's RQ1 core).
        assert len(fabric.letters_at_ixp("decix-fra")) >= 3


class TestGraph:
    def test_as_graph_nodes(self, fabric):
        graph = fabric.as_graph()
        assert "AS6939" in graph
        assert any(n.startswith("AS645") for n in graph.nodes)
        assert "decix-fra" in graph

    def test_as_graph_with_attachments(self, fabric):
        from repro.netsim.attachment import Attachment
        from repro.geo.cities import city
        from repro.netsim.transit import TRANSIT_CATALOG

        att = Attachment(
            asn=64999, city=city("FRA"),
            transits_v4=(TRANSIT_CATALOG[0],), transits_v6=(TRANSIT_CATALOG[0],),
            ixp_memberships_v4=("decix-fra",), ixp_memberships_v6=(),
        )
        graph = fabric.as_graph([att])
        assert graph.has_edge("AS64999", "decix-fra")
        assert graph.has_edge("AS64999", "AS6939")
