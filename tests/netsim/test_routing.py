"""Route selection: candidates, ranking, local-site scoping, churn."""

import pytest

from repro.geo.cities import city
from repro.netsim.attachment import Attachment
from repro.netsim.churn import ChurnModel
from repro.netsim.routing import LETTER_ASN, RouteSelector
from repro.netsim.topology import NetworkFabric
from repro.netsim.transit import OPEN_V6_TRANSIT, SA_V4_TRANSIT, TRANSIT_CATALOG


@pytest.fixture(scope="module")
def fabric(site_catalog, rng_factory):
    return NetworkFabric(site_catalog, rng_factory.fork("netsim-tests"))


@pytest.fixture(scope="module")
def selector(fabric):
    return fabric.selector(seed=99, expected_rounds=1000)


def make_attachment(iata: str, asn: int = 65001, ixps=(), transits=None) -> Attachment:
    transits = transits or (TRANSIT_CATALOG[2],)
    return Attachment(
        asn=asn,
        city=city(iata),
        transits_v4=transits,
        transits_v6=transits,
        ixp_memberships_v4=tuple(ixps),
        ixp_memberships_v6=tuple(ixps),
    )


class TestCandidates:
    def test_every_letter_reachable(self, selector):
        att = make_attachment("GRU")
        for letter in "abcdefghijklm":
            for family in (4, 6):
                assert selector.candidates(att, letter, family)

    def test_candidates_cached(self, selector):
        att = make_attachment("FRA")
        assert selector.candidates(att, "k", 4) is selector.candidates(att, "k", 4)

    def test_candidates_unique_sites(self, selector):
        att = make_attachment("FRA", ixps=("decix-fra",))
        routes = selector.candidates(att, "f", 4)
        keys = [r.site.key for r in routes]
        assert len(keys) == len(set(keys))

    def test_transit_route_shape(self, selector):
        att = make_attachment("NBO")
        route = selector.best(att, "b", 4)
        assert route.via == "transit"
        assert route.as_path[0] == att.asn
        assert route.as_path[-1] == LETTER_ASN["b"]
        assert len(route.as_path) == 3
        assert route.path_km >= route.direct_km * 0.1

    def test_peer_route_two_hop_as_path(self, fabric, selector):
        att = make_attachment("FRA", ixps=("decix-fra",))
        for letter in "abcdefghijklm":
            routes = selector.candidates(att, letter, 4)
            peers = [r for r in routes if r.via == "peer"]
            if peers:
                assert all(len(r.as_path) == 2 for r in peers)
                return
        pytest.skip("no letter announced at decix-fra in this catalog draw")

    def test_local_sites_not_reachable_without_scope(self, fabric, selector):
        # A VP in a country with no d.root local sites and no IXP
        # membership must only reach global d sites.
        att = make_attachment("KEF", asn=65077)  # Iceland, no local d sites
        global_keys = {s.key for s in fabric.global_sites("d")}
        ixp_keys = set()
        for route in selector.candidates(att, "d", 4):
            assert route.site.key in global_keys | ixp_keys

    def test_country_local_site_preferred_at_home(self, fabric, selector):
        # Find a country hosting a country-scoped local site of d.root.
        for (country, letter), sites in fabric._country_local.items():
            if letter != "d":
                continue
            target = sites[0]
            att = make_attachment(target.city.iata, asn=65088)
            best = selector.best(att, "d", 4)
            assert best.via == "local"
            assert not best.site.is_global
            return
        pytest.skip("no country-scoped d.root local sites in this draw")


class TestFamilies:
    def test_family_specific_transits_change_routes(self, fabric):
        selector = fabric.selector(seed=5, expected_rounds=100)
        att = Attachment(
            asn=65002,
            city=city("GRU"),
            transits_v4=(SA_V4_TRANSIT,),
            transits_v6=(OPEN_V6_TRANSIT,),
        )
        r4 = selector.best(att, "i", 4)
        r6 = selector.best(att, "i", 6)
        # The open-v6 transit has no South American PoP: its entry point
        # is out of continent, unlike the SA carrier's.
        assert r4.entry_city.continent != r6.entry_city.continent

    def test_invalid_family_rejected(self, selector):
        att = make_attachment("FRA")
        with pytest.raises(ValueError):
            att.transits(5)


class TestChurn:
    def test_stable_without_flaps(self, fabric):
        churn = ChurnModel(seed=1, expected_rounds=10_000)
        selector = RouteSelector(fabric, churn)
        att = make_attachment("LHR", asn=65003)
        sites = {
            selector.select(att, 1, "b", 4, "199.9.14.201", rnd).site.key
            for rnd in range(50)
        }
        # 50 rounds of a 10k-round campaign: changes are rare.
        assert len(sites) <= 2

    def test_excursions_return_to_preferred(self, fabric):
        churn = ChurnModel(seed=1, expected_rounds=1000)
        selector = RouteSelector(fabric, churn)
        att = make_attachment("LHR", asn=65004)
        best = selector.best(att, "g", 6).site.key
        history = [
            selector.select(att, 2, "g", 6, "2001:500:12::d0d", rnd).site.key
            for rnd in range(1000)
        ]
        # The preferred route dominates.
        assert history.count(best) > len(history) * 0.6

    def test_displaced_fraction_small_at_reference_scale(self, fabric):
        churn = ChurnModel(seed=3, expected_rounds=8352)
        selector = RouteSelector(fabric, churn)
        att = make_attachment("AMS", asn=65005)
        best = selector.best(att, "g", 4).site.key
        displaced = sum(
            selector.select(att, 9, "g", 4, "192.112.36.4", rnd).site.key != best
            for rnd in range(8352)
        )
        assert displaced / 8352 < 0.1

    def test_single_candidate_never_changes(self):
        churn = ChurnModel(seed=1, expected_rounds=100)
        for rnd in range(100):
            assert churn.select_index(1, "addr", "b", 4, rnd, 1) == 0

    def test_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            ChurnModel(seed=1, expected_rounds=0)


class TestFailureExclusion:
    def test_excluding_best_facility_shifts_route(self, selector):
        att = make_attachment("FRA", asn=65010, ixps=("decix-fra",))
        baseline = selector.best(att, "k", 4)
        fallback = selector.best_excluding(
            att, "k", 4, frozenset({baseline.facility.facility_id})
        )
        assert fallback is not None
        assert fallback.facility.facility_id != baseline.facility.facility_id

    def test_excluding_nothing_is_identity(self, selector):
        att = make_attachment("FRA", asn=65011)
        assert selector.best_excluding(att, "k", 4, frozenset()) == selector.best(
            att, "k", 4
        )

    def test_all_letters_survive_single_facility_failure(self, fabric, selector):
        census = fabric.colocation_census()
        victim = frozenset({max(census, key=census.get)})
        att = make_attachment("AMS", asn=65012)
        for letter in "abcdefghijklm":
            assert selector.best_excluding(att, letter, 4, victim) is not None


class TestSecondToLastHop:
    def test_hop_is_facility_edge(self, fabric, selector):
        att = make_attachment("FRA", ixps=("decix-fra",))
        route = selector.best(att, "k", 4)
        assert route.second_to_last_hop == route.facility.edge_router
        assert route.second_to_last_hop.startswith("edge.")
