"""Epoch compilation must replay ChurnModel.select_index exactly."""

import pytest

from repro.netsim.churn import ChurnModel, TARGET_MEDIAN_CHANGES
from repro.netsim.epochs import (
    PairEpochStream,
    compile_pair_epochs,
    epoch_change_count,
)


def scalar_indices(seed, client_id, address, letter, family, n_rounds, n_candidates):
    churn = ChurnModel(seed, expected_rounds=max(1, n_rounds))
    return [
        churn.select_index(client_id, address, letter, family, r, n_candidates)
        for r in range(n_rounds)
    ]


def epochs_to_indices(epochs, n_rounds):
    out = [None] * n_rounds
    for start, end, index in epochs:
        for r in range(start, end):
            assert out[r] is None, "overlapping epochs"
            out[r] = index
    assert None not in out, "epoch gap"
    return out


def compiled_indices(seed, client_id, address, letter, family, n_rounds, n_candidates):
    churn = ChurnModel(seed, expected_rounds=max(1, n_rounds))
    epochs = compile_pair_epochs(
        churn, client_id, address, letter, family, n_rounds, n_candidates
    )
    return epochs_to_indices(epochs, n_rounds), epochs


class TestEpochEquivalence:
    @pytest.mark.parametrize("letter,family", sorted(TARGET_MEDIAN_CHANGES))
    def test_every_letter_family(self, letter, family):
        n_rounds, n_candidates = 400, 5
        address = f"192.0.2.{ord(letter)}" if family == 4 else f"2001:db8::{letter}"
        for client_id in (0, 7, 123):
            want = scalar_indices(11, client_id, address, letter, family, n_rounds, n_candidates)
            got, _ = compiled_indices(11, client_id, address, letter, family, n_rounds, n_candidates)
            assert got == want

    @pytest.mark.parametrize("n_candidates", [1, 2, 3, 9, 40])
    def test_candidate_counts(self, n_candidates):
        for seed in (1, 2024):
            for client_id in range(6):
                want = scalar_indices(seed, client_id, "198.41.0.4", "g", 6, 600, n_candidates)
                got, _ = compiled_indices(seed, client_id, "198.41.0.4", "g", 6, 600, n_candidates)
                assert got == want

    def test_flappy_pair_stress(self):
        """Hunt for a heavy-tailed pair (high excursion probability) and
        check the dense trigger regime too."""
        checked_flappy = 0
        for client_id in range(200):
            churn = ChurnModel(3, expected_rounds=100)
            state = churn.state_for(client_id, "199.7.91.13", "g", 6)
            if state.excursion_prob > 0.2:
                checked_flappy += 1
                want = scalar_indices(3, client_id, "199.7.91.13", "g", 6, 300, 7)
                got, _ = compiled_indices(3, client_id, "199.7.91.13", "g", 6, 300, 7)
                assert got == want
        assert checked_flappy > 0, "no flappy pair found; loosen the search"

    def test_change_count_matches_transitions(self):
        indices, epochs = compiled_indices(5, 42, "192.33.4.12", "c", 4, 500, 6)
        transitions = sum(
            1 for a, b in zip(indices, indices[1:]) if a != b
        )
        assert epoch_change_count(epochs) == transitions

    def test_single_candidate_single_epoch(self):
        _, epochs = compiled_indices(5, 1, "192.0.2.1", "a", 4, 50, 1)
        assert epochs == [(0, 50, 0)]

    def test_no_rounds(self):
        churn = ChurnModel(5, expected_rounds=10)
        assert compile_pair_epochs(churn, 1, "192.0.2.1", "a", 4, 0, 4) == []

    def test_streamed_equals_compiled_across_chunkings(self):
        """Concatenated take() ranges reproduce compile_pair_epochs for
        every chunk size, with boundary epochs deduplicated."""
        for n_candidates in (1, 2, 5, 40):
            for seed, client_id in ((1, 0), (2024, 3), (3, 77)):
                n_rounds = 400
                want = compile_pair_epochs(
                    ChurnModel(seed, expected_rounds=n_rounds),
                    client_id, "198.41.0.4", "g", 6, n_rounds, n_candidates,
                )
                for chunk in (1, 3, 7, 50, 160, n_rounds):
                    got = self._streamed(
                        seed, client_id, n_rounds, n_candidates, chunk
                    )
                    assert got == want, (n_candidates, seed, client_id, chunk)

    @staticmethod
    def _streamed(seed, client_id, n_rounds, n_candidates, chunk):
        stream = PairEpochStream(
            ChurnModel(seed, expected_rounds=n_rounds),
            client_id, "198.41.0.4", "g", 6, n_rounds, n_candidates,
        )
        out = []
        for lo in range(0, n_rounds, chunk):
            hi = min(lo + chunk, n_rounds)
            for epoch in stream.take(lo, hi):
                # An epoch spanning a chunk boundary is returned by both
                # adjacent takes (true bounds preserved); dedupe it.
                if not out or out[-1] != epoch:
                    out.append(epoch)
        return out

    def test_streamed_flappy_pair(self):
        """The dense-trigger regime streams exactly too."""
        checked = 0
        for client_id in range(200):
            churn = ChurnModel(3, expected_rounds=100)
            if churn.state_for(client_id, "199.7.91.13", "g", 6).excursion_prob > 0.2:
                checked += 1
                want = compile_pair_epochs(
                    ChurnModel(3, expected_rounds=300),
                    client_id, "199.7.91.13", "g", 6, 300, 7,
                )
                stream = PairEpochStream(
                    ChurnModel(3, expected_rounds=300),
                    client_id, "199.7.91.13", "g", 6, 300, 7,
                )
                got = []
                for lo in range(0, 300, 11):
                    for epoch in stream.take(lo, min(lo + 11, 300)):
                        if not got or got[-1] != epoch:
                            got.append(epoch)
                assert got == want
        assert checked > 0, "no flappy pair found; loosen the search"

    def test_streamed_take_returns_exact_overlap(self):
        """take(lo, hi) is exactly the compiled epochs overlapping
        [lo, hi), including a mid-campaign first call (resume)."""
        n_rounds = 500
        compiled = compile_pair_epochs(
            ChurnModel(5, expected_rounds=n_rounds), 42, "192.33.4.12", "c", 4,
            n_rounds, 6,
        )
        for lo, hi in ((0, 120), (130, 400), (411, 500)):
            stream = PairEpochStream(
                ChurnModel(5, expected_rounds=n_rounds), 42, "192.33.4.12",
                "c", 4, n_rounds, 6,
            )
            want = [e for e in compiled if e[1] > lo and e[0] < hi]
            assert stream.take(lo, hi) == want

    def test_streamed_rejects_rewind(self):
        stream = PairEpochStream(
            ChurnModel(5, expected_rounds=100), 1, "192.0.2.1", "a", 4, 100, 4
        )
        stream.take(0, 50)
        with pytest.raises(ValueError, match="cannot rewind"):
            stream.take(20, 60)
        with pytest.raises(ValueError, match="outside campaign"):
            stream.take(50, 101)

    def test_compilation_does_not_advance_state(self):
        """Compiling then selecting must equal selecting alone."""
        churn = ChurnModel(9, expected_rounds=200)
        compile_pair_epochs(churn, 3, "192.58.128.30", "j", 4, 200, 5)
        via_shared = [
            churn.select_index(3, "192.58.128.30", "j", 4, r, 5) for r in range(200)
        ]
        assert via_shared == scalar_indices(9, 3, "192.58.128.30", "j", 4, 200, 5)
