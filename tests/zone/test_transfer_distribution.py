"""AXFR transfer protocol and zone distribution/staleness."""

import pytest

from repro.dns.constants import RRType, Rcode
from repro.dns.message import Message
from repro.dns.name import ROOT_NAME
from repro.util.timeutil import DAY, parse_ts
from repro.zone.distribution import PUBLICATION_OFFSETS, ZoneDistributor
from repro.zone.transfer import (
    RECORDS_PER_MESSAGE,
    AxfrClient,
    AxfrServer,
    TransferError,
)

DEC_TS = parse_ts("2023-12-10T16:00:00")


def axfr_query() -> Message:
    return Message.make_query(ROOT_NAME, RRType.AXFR)


class TestAxfr:
    def test_transfer_roundtrip(self, validatable_zone):
        result = AxfrClient().transfer(AxfrServer(validatable_zone), axfr_query())
        assert result.serial == validatable_zone.serial
        assert result.records == len(validatable_zone) + 1  # trailing SOA
        assert result.shared

    def test_stream_soa_envelope(self, validatable_zone):
        messages = list(AxfrServer(validatable_zone).stream(axfr_query()))
        answers = [r for m in messages for r in m.answers]
        assert answers[0].rrtype == RRType.SOA
        assert answers[-1].rrtype == RRType.SOA
        assert len(messages) == -(-len(answers) // RECORDS_PER_MESSAGE)

    def test_refusing_server(self, validatable_zone):
        server = AxfrServer(validatable_zone, allow_axfr=False)
        result = AxfrClient().transfer(server, axfr_query())
        assert result.refused

    def test_non_axfr_query_rejected(self, validatable_zone):
        with pytest.raises(TransferError):
            list(AxfrServer(validatable_zone).stream(
                Message.make_query(ROOT_NAME, RRType.NS)
            ))


class TestDistribution:
    def test_two_publications_per_day(self):
        pubs = ZoneDistributor.publications_between(
            parse_ts("2023-12-10"), parse_ts("2023-12-12")
        )
        assert len(pubs) == 2 * len(PUBLICATION_OFFSETS)

    def test_latest_publication_before(self):
        pub_ts, edition = ZoneDistributor.latest_publication(DEC_TS)
        assert pub_ts <= DEC_TS
        assert edition in (0, 1)

    def test_latest_publication_wraps_to_previous_day(self):
        early = parse_ts("2023-12-10T01:00:00")
        pub_ts, _ = ZoneDistributor.latest_publication(early)
        assert pub_ts < parse_ts("2023-12-10")

    def test_zone_cache_shared(self, zone_builder):
        distributor = ZoneDistributor(zone_builder)
        a = distributor.zone_at_site("x-001", DEC_TS)
        b = distributor.zone_at_site("y-002", DEC_TS)
        assert a is b
        assert distributor.cache_size() == 1

    def test_propagation_lag(self, zone_builder):
        distributor = ZoneDistributor(zone_builder, propagation_lag_s=3600)
        pub_ts, _ = ZoneDistributor.latest_publication(DEC_TS)
        just_after = pub_ts + 60
        pub = distributor.site_publication("s", just_after)
        assert pub.publication_ts < pub_ts  # new copy not yet propagated

    def test_freeze_and_unfreeze(self, zone_builder):
        distributor = ZoneDistributor(zone_builder)
        freeze_at = parse_ts("2023-12-01T12:00:00")
        distributor.freeze_site("d-001", freeze_at)
        assert distributor.is_frozen("d-001")
        stale = distributor.zone_at_site("d-001", DEC_TS + 5 * DAY)
        fresh = distributor.zone_at_site("other", DEC_TS + 5 * DAY)
        assert stale.serial < fresh.serial
        distributor.unfreeze_site("d-001")
        assert not distributor.is_frozen("d-001")
        thawed = distributor.zone_at_site("d-001", DEC_TS + 5 * DAY)
        assert thawed.serial == fresh.serial

    def test_frozen_site_marked_stale(self, zone_builder):
        distributor = ZoneDistributor(zone_builder)
        distributor.freeze_site("d-001", DEC_TS)
        assert distributor.site_publication("d-001", DEC_TS + DAY).stale
        assert not distributor.site_publication("d-002", DEC_TS + DAY).stale


class TestSources:
    def test_iana_series_cadence(self, zone_builder):
        from repro.zone.sources import IanaSource

        distributor = ZoneDistributor(zone_builder)
        source = IanaSource(distributor)
        series = source.download_series(
            parse_ts("2023-12-10"), parse_ts("2023-12-10") + 2 * 3600
        )
        assert len(series) == 8  # every 15 minutes over 2 hours

    def test_iana_sees_new_serial_soon_after_publication(self, zone_builder):
        from repro.zone.sources import IanaSource

        distributor = ZoneDistributor(zone_builder)
        source = IanaSource(distributor, publish_delay_s=1800)
        pub_ts, _ = ZoneDistributor.latest_publication(DEC_TS)
        before = source.download(pub_ts + 60)
        after = source.download(pub_ts + 3600)
        assert before.zone.serial < after.zone.serial

    def test_czds_one_snapshot_per_day(self, zone_builder):
        from repro.zone.sources import CzdsSource

        distributor = ZoneDistributor(zone_builder)
        source = CzdsSource(distributor)
        series = source.download_series(
            parse_ts("2023-12-10"), parse_ts("2023-12-13")
        )
        assert len(series) == 3
        assert len({dl.zone.serial for dl in series}) == 3
