"""IXFR incremental transfers: diffs, journal, server, client apply."""

import pytest

from repro.util.timeutil import DAY, parse_ts
from repro.zone.ixfr import (
    IxfrJournal,
    IxfrServer,
    apply_deltas,
    diff_zones,
)
from repro.zone.transfer import TransferError


@pytest.fixture(scope="module")
def versions(zone_builder):
    """Four consecutive zone versions spanning the b.root change."""
    stamps = [
        parse_ts("2023-11-25T16:00:00"),
        parse_ts("2023-11-26T16:00:00"),
        parse_ts("2023-11-27T16:00:00"),  # b.root glue flips here
        parse_ts("2023-11-28T16:00:00"),
    ]
    return [zone_builder.build(ts) for ts in stamps]


class TestDiff:
    def test_diff_excludes_soa(self, versions):
        delta = diff_zones(versions[0], versions[1])
        assert all(r.rrtype.name != "SOA" for r in delta.removed + delta.added)

    def test_consecutive_days_differ_in_signatures_only_or_little(self, versions):
        # Within one signing batch the static body is shared; consecutive
        # editions differ only in SOA (excluded) and its RRSIG + ZONEMD.
        delta = diff_zones(versions[0], versions[1])
        assert 0 < delta.size < 20

    def test_renumbering_changes_b_glue(self, versions):
        delta = diff_zones(versions[1], versions[2])
        removed_texts = " ".join(r.to_text() for r in delta.removed)
        added_texts = " ".join(r.to_text() for r in delta.added)
        assert "199.9.14.201" in removed_texts
        assert "170.247.170.2" in added_texts

    def test_identical_zones_empty_delta(self, versions):
        delta = diff_zones(versions[0], versions[0])
        assert delta.size == 0


class TestJournal:
    def test_append_and_serials(self, versions):
        journal = IxfrJournal()
        for zone in versions:
            journal.append(zone)
        assert journal.serials == [z.serial for z in versions]
        assert journal.latest is versions[-1]

    def test_non_advancing_serial_rejected(self, versions):
        journal = IxfrJournal()
        journal.append(versions[1])
        with pytest.raises(ValueError):
            journal.append(versions[1])
        with pytest.raises(ValueError):
            journal.append(versions[0])

    def test_delta_chain(self, versions):
        journal = IxfrJournal()
        for zone in versions:
            journal.append(zone)
        chain = journal.deltas_between(versions[0].serial, versions[3].serial)
        assert chain is not None and len(chain) == 3

    def test_out_of_window_none(self, versions):
        journal = IxfrJournal(max_versions=2)
        for zone in versions:
            journal.append(zone)
        assert journal.deltas_between(versions[0].serial, versions[3].serial) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            IxfrJournal(max_versions=1)


class TestServerClient:
    @pytest.fixture()
    def server(self, versions):
        journal = IxfrJournal()
        for zone in versions:
            journal.append(zone)
        return IxfrServer(journal)

    def test_current_client_gets_soa_only(self, server, versions):
        response = server.respond(versions[-1].serial)
        assert response.kind == "current"
        assert len(response.records) == 1

    def test_incremental_response(self, server, versions):
        response = server.respond(versions[0].serial)
        assert response.kind == "incremental"
        assert len(response.deltas) == 3
        # incremental is far smaller than a full transfer
        assert response.transferred_records < len(versions[-1]) // 2

    def test_out_of_window_falls_back_to_full(self, server, versions):
        response = server.respond(1999010100)
        assert response.kind == "full"
        assert response.records[0].rrtype.name == "SOA"
        assert response.records[-1].rrtype.name == "SOA"

    def test_incremental_carries_target_soa(self, server, versions):
        response = server.respond(versions[0].serial)
        assert response.records
        soa = response.records[0]
        assert soa.rrtype.name == "SOA"
        assert soa.rdata.serial == versions[-1].serial

    def test_client_apply_reaches_target(self, server, versions):
        response = server.respond(versions[0].serial)
        updated = apply_deltas(versions[0], response.deltas, response.records[0])
        assert updated.serial == versions[-1].serial
        expected = sorted(r.canonical_wire() for r in versions[-1].records)
        actual = sorted(r.canonical_wire() for r in updated.records)
        assert actual == expected

    def test_apply_rejects_wrong_start(self, server, versions):
        response = server.respond(versions[1].serial)
        with pytest.raises(TransferError):
            apply_deltas(versions[0], response.deltas, response.records[0])

    def test_applied_zone_still_validates(self, server, versions):
        from repro.dns.name import ROOT_NAME
        from repro.dnssec.validate import validate_zone

        response = server.respond(versions[0].serial)
        updated = apply_deltas(versions[0], response.deltas, response.records[0])
        report = validate_zone(
            updated.records, ROOT_NAME, now=parse_ts("2023-11-28T17:00:00")
        )
        assert report.valid
