"""The Zone container's API surface."""

import pytest

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name, ROOT_NAME
from repro.dns.rdata import A, NS, SOA
from repro.dns.records import ResourceRecord
from repro.zone.zone import Zone


def soa_record(serial: int = 1) -> ResourceRecord:
    return ResourceRecord(
        ROOT_NAME, RRType.SOA, RRClass.IN, 86400,
        SOA(Name.from_text("m."), Name.from_text("r."), serial, 2, 3, 4, 5),
    )


def ns_record(tld: str) -> ResourceRecord:
    return ResourceRecord(
        Name.from_text(f"{tld}."), RRType.NS, RRClass.IN, 172800,
        NS(Name.from_text(f"ns1.nic.{tld}.")),
    )


class TestConstruction:
    def test_requires_soa(self):
        with pytest.raises(ValueError):
            Zone(ROOT_NAME, [ns_record("com")])

    def test_serial_property(self):
        zone = Zone(ROOT_NAME, [soa_record(2023120600)])
        assert zone.serial == 2023120600

    def test_len_and_iter(self):
        zone = Zone(ROOT_NAME, [soa_record(), ns_record("com")])
        assert len(zone) == 2
        assert len(list(zone)) == 2


class TestLookups:
    @pytest.fixture()
    def zone(self):
        return Zone(
            ROOT_NAME,
            [soa_record(), ns_record("com"), ns_record("org"),
             ResourceRecord(
                 Name.from_text("ns1.nic.com."), RRType.A, RRClass.IN,
                 172800, A("192.0.2.1"),
             )],
        )

    def test_find_rrset(self, zone):
        rrset = zone.find_rrset(Name.from_text("com."), RRType.NS)
        assert rrset is not None and len(rrset) == 1

    def test_find_missing_returns_none(self, zone):
        assert zone.find_rrset(Name.from_text("nope."), RRType.NS) is None

    def test_delegations_sorted(self, zone):
        delegations = [n.to_text() for n in zone.delegations()]
        assert delegations == ["com.", "org."]

    def test_names_include_glue_owners(self, zone):
        names = {n.to_text() for n in zone.names()}
        assert "ns1.nic.com." in names

    def test_replace_record_bounds_checked(self, zone):
        with pytest.raises(IndexError):
            zone.replace_record(99, soa_record())

    def test_copy_preserves_but_isolates(self, zone):
        clone = zone.copy()
        clone.replace_record(1, ns_record("net"))
        assert zone.find_rrset(Name.from_text("com."), RRType.NS) is not None
        assert clone.find_rrset(Name.from_text("net."), RRType.NS) is not None
