"""RFC 1982 serial arithmetic and root-zone serial convention."""

import pytest

from repro.util.timeutil import parse_ts
from repro.zone.serial import SERIAL_MODULO, serial_add, serial_compare, serial_for_day


class TestSerialAdd:
    def test_simple(self):
        assert serial_add(10, 5) == 15

    def test_wraps(self):
        assert serial_add(SERIAL_MODULO - 1, 1) == 0

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            serial_add(0, -1)

    def test_rejects_oversized_increment(self):
        with pytest.raises(ValueError):
            serial_add(0, 1 << 31)


class TestSerialCompare:
    def test_equal(self):
        assert serial_compare(5, 5) == 0

    def test_simple_order(self):
        assert serial_compare(1, 2) == -1
        assert serial_compare(2, 1) == 1

    def test_wrapped_order(self):
        # 4294967295 + 2 wraps to 1; 1 is "greater" in sequence space.
        assert serial_compare(SERIAL_MODULO - 1, 1) == -1
        assert serial_compare(1, SERIAL_MODULO - 1) == 1

    def test_undefined_distance_raises(self):
        with pytest.raises(ValueError):
            serial_compare(0, 1 << 31)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            serial_compare(-1, 0)
        with pytest.raises(ValueError):
            serial_compare(0, SERIAL_MODULO)


class TestRootSerial:
    def test_yyyymmddnn_format(self):
        assert serial_for_day(parse_ts("2023-11-27"), 0) == 2023112700

    def test_edition_increments(self):
        ts = parse_ts("2023-11-27")
        assert serial_for_day(ts, 1) == serial_for_day(ts, 0) + 1

    def test_edition_range_checked(self):
        with pytest.raises(ValueError):
            serial_for_day(parse_ts("2023-11-27"), 100)

    def test_serials_monotone_across_days(self):
        a = serial_for_day(parse_ts("2023-11-27"), 1)
        b = serial_for_day(parse_ts("2023-11-28"), 0)
        assert serial_compare(a, b) == -1
