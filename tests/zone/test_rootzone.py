"""Root zone builder: structure, signing, ZONEMD roll-out, b.root glue."""

import pytest

from repro.dns.constants import (
    RRType,
    ZONEMD_ALG_PRIVATE,
    ZONEMD_ALG_SHA384,
)
from repro.dns.name import Name, ROOT_NAME
from repro.dns.rdata import A, AAAA, SOA, ZONEMD
from repro.dnssec.nsec import verify_nsec_chain
from repro.dnssec.validate import validate_zone
from repro.rss.operators import B_ROOT_CHANGE_TS, root_server
from repro.util.timeutil import DAY, parse_ts
from repro.zone.rootzone import (
    DEFAULT_TLDS,
    RootZoneBuilder,
    ZONEMD_PLACEHOLDER_DATE,
    ZONEMD_VALIDATABLE_DATE,
)

DEC_TS = parse_ts("2023-12-10T16:00:00")


class TestStructure:
    def test_fig10_tlds_present(self):
        # world and ruhr star in the paper's Figure 10 bitflip example.
        assert "world" in DEFAULT_TLDS
        assert "ruhr" in DEFAULT_TLDS

    def test_apex_has_13_ns(self, validatable_zone):
        ns = validatable_zone.find_rrset(ROOT_NAME, RRType.NS)
        assert ns is not None and len(ns) == 13

    def test_every_tld_delegated_with_glue(self, validatable_zone):
        delegations = validatable_zone.delegations()
        tld_names = {d.to_text().rstrip(".") for d in delegations}
        for tld in DEFAULT_TLDS:
            assert tld in tld_names
        # glue for the first TLD's name servers
        glue = validatable_zone.find_rrset(
            Name.from_text(f"ns1.nic.{DEFAULT_TLDS[0]}."), RRType.A
        )
        assert glue is not None

    def test_serial_matches_publication(self, zone_builder):
        zone = zone_builder.build(parse_ts("2023-12-10T16:00:00"), edition=1)
        assert zone.serial == 2023121001

    def test_nsec_chain_closes(self, validatable_zone):
        assert verify_nsec_chain(validatable_zone.records, ROOT_NAME) == []

    def test_deterministic_build(self):
        a = RootZoneBuilder(seed=5).build(DEC_TS)
        b = RootZoneBuilder(seed=5).build(DEC_TS)
        assert [r.canonical_wire() for r in a.records] == [
            r.canonical_wire() for r in b.records
        ]

    def test_seed_changes_keys(self):
        a = RootZoneBuilder(seed=5)
        b = RootZoneBuilder(seed=6)
        assert a.ksk.dnskey != b.ksk.dnskey


class TestSigning:
    def test_zone_validates_at_publication(self, validatable_zone):
        report = validate_zone(validatable_zone.records, ROOT_NAME, now=DEC_TS)
        assert report.valid, report.issues[:3]

    def test_zone_validates_through_batch_week(self, zone_builder):
        zone = zone_builder.build(DEC_TS)
        inception, _expiration = zone_builder.signature_window(DEC_TS)
        week_start = inception + 4 * DAY  # SIG_INCEPTION_LEAD
        for offset_days in (0, 2, 4, 6):
            report = validate_zone(
                zone.records, ROOT_NAME, now=week_start + offset_days * DAY,
                check_zonemd=False,
            )
            assert report.valid, offset_days

    def test_zone_expires_after_window(self, zone_builder):
        zone = zone_builder.build(DEC_TS)
        report = validate_zone(
            zone.records, ROOT_NAME, now=DEC_TS + 30 * DAY, check_zonemd=False
        )
        assert not report.valid

    def test_signature_window_covers_publication(self, zone_builder):
        inception, expiration = zone_builder.signature_window(DEC_TS)
        assert inception < DEC_TS < expiration


class TestZonemdRollout:
    def test_absent_before_placeholder_date(self, zone_builder):
        zone = zone_builder.build(ZONEMD_PLACEHOLDER_DATE - DAY)
        assert zone.find_rrset(ROOT_NAME, RRType.ZONEMD) is None

    def test_placeholder_between_dates(self, zone_builder):
        zone = zone_builder.build(ZONEMD_PLACEHOLDER_DATE + DAY)
        rrset = zone.find_rrset(ROOT_NAME, RRType.ZONEMD)
        assert rrset is not None
        rdata = rrset.records[0].rdata
        assert isinstance(rdata, ZONEMD)
        assert rdata.hash_algorithm == ZONEMD_ALG_PRIVATE

    def test_sha384_after_validatable_date(self, zone_builder):
        zone = zone_builder.build(ZONEMD_VALIDATABLE_DATE + DAY)
        rdata = zone.find_rrset(ROOT_NAME, RRType.ZONEMD).records[0].rdata
        assert rdata.hash_algorithm == ZONEMD_ALG_SHA384

    def test_zonemd_record_is_signed(self, validatable_zone):
        covered = {
            r.rdata.type_covered
            for r in validatable_zone.records
            if r.rrtype == RRType.RRSIG
        }
        assert int(RRType.ZONEMD) in covered

    def test_zonemd_serial_matches_soa(self, validatable_zone):
        rdata = validatable_zone.find_rrset(ROOT_NAME, RRType.ZONEMD).records[0].rdata
        assert rdata.serial == validatable_zone.serial


class TestBrootRenumbering:
    def _b_glue(self, zone, rrtype):
        rrset = zone.find_rrset(Name.from_text("b.root-servers.net."), rrtype)
        assert rrset is not None
        return rrset.records[0].rdata

    def test_old_addresses_before_change(self, zone_builder):
        zone = zone_builder.build(B_ROOT_CHANGE_TS - DAY)
        b = root_server("b")
        assert self._b_glue(zone, RRType.A) == A(b.old_ipv4)
        assert self._b_glue(zone, RRType.AAAA) == AAAA(b.old_ipv6)

    def test_new_addresses_after_change(self, zone_builder):
        zone = zone_builder.build(B_ROOT_CHANGE_TS + DAY)
        b = root_server("b")
        assert self._b_glue(zone, RRType.A) == A(b.ipv4)
        assert self._b_glue(zone, RRType.AAAA) == AAAA(b.ipv6)

    def test_other_letters_unchanged(self, zone_builder):
        before = zone_builder.build(B_ROOT_CHANGE_TS - DAY)
        after = zone_builder.build(B_ROOT_CHANGE_TS + DAY)
        a_name = Name.from_text("a.root-servers.net.")
        assert (
            before.find_rrset(a_name, RRType.A).records[0].rdata
            == after.find_rrset(a_name, RRType.A).records[0].rdata
        )


class TestBuilderValidation:
    def test_duplicate_tlds_rejected(self):
        with pytest.raises(ValueError):
            RootZoneBuilder(seed=1, tlds=["com", "com"])

    def test_custom_tld_catalog(self):
        builder = RootZoneBuilder(seed=1, tlds=["alpha", "beta"])
        zone = builder.build(DEC_TS)
        tlds = {d.to_text() for d in zone.delegations()}
        assert tlds == {"alpha.", "beta."}
