"""Master-file serialisation round-trips."""

import pytest

from repro.dns.constants import RRType
from repro.dns.name import ROOT_NAME
from repro.zone.zonefile import (
    ZoneFileError,
    parse_record_line,
    parse_zone_text,
    render_zone_text,
)


class TestRenderParse:
    def test_full_zone_roundtrip(self, validatable_zone):
        text = render_zone_text(validatable_zone)
        parsed = parse_zone_text(text)
        original = sorted(r.canonical_wire() for r in validatable_zone.records)
        roundtripped = sorted(r.canonical_wire() for r in parsed.records)
        assert roundtripped == original

    def test_soa_first_line(self, validatable_zone):
        first = render_zone_text(validatable_zone).splitlines()[0]
        assert "\tSOA\t" in first

    def test_rendering_deterministic(self, validatable_zone):
        assert render_zone_text(validatable_zone) == render_zone_text(validatable_zone)

    def test_comments_and_blanks_ignored(self, validatable_zone):
        text = "; comment\n\n" + render_zone_text(validatable_zone)
        parsed = parse_zone_text(text)
        assert len(parsed) == len(validatable_zone)

    def test_parsed_zone_revalidates(self, validatable_zone):
        from repro.dnssec.validate import validate_zone
        from repro.util.timeutil import parse_ts

        parsed = parse_zone_text(render_zone_text(validatable_zone))
        report = validate_zone(
            parsed.records, ROOT_NAME, now=parse_ts("2023-12-10T16:00:00")
        )
        assert report.valid


class TestRecordLine:
    def test_parse_a(self):
        record = parse_record_line("host.example.\t3600\tIN\tA\t192.0.2.1")
        assert record.rrtype == RRType.A

    def test_parse_rejects_short_line(self):
        with pytest.raises(ZoneFileError):
            parse_record_line("oops.")

    def test_parse_rejects_bad_ttl(self):
        with pytest.raises(ZoneFileError):
            parse_record_line("a.\tsoon\tIN\tA\t192.0.2.1")

    def test_parse_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            parse_record_line("a.\t60\tIN\tNOPE\tx")

    def test_error_carries_line_number(self):
        with pytest.raises(ZoneFileError, match="line 2"):
            parse_zone_text("; fine\nbroken line here\n")

    def test_empty_zone_rejected(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("; nothing\n")

    def test_missing_soa_rejected(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("a.\t60\tIN\tA\t192.0.2.1\n")
