"""Study configuration and orchestration."""

import pytest

from repro.core import RootStudy, StudyConfig
from repro.util.timeutil import parse_ts
from repro.vantage.scheduler import CAMPAIGN_END, CAMPAIGN_START


class TestConfig:
    def test_presets_ordered_by_size(self):
        quick = StudyConfig.quick()
        standard = StudyConfig.standard()
        paper = StudyConfig.paper_scale()
        assert quick.ring_scale < standard.ring_scale < paper.ring_scale
        assert quick.interval_scale > standard.interval_scale > paper.interval_scale

    def test_paper_scale_is_full(self):
        paper = StudyConfig.paper_scale()
        assert paper.ring_scale == 1.0
        assert paper.interval_scale == 1.0
        assert paper.campaign_start == CAMPAIGN_START
        assert paper.campaign_end == CAMPAIGN_END

    def test_with_seed(self):
        config = StudyConfig.quick().with_seed(7)
        assert config.seed == 7
        assert config.ring_scale == StudyConfig.quick().ring_scale

    def test_validation(self):
        with pytest.raises(ValueError):
            StudyConfig(interval_scale=0)
        with pytest.raises(ValueError):
            StudyConfig(campaign_start=10, campaign_end=5)

    def test_sampling_validation(self):
        from repro.vantage.probes import SamplingPolicy

        with pytest.raises(ValueError):
            SamplingPolicy(rtt_every=0)


class TestStudyConstruction:
    def test_world_built(self, mini_study):
        assert len(mini_study.vps) > 10
        assert len(mini_study.deployments) == 13
        assert len(mini_study.catalog) > 1000

    def test_fault_plan_targets_valid_vps(self, mini_study):
        n = len(mini_study.vps)
        for event in mini_study.fault_plan.bitflips:
            assert 0 <= event.vp_id < n
        for vp_id in mini_study.fault_plan.clocks.vp_ids:
            assert 0 <= vp_id < n

    def test_stale_sites_are_popular_d_sites(self, mini_study):
        d_keys = {s.key for s in mini_study.catalog.of_letter("d")}
        for event in mini_study.fault_plan.stale_sites:
            assert event.site_key in d_keys

    def test_faults_can_be_disabled(self):
        config = StudyConfig(
            ring_scale=0.02,
            interval_scale=96.0,
            campaign_start=parse_ts("2023-08-01"),
            campaign_end=parse_ts("2023-08-03"),
            include_faults=False,
        )
        study = RootStudy(config)
        assert not study.fault_plan.bitflips
        assert not study.fault_plan.stale_sites

    def test_results_accessors(self, mini_study):
        results = mini_study.results()
        vp = results.vp_by_id(0)
        assert vp.vp_id == 0
        summary = results.summary()
        assert summary["vps"] == len(mini_study.vps)
        assert summary["sites"] == len(mini_study.catalog)


class TestDeterminism:
    def test_identical_seeds_identical_campaigns(self):
        config = StudyConfig(
            seed=55,
            ring_scale=0.02,
            interval_scale=96.0,
            campaign_start=parse_ts("2023-11-25"),
            campaign_end=parse_ts("2023-11-29"),
        )
        a = RootStudy(config).run()
        b = RootStudy(config).run()
        assert a.collector.change_counts() == b.collector.change_counts()
        assert a.collector.summary() == b.collector.summary()

    def test_different_seeds_differ(self):
        base = dict(
            ring_scale=0.02,
            interval_scale=96.0,
            campaign_start=parse_ts("2023-11-25"),
            campaign_end=parse_ts("2023-11-29"),
        )
        a = RootStudy(StudyConfig(seed=1, **base)).run()
        b = RootStudy(StudyConfig(seed=2, **base)).run()
        assert a.collector.probe_columns()["rtt"].tolist() != (
            b.collector.probe_columns()["rtt"].tolist()
        )
