"""Cross-process determinism.

Python randomises ``hash(str)`` per process; any stochastic component
keyed on it would make campaigns differ between runs.  This test runs a
tiny campaign in two subprocesses with *different* ``PYTHONHASHSEED``
values and asserts identical results — the regression guard for the
library's reproducibility guarantee.
"""

import os
import subprocess
import sys

SCRIPT = """
from repro.core import RootStudy, StudyConfig
from repro.util.timeutil import parse_ts

config = StudyConfig(
    seed=31, ring_scale=0.02, ring_min_per_region=1, interval_scale=96.0,
    campaign_start=parse_ts("2023-11-25"), campaign_end=parse_ts("2023-11-28"),
)
study = RootStudy(config)
study.run()
counts = sorted(study.collector.change_counts().items())
rtts = study.collector.probe_columns()["rtt"][:50].tolist()
print(repr((counts[:40], [round(r, 4) for r in rtts])))
"""


def run_with_hashseed(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True, text=True, env=env, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestCrossProcessDeterminism:
    def test_identical_across_hash_seeds(self):
        a = run_with_hashseed("1")
        b = run_with_hashseed("424242")
        assert a == b
        assert a.strip()
