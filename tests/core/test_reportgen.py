"""The rootsim-report artefact generator."""

import pytest

from repro.reportgen import generate_all

EXPECTED_ARTEFACTS = {
    "table1", "table2", "table4",
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig12", "fig13", "fig14", "paths_sec6", "INDEX",
}


@pytest.fixture(scope="module")
def generated(full_window_study, tmp_path_factory):
    out = tmp_path_factory.mktemp("report")
    written = generate_all(full_window_study, str(out), seed=1234)
    return written


class TestGenerateAll:
    def test_every_artefact_written(self, generated):
        assert set(generated) == EXPECTED_ARTEFACTS
        for path in generated.values():
            assert path.exists()
            assert path.stat().st_size > 0

    def test_index_lists_files(self, generated):
        index = generated["INDEX"].read_text()
        for name in EXPECTED_ARTEFACTS - {"INDEX"}:
            assert name in index

    def test_table1_shape(self, generated):
        content = generated["table1"].read_text()
        assert "Table 1" in content
        assert content.count("\n") >= 15

    def test_fig7_has_four_series(self, generated):
        content = generated["fig7"].read_text()
        for label in ("V4new", "V4old", "V6new", "V6old"):
            assert label in content

    def test_fig10_shows_diff(self, generated):
        content = generated["fig10"].read_text()
        assert "Figure 10" in content
