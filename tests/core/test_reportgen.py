"""The rootsim-report artefact generator."""

import json

import pytest

from repro.reportgen import generate_all, generate_from_dataset

EXPECTED_ARTEFACTS = {
    "table1", "table2", "table4",
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig12", "fig13", "fig14", "paths_sec6", "INDEX",
}


@pytest.fixture(scope="module")
def generated(full_window_study, tmp_path_factory):
    out = tmp_path_factory.mktemp("report")
    written = generate_all(full_window_study, str(out), seed=1234)
    return written


class TestGenerateAll:
    def test_every_artefact_written(self, generated):
        assert set(generated) == EXPECTED_ARTEFACTS
        for path in generated.values():
            assert path.exists()
            assert path.stat().st_size > 0

    def test_index_lists_files(self, generated):
        index = generated["INDEX"].read_text()
        for name in EXPECTED_ARTEFACTS - {"INDEX"}:
            assert name in index

    def test_table1_shape(self, generated):
        content = generated["table1"].read_text()
        assert "Table 1" in content
        assert content.count("\n") >= 15

    def test_fig7_has_four_series(self, generated):
        content = generated["fig7"].read_text()
        for label in ("V4new", "V4old", "V6new", "V6old"):
            assert label in content

    def test_fig10_shows_diff(self, generated):
        content = generated["fig10"].read_text()
        assert "Figure 10" in content

    def test_dataset_saved_alongside(self, generated):
        dataset_dir = generated["INDEX"].parent / "dataset"
        assert (dataset_dir / "MANIFEST.json").exists()
        assert (dataset_dir / "tables" / "passive_flows" / "flows.bin").exists()

    def test_timings_sidecar(self, generated):
        timings = json.loads(
            (generated["INDEX"].parent / "TIMINGS.json").read_text()
        )
        assert set(timings["artefacts"]) == EXPECTED_ARTEFACTS - {"INDEX"}
        assert all(seconds >= 0 for seconds in timings["artefacts"].values())


class TestParallelIdentity:
    def test_workers_output_byte_identical(
        self, full_window_study, generated, tmp_path_factory
    ):
        out = tmp_path_factory.mktemp("report_par")
        parallel = generate_all(
            full_window_study, str(out), seed=1234, workers=2
        )
        assert set(parallel) == set(generated)
        for name, path in generated.items():
            assert parallel[name].read_text() == path.read_text(), name

    def test_replay_from_dataset(self, generated, tmp_path_factory):
        """Every artefact except fig10's line diff replays from disk."""
        dataset_dir = generated["INDEX"].parent / "dataset"
        out = tmp_path_factory.mktemp("report_replay")
        replayed = generate_from_dataset(str(dataset_dir), str(out), workers=2)
        assert set(replayed) == set(generated)
        for name, path in generated.items():
            if name in ("fig10", "INDEX"):
                continue
            assert replayed[name].read_text() == path.read_text(), name
        assert "Figure 10" in replayed["fig10"].read_text()
