"""The command-line tools."""

import pytest

from repro.cli import dig_main, study_main, zonecheck_main


class TestDig:
    def test_ns_query(self, capsys):
        code = dig_main(["@198.41.0.4", ".", "NS", "--seed", "7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOERROR" in out
        assert "a.root-servers.net." in out
        assert "Query time:" in out

    def test_dnssec_adds_rrsig(self, capsys):
        dig_main(["@198.41.0.4", ".", "SOA", "--dnssec", "--seed", "7"])
        out = capsys.readouterr().out
        assert "RRSIG" in out

    def test_chaos_identity(self, capsys):
        dig_main(["@193.0.14.129", "hostname.bind.", "TXT", "--chaos", "--seed", "7"])
        out = capsys.readouterr().out
        assert "root-servers.org" in out

    def test_b_root_old_address_answers(self, capsys):
        code = dig_main(
            ["@199.9.14.201", "b.root-servers.net.", "A", "--seed", "7",
             "--at", "2023-12-10T12:00:00"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "170.247.170.2" in out  # zone already carries the new glue

    def test_missing_at_sign_rejected(self):
        with pytest.raises(SystemExit):
            dig_main(["198.41.0.4", ".", "NS"])


class TestZonecheck:
    def test_clean_zone_valid(self, capsys):
        code = zonecheck_main(["--seed", "7", "--at", "2023-12-10T12:00:00"])
        out = capsys.readouterr().out
        assert code == 0
        assert "DNSSEC: valid" in out
        assert "ZONEMD: VALID" in out

    def test_bitflip_detected(self, capsys):
        code = zonecheck_main(["--seed", "7", "--bitflip"])
        out = capsys.readouterr().out
        assert code == 1
        assert "INVALID" in out or "MISMATCH" in out

    def test_pre_rollout_zone_reports_absent(self, capsys):
        code = zonecheck_main(["--seed", "7", "--at", "2023-08-01T12:00:00"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ZONEMD: ABSENT" in out

    def test_dump_writes_master_file(self, tmp_path, capsys):
        target = tmp_path / "root.zone"
        zonecheck_main(["--seed", "7", "--dump", str(target)])
        assert target.exists()
        from repro.zone.zonefile import parse_zone_text

        zone = parse_zone_text(target.read_text())
        assert len(zone) > 1000


class TestStudyCli:
    def test_quick_study_with_export(self, tmp_path, capsys, monkeypatch):
        # Shrink the quick preset further for test runtime.
        from repro.core import StudyConfig

        tiny = StudyConfig(
            seed=7, ring_scale=0.03, interval_scale=96.0,
            campaign_start=__import__("repro.util.timeutil", fromlist=["parse_ts"]).parse_ts("2023-11-20"),
            campaign_end=__import__("repro.util.timeutil", fromlist=["parse_ts"]).parse_ts("2023-11-30"),
        )
        monkeypatch.setattr(StudyConfig, "quick", classmethod(lambda cls, seed=7: tiny))
        code = study_main(["--preset", "quick", "--export", str(tmp_path / "ds")])
        out = capsys.readouterr().out
        assert code == 0
        assert "RQ1" in out and "RQ2" in out and "RQ3" in out
        assert (tmp_path / "ds" / "MANIFEST.json").exists()

    def test_streaming_checkpoint_then_resume_save(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import analyze_main
        from repro.core import StudyConfig
        from tests.streamutil import tiny_stream_config

        tiny = tiny_stream_config()
        monkeypatch.setattr(
            StudyConfig, "quick", classmethod(lambda cls, seed=77: tiny)
        )
        ckpt = tmp_path / "ckpt"
        code = study_main(
            ["--preset", "quick", "--checkpoint", str(ckpt),
             "--checkpoint-every", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "sealed chunk 000000: rounds [0, 2)" in out
        assert "5/5 rounds in 3 chunk(s)" in out
        assert (ckpt / "CHECKPOINT.json").exists()

        # a second invocation finalizes from the checkpoint alone — the
        # study config comes from CHECKPOINT.json, not the preset flags
        code = study_main(
            ["--resume", str(ckpt), "--save", str(tmp_path / "ds")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "resuming streamed study" in out
        assert (tmp_path / "ds" / "MANIFEST.json").exists()

        # rootsim-analyze serves the checkpoint directory directly
        code = analyze_main([str(ckpt)])
        out = capsys.readouterr().out
        assert code == 0
        assert "streamed checkpoint: 5/5 rounds" in out

    def test_checkpoint_and_resume_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            study_main(["--checkpoint", "a", "--resume", "b"])
        assert "mutually exclusive" in capsys.readouterr().err

    def test_resume_without_checkpoint_fails_cleanly(self, tmp_path, capsys):
        code = study_main(["--resume", str(tmp_path / "missing")])
        assert code == 2
        assert "no streaming checkpoint" in capsys.readouterr().err
