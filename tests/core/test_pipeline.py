"""The staged pipeline: typed artifacts, checkpoint reuse, sharded and
multiprocess campaign execution, registry-driven analysis."""

import pytest

from repro.analysis import registry
from repro.analysis.stability import StabilityAnalysis
from repro.core import (
    ArtifactStore,
    RootStudy,
    StudyConfig,
    StudyPipeline,
    build_world,
    clear_world_cache,
    shard_vp_lists,
)
from repro.util.timeutil import parse_ts


def tiny_config(**overrides) -> StudyConfig:
    base = dict(
        seed=77,
        ring_scale=0.02,
        interval_scale=96.0,
        campaign_start=parse_ts("2023-11-25"),
        campaign_end=parse_ts("2023-11-30"),
        rtt_sample_every=1,
        traceroute_sample_every=2,
        axfr_sample_every=2,
        clean_transfer_keep_one_in=20,
    )
    base.update(overrides)
    return StudyConfig(**base)


@pytest.fixture(scope="module")
def tiny_study() -> RootStudy:
    study = RootStudy(tiny_config())
    study.run()
    return study


class TestArtifactStore:
    def test_put_get_with_provenance(self):
        store = ArtifactStore()
        store.put("x", 3, stage="some-stage", expected_type=int)
        assert "x" in store
        assert store.get("x") == 3
        assert store.get("x", int) == 3
        assert store.producer("x") == "some-stage"
        assert store.names() == ["x"]

    def test_type_mismatches_rejected(self):
        store = ArtifactStore()
        with pytest.raises(TypeError):
            store.put("x", "not-an-int", stage="s", expected_type=int)
        store.put("x", 3, stage="s")
        with pytest.raises(TypeError):
            store.get("x", str)

    def test_missing_artifacts(self):
        store = ArtifactStore()
        with pytest.raises(KeyError, match="producing stage"):
            store.get("absent")
        with pytest.raises(KeyError):
            store.producer("absent")


class TestWorldCheckpoint:
    def test_worlds_reused_by_seed(self):
        clear_world_cache()
        config = tiny_config()
        first = build_world(config)
        assert build_world(config) is first
        assert build_world(config, reuse=False) is not first
        clear_world_cache()
        assert build_world(config) is not first

    def test_studies_share_one_world(self):
        clear_world_cache()
        a = RootStudy(tiny_config())
        b = RootStudy(tiny_config())
        assert a.catalog is b.catalog
        assert a.distributor is b.distributor
        # Platforms stay per-study: fresh collectors and churn state.
        assert a.collector is not b.collector
        assert a.selector is not b.selector


class TestStages:
    def test_stages_idempotent_and_timed(self):
        pipeline = StudyPipeline(tiny_config())
        world = pipeline.build_world()
        assert pipeline.build_world() is world
        platform = pipeline.build_platform()
        assert pipeline.build_platform() is platform
        stages = [(t.stage, t.reused) for t in pipeline.timings]
        assert ("build_world", True) in stages
        assert ("build_platform", True) in stages
        assert all(t.seconds >= 0 for t in pipeline.timings)

    def test_results_before_campaign_raises(self):
        pipeline = StudyPipeline(tiny_config())
        with pytest.raises(RuntimeError, match="before the campaign"):
            pipeline.results()
        study = RootStudy(tiny_config())
        with pytest.raises(RuntimeError, match="before the campaign"):
            study.results()

    def test_artifacts_published_with_provenance(self, tiny_study):
        store = tiny_study.pipeline.store
        for name in ("world", "catalog", "fabric", "distributor", "deployments"):
            assert store.producer(name) == "build_world"
        for name in ("platform", "schedule", "vps", "fault_plan"):
            assert store.producer(name) == "build_platform"
        assert store.producer("collector") == "run_campaign"

    def test_run_idempotent(self, tiny_study):
        before = tiny_study.collector.summary()
        again = tiny_study.run()
        assert again.collector.summary() == before
        reused = [t for t in tiny_study.timings if t.stage == "run_campaign" and t.reused]
        assert reused


class TestSharding:
    def test_shard_vp_lists_partitions(self, tiny_study):
        vps = tiny_study.vps
        shards = shard_vp_lists(vps, 3)
        assert len(shards) == 3
        flat = [vp.vp_id for shard in shards for vp in shard]
        assert sorted(flat) == [vp.vp_id for vp in vps]
        with pytest.raises(ValueError):
            shard_vp_lists(vps, 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            tiny_config(shards=0)
        with pytest.raises(ValueError):
            tiny_config(workers=0)
        sharded = tiny_config().with_sharding(4, workers=2)
        assert (sharded.shards, sharded.workers) == (4, 2)
        serial = sharded.serial()
        assert (serial.shards, serial.workers) == (1, 1)
        assert serial.seed == sharded.seed

    def test_multiprocess_run_equals_serial(self, tiny_study):
        """workers > 1 runs shards on a process pool with mmap spill
        handoff; output is still byte-identical to the serial campaign."""
        import numpy as np

        from repro.core.pipeline import last_spill_stats

        study = RootStudy(tiny_config().with_sharding(2, workers=2))
        study.run()
        assert study.collector.summary() == tiny_study.collector.summary()
        assert study.collector.change_counts() == (
            tiny_study.collector.change_counts()
        )
        ours, ref = study.collector.probe_columns(), (
            tiny_study.collector.probe_columns()
        )
        for name in ours:
            assert np.array_equal(ours[name], ref[name]), name

        # the collectors came home through spills, not the pool pipe
        stats = last_spill_stats()
        assert stats is not None and stats["shards"] == 2
        assert stats["spill_bytes"] > 0
        assert stats["payload_bytes"] < 4096


class TestAnalyzeStage:
    def test_all_analyses_reachable_by_name(self):
        assert registry.names() == [
            "clientbehavior",
            "colocation",
            "coverage",
            "distance",
            "paths",
            "querymix",
            "regional_rtt",
            "rssac",
            "rtt",
            "stability",
            "trafficshift",
            "variability",
            "zonemd_audit",
        ]
        for name in registry.names():
            cls = registry.get(name)
            assert cls.name == name
            assert isinstance(cls.requires, tuple)

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="stability"):
            registry.get("nope")

    def test_analyze_by_name(self, tiny_study):
        out = tiny_study.analyze(["stability", "coverage"])
        assert sorted(out) == ["coverage", "stability"]
        assert isinstance(out["stability"], StabilityAnalysis)

    def test_analyze_defaults_to_runnable(self, tiny_study):
        out = tiny_study.analyze()
        assert set(out) == set(registry.runnable(tiny_study.results()))
        # Passive-only analyses need an explicit aggregate.
        assert "trafficshift" not in out
        assert "stability" in out

    def test_missing_input_error_names_the_gap(self, tiny_study):
        with pytest.raises(KeyError, match="aggregate"):
            registry.run("trafficshift", tiny_study.results())
