"""Streamed campaigns: resume equivalence, guards, config recovery.

The crash-injection harness (tests/integration/test_crash_resume.py)
kills real subprocesses; these tests exercise the same resume machinery
in-process, where aborts are cheap enough to check every engine and the
guard rails around a bad resume.
"""

from __future__ import annotations

import pytest

from repro.core.streaming import (
    config_from_checkpoint,
    finalize_streaming_campaign,
    load_streaming_checkpoint,
    run_streaming_campaign,
)
from repro.data import CheckpointError

from tests.streamutil import assert_trees_identical, tiny_stream_config


class _Abort(Exception):
    """Raised from after_chunk to simulate dying at a chunk boundary."""


@pytest.mark.parametrize(
    "engine,shards", [("epoch", 1), ("scalar", 2)], ids=["epoch-1", "scalar-2"]
)
def test_abort_and_resume_is_byte_identical(engine, shards, tmp_path):
    config = tiny_stream_config(engine=engine, shards=shards)

    clean_ckpt = tmp_path / "clean-ckpt"
    run = run_streaming_campaign(config, clean_ckpt, checkpoint_every=2)
    assert run.complete and run.chunks == 3
    reference = tmp_path / "clean"
    finalize_streaming_campaign(clean_ckpt, reference, passive=False)

    # die right after the first seal, then resume to completion
    ckpt = tmp_path / "crashed-ckpt"

    def bomb(index, _chunk_dir, _lo, _hi):
        if index == 0:
            raise _Abort

    with pytest.raises(_Abort):
        run_streaming_campaign(config, ckpt, checkpoint_every=2, after_chunk=bomb)
    partial = load_streaming_checkpoint(ckpt)
    assert partial.meta["checkpoint"]["rounds_done"] == 2

    resumed = run_streaming_campaign(config, ckpt, checkpoint_every=2, resume=True)
    assert resumed.complete
    out = tmp_path / "resumed"
    finalize_streaming_campaign(ckpt, out, passive=False)
    assert_trees_identical(reference, out)


def test_resume_of_complete_checkpoint_is_a_noop(tmp_path):
    config = tiny_stream_config()
    ckpt = tmp_path / "ckpt"
    first = run_streaming_campaign(config, ckpt, checkpoint_every=2)
    again = run_streaming_campaign(config, ckpt, checkpoint_every=2, resume=True)
    assert again.complete and again.chunks == first.chunks
    assert again.collector.summary() == first.collector.summary()


def test_resume_rejects_different_study(tmp_path):
    ckpt = tmp_path / "ckpt"
    run_streaming_campaign(tiny_stream_config(), ckpt, checkpoint_every=2)
    other = tiny_stream_config(seed=78)
    with pytest.raises(CheckpointError, match="different.*study configuration"):
        run_streaming_campaign(other, ckpt, checkpoint_every=2, resume=True)


def test_fresh_run_refuses_existing_checkpoint(tmp_path):
    config = tiny_stream_config()
    ckpt = tmp_path / "ckpt"
    run_streaming_campaign(config, ckpt, checkpoint_every=2)
    with pytest.raises(CheckpointError, match="already exists"):
        run_streaming_campaign(config, ckpt, checkpoint_every=2)


def test_streaming_requires_in_process_shards(tmp_path):
    config = tiny_stream_config().with_sharding(2, workers=2)
    with pytest.raises(CheckpointError, match="workers=1"):
        run_streaming_campaign(config, tmp_path / "ckpt")


def test_checkpoint_every_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="checkpoint_every"):
        run_streaming_campaign(
            tiny_stream_config(), tmp_path / "ckpt", checkpoint_every=0
        )


def test_config_from_checkpoint_roundtrips(tmp_path):
    config = tiny_stream_config(engine="epoch")
    ckpt = tmp_path / "ckpt"
    run_streaming_campaign(config, ckpt, checkpoint_every=3)
    assert config_from_checkpoint(ckpt) == config
