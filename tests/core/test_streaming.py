"""Streamed campaigns: resume equivalence, guards, config recovery.

The crash-injection harness (tests/integration/test_crash_resume.py)
kills real subprocesses; these tests exercise the same resume machinery
in-process, where aborts are cheap enough to check every engine and the
guard rails around a bad resume.
"""

from __future__ import annotations

import pytest

from repro.core.streaming import (
    config_from_checkpoint,
    finalize_streaming_campaign,
    load_streaming_checkpoint,
    run_streaming_campaign,
)
from repro.data import CheckpointError

from tests.streamutil import assert_trees_identical, tiny_stream_config


class _Abort(Exception):
    """Raised from after_chunk to simulate dying at a chunk boundary."""


@pytest.mark.parametrize(
    "engine,shards", [("epoch", 1), ("scalar", 2)], ids=["epoch-1", "scalar-2"]
)
def test_abort_and_resume_is_byte_identical(engine, shards, tmp_path):
    config = tiny_stream_config(engine=engine, shards=shards)

    clean_ckpt = tmp_path / "clean-ckpt"
    run = run_streaming_campaign(config, clean_ckpt, checkpoint_every=2)
    assert run.complete and run.chunks == 3
    reference = tmp_path / "clean"
    finalize_streaming_campaign(clean_ckpt, reference, passive=False)

    # die right after the first seal, then resume to completion
    ckpt = tmp_path / "crashed-ckpt"

    def bomb(index, _chunk_dir, _lo, _hi):
        if index == 0:
            raise _Abort

    with pytest.raises(_Abort):
        run_streaming_campaign(config, ckpt, checkpoint_every=2, after_chunk=bomb)
    partial = load_streaming_checkpoint(ckpt)
    assert partial.meta["checkpoint"]["rounds_done"] == 2

    resumed = run_streaming_campaign(config, ckpt, checkpoint_every=2, resume=True)
    assert resumed.complete
    out = tmp_path / "resumed"
    finalize_streaming_campaign(ckpt, out, passive=False)
    assert_trees_identical(reference, out)


def test_resume_of_complete_checkpoint_is_a_noop(tmp_path):
    config = tiny_stream_config()
    ckpt = tmp_path / "ckpt"
    first = run_streaming_campaign(config, ckpt, checkpoint_every=2)
    again = run_streaming_campaign(config, ckpt, checkpoint_every=2, resume=True)
    assert again.complete and again.chunks == first.chunks
    assert again.collector.summary() == first.collector.summary()


def test_resume_rejects_different_study(tmp_path):
    ckpt = tmp_path / "ckpt"
    run_streaming_campaign(tiny_stream_config(), ckpt, checkpoint_every=2)
    other = tiny_stream_config(seed=78)
    with pytest.raises(CheckpointError, match="different.*study configuration"):
        run_streaming_campaign(other, ckpt, checkpoint_every=2, resume=True)


def test_fresh_run_refuses_existing_checkpoint(tmp_path):
    config = tiny_stream_config()
    ckpt = tmp_path / "ckpt"
    run_streaming_campaign(config, ckpt, checkpoint_every=2)
    with pytest.raises(CheckpointError, match="already exists"):
        run_streaming_campaign(config, ckpt, checkpoint_every=2)


def test_multiprocess_streaming_matches_in_process(tmp_path):
    """Shard workers on a process pool seal the same chunks — the
    finalized tree differs from the in-process run only in the study
    fingerprint's worker count."""
    import json

    from tests.streamutil import tree_bytes

    ckpt1, ckpt2 = tmp_path / "ckpt1", tmp_path / "ckpt2"
    run_streaming_campaign(
        tiny_stream_config().with_sharding(2, workers=1), ckpt1, checkpoint_every=2
    )
    mp_run = run_streaming_campaign(
        tiny_stream_config().with_sharding(2, workers=2), ckpt2, checkpoint_every=2
    )
    assert mp_run.complete and mp_run.chunks == 3
    out1, out2 = tmp_path / "out1", tmp_path / "out2"
    finalize_streaming_campaign(ckpt1, out1, passive=False)
    finalize_streaming_campaign(ckpt2, out2, passive=False)

    left, right = tree_bytes(out1), tree_bytes(out2)
    assert set(left) == set(right)
    different = [name for name in left if left[name] != right[name]]
    assert different in ([], ["MANIFEST.json"])
    m1 = json.loads(left["MANIFEST.json"])
    m2 = json.loads(right["MANIFEST.json"])
    m1["study"]["workers"] = m2["study"]["workers"] = 0
    assert m1 == m2


def test_checkpoint_every_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="checkpoint_every"):
        run_streaming_campaign(
            tiny_stream_config(), tmp_path / "ckpt", checkpoint_every=0
        )


def test_config_from_checkpoint_roundtrips(tmp_path):
    config = tiny_stream_config(engine="epoch")
    ckpt = tmp_path / "ckpt"
    run_streaming_campaign(config, ckpt, checkpoint_every=3)
    assert config_from_checkpoint(ckpt) == config
