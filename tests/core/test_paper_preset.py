"""The paper preset builds a world at the paper's magnitudes.

A smoke check, not a simulation run: world + platform construction at
``ring_scale=1.0`` is fast, and the resulting VP ring and site catalog
must land in the ballpark the paper reports (675 VPs; §3 describes
~1 750 root sites across the 13 letters).
"""

from repro.core import StudyConfig
from repro.core.pipeline import build_platform, build_world
from repro.rss.operators import ROOT_LETTERS


class TestPaperPreset:
    def test_paper_is_paper_scale(self):
        # paper() now materialises the registered "paper" scenario; the
        # knobs still equal the paper_scale preset exactly, plus the
        # scenario provenance stamp.
        assert StudyConfig.paper().without_scenario() == StudyConfig.paper_scale()
        assert StudyConfig.paper().scenario_name == "paper"
        assert StudyConfig.paper(seed=7).seed == 7
        assert StudyConfig.paper().ring_scale == 1.0

    def test_world_and_platform_magnitudes(self):
        config = StudyConfig.paper()
        world = build_world(config, reuse=False)
        platform = build_platform(config, world)

        assert len(platform.vps) == 675  # the paper's VP count

        sites = sum(
            len(world.catalog.of_letter(letter)) for letter in ROOT_LETTERS
        )
        # Paper ballpark (~1 750 sites); the synthetic catalog sits in
        # the same magnitude.
        assert 1200 <= sites <= 2200

        # 174 days at 30-minute rounds ~ 8.3k rounds; all 28 service
        # addresses (13 letters dual-stack + b.root's old/new pairs).
        assert platform.schedule.round_count() > 8000
        addresses = platform.prober.collector.addresses
        assert len(addresses) == 28
