"""Package-level surface: version, public imports, no cycles."""

import importlib

import pytest


PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.cli",
    "repro.core",
    "repro.dns",
    "repro.dnssec",
    "repro.faults",
    "repro.geo",
    "repro.netsim",
    "repro.passive",
    "repro.reportgen",
    "repro.resolver",
    "repro.rss",
    "repro.util",
    "repro.vantage",
    "repro.zone",
]


class TestPackage:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("module", PUBLIC_MODULES)
    def test_imports_cleanly(self, module):
        importlib.import_module(module)

    def test_every_public_module_has_docstring(self):
        for module_name in PUBLIC_MODULES:
            module = importlib.import_module(module_name)
            assert module.__doc__, module_name
            assert len(module.__doc__.strip()) > 40, module_name

    def test_analysis_exports(self):
        from repro import analysis

        for name in analysis.__all__:
            assert hasattr(analysis, name), name

    def test_resolver_exports(self):
        from repro import resolver

        for name in resolver.__all__:
            assert hasattr(resolver, name), name
