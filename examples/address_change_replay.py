#!/usr/bin/env python3
"""Replay of b.root's 2023 renumbering through passive traffic traces.

Builds the ISP and IXP client populations, captures flows around the
change, and prints the adoption story: traffic shares per subnet before
and after, in-family shift ratios, the regional EU-vs-NA IPv6 asymmetry
and the Figure 8 priming fingerprint.

Run:  python examples/address_change_replay.py
"""

from repro.analysis.clientbehavior import ClientBehaviorAnalysis
from repro.analysis.trafficshift import TrafficShiftAnalysis
from repro.geo.continents import Continent
from repro.passive.clients import ISP_PROFILE, build_client_population
from repro.passive.isp import IspCapture
from repro.passive.ixp import build_ixp_captures, regional_aggregate
from repro.util.rng import RngFactory
from repro.util.timeutil import parse_ts

PRE = (parse_ts("2023-10-08"), parse_ts("2023-10-09"))
POST = (parse_ts("2024-02-05"), parse_ts("2024-03-04"))
IXP_WINDOW = (parse_ts("2023-12-08"), parse_ts("2023-12-28"))


def main() -> None:
    rng = RngFactory(2024)
    print("Building ISP client population and capturing flows ...")
    isp = IspCapture(build_client_population(ISP_PROFILE, rng), seed=2024)

    pre = TrafficShiftAnalysis(isp.capture(*PRE))
    post_aggregate = isp.capture(*POST)
    post = TrafficShiftAnalysis(post_aggregate)

    print("\n=== ISP view (paper Figure 7) ===")
    subset = list(pre.b_addresses.values())
    print("before the change (2023-10-08):")
    for label, address in pre.b_addresses.items():
        share = pre.series.window_share(address, *PRE, subset)
        print(f"  {label}: {100 * share:5.1f}%")
    print("after the change (2024-02-05 .. 2024-03-04):")
    for label, address in post.b_addresses.items():
        share = post.series.window_share(address, *POST, subset)
        print(f"  {label}: {100 * share:5.1f}%")

    ratios = post.shift_ratios(*POST)
    print(f"\nin-family shift ratios: IPv4 {100 * ratios.v4_shifted:.1f}% "
          f"(paper 87.1%), IPv6 {100 * ratios.v6_shifted:.1f}% (paper 96.3%)")

    print("\n=== Priming fingerprint (paper Figure 8) ===")
    behavior = ClientBehaviorAnalysis(post_aggregate)
    for label, fraction in sorted(behavior.priming_signal().items()):
        print(f"  {label}: {100 * fraction:5.1f}% of clients touch it <=1x/day")

    print("\n=== IXP view, IPv6 only (paper Figure 9) ===")
    captures = build_ixp_captures(rng.fork("ixp"), seed=2024, clients_per_ixp=120)
    for region in (Continent.EUROPE, Continent.NORTH_AMERICA):
        aggregate = regional_aggregate(captures, region, *IXP_WINDOW)
        shift = TrafficShiftAnalysis(aggregate)
        new = shift.b_addresses["V6new"]
        old = shift.b_addresses["V6old"]
        share = shift.series.window_share(new, *IXP_WINDOW, [new, old])
        print(f"  {region}: {100 * share:.1f}% of IPv6 traffic shifted "
              f"(paper: EU 60.8%, NA 16.5%)")


if __name__ == "__main__":
    main()
