#!/usr/bin/env python3
"""Co-location audit — the paper's RQ1 workflow as an operator tool.

Builds the routing fabric, takes a census of which letters share
facilities (ground truth an operator cannot directly see), then shows
what the traceroute-based second-to-last-hop method recovers for a set
of vantage points — including the lower-bound effect of unanswered hops.

Run:  python examples/colocation_audit.py
"""

from collections import Counter

from repro.netsim.topology import NetworkFabric
from repro.rss.sites import build_site_catalog
from repro.util.rng import RngFactory
from repro.util.tables import Table
from repro.vantage.ring import RingConfig, build_ring


def main() -> None:
    rng = RngFactory(31)
    catalog = build_site_catalog(rng)
    fabric = NetworkFabric(catalog, rng)

    print("=== Ground truth: letters per facility (top 10) ===")
    census = fabric.colocation_census()
    table = Table(["Facility", "Letters", "Exchange?"])
    for facility_id, n_letters in sorted(census.items(), key=lambda kv: -kv[1])[:10]:
        facility = fabric.facilities[facility_id]
        table.add_row(
            [facility_id, n_letters, facility.ixp.name if facility.ixp else "-"]
        )
    print(table.render())

    print("\n=== What vantage points observe (second-to-last hops) ===")
    ring = build_ring(rng, RingConfig(scale=0.08))
    selector = fabric.selector(seed=31, expected_rounds=100)

    reduced = Counter()
    shared_facilities = Counter()
    for vp in ring:
        for family in (4, 6):
            hops = [
                selector.best(vp.attachment, letter, family).facility.facility_id
                for letter in "abcdefghijklm"
            ]
            redundancy = len(hops) - len(set(hops))
            reduced[redundancy] += 1
            for facility_id, count in Counter(hops).items():
                if count > 1:
                    shared_facilities[facility_id] += 1

    print("reduced redundancy histogram (VP x family views):")
    for value in sorted(reduced):
        print(f"  {value:2d}: {'#' * reduced[value]} {reduced[value]}")

    total_views = sum(reduced.values())
    with_sharing = total_views - reduced[0]
    print(f"\nviews observing co-location: {100 * with_sharing / total_views:.1f}% "
          f"(paper: ~70% of clients see >=2 co-located letters)")

    print("\nfacilities most often observed as shared last hops:")
    for facility_id, count in shared_facilities.most_common(5):
        facility = fabric.facilities[facility_id]
        kind = facility.ixp.name if facility.ixp else "private DC"
        print(f"  {facility_id} ({kind}): shared in {count} views")

    print("\nDiversifying last-hop infrastructure at the busiest facilities")
    print("above would directly reduce these numbers (paper §5 takeaway).")


if __name__ == "__main__":
    main()
