#!/usr/bin/env python3
"""Running a local root (RFC 8806) with ZONEMD protection.

The paper's §7 motivation made concrete: a resolver operator keeps a
local copy of the root zone, refreshed on the SOA schedule and fully
validated (DNSSEC + ZONEMD) on every transfer.  When a transfer arrives
corrupted — here, a simulated memory bitflip — the manager rejects it
and reschedules from a different letter, exactly the fallback the paper
says ZONEMD enables.

Also shows classic priming (RFC 8109): a resolver bootstrapped from a
*stale* hints file (pre-renumbering b.root address) learns the new
address from the zone on its first priming query.

Run:  python examples/local_root_resolver.py
"""

from repro.faults.bitflip import BitflipEvent, flip_bit_in_zone
from repro.geo.cities import city
from repro.netsim.attachment import Attachment
from repro.netsim.topology import NetworkFabric
from repro.netsim.transit import TRANSIT_CATALOG
from repro.resolver import LocalRootManager, RootNetworkClient, SimResolver
from repro.resolver.hints import fresh_hints, stale_hints
from repro.rss.operators import ROOT_SERVERS, root_server
from repro.rss.server import RootServerDeployment
from repro.rss.sites import build_site_catalog
from repro.util.rng import RngFactory
from repro.util.timeutil import DAY, format_ts, parse_ts
from repro.zone.distribution import ZoneDistributor
from repro.zone.rootzone import RootZoneBuilder

NOW = parse_ts("2023-12-10T12:00:00")


def build_client() -> RootNetworkClient:
    rng = RngFactory(99)
    catalog = build_site_catalog(rng)
    fabric = NetworkFabric(catalog, rng)
    distributor = ZoneDistributor(RootZoneBuilder(seed=99))
    deployments = {
        letter: RootServerDeployment(
            ROOT_SERVERS[letter], catalog.of_letter(letter), distributor
        )
        for letter in ROOT_SERVERS
    }
    attachment = Attachment(
        asn=64901, city=city("VIE"),
        transits_v4=(TRANSIT_CATALOG[2], TRANSIT_CATALOG[4]),
        transits_v6=(TRANSIT_CATALOG[0],),
    )
    selector = fabric.selector(seed=99, expected_rounds=10_000)
    return RootNetworkClient(attachment, selector, deployments, client_id=1)


def main() -> None:
    client = build_client()

    print("=== RFC 8109 priming with a stale hints file ===")
    resolver = SimResolver(client, stale_hints())
    from repro.dns.constants import RRType
    from repro.dns.name import Name

    resolver.resolve(Name.from_text("com."), RRType.NS, NOW)
    b = root_server("b")
    print(f"hints file carries b.root = {stale_hints().address('b', 4)} (old)")
    print(f"after priming the resolver uses b.root = "
          f"{[a for a in resolver.known_root_addresses() if a in (b.ipv4, b.old_ipv4)][0]}")
    print(f"priming queries sent: {resolver.queries_sent}")

    print("\n=== RFC 8806 local root with ZONEMD-validated transfers ===")
    manager = LocalRootManager(client, fresh_hints(), require_zonemd=True)
    result = manager.refresh(NOW)
    print(f"initial refresh: {result.status.value}; serial {result.serial} "
          f"from {result.served_by}")

    print("\nnext refresh cycle — the first letter's transfer is corrupted:")
    original_axfr = client.axfr
    poisoned = {fresh_hints().address("a", 4)}

    def flaky_axfr(address, ts):
        result = original_axfr(address, ts)
        if result is not None and address in poisoned:
            event = BitflipEvent(vp_id=0, start_ts=ts - 1, end_ts=ts + 1)
            zone, _ = flip_bit_in_zone(result.zone, event, ts)
            result = type(result)(
                zone=zone, serial=zone.serial, messages=result.messages,
                records=result.records, shared=False,
            )
        return result

    client.axfr = flaky_axfr
    later = NOW + DAY
    result = manager.refresh(later)
    for address, why in result.rejections:
        print(f"  rejected {address}: {why}")
    print(f"outcome: {result.status.value}; serial {result.serial} "
          f"from {result.served_by} at {format_ts(later)}")

    print("\nlocal answers (no network round trip):")
    from repro.dns.message import Message

    answer = manager.answer_locally(
        Message.make_query(Name.from_text("world."), RRType.NS)
    )
    for record in answer.answers[:2]:
        print(f"  {record.to_text()}")


if __name__ == "__main__":
    main()
