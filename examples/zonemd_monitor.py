#!/usr/bin/env python3
"""Zone integrity monitoring — the paper's RQ3 workflow as a tool.

Plays the role of a resolver operator keeping a local root zone copy
(RFC 8806): pull the zone over AXFR and from the IANA/CZDS channels,
fully validate each copy (RRSIGs + ZONEMD), and demonstrate that a
single flipped bit in a transfer is caught — including the exact
corrupted record, as in the paper's Figure 10.

Run:  python examples/zonemd_monitor.py
"""

from repro.analysis.zonemd_audit import ZonemdAudit
from repro.dns.name import ROOT_NAME
from repro.dnssec.validate import validate_zone
from repro.dnssec.zonemd import verify_zonemd
from repro.faults.bitflip import BitflipEvent, flip_bit_in_zone
from repro.util.timeutil import format_ts, parse_ts
from repro.zone.distribution import ZoneDistributor
from repro.zone.rootzone import RootZoneBuilder
from repro.zone.sources import CzdsSource, IanaSource


def check(label: str, zone, now: int) -> None:
    report = validate_zone(zone.records, ROOT_NAME, now=now)
    zonemd_status, detail = verify_zonemd(zone.records, ROOT_NAME)
    state = "OK" if report.valid else f"INVALID ({report.issues[0].error.value})"
    print(f"  {label:<28} serial={zone.serial}  RRSIG+ZONEMD: {state}; "
          f"ZONEMD {zonemd_status.name}: {detail}")


def main() -> None:
    builder = RootZoneBuilder(seed=42)
    distributor = ZoneDistributor(builder)
    now = parse_ts("2023-12-15T12:00:00")

    print(f"Monitoring the root zone at {format_ts(now)}\n")
    print("Clean copies from the three channels:")
    axfr_zone = distributor.zone_at_site("monitor", now)
    check("AXFR from a root server", axfr_zone, now)
    check("IANA website download", IanaSource(distributor).download(now).zone, now)
    check("CZDS daily snapshot", CzdsSource(distributor).download(now).zone, now)

    print("\nNow a transfer that suffered a single bitflip in memory:")
    event = BitflipEvent(vp_id=0, start_ts=now - 10, end_ts=now + 10)
    corrupted, report = flip_bit_in_zone(axfr_zone, event, now)
    check("AXFR with flipped bit", corrupted, now)
    print(f"\n  flip location: {report.description}")
    print(f"  reference record: {report.before_text[:100]}")
    print(f"  received record:  {report.after_text[:100]}")

    print("\nComparing against a clean copy with the same SOA (Figure 10):")
    from repro.vantage.collector import TransferObservation
    from repro.rss.operators import address_owner

    obs = TransferObservation(
        vp_id=0, true_ts=now, observed_ts=now,
        address=address_owner("199.7.91.13"),
        serial=corrupted.serial, zone=corrupted, fault="bitflip",
        fault_detail=report.description,
    )
    audit = ZonemdAudit([obs])
    for before, after in audit.bitflip_diff(obs, axfr_zone):
        print(f"  - {before[:110]}")
        print(f"  + {after[:110]}")

    print("\nZONEMD catches what DNSSEC alone cannot: flips in unsigned")
    print("delegation/glue records also change the zone digest.")


if __name__ == "__main__":
    main()
