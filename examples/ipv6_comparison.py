#!/usr/bin/env python3
"""IPv4 vs IPv6 anycast comparison — the paper's RQ2 workflow.

For a hand-picked set of client networks on four continents, compare per
address family: the selected anycast site, the routed path, the RTT, and
whether the catchment leaves the continent — surfacing the AS6939-like
open-v6-transit effects the paper highlights for i.root and l.root.

Run:  python examples/ipv6_comparison.py
"""

from repro.geo.cities import city
from repro.netsim.attachment import Attachment
from repro.netsim.latency import route_rtt_ms
from repro.netsim.topology import NetworkFabric
from repro.netsim.transit import OPEN_V6_TRANSIT, SA_V4_TRANSIT, TRANSIT_BY_ASN
from repro.rss.sites import build_site_catalog
from repro.util.rng import RngFactory
from repro.util.tables import Table

#: (label, home city, v4 upstreams, v6 upstreams)
CLIENTS = [
    ("Sao Paulo eyeball", "GRU", (SA_V4_TRANSIT,), (OPEN_V6_TRANSIT,)),
    ("Nairobi ISP", "NBO", (TRANSIT_BY_ASN[37100],), (OPEN_V6_TRANSIT,)),
    ("Chicago hoster", "ORD", (TRANSIT_BY_ASN[174],), (OPEN_V6_TRANSIT,)),
    ("Frankfurt CDN", "FRA", (TRANSIT_BY_ASN[3356],), (TRANSIT_BY_ASN[1299],)),
]

LETTERS = ["b", "i", "k", "l"]


def main() -> None:
    rng = RngFactory(7)
    catalog = build_site_catalog(rng)
    fabric = NetworkFabric(catalog, rng)
    selector = fabric.selector(seed=7, expected_rounds=100)

    for i, (label, iata, v4, v6) in enumerate(CLIENTS):
        att = Attachment(
            asn=65100 + i, city=city(iata), transits_v4=v4, transits_v6=v6
        )
        table = Table(
            ["Letter", "Fam", "Via", "Entry", "Site", "Same continent?", "RTT ms"],
            float_digits=1,
        )
        for letter in LETTERS:
            for family in (4, 6):
                route = selector.best(att, letter, family)
                rtt = route_rtt_ms(route, last_mile_ms=3.0, request_key=i)
                same = route.site.continent is att.continent
                table.add_row(
                    [
                        f"{letter}.root",
                        f"v{family}",
                        route.via,
                        route.entry_city.iata,
                        route.site.city.iata,
                        "yes" if same else "NO",
                        rtt,
                    ]
                )
        print(table.render(f"== {label} ({iata}) =="))
        print()

    print("Note the out-of-continent IPv6 catchments for the South American")
    print("and African clients whose only v6 upstream is the open-v6 transit —")
    print("the mechanism behind the paper's i.root/l.root RTT asymmetries.")


if __name__ == "__main__":
    main()
