#!/usr/bin/env python3
"""Quickstart: run a scaled-down root measurement study end to end.

Builds the simulated world (root zone machinery, anycast fabric, the 13
letters' deployments, a vantage-point ring), runs a campaign over the
paper's timeline, and prints the headline results for all three research
questions.

Run:  python examples/quickstart.py
"""

from repro.analysis import (
    ColocationAnalysis,
    CoverageAnalysis,
    StabilityAnalysis,
    ZonemdAudit,
)
from repro.analysis.report import render_table1, render_table2
from repro.core import RootStudy, StudyConfig


def main() -> None:
    config = StudyConfig.quick()
    print(f"Building study (seed={config.seed}, ring_scale={config.ring_scale}) ...")
    study = RootStudy(config)
    print(f"  {len(study.vps)} vantage points, {len(study.catalog)} root sites, "
          f"{study.schedule.round_count()} measurement rounds")

    print("Running campaign (this takes a minute) ...")
    results = study.run()
    summary = results.summary()
    print(f"  simulated {summary['queries']:,} DNS queries, "
          f"{summary['transfers']:,} zone transfers")

    print("\n=== RQ1: server co-location ===")
    colocation = ColocationAnalysis(results.collector, results.vps)
    print(f"VPs observing >=2 co-located letters: "
          f"{100 * colocation.fraction_with_colocation():.1f}% "
          f"(max co-location: {colocation.max_observed_colocation()})")

    print("\n=== RQ2: site stability, IPv4 vs IPv6 ===")
    stability = StabilityAnalysis(results.collector)
    for letter in ("b", "g"):
        series = stability.series_for(letter)
        medians = {s.label: s.median_changes() for s in series}
        print(f"{letter}.root median changes per VP: {medians}")

    print("\n=== RQ3: zone integrity ===")
    audit = ZonemdAudit(results.collector.transfers)
    findings, valid = audit.validate_transfers()
    print(f"{valid} recorded transfers validate; {len(findings)} finding groups:")
    print(render_table2(findings, valid))

    print("\n=== Coverage (Table 1) ===")
    coverage = CoverageAnalysis(results.catalog, results.collector.identities)
    print(render_table1(coverage))


if __name__ == "__main__":
    main()
