"""Per-shard spill datasets: the zero-copy multiprocess handoff format.

Shard workers used to hand their results back by pickling the whole
:class:`~repro.vantage.collector.CampaignCollector` through the process
pool — tens of megabytes of numpy buffers and zone object graphs
serialised, piped, and deserialised per shard.  A spill replaces that
with the mmap dataset substrate (DESIGN.md §12): the worker writes its
columnar row buffers as ordinary binary tables, its aggregate state as a
compact JSON sidecar, and its transfer observations as metadata rows
plus a deduplicated zone pack; only the spill *path* (plus a summary)
crosses the pipe.  The parent memory-maps the tables back — zero copies,
zero row-level python — and merges.

Layout::

    <dir>/
      SPILL.json               # spill/schema versions, collector state
                               # dict, summary, table manifest entries
      tables/probes/<col>.bin  # write_binary_table output — byte-for-byte
      tables/traceroutes/...   # the dataset column-file format
      transfers.jsonl          # per-observation metadata (zone by index)
      zones.pkl                # distinct Zone objects, first-seen order

Row tables are spilled at the *disk* dtypes (float32 rtt/distances).
That round-trip is byte-invisible to every consumer: analyses read
float32 via ``probe_columns()`` regardless, and
float64→float32→float64→float32 equals float64→float32, so a merged
spill-reloaded campaign stays byte-identical to the serial run.

Transfers keep full fidelity — the zone pack carries each *distinct*
zone copy exactly once (the same dedup pickling a collector performed
implicitly, minus the 40 MB of row buffers around it), so reloaded
observations still power the Figure 10 bitflip diff and seal normally at
dataset-save time.  No cryptography runs in workers: sealing 200+
distinct zone contents costs ~45 s of RSA verification at the bench
config, which stays where it always was (dataset save / chunk seal).
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from collections.abc import Sequence
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.data.io import read_binary_table, write_binary_table
from repro.data.schema import BINARY_TABLES, SCHEMA_VERSION, DatasetError
from repro.data.transfers import TransferRecord, record_to_row, row_to_record
from repro.vantage.collector import CampaignCollector, TransferObservation

SPILL_NAME = "SPILL.json"

#: Version of the spill layout; bump on every incompatible change.
SPILL_VERSION = 1

#: Minimum free bytes before /dev/shm is trusted as the spill root.
_SHM_MIN_FREE = 2 << 30


def spill_tempdir(prefix: str) -> Path:
    """A scratch root for shard spills.

    Prefers ``/dev/shm`` (tmpfs) when it exists, is writable, and has
    comfortable headroom: the handoff then never touches a disk — the
    worker's table write is a memcpy into shared memory and the parent's
    ``np.memmap`` reads the same pages back.  Falls back to the standard
    temp dir otherwise.  ``ROOTSIM_SPILL_DIR`` overrides both.
    """
    override = os.environ.get("ROOTSIM_SPILL_DIR")
    if override:
        return Path(tempfile.mkdtemp(prefix=prefix, dir=override))
    shm = Path("/dev/shm")
    try:
        if shm.is_dir() and os.access(shm, os.W_OK):
            stats = os.statvfs(shm)
            if stats.f_bavail * stats.f_frsize >= _SHM_MIN_FREE:
                return Path(tempfile.mkdtemp(prefix=prefix, dir=str(shm)))
    except OSError:
        pass
    return Path(tempfile.mkdtemp(prefix=prefix))


class SpillTransfers(Sequence):
    """Transfer observations of one reloaded spill, materialized lazily.

    Rehydrating transfers is the one part of a spill reload that is not
    zero-copy: the zone pack has to be unpickled and every observation
    rebuilt as an object.  Most consumers never look — the statistical
    analyses read row tables, and the batch pipeline only needs
    transfers at dataset-save time (sealing), where the unpickle is
    noise next to the crypto.  So the reload parses only the cheap
    metadata rows eagerly (enough for ``len()`` and the merge's
    ``(true_ts, vp_id)`` ordering) and holds the zone pack as raw bytes;
    the first element access materializes the real observation objects.
    """

    def __init__(
        self,
        rows: List[dict],
        zone_blob: bytes,
        expected_zones: int,
        address_map: Dict[str, object],
        source: Path,
    ) -> None:
        self._rows: Optional[List[dict]] = rows
        self._zone_blob: Optional[bytes] = zone_blob
        self._expected_zones = expected_zones
        self._address_map = address_map
        self._source = source
        self._items: Optional[List[object]] = None

    def order_keys(self) -> List[Tuple[int, int]]:
        """Per-row ``(true_ts, vp_id)`` without materializing objects."""
        if self._items is not None:
            return [(o.true_ts, o.vp_id) for o in self._items]
        keys = []
        for row in self._rows:
            fields = row["row"] if row.get("kind") == "record" else row
            keys.append((int(fields["true_ts"]), int(fields["vp_id"])))
        return keys

    def _materialize(self) -> List[object]:
        if self._items is None:
            zones: List[object] = (
                pickle.loads(self._zone_blob) if self._zone_blob else []
            )
            if len(zones) != self._expected_zones:
                raise DatasetError(
                    f"shard spill at {self._source} promises "
                    f"{self._expected_zones} zones; the pack holds {len(zones)}"
                )
            items: List[object] = []
            for row in self._rows:
                if row.get("kind") == "record":
                    record = row_to_record(row["row"], self._address_map)
                    if row.get("zone") is not None:
                        from dataclasses import replace

                        record = replace(record, zone=zones[int(row["zone"])])
                    items.append(record)
                else:
                    items.append(
                        TransferObservation(
                            vp_id=int(row["vp_id"]),
                            true_ts=int(row["true_ts"]),
                            observed_ts=int(row["observed_ts"]),
                            address=self._address_map[row["address"]],
                            serial=int(row["serial"]),
                            zone=zones[int(row["zone"])],
                            fault=str(row["fault"]),
                            fault_detail=str(row["fault_detail"]),
                        )
                    )
            self._items = items
            self._rows = self._zone_blob = None
        return self._items

    def __len__(self) -> int:
        if self._items is not None:
            return len(self._items)
        return len(self._rows)

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self):
        return iter(self._materialize())


def write_shard_spill(
    directory: Union[str, Path], collector: CampaignCollector
) -> Path:
    """Spill one shard collector's contents to *directory*.

    Row tables go down as standard binary tables, aggregates as the
    collector's :meth:`~repro.vantage.collector.CampaignCollector.state_dict`,
    transfers as metadata rows referencing a deduplicated zone pack.
    The collector itself is untouched (the streaming path drains it
    afterwards; the batch path discards it with the worker process).
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)

    tables = {
        "probes": write_binary_table(
            root, "probes", BINARY_TABLES["probes"], collector.probe_columns()
        ),
        "traceroutes": write_binary_table(
            root,
            "traceroutes",
            BINARY_TABLES["traceroutes"],
            collector.traceroute_columns(),
        ),
    }

    zones: List[object] = []
    zone_index: Dict[int, int] = {}

    def zone_ref(zone) -> int:
        key = id(zone)
        if key not in zone_index:
            zone_index[key] = len(zones)
            zones.append(zone)
        return zone_index[key]

    with open(root / "transfers.jsonl", "w") as handle:
        for obs in collector.transfers:
            if isinstance(obs, TransferRecord):
                row = {
                    "kind": "record",
                    "zone": None if obs.zone is None else zone_ref(obs.zone),
                    "row": record_to_row(obs),
                }
            else:
                row = {
                    "kind": "obs",
                    "vp_id": obs.vp_id,
                    "true_ts": obs.true_ts,
                    "observed_ts": obs.observed_ts,
                    "address": obs.address.address,
                    "serial": obs.serial,
                    "fault": obs.fault,
                    "fault_detail": obs.fault_detail,
                    "zone": zone_ref(obs.zone),
                }
            handle.write(json.dumps(row) + "\n")

    if zones:
        with open(root / "zones.pkl", "wb") as handle:
            pickle.dump(zones, handle, protocol=pickle.HIGHEST_PROTOCOL)

    meta = {
        "spill_version": SPILL_VERSION,
        "schema_version": SCHEMA_VERSION,
        "state": collector.state_dict(),
        "summary": collector.summary(),
        "tables": tables,
        "transfers": {"rows": len(collector.transfers), "zones": len(zones)},
    }
    (root / SPILL_NAME).write_text(json.dumps(meta))
    return root


def read_shard_spill(directory: Union[str, Path]) -> CampaignCollector:
    """Reload a shard spill as a merge-ready collector, zero-copy.

    Aggregate state restores through the checkpoint codec; row tables
    come back as read-only ``np.memmap`` views adopted via
    :meth:`~repro.vantage.collector.CampaignCollector.attach_rows`;
    transfer observations rehydrate with their real zone objects from
    the pack.  The result merges byte-identically to the in-process
    shard collector it was spilled from.
    """
    root = Path(directory)
    meta_path = root / SPILL_NAME
    if not meta_path.exists():
        raise DatasetError(f"no shard spill at {root} (missing {SPILL_NAME})")
    try:
        meta = json.loads(meta_path.read_text())
    except json.JSONDecodeError as exc:
        raise DatasetError(f"corrupt spill manifest at {meta_path}: {exc}") from exc
    if meta.get("spill_version") != SPILL_VERSION:
        raise DatasetError(
            f"shard spill at {root} has version {meta.get('spill_version')!r}; "
            f"this reader supports version {SPILL_VERSION}"
        )
    if meta.get("schema_version") != SCHEMA_VERSION:
        raise DatasetError(
            f"shard spill at {root} carries dataset schema version "
            f"{meta.get('schema_version')!r}; this reader supports "
            f"version {SCHEMA_VERSION}"
        )

    collector = CampaignCollector()
    collector.restore_state_dict(meta["state"])

    probes = read_binary_table(root, BINARY_TABLES["probes"], meta["tables"]["probes"])
    traceroutes = read_binary_table(
        root, BINARY_TABLES["traceroutes"], meta["tables"]["traceroutes"]
    )

    # Transfer metadata parses eagerly (cheap, and the zone-pack bytes
    # are pulled into memory so the spill directory can be deleted);
    # object rehydration — the zone unpickle — waits for first access.
    zones_path = root / "zones.pkl"
    zone_blob = zones_path.read_bytes() if zones_path.exists() else b""
    rows = [
        json.loads(line)
        for line in (root / "transfers.jsonl").read_text().splitlines()
        if line.strip()
    ]
    if len(rows) != int(meta["transfers"]["rows"]):
        raise DatasetError(
            f"shard spill at {root} promises {meta['transfers']['rows']} "
            f"transfer rows; found {len(rows)}"
        )
    if not zone_blob and int(meta["transfers"]["zones"]):
        raise DatasetError(
            f"shard spill at {root} promises {meta['transfers']['zones']} "
            f"zones; the pack holds 0"
        )
    address_map = {sa.address: sa for sa in collector.addresses}
    transfers: Union[List[object], SpillTransfers] = (
        SpillTransfers(
            rows, zone_blob, int(meta["transfers"]["zones"]), address_map, root
        )
        if rows
        else []
    )

    collector.attach_rows(
        {name: probes.column(name) for name in probes.schema.column_names()},
        {
            name: traceroutes.column(name)
            for name in traceroutes.schema.column_names()
        },
        transfers,
    )
    return collector


def spill_nbytes(directory: Union[str, Path]) -> int:
    """Total on-disk size of one spill (the new handoff volume)."""
    return sum(
        p.stat().st_size for p in Path(directory).rglob("*") if p.is_file()
    )
