"""Columnar recombination primitives shared by shard merge and chunk stitch.

Two layers recombine row tables that were produced piecewise:

* :meth:`repro.vantage.collector.CampaignCollector.merge` concatenates
  per-shard probe/traceroute columns and reorders them into the serial
  campaign-scan order, and
* :meth:`repro.data.chunks.CheckpointReader.dataset` stitches sealed
  chunk tables (already in scan order) back into one table.

Both are the same array-level operation — column-wise concatenation of
parts, optionally followed by a stable ``(ts, vp)`` sort — so both build
on these helpers instead of carrying private copies.  Keeping the
primitive in one place is what makes "sharded merge output ==
concatenated chunk output == serial table" an invariant of one function
rather than a coincidence of three.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


def remap_lookup(mapping: Mapping[int, int], size: Optional[int] = None) -> np.ndarray:
    """Dense old-index -> new-index lookup table for interner remapping.

    ``lookup[old]`` yields the merged interner's index for a shard-local
    code; fancy-indexing a whole column through it remaps the column in
    one vectorised gather.
    """
    if size is None:
        size = max(mapping, default=-1) + 1
    lookup = np.zeros(max(size, 1), dtype=np.int64)
    for old, new in mapping.items():
        lookup[old] = new
    return lookup


def stitch_columns(
    names: Sequence[str],
    parts: Sequence[Mapping[str, np.ndarray]],
    *,
    empty_dtypes: Optional[Mapping[str, np.dtype]] = None,
) -> Dict[str, np.ndarray]:
    """Column-wise concatenation of row-table *parts*, in part order.

    Each part maps column name -> array; all parts must carry every
    column in *names*.  With no parts at all the result is empty columns
    (dtyped via *empty_dtypes* when given, else numpy's default).
    """
    out: Dict[str, np.ndarray] = {}
    for name in names:
        blocks: List[np.ndarray] = [np.asarray(part[name]) for part in parts]
        if blocks:
            out[name] = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        else:
            dtype = empty_dtypes.get(name) if empty_dtypes is not None else None
            out[name] = np.empty(0, dtype=dtype)
    return out


def scan_order(columns: Mapping[str, np.ndarray]) -> np.ndarray:
    """Serial campaign-scan order of concatenated shard rows.

    The campaign scans rounds outer, VPs inner; a (ts, vp) pair belongs
    to exactly one shard and rows within a shard are already in scan
    order, so a stable lexicographic sort on (ts, vp) *is* the k-way
    merge back into the serial row order.
    """
    return np.lexsort((columns["vp"], columns["ts"]))


def merge_shard_columns(
    names: Sequence[str],
    parts: Sequence[Mapping[str, np.ndarray]],
    *,
    empty_dtypes: Optional[Mapping[str, np.dtype]] = None,
) -> Dict[str, np.ndarray]:
    """Concatenate per-shard column dicts and restore serial scan order.

    *parts* carry already-remapped (globally-valid) interner codes; this
    is pure array recombination — no record objects, no per-row python.
    """
    stitched = stitch_columns(names, parts, empty_dtypes=empty_dtypes)
    if not len(stitched["ts"]):
        return stitched
    order = scan_order(stitched)
    return {name: stitched[name][order] for name in names}
