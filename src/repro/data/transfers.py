"""Full-fidelity transfer records.

The collector stores each recorded AXFR as a
:class:`~repro.vantage.collector.TransferObservation` carrying the whole
:class:`~repro.zone.zone.Zone` object — fine in-process, but zone
objects do not belong in an exported dataset.  What the §7 audit
actually consumes per observation is *time-free*: the zone's content
fingerprint, its content-level validation errors, and the RRSIG validity
envelope; only the comparison of the envelope against the observation
timestamp happens at audit time.  :class:`TransferRecord` captures
exactly that, so the Table 2 audit reproduces its findings bit-for-bit
from a reloaded dataset without any zone content — closing the
"metadata only" export gap.

Sealing runs the cryptography through the process-wide
:class:`~repro.dnssec.digestcache.ZoneValidationCache`, so a campaign
whose transfers were already audited seals its dataset for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dns.name import ROOT_NAME
from repro.dnssec.digestcache import (
    ZoneValidationCache,
    shared_cache,
    zone_fingerprint,
)
from repro.dnssec.validate import ValidationError
from repro.rss.operators import ServiceAddress
from repro.util.timeutil import Timestamp


@dataclass(frozen=True)
class TransferRecord:
    """One recorded AXFR with its validation verdict baked in.

    ``zone`` is kept for records sealed from a live collector (it powers
    the Figure 10 bitflip diff) and is ``None`` after a reload — every
    other field round-trips through the dataset directory unchanged.
    """

    vp_id: int
    true_ts: Timestamp
    observed_ts: Timestamp  # VP clock view (skew applies here)
    address: ServiceAddress
    serial: int
    fault: str  # "", "bitflip", "stale"
    fault_detail: str
    #: Hex content fingerprint of the transferred zone copy.
    fingerprint: str
    #: Time-independent validation errors of the zone content.
    content_errors: Tuple[ValidationError, ...]
    #: (max inception, min expiration) over the zone's RRSIGs; (0, 0)
    #: when unsigned.
    rrsig_envelope: Tuple[int, int]
    #: The verdict: no errors when validated at ``observed_ts``.
    valid: bool
    zone: Optional[object] = None

    def errors_at(self, now: Timestamp) -> List[ValidationError]:
        """The validation errors of this copy at time *now* — identical
        to validating the original zone content at *now*."""
        errors = list(self.content_errors)
        max_inception, min_expiration = self.rrsig_envelope
        if now < max_inception:
            errors.append(ValidationError.SIG_NOT_INCEPTED)
        elif now > min_expiration:
            errors.append(ValidationError.SIG_EXPIRED)
        return errors


def content_verdict(
    zone, cache: Optional[ZoneValidationCache] = None
) -> Tuple[str, Tuple[ValidationError, ...], Tuple[int, int]]:
    """(fingerprint hex, content errors, RRSIG envelope) of a zone copy.

    Content errors are evaluated at the envelope midpoint, where no
    temporal error can fire on a consistently signed zone — the same
    convention the Table 2 audit uses.
    """
    cache = cache if cache is not None else shared_cache()
    analysis = cache.analyse_zone(zone, ROOT_NAME)
    envelope = analysis.rrsig_envelope
    midpoint = (envelope[0] + envelope[1]) // 2  # (0, 0) when unsigned
    report = analysis.report_at(midpoint, check_zonemd=True)
    errors = tuple(issue.error for issue in report.issues)
    return zone_fingerprint(zone).hex(), errors, envelope


def seal_observation(
    obs, cache: Optional[ZoneValidationCache] = None
) -> TransferRecord:
    """Turn one live :class:`TransferObservation` into a record."""
    fingerprint, errors, envelope = content_verdict(obs.zone, cache)
    record = TransferRecord(
        vp_id=obs.vp_id,
        true_ts=obs.true_ts,
        observed_ts=obs.observed_ts,
        address=obs.address,
        serial=obs.serial,
        fault=obs.fault,
        fault_detail=obs.fault_detail,
        fingerprint=fingerprint,
        content_errors=errors,
        rrsig_envelope=envelope,
        valid=not _errors_with_envelope(errors, envelope, obs.observed_ts),
        zone=obs.zone,
    )
    return record


def seal_transfers(
    observations: Sequence, cache: Optional[ZoneValidationCache] = None
) -> List[TransferRecord]:
    """Seal a collector's transfer observations, in order.

    Observations that are already :class:`TransferRecord` instances pass
    through unchanged, so sealing is idempotent.
    """
    cache = cache if cache is not None else shared_cache()
    out: List[TransferRecord] = []
    for obs in observations:
        if isinstance(obs, TransferRecord):
            out.append(obs)
        else:
            out.append(seal_observation(obs, cache))
    return out


def _errors_with_envelope(
    errors: Tuple[ValidationError, ...], envelope: Tuple[int, int], now: Timestamp
) -> List[ValidationError]:
    out = list(errors)
    if now < envelope[0]:
        out.append(ValidationError.SIG_NOT_INCEPTED)
    elif now > envelope[1]:
        out.append(ValidationError.SIG_EXPIRED)
    return out


# -- JSON codec ----------------------------------------------------------------------


def record_to_row(record: TransferRecord) -> Dict[str, object]:
    """The JSONL row of one record (zone content is never exported)."""
    return {
        "vp_id": record.vp_id,
        "true_ts": record.true_ts,
        "observed_ts": record.observed_ts,
        "address": record.address.address,
        "serial": record.serial,
        "fault": record.fault,
        "fault_detail": record.fault_detail,
        "fingerprint": record.fingerprint,
        "content_errors": [error.name for error in record.content_errors],
        "rrsig_envelope": list(record.rrsig_envelope),
        "valid": record.valid,
    }


def row_to_record(
    row: Dict[str, object], addresses: Dict[str, ServiceAddress]
) -> TransferRecord:
    """Rebuild a record from its JSONL row."""
    try:
        address = addresses[row["address"]]
        return TransferRecord(
            vp_id=int(row["vp_id"]),
            true_ts=int(row["true_ts"]),
            observed_ts=int(row["observed_ts"]),
            address=address,
            serial=int(row["serial"]),
            fault=str(row["fault"]),
            fault_detail=str(row["fault_detail"]),
            fingerprint=str(row["fingerprint"]),
            content_errors=tuple(
                ValidationError[name] for name in row["content_errors"]
            ),
            rrsig_envelope=(
                int(row["rrsig_envelope"][0]),
                int(row["rrsig_envelope"][1]),
            ),
            valid=bool(row["valid"]),
        )
    except (KeyError, IndexError, TypeError) as exc:
        from repro.data.schema import DatasetError

        raise DatasetError(f"malformed transfer row: {row!r}") from exc
