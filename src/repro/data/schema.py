"""Table schemas and errors of the on-disk dataset format.

A dataset is a directory of raw little-endian column files plus one JSON
manifest (see :mod:`repro.data.io`).  Every binary table is declared
here as a :class:`TableSchema`: named, dtyped columns, with columns that
hold interned string indices pointing at the interner table that decodes
them.  The schemas are the contract between writer and reader — the
manifest records them per file, and the reader cross-checks what it
finds on disk against these declarations before memory-mapping anything.

Versioning policy (see DESIGN.md §9): ``SCHEMA_VERSION`` increments on
any incompatible layout change (column added/removed/re-dtyped, manifest
key renamed).  Readers refuse other versions with
:class:`DatasetVersionError` rather than guessing — datasets are cheap
to regenerate from a seed, silent misreads are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

#: Version of the on-disk layout; bump on every incompatible change.
#: v3 added the optional passive-capture tables (passive_flows /
#: passive_clients) and the manifest's "passive" entry.
SCHEMA_VERSION = 3


class DatasetError(RuntimeError):
    """A dataset is missing, malformed, or lacks a requested table."""


class DatasetVersionError(DatasetError):
    """The on-disk schema version does not match this reader."""


class CheckpointError(DatasetError):
    """A streaming checkpoint is missing, corrupt, or inconsistent.

    Raised by :mod:`repro.data.chunks` for doctored or truncated
    ``CHECKPOINT.json`` files, chunk directories that the checkpoint
    promises but that are missing or damaged, and resume attempts whose
    configuration does not match the checkpointed study."""


@dataclass(frozen=True)
class ColumnSpec:
    """One named, dtyped column of a binary table.

    ``dtype`` is the *analysis-facing* dtype (exactly what
    ``CampaignCollector.probe_columns()`` hands the analyses); on disk
    the same dtype is forced little-endian.  ``interner`` names the
    string table that decodes this column's integer codes, if any.
    """

    name: str
    dtype: str  # numpy dtype string, e.g. "int32", "float32", "bool"
    interner: Optional[str] = None

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    @property
    def disk_dtype(self) -> np.dtype:
        """The explicit little-endian dtype used in column files."""
        return self.np_dtype.newbyteorder("<")


@dataclass(frozen=True)
class TableSchema:
    """A named binary table: ordered columns plus interner declarations."""

    name: str
    columns: Tuple[ColumnSpec, ...]

    def column_names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.columns)

    def column(self, name: str) -> ColumnSpec:
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise DatasetError(
            f"table {self.name!r} has no column {name!r}; "
            f"columns: {', '.join(self.column_names())}"
        )

    def interners(self) -> Tuple[str, ...]:
        """The interner tables this table's columns reference."""
        out = []
        for spec in self.columns:
            if spec.interner and spec.interner not in out:
                out.append(spec.interner)
        return tuple(out)


#: The sampled probe table (Figures 5/6/14/15, §6 paths, RSSAC metrics).
PROBES = TableSchema(
    "probes",
    (
        ColumnSpec("vp", "int32"),
        ColumnSpec("ts", "int64"),
        ColumnSpec("addr", "int16"),
        ColumnSpec("site", "int32", interner="sites"),
        ColumnSpec("rtt", "float32"),
        ColumnSpec("direct_km", "float32"),
        ColumnSpec("closest_km", "float32"),
        ColumnSpec("peer", "bool"),
        ColumnSpec("transit", "int32"),
    ),
)

#: The sampled traceroute table (§5 co-location; hop -1 = no reply).
TRACEROUTES = TableSchema(
    "traceroutes",
    (
        ColumnSpec("vp", "int32"),
        ColumnSpec("ts", "int64"),
        ColumnSpec("addr", "int16"),
        ColumnSpec("hop", "int32", interner="hops"),
    ),
)

#: Per-(VP, address) catchment stability counters (Figure 3).
STABILITY = TableSchema(
    "stability",
    (
        ColumnSpec("vp", "int32"),
        ColumnSpec("addr", "int16"),
        ColumnSpec("changes", "int32"),
        ColumnSpec("rounds", "int32"),
    ),
)

#: Per-(capture, bucket, address) sampled passive flow totals and
#: distinct-client counts (Figures 7/9/12/13).  ``capture`` indexes the
#: "captures" interner ("isp", "ixp-eu", "ixp-na"); ``addr`` indexes the
#: manifest's service-address list, like the probe table's.
PASSIVE_FLOWS = TableSchema(
    "passive_flows",
    (
        ColumnSpec("capture", "int16", interner="captures"),
        ColumnSpec("bucket", "int64"),
        ColumnSpec("addr", "int16"),
        ColumnSpec("flows", "float64"),
        ColumnSpec("clients", "int32"),
    ),
)

#: Per-(capture, address, client prefix) flow totals and active-bucket
#: counts — the Figure 8 input.  Prefixes are anonymised client networks
#: interned in the manifest's "prefixes" table.
PASSIVE_CLIENTS = TableSchema(
    "passive_clients",
    (
        ColumnSpec("capture", "int16", interner="captures"),
        ColumnSpec("addr", "int16"),
        ColumnSpec("prefix", "int32", interner="prefixes"),
        ColumnSpec("flows", "float64"),
        ColumnSpec("days", "int32"),
    ),
)

#: Every binary table of the format, by name.  The identity and transfer
#: tables are ragged (per-letter identity counts, variable-length error
#: lists) and are stored as JSON sidecars instead; they still appear as
#: logical tables on :class:`repro.data.dataset.Dataset`.
BINARY_TABLES: Dict[str, TableSchema] = {
    schema.name: schema for schema in (PROBES, TRACEROUTES, STABILITY)
}

#: The optional passive-capture tables (present when the dataset was
#: saved with passive captures; see the manifest's "passive" entry).
PASSIVE_TABLES: Dict[str, TableSchema] = {
    schema.name: schema for schema in (PASSIVE_FLOWS, PASSIVE_CLIENTS)
}

#: Logical table names a full dataset provides (``Dataset.require_tables``).
ALL_TABLES: Tuple[str, ...] = (
    "probes",
    "traceroutes",
    "stability",
    "identities",
    "transfers",
)
