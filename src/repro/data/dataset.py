"""The typed dataset facade.

A :class:`Dataset` is the durable form of one campaign's measurement
output: the probe / traceroute / stability tables as numpy columns, the
interner string tables that decode them, the identity counts, and the
full-fidelity transfer records — behind one typed surface that every
analysis consumes.  It is deliberately read-side compatible with
:class:`~repro.vantage.collector.CampaignCollector` (``addresses``,
``addr_index``, ``probe_columns()``, ``traceroute_columns()``,
``change_counts()``, ``identities``, ``summary()``), which is what lets
the analyses run unchanged against a live campaign or a directory
reloaded years later.

Datasets come from two places:

* :meth:`Dataset.from_collector` seals a finished collector's columnar
  buffers into tables (zero-copy — the arrays are shared, not copied),
* :class:`repro.data.io.DatasetReader` reloads a directory written by
  :class:`~repro.data.io.DatasetWriter`, memory-mapping every column.

The manifest's study fingerprint (the full
:class:`~repro.core.config.StudyConfig`) makes a saved dataset
self-describing: :meth:`study_inputs` re-derives the seed-deterministic
VP ring and site catalog — the two non-table inputs some analyses take —
without touching the world-building or campaign stages.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.schema import (
    BINARY_TABLES,
    SCHEMA_VERSION,
    DatasetError,
    TableSchema,
)
from repro.data.transfers import TransferRecord, seal_transfers
from repro.rss.operators import ServiceAddress


class Table:
    """One sealed binary table: schema plus equal-length numpy columns."""

    def __init__(self, schema: TableSchema, columns: Dict[str, np.ndarray]) -> None:
        if set(columns) != set(schema.column_names()):
            raise DatasetError(
                f"table {schema.name!r} column mismatch: got {sorted(columns)}, "
                f"want {sorted(schema.column_names())}"
            )
        lengths = {len(array) for array in columns.values()}
        if len(lengths) > 1:
            raise DatasetError(
                f"table {schema.name!r} has ragged columns: lengths {sorted(lengths)}"
            )
        self.schema = schema
        self._columns = dict(columns)
        self._rows = lengths.pop() if lengths else 0

    def __len__(self) -> int:
        return self._rows

    def column(self, name: str) -> np.ndarray:
        self.schema.column(name)  # raises DatasetError on unknown names
        return self._columns[name]

    def columns(self) -> Dict[str, np.ndarray]:
        """All columns by name (shared arrays; do not mutate)."""
        return dict(self._columns)


class Dataset:
    """One campaign's measurement data behind a typed facade."""

    def __init__(
        self,
        *,
        addresses: Sequence[ServiceAddress],
        sites: Sequence[str],
        hops: Sequence[str],
        identities: Dict[str, Dict[str, int]],
        tables: Dict[str, Table],
        transfers: Optional[Sequence] = None,
        summary: Optional[Dict[str, int]] = None,
        meta: Optional[Dict[str, Any]] = None,
        version: int = SCHEMA_VERSION,
    ) -> None:
        self.version = version
        self.addresses: List[ServiceAddress] = list(addresses)
        self.addr_index: Dict[str, int] = {
            sa.address: i for i, sa in enumerate(self.addresses)
        }
        self.sites: List[str] = list(sites)
        self.hops: List[str] = list(hops)
        self.identities: Dict[str, Dict[str, int]] = identities
        self.meta: Dict[str, Any] = dict(meta or {})
        self._tables = dict(tables)
        #: Raw transfer source: live observations (sealed lazily) or
        #: already-sealed records from a reload.
        self._transfer_source = list(transfers) if transfers is not None else None
        self._transfers: Optional[List[TransferRecord]] = None
        self._summary = dict(summary or {})
        self._change_counts: Optional[Dict[Tuple[int, int], Tuple[int, int]]] = None
        self._study_inputs: Optional[Dict[str, Any]] = None
        self._passive: Optional[Any] = None

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_collector(cls, collector, config: Optional[Any] = None) -> "Dataset":
        """Seal a finished collector into a dataset.

        The probe/traceroute columns are shared with the collector's
        sealed buffers (no copy); transfer observations keep their zone
        references and are turned into full-fidelity
        :class:`~repro.data.transfers.TransferRecord` objects on first
        access (the crypto is shared with the audit's validation cache,
        so nothing is ever validated twice).  *config* — when given, the
        :class:`~repro.core.config.StudyConfig` — becomes the manifest's
        study fingerprint.
        """
        if hasattr(collector, "seal"):
            collector.seal()
        stability = collector.change_counts()
        n = len(stability)
        vp = np.empty(n, dtype=np.int32)
        addr = np.empty(n, dtype=np.int16)
        changes = np.empty(n, dtype=np.int32)
        rounds = np.empty(n, dtype=np.int32)
        for i, ((vp_id, addr_idx), (n_changes, n_rounds)) in enumerate(
            stability.items()
        ):
            vp[i] = vp_id
            addr[i] = addr_idx
            changes[i] = n_changes
            rounds[i] = n_rounds

        tables = {
            "probes": Table(BINARY_TABLES["probes"], collector.probe_columns()),
            "traceroutes": Table(
                BINARY_TABLES["traceroutes"], collector.traceroute_columns()
            ),
            "stability": Table(
                BINARY_TABLES["stability"],
                {"vp": vp, "addr": addr, "changes": changes, "rounds": rounds},
            ),
        }
        meta: Dict[str, Any] = {}
        if config is not None:
            from dataclasses import asdict

            meta["study"] = asdict(config)
        return cls(
            addresses=collector.addresses,
            sites=list(collector.sites.values),
            hops=list(collector.hops.values),
            identities=collector.identities,
            tables=tables,
            transfers=collector.transfers,
            summary=collector.summary(),
            meta=meta,
        )

    # -- table access -----------------------------------------------------------------

    def table_names(self) -> List[str]:
        """Every logical table this dataset provides."""
        names = sorted(self._tables)
        for logical in ("identities", "transfers"):
            if self.has_table(logical):
                names.append(logical)
        return names

    def has_table(self, name: str) -> bool:
        if name == "identities":
            return self.identities is not None
        if name == "transfers":
            return self._transfer_source is not None
        return name in self._tables

    def table(self, name: str) -> Table:
        """One binary table, or a :class:`DatasetError` naming what exists."""
        try:
            return self._tables[name]
        except KeyError:
            raise DatasetError(
                f"dataset has no table {name!r}; available: "
                f"{', '.join(self.table_names())}"
            ) from None

    def require_tables(self, names: Iterable[str], consumer: str = "analysis") -> None:
        """Explicitly check table availability for *consumer*."""
        missing = [name for name in names if not self.has_table(name)]
        if missing:
            raise DatasetError(
                f"{consumer} needs table(s) {', '.join(missing)} which this "
                f"dataset does not provide; available: "
                f"{', '.join(self.table_names())}"
            )

    # -- collector-compatible read surface ---------------------------------------------

    def probe_columns(self) -> Dict[str, np.ndarray]:
        """The sampled probe table as numpy columns."""
        return self.table("probes").columns()

    def traceroute_columns(self) -> Dict[str, np.ndarray]:
        """The sampled traceroute table as numpy columns."""
        return self.table("traceroutes").columns()

    def change_counts(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """(vp_id, addr_idx) -> (changes, rounds observed)."""
        if self._change_counts is None:
            table = self.table("stability")
            vp = table.column("vp")
            addr = table.column("addr")
            changes = table.column("changes")
            rounds = table.column("rounds")
            self._change_counts = {
                (int(vp[i]), int(addr[i])): (int(changes[i]), int(rounds[i]))
                for i in range(len(table))
            }
        return dict(self._change_counts)

    @property
    def transfers(self) -> List[TransferRecord]:
        """Full-fidelity transfer records (sealed on first access)."""
        if self._transfers is None:
            if self._transfer_source is None:
                raise DatasetError(
                    "dataset has no transfer table; available: "
                    f"{', '.join(self.table_names())}"
                )
            self._transfers = seal_transfers(self._transfer_source)
        return self._transfers

    def summary(self) -> Dict[str, int]:
        """Dataset-size fingerprint (the paper's §4.1 counts analogue)."""
        return dict(self._summary)

    # -- passive captures --------------------------------------------------------------

    @property
    def passive(self):
        """The attached :class:`~repro.data.passive.PassiveStore`, or
        ``None`` when this dataset carries no passive captures."""
        return self._passive

    def attach_passive(self, store) -> None:
        """Attach the passive-capture store this dataset travels with."""
        self._passive = store

    # -- study-derived inputs ----------------------------------------------------------

    @property
    def study(self) -> Optional[Dict[str, Any]]:
        """The recorded study fingerprint (config dict), if any."""
        return self.meta.get("study")

    def study_config(self):
        """The :class:`~repro.core.config.StudyConfig` this dataset was
        collected under, rebuilt from the manifest fingerprint.

        Strict: a manifest written by a different config schema raises
        a :class:`DatasetError` instead of silently dropping knobs.
        """
        from repro.core.config import StudyConfig

        study = self.study
        if study is None:
            raise DatasetError(
                "dataset carries no study fingerprint; it was sealed without "
                "a config, so seed-derived inputs (vps, catalog) cannot be "
                "reconstructed — pass them explicitly"
            )
        try:
            return StudyConfig.from_dict(study)
        except (TypeError, ValueError) as exc:
            raise DatasetError(
                f"dataset's study fingerprint does not reload under this "
                f"config schema: {exc}"
            ) from None

    def study_inputs(self) -> Dict[str, Any]:
        """The seed-deterministic non-table analysis inputs.

        Rebuilds the VP ring and the site catalog from the recorded
        study config — pure functions of the seed, so the result is
        exactly what the original run used.  No world-building or
        campaign stage runs (no fabric, zones, deployments, probing).
        """
        if self._study_inputs is None:
            from repro.rss.sites import build_site_catalog
            from repro.util.rng import RngFactory
            from repro.vantage.ring import build_ring

            config = self.study_config()
            self._study_inputs = {
                "config": config,
                "vps": build_ring(RngFactory(config.seed), config.ring_config),
                "catalog": build_site_catalog(
                    RngFactory(config.seed), config.world_spec().site_plan()
                ),
            }
        return dict(self._study_inputs)
