"""Typed, versioned, mmap-backed campaign datasets.

The measurement/analysis split of the paper (collect once, analyse many
times) realised for simulated campaigns: a campaign seals into a
:class:`Dataset`, persists as a directory of raw little-endian column
files plus a JSON manifest, and reloads zero-copy via ``np.memmap`` with
full transfer fidelity — every registered analysis runs against a
reloaded dataset exactly as it would against the live collector.
"""

from repro.data.chunks import (
    CHECKPOINT_NAME,
    CHECKPOINT_VERSION,
    CheckpointReader,
    ChunkData,
    ChunkedDatasetWriter,
)
from repro.data.dataset import Dataset, Table
from repro.data.io import (
    DatasetReader,
    DatasetWriter,
    load_dataset,
    save_dataset,
)
from repro.data.columnar import (
    merge_shard_columns,
    remap_lookup,
    scan_order,
    stitch_columns,
)
from repro.data.passive import PassiveStore
from repro.data.spill import (
    SPILL_VERSION,
    read_shard_spill,
    spill_nbytes,
    write_shard_spill,
)
from repro.data.schema import (
    ALL_TABLES,
    BINARY_TABLES,
    PASSIVE_TABLES,
    SCHEMA_VERSION,
    CheckpointError,
    ColumnSpec,
    DatasetError,
    DatasetVersionError,
    TableSchema,
)
from repro.data.transfers import TransferRecord, seal_transfers
from repro.data.watch import (
    DatasetWatcher,
    ServedState,
    probe_state,
    study_fingerprint,
)

__all__ = [
    "ALL_TABLES",
    "BINARY_TABLES",
    "CHECKPOINT_NAME",
    "CHECKPOINT_VERSION",
    "PASSIVE_TABLES",
    "PassiveStore",
    "SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointReader",
    "ChunkData",
    "ChunkedDatasetWriter",
    "ColumnSpec",
    "Dataset",
    "DatasetError",
    "DatasetReader",
    "DatasetVersionError",
    "DatasetWatcher",
    "DatasetWriter",
    "SPILL_VERSION",
    "ServedState",
    "Table",
    "TableSchema",
    "TransferRecord",
    "load_dataset",
    "merge_shard_columns",
    "probe_state",
    "read_shard_spill",
    "remap_lookup",
    "save_dataset",
    "scan_order",
    "seal_transfers",
    "spill_nbytes",
    "stitch_columns",
    "study_fingerprint",
    "write_shard_spill",
]
