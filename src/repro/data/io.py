"""Dataset persistence: directory writer and mmap-backed reader.

On-disk layout (DESIGN.md §9)::

    <dir>/
      MANIFEST.json            # schema version, study fingerprint, row
                               # counts, column specs, interner tables
      tables/<table>/<col>.bin # raw little-endian column data, one file
                               # per column, no header or padding
      identities.json          # letter -> identity -> count (ragged)
      transfers.jsonl          # one sealed TransferRecord per line

The column files are plain ``array.tofile`` dumps of the schema dtype
forced little-endian, which is what makes the reload zero-copy: the
reader memory-maps each file and hands the analyses the same
dtypes a live collector would.  Nothing is decompressed, parsed, or
copied until an analysis actually touches a page.

The manifest is the format's contract.  ``schema_version`` gates the
reader (:class:`~repro.data.schema.DatasetVersionError` on mismatch),
the per-column specs are cross-checked against the compiled-in schemas,
and the study fingerprint lets :meth:`Dataset.study_inputs` re-derive
seed-deterministic inputs without re-simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.data.dataset import Dataset, Table
from repro.data.schema import (
    BINARY_TABLES,
    SCHEMA_VERSION,
    DatasetError,
    DatasetVersionError,
    TableSchema,
)
from repro.data.transfers import record_to_row, row_to_record
from repro.rss.operators import all_service_addresses

MANIFEST_NAME = "MANIFEST.json"


def write_binary_table(
    root: Path, name: str, schema: TableSchema, columns: Dict[str, np.ndarray]
) -> dict:
    """Write one binary table under *root*; returns its manifest entry.

    Shared by the batch :class:`DatasetWriter` and the streaming chunk
    writer (:mod:`repro.data.chunks`) so both produce byte-identical
    column files and manifest entries for the same data.
    """
    table_dir = root / "tables" / name
    table_dir.mkdir(parents=True, exist_ok=True)
    entry_columns = []
    rows = None
    for spec in schema.columns:
        relpath = f"tables/{name}/{spec.name}.bin"
        array = np.ascontiguousarray(columns[spec.name], dtype=spec.disk_dtype)
        if rows is None:
            rows = len(array)
        array.tofile(root / relpath)
        entry_columns.append(
            {
                "name": spec.name,
                "dtype": spec.dtype,
                "interner": spec.interner,
                "file": relpath,
            }
        )
    return {"rows": rows or 0, "columns": entry_columns}


def read_binary_table(
    root: Union[str, Path], schema: TableSchema, entry: dict
) -> Table:
    """Memory-map one binary table written by :func:`write_binary_table`.

    *entry* is the manifest entry the writer returned (row count plus
    per-column file paths); columns come back as read-only ``np.memmap``
    views in the schema's disk dtypes — the zero-copy reload primitive
    shared by full datasets, streaming chunks and shard spills.
    """
    return DatasetReader(root)._read_table(schema, entry)


def table_manifest_entry(schema: TableSchema, rows: int) -> dict:
    """The manifest entry :func:`write_binary_table` produces, without
    writing anything (for writers that append column files directly)."""
    return {
        "rows": rows,
        "columns": [
            {
                "name": spec.name,
                "dtype": spec.dtype,
                "interner": spec.interner,
                "file": f"tables/{schema.name}/{spec.name}.bin",
            }
            for spec in schema.columns
        ],
    }


def assemble_manifest(
    *,
    study,
    summary: Dict[str, int],
    addresses: List[str],
    sites: List[str],
    hops: List[str],
    tables_manifest: Dict[str, dict],
    passive_entry=None,
    captures: List[str] = (),
    prefixes: List[str] = (),
) -> dict:
    """Build a dataset manifest dict (key order is part of the format —
    the streaming finalizer relies on producing byte-identical JSON)."""
    interners = {"sites": list(sites), "hops": list(hops)}
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "study": study,
        "summary": summary,
        "addresses": addresses,
        "interners": interners,
        "tables": tables_manifest,
        "sidecars": {
            "identities": "identities.json",
            "transfers": "transfers.jsonl",
        },
    }
    if passive_entry is not None:
        manifest["passive"] = passive_entry
        interners["captures"] = list(captures)
        interners["prefixes"] = list(prefixes)
    return manifest


class DatasetWriter:
    """Persists a :class:`Dataset` to a directory."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.path = Path(directory)

    def write(self, dataset: Dataset) -> Path:
        """Write *dataset*; returns the dataset directory path.

        Sealing the transfer table (content fingerprints, validation
        verdicts) happens here if it has not happened yet — the one
        place the export pays for cryptography, shared with any audit
        that already ran via the process-wide digest cache.
        """
        self.path.mkdir(parents=True, exist_ok=True)
        tables_manifest: Dict[str, dict] = {}
        to_write: Dict[str, Table] = {
            name: dataset.table(name) for name in BINARY_TABLES
        }

        passive_entry = None
        captures_interner: List[str] = []
        prefixes_interner: List[str] = []
        if dataset.passive is not None:
            passive_tables, captures_interner, prefixes_interner = (
                dataset.passive.to_tables(dataset.addr_index)
            )
            to_write.update(passive_tables)
            passive_entry = dataset.passive.manifest_entry()

        for name, table in to_write.items():
            tables_manifest[name] = write_binary_table(
                self.path, name, table.schema, table.columns()
            )

        (self.path / "identities.json").write_text(json.dumps(dataset.identities))

        transfers = dataset.transfers if dataset.has_table("transfers") else []
        with open(self.path / "transfers.jsonl", "w") as handle:
            for record in transfers:
                handle.write(json.dumps(record_to_row(record)) + "\n")

        manifest = assemble_manifest(
            study=dataset.study,
            summary=dataset.summary(),
            addresses=[sa.address for sa in dataset.addresses],
            sites=dataset.sites,
            hops=dataset.hops,
            tables_manifest=tables_manifest,
            passive_entry=passive_entry,
            captures=captures_interner,
            prefixes=prefixes_interner,
        )
        (self.path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        return self.path


class DatasetReader:
    """Reloads a dataset directory, memory-mapping every column."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.path = Path(directory)

    def manifest(self) -> dict:
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.exists():
            raise DatasetError(f"no dataset at {self.path} (missing {MANIFEST_NAME})")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise DatasetError(f"corrupt manifest at {manifest_path}: {exc}") from exc
        version = manifest.get("schema_version")
        if version != SCHEMA_VERSION:
            raise DatasetVersionError(
                f"dataset at {self.path} has schema version {version!r}; this "
                f"reader supports version {SCHEMA_VERSION}. Regenerate the "
                f"dataset (rootsim-study --save) or use a matching release."
            )
        return manifest

    def read(self) -> Dataset:
        manifest = self.manifest()

        catalog = {sa.address: sa for sa in all_service_addresses()}
        try:
            addresses = [catalog[a] for a in manifest["addresses"]]
        except KeyError as exc:
            raise DatasetError(f"manifest names unknown service address {exc}") from exc

        tables: Dict[str, Table] = {}
        for name, schema in BINARY_TABLES.items():
            entry = manifest.get("tables", {}).get(name)
            if entry is None:
                raise DatasetError(f"manifest at {self.path} lacks table {name!r}")
            tables[name] = self._read_table(schema, entry)

        passive_store = None
        passive_entry = manifest.get("passive")
        if passive_entry is not None:
            from repro.data.passive import PassiveStore
            from repro.data.schema import PASSIVE_TABLES

            for name, schema in PASSIVE_TABLES.items():
                entry = manifest.get("tables", {}).get(name)
                if entry is None:
                    raise DatasetError(
                        f"manifest at {self.path} declares passive captures "
                        f"but lacks table {name!r}"
                    )
                tables[name] = self._read_table(schema, entry)
            passive_store = PassiveStore.from_tables(
                tables,
                captures=manifest["interners"].get("captures", []),
                prefixes=manifest["interners"].get("prefixes", []),
                addresses=addresses,
                bucket_seconds={
                    capture["name"]: int(capture["bucket_seconds"])
                    for capture in passive_entry.get("captures", [])
                },
            )

        identities = json.loads((self.path / "identities.json").read_text())

        address_map = {sa.address: sa for sa in addresses}
        transfers: List = []
        transfers_file = self.path / manifest.get("sidecars", {}).get(
            "transfers", "transfers.jsonl"
        )
        if transfers_file.exists():
            for line in transfers_file.read_text().splitlines():
                if line.strip():
                    transfers.append(row_to_record(json.loads(line), address_map))

        meta = {}
        if manifest.get("study") is not None:
            meta["study"] = manifest["study"]
        if manifest.get("chunk") is not None:
            # a streaming chunk (repro.data.chunks): its round range rides
            # along so incremental consumers know what delta they hold
            meta["chunk"] = manifest["chunk"]
        dataset = Dataset(
            addresses=addresses,
            sites=list(manifest["interners"]["sites"]),
            hops=list(manifest["interners"]["hops"]),
            identities=identities,
            tables=tables,
            transfers=transfers,
            summary=manifest["summary"],
            meta=meta,
        )
        if passive_store is not None:
            dataset.attach_passive(passive_store)
        return dataset

    def _read_table(self, schema: TableSchema, entry: dict) -> Table:
        rows = int(entry["rows"])
        manifest_cols = {col["name"]: col for col in entry["columns"]}
        columns: Dict[str, np.ndarray] = {}
        for spec in schema.columns:
            col = manifest_cols.get(spec.name)
            if col is None:
                raise DatasetError(
                    f"table {schema.name!r} manifest lacks column {spec.name!r}"
                )
            if col.get("dtype") != spec.dtype:
                raise DatasetError(
                    f"table {schema.name!r} column {spec.name!r} has dtype "
                    f"{col.get('dtype')!r} on disk; schema expects {spec.dtype!r}"
                )
            file_path = self.path / col["file"]
            if not file_path.exists():
                raise DatasetError(f"missing column file {file_path}")
            expected = rows * spec.disk_dtype.itemsize
            actual = file_path.stat().st_size
            if actual != expected:
                raise DatasetError(
                    f"column file {file_path} is {actual} bytes; manifest "
                    f"promises {rows} rows of {spec.dtype} ({expected} bytes)"
                )
            if rows == 0:
                # np.memmap refuses zero-length files; an empty column is
                # equivalent.
                columns[spec.name] = np.empty(0, dtype=spec.disk_dtype)
            else:
                columns[spec.name] = np.memmap(
                    file_path, dtype=spec.disk_dtype, mode="r", shape=(rows,)
                )
        return Table(schema, columns)


def save_dataset(dataset: Dataset, directory: Union[str, Path]) -> Path:
    """Write *dataset* to *directory* (convenience wrapper)."""
    return DatasetWriter(directory).write(dataset)


def load_dataset(directory: Union[str, Path]) -> Dataset:
    """Reload a dataset directory written by :func:`save_dataset`.

    A streaming checkpoint directory (``CHECKPOINT.json`` present, no
    finalized ``MANIFEST.json``) loads as the stitched partial dataset
    of its sealed chunks — mid-campaign results are servable with the
    same call.
    """
    directory = Path(directory)
    if (
        not (directory / MANIFEST_NAME).exists()
        and (directory / "CHECKPOINT.json").exists()
    ):
        from repro.data.chunks import CheckpointReader

        return CheckpointReader(directory).dataset()
    return DatasetReader(directory).read()
