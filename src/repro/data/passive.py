"""Passive-capture persistence: aggregates <-> columnar tables.

A :class:`PassiveStore` holds the named passive aggregates of one
dataset ("isp", "ixp-eu", "ixp-na" — see
:mod:`repro.passive.recipes`), in one of two states:

* **live** — built from :class:`~repro.passive.traces.FlowAggregate`
  objects (at export time, or by ``rootsim-report`` workers), ready to
  flatten into the ``passive_flows`` / ``passive_clients`` tables;
* **reloaded** — backed by the memory-mapped tables of a saved dataset,
  decoding each aggregate lazily on first access, with zero
  re-simulation.

Row order is canonical (captures by name; flow rows by ``(bucket,
addr)``; client rows by ``(addr, prefix)``), so the same aggregates
always serialise to byte-identical column files.  Reloaded aggregates
are *counts-only*: the per-bucket distinct-client sets are not
persisted (only their counts), which every analysis and report consumer
is fine with — the sets exist only inside a live capture.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Table
from repro.data.schema import PASSIVE_TABLES, DatasetError
from repro.passive.traces import FlowAggregate
from repro.rss.operators import ServiceAddress


class PassiveStore:
    """Named passive aggregates of one dataset (live or reloaded)."""

    def __init__(self) -> None:
        self._aggregates: Dict[str, FlowAggregate] = {}
        self._bucket_seconds: Dict[str, int] = {}
        # Reloaded state (None for live stores).
        self._tables: Optional[Dict[str, Table]] = None
        self._captures: List[str] = []
        self._prefixes: List[str] = []
        self._addresses: List[str] = []

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_aggregates(
        cls, aggregates: Dict[str, FlowAggregate]
    ) -> "PassiveStore":
        """A live store over already-built aggregates."""
        store = cls()
        store._aggregates = dict(aggregates)
        store._bucket_seconds = {
            name: aggregate.bucket_seconds
            for name, aggregate in aggregates.items()
        }
        return store

    @classmethod
    def from_tables(
        cls,
        tables: Dict[str, Table],
        captures: Sequence[str],
        prefixes: Sequence[str],
        addresses: Sequence[ServiceAddress],
        bucket_seconds: Dict[str, int],
    ) -> "PassiveStore":
        """A lazy store over a reloaded dataset's passive tables."""
        missing = [name for name in PASSIVE_TABLES if name not in tables]
        if missing:
            raise DatasetError(
                f"passive store needs table(s) {', '.join(missing)}"
            )
        store = cls()
        store._tables = {name: tables[name] for name in PASSIVE_TABLES}
        store._captures = list(captures)
        store._prefixes = list(prefixes)
        store._addresses = [sa.address for sa in addresses]
        store._bucket_seconds = dict(bucket_seconds)
        unknown = [name for name in captures if name not in bucket_seconds]
        if unknown:
            raise DatasetError(
                f"manifest lacks bucket_seconds for capture(s) "
                f"{', '.join(unknown)}"
            )
        return store

    # -- read side ---------------------------------------------------------------

    def names(self) -> List[str]:
        """Every capture name, sorted."""
        if self._tables is not None:
            return sorted(self._captures)
        return sorted(self._aggregates)

    def bucket_seconds(self, name: str) -> int:
        self._check_name(name)
        return self._bucket_seconds[name]

    def aggregate(self, name: str) -> FlowAggregate:
        """The named aggregate (decoded from the tables on first use)."""
        if name not in self._aggregates:
            self._check_name(name)
            self._aggregates[name] = self._decode(name)
        return self._aggregates[name]

    def _check_name(self, name: str) -> None:
        if name not in self._bucket_seconds:
            raise DatasetError(
                f"dataset has no passive capture {name!r}; available: "
                f"{', '.join(self.names())}"
            )

    def _decode(self, name: str) -> FlowAggregate:
        assert self._tables is not None
        capture_idx = self._captures.index(name)

        flows_table = self._tables["passive_flows"]
        rows = flows_table.column("capture") == capture_idx
        buckets = flows_table.column("bucket")[rows]
        addrs = flows_table.column("addr")[rows]
        flow_values = flows_table.column("flows")[rows]
        counts = flows_table.column("clients")[rows]
        flows: Dict[Tuple[int, str], float] = {}
        client_counts: Dict[Tuple[int, str], int] = {}
        for i in range(len(buckets)):
            key = (int(buckets[i]), self._addresses[int(addrs[i])])
            flows[key] = float(flow_values[i])
            client_counts[key] = int(counts[i])

        clients_table = self._tables["passive_clients"]
        rows = clients_table.column("capture") == capture_idx
        addrs = clients_table.column("addr")[rows]
        prefix_ids = clients_table.column("prefix")[rows]
        client_flows = clients_table.column("flows")[rows]
        days = clients_table.column("days")[rows]
        per_client_flows: Dict[Tuple[str, str], float] = {}
        per_client_days: Dict[Tuple[str, str], int] = {}
        for i in range(len(addrs)):
            ckey = (
                self._addresses[int(addrs[i])],
                self._prefixes[int(prefix_ids[i])],
            )
            per_client_flows[ckey] = float(client_flows[i])
            per_client_days[ckey] = int(days[i])

        return FlowAggregate.from_parts(
            self._bucket_seconds[name],
            flows=flows,
            client_counts=client_counts,
            per_client_flows=per_client_flows,
            per_client_days=per_client_days,
        )

    # -- write side --------------------------------------------------------------

    def manifest_entry(self) -> Dict[str, object]:
        """The manifest's "passive" value."""
        return {
            "captures": [
                {"name": name, "bucket_seconds": self._bucket_seconds[name]}
                for name in self.names()
            ]
        }

    def to_tables(
        self, addr_index: Dict[str, int]
    ) -> Tuple[Dict[str, Table], List[str], List[str]]:
        """Flatten every aggregate into the two passive tables.

        Returns ``(tables, captures_interner, prefixes_interner)``; row
        order is canonical so the output is deterministic.
        """
        names = self.names()
        prefix_index: Dict[str, int] = {}

        flow_rows: List[Tuple[int, int, int, float, int]] = []
        client_rows: List[Tuple[int, int, int, float, int]] = []
        for capture_idx, name in enumerate(names):
            aggregate = self.aggregate(name)
            for bucket, address in sorted(
                aggregate.flows, key=lambda key: (key[0], addr_index[key[1]])
            ):
                flow_rows.append(
                    (
                        capture_idx,
                        bucket,
                        addr_index[address],
                        aggregate.flows[(bucket, address)],
                        aggregate.client_count(bucket, address),
                    )
                )
            for address, prefix in sorted(
                aggregate.per_client_flows,
                key=lambda key: (addr_index[key[0]], key[1]),
            ):
                if prefix not in prefix_index:
                    prefix_index[prefix] = len(prefix_index)
                client_rows.append(
                    (
                        capture_idx,
                        addr_index[address],
                        prefix_index[prefix],
                        aggregate.per_client_flows[(address, prefix)],
                        aggregate.per_client_days[(address, prefix)],
                    )
                )

        def column(rows: list, idx: int, dtype: str) -> np.ndarray:
            return np.array([row[idx] for row in rows], dtype=dtype)

        tables = {
            "passive_flows": Table(
                PASSIVE_TABLES["passive_flows"],
                {
                    "capture": column(flow_rows, 0, "int16"),
                    "bucket": column(flow_rows, 1, "int64"),
                    "addr": column(flow_rows, 2, "int16"),
                    "flows": column(flow_rows, 3, "float64"),
                    "clients": column(flow_rows, 4, "int32"),
                },
            ),
            "passive_clients": Table(
                PASSIVE_TABLES["passive_clients"],
                {
                    "capture": column(client_rows, 0, "int16"),
                    "addr": column(client_rows, 1, "int16"),
                    "prefix": column(client_rows, 2, "int32"),
                    "flows": column(client_rows, 3, "float64"),
                    "days": column(client_rows, 4, "int32"),
                },
            ),
        }
        return tables, names, list(prefix_index)
