"""Served-state probes: fingerprints, watermarks and change watching.

The analysis-serving layer (:mod:`repro.serving`) caches computed
results keyed on *what data produced them*.  Two pieces of identity make
that exact instead of heuristic:

* the **fingerprint** — which study the directory holds.  A scenario-
  stamped manifest (PR 9) already carries a content fingerprint; an
  unstamped one gets a content hash of its recorded ``StudyConfig``
  dict.  Same scenario, same fingerprint — across directories, hosts
  and re-runs.
* the **watermark** — how much of that study the directory holds.  A
  finalized dataset is immutable (``final`` plus its row counts); a
  live streaming checkpoint advances as chunks seal
  (``rounds:<done>/<total>`` plus the sealed-chunk count), so partial
  results cached at one watermark are never served after more rounds
  land.

:func:`probe_state` reads both from the directory's governing file —
``MANIFEST.json`` for a finalized dataset, ``CHECKPOINT.json`` for a
streaming checkpoint — and :class:`DatasetWatcher` turns that into a
cheap poll: a ``stat`` of the governing file per call, a re-read only
when the file actually changed (``CHECKPOINT.json`` is atomically
replaced on every seal, so mtime/size/inode movement is exactly the
signal "a chunk landed or sealed").
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.data.io import MANIFEST_NAME
from repro.data.schema import DatasetError

__all__ = [
    "DatasetWatcher",
    "ServedState",
    "probe_state",
    "study_fingerprint",
]


def study_fingerprint(study: Optional[Dict[str, Any]]) -> str:
    """The cache identity of a recorded study dict.

    Prefers the scenario content fingerprint stamped by the scenario
    registry (``study["scenario"]["fingerprint"]``); an unstamped study
    hashes its canonical config JSON instead — seed and execution knobs
    included, so "same config" is the exact condition for "same bytes on
    disk".  A dataset sealed without any config is its own island:
    ``unstamped`` (never shared across directories).
    """
    if not study:
        return "unstamped"
    scenario = study.get("scenario") or {}
    fingerprint = scenario.get("fingerprint")
    if fingerprint:
        return f"scenario:{fingerprint}"
    payload = json.dumps(study, sort_keys=True, separators=(",", ":"))
    return "study:" + hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ServedState:
    """What a served directory holds right now."""

    #: ``dataset`` (finalized, immutable) or ``checkpoint`` (growing).
    kind: str
    #: Study identity — see :func:`study_fingerprint`.
    fingerprint: str
    #: Data-extent identity; changes exactly when servable rows change.
    watermark: str
    #: The recorded study dict (``None`` when sealed without a config).
    study: Optional[Dict[str, Any]]
    #: (st_mtime_ns, st_size, st_ino) of the governing file — the cheap
    #: change signal :class:`DatasetWatcher` polls.
    stamp: Tuple[int, int, int]

    @property
    def final(self) -> bool:
        return self.kind == "dataset"


def _stat_stamp(path: Path) -> Tuple[int, int, int]:
    st = os.stat(path)
    return (st.st_mtime_ns, st.st_size, st.st_ino)


def probe_state(directory: Union[str, Path]) -> ServedState:
    """Read the :class:`ServedState` of a dataset or checkpoint dir.

    A directory with a finalized ``MANIFEST.json`` is a ``dataset``
    (the manifest wins even if checkpoint debris is still present — this
    mirrors :func:`repro.data.io.load_dataset`); one with only a
    ``CHECKPOINT.json`` is a growing ``checkpoint``.  Anything else
    raises :class:`~repro.data.schema.DatasetError`.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    checkpoint_path = directory / "CHECKPOINT.json"
    if manifest_path.exists():
        stamp = _stat_stamp(manifest_path)
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise DatasetError(
                f"corrupt manifest at {manifest_path}: {exc}"
            ) from exc
        summary = manifest.get("summary", {})
        watermark = (
            f"final:{summary.get('probe_samples', 0)}"
            f":{summary.get('transfer_observations', 0)}"
        )
        study = manifest.get("study")
        return ServedState(
            kind="dataset",
            fingerprint=study_fingerprint(study),
            watermark=watermark,
            study=study,
            stamp=stamp,
        )
    if checkpoint_path.exists():
        stamp = _stat_stamp(checkpoint_path)
        try:
            ckpt = json.loads(checkpoint_path.read_text())
        except json.JSONDecodeError as exc:
            raise DatasetError(
                f"corrupt checkpoint at {checkpoint_path}: {exc}"
            ) from exc
        watermark = (
            f"rounds:{ckpt.get('rounds_done', 0)}/{ckpt.get('n_rounds', 0)}"
            f":chunks:{len(ckpt.get('chunks', []))}"
        )
        study = ckpt.get("study")
        return ServedState(
            kind="checkpoint",
            fingerprint=study_fingerprint(study),
            watermark=watermark,
            study=study,
            stamp=stamp,
        )
    raise DatasetError(
        f"nothing servable at {directory}: neither {MANIFEST_NAME} "
        f"(finalized dataset) nor CHECKPOINT.json (streaming checkpoint)"
    )


class DatasetWatcher:
    """Watches one served directory for watermark movement.

    :meth:`poll` is the hot-path call: a single ``stat`` of the
    governing file.  Only when the stat stamp moves (a chunk sealed, a
    checkpoint finalized into a dataset) does it re-read the state and
    report the change.  A finalized dataset short-circuits — its
    watermark can never move again, so polls are free.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.path = Path(directory)
        self._state = probe_state(self.path)

    @property
    def state(self) -> ServedState:
        """The most recently observed state (no I/O)."""
        return self._state

    def poll(self) -> Optional[ServedState]:
        """Re-check the directory; the new state if it changed, else
        ``None``.  The governing file can also *switch* (checkpoint →
        finalized dataset), which reports as a change like any other."""
        previous = self._state
        if previous.final:
            return None
        try:
            manifest_path = self.path / MANIFEST_NAME
            if manifest_path.exists():
                # finalized since the last look — always a transition
                self._state = probe_state(self.path)
                return self._state
            if _stat_stamp(self.path / "CHECKPOINT.json") == previous.stamp:
                return None
        except FileNotFoundError:
            raise DatasetError(
                f"served directory {self.path} lost its governing file "
                f"(CHECKPOINT.json removed mid-serve)"
            ) from None
        self._state = probe_state(self.path)
        if self._state.watermark == previous.watermark:
            # stamp moved but content didn't (e.g. a passive-cache note
            # rewrote CHECKPOINT.json): not a servable change
            return None
        return self._state
