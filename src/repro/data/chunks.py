"""Streaming chunk store: append-only dataset growth with crash-safe resume.

A streamed campaign (DESIGN.md §11) writes its measurement output into a
**checkpoint directory** instead of holding the whole campaign in memory::

    <ckpt>/
      CHECKPOINT.json          # atomically replaced after every sealed chunk
      chunks/000000/           # one sealed chunk per round range [lo, hi)
        MANIFEST.json          #   a complete mini dataset: same schema,
        tables/<t>/<col>.bin   #   same column files, loadable with
        identities.json        #   DatasetReader — stability/identities
        transfers.jsonl        #   hold per-chunk *deltas*
      chunks/000001/
      passive/<capture>.json   # finalize-phase per-capture cache

``CHECKPOINT.json`` carries the campaign cursor (rounds done, sealed
chunk list) plus the aggregate collector state (interner contents with
first-occurrence order keys, identity counts, stability counters,
totals) for the merged view and for every shard.  It is only ever
updated by writing ``CHECKPOINT.json.tmp`` and ``os.replace``-ing it
over the old file **after** the chunk directory is fully on disk, so a
crash at any instant leaves either the previous consistent checkpoint or
the new one — never a torn state.  A chunk directory that exists on disk
but is not listed in the checkpoint is an unsealed tail from a crash;
resume discards it and re-runs those rounds.

Resume invariants (why a resumed run is byte-identical to an
uninterrupted one):

* every per-round random draw is a counter-based mix keyed by
  (vp, addr, round/ts) — there is no sequential RNG state to restore;
* interner order keys are (round, vp, addr) positions, so values
  interned before the crash keep their indices and values first seen
  after it sort strictly later;
* fault schedules and route epochs are pure functions of the seed and
  config, recompiled identically on resume;
* chunk boundaries fall on round boundaries, and row/transfer order
  within a chunk is the serial campaign scan order, so concatenating
  sealed chunk files *is* the batch table.

:class:`CheckpointReader` serves the sealed prefix of a mid-campaign (or
killed) run as a :class:`~repro.data.dataset.Dataset` — each chunk is
memory-mapped zero-copy; stitching n > 1 chunks concatenates the mapped
columns lazily per table access.  :meth:`ChunkedDatasetWriter.finalize`
streams the sealed chunks into a normal dataset directory that is
byte-identical to what :class:`~repro.data.io.DatasetWriter` writes for
the equivalent batch run, without ever materialising the full tables.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.data.dataset import Dataset, Table
from repro.data.io import (
    DatasetReader,
    MANIFEST_NAME,
    assemble_manifest,
    table_manifest_entry,
    write_binary_table,
)
from repro.data.schema import (
    BINARY_TABLES,
    SCHEMA_VERSION,
    CheckpointError,
    DatasetError,
)
from repro.data.transfers import record_to_row, seal_transfers

CHECKPOINT_NAME = "CHECKPOINT.json"

#: Version of the checkpoint layout; bump on every incompatible change.
CHECKPOINT_VERSION = 1


# --- chunk payload ------------------------------------------------------------------


@dataclass
class ChunkData:
    """Everything one sealed chunk stores, in serial campaign-scan order.

    ``probes`` / ``traceroutes`` carry the chunk's rows; ``stability``
    carries per-(vp, addr) *deltas* (changes/rounds accrued in this
    round range); ``identities`` is the per-(letter, identity) count
    delta; ``transfers`` the chunk's observations, already in the batch
    transfer order.
    """

    round_lo: int
    round_hi: int
    probes: Dict[str, np.ndarray]
    traceroutes: Dict[str, np.ndarray]
    stability: Dict[str, np.ndarray]
    identities: Dict[str, Dict[str, int]]
    transfers: Sequence[Any]  # TransferObservation (sealed on write)
    queries: int = 0
    transfer_total: int = 0
    transfer_clean: int = 0

    def summary(self) -> Dict[str, int]:
        """The chunk's delta summary (same keys as a full dataset's)."""
        return {
            "rounds": self.round_hi - self.round_lo,
            "queries": int(self.queries),
            "probe_samples": int(len(self.probes["vp"])),
            "traceroute_samples": int(len(self.traceroutes["vp"])),
            "transfers": int(self.transfer_total),
            "transfer_observations": len(self.transfers),
            "stability_pairs": int(len(self.stability["vp"])),
        }


# --- writer -------------------------------------------------------------------------


class ChunkedDatasetWriter:
    """Seals campaign chunks to disk and keeps ``CHECKPOINT.json`` true.

    Protocol: :meth:`start` (fresh) or :meth:`resume` (after a crash),
    then one :meth:`seal_chunk` per completed round range, then
    :meth:`finalize` into a normal dataset directory once every round is
    sealed.  The checkpoint file is replaced atomically after each
    chunk, so the directory is always either resumable or complete.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.path = Path(directory)
        self._checkpoint: Optional[dict] = None

    # -- lifecycle ---------------------------------------------------------------

    def start(
        self,
        *,
        study: Optional[dict],
        addresses: List[str],
        engine: str,
        shards: int,
        n_rounds: int,
        state: dict,
        shard_states: List[dict],
    ) -> None:
        """Begin a fresh streamed campaign in this directory."""
        if (self.path / CHECKPOINT_NAME).exists():
            raise CheckpointError(
                f"checkpoint already exists at {self.path}; resume it or "
                f"point --checkpoint at a fresh directory"
            )
        if (self.path / MANIFEST_NAME).exists():
            raise CheckpointError(
                f"{self.path} already holds a finalized dataset"
            )
        (self.path / "chunks").mkdir(parents=True, exist_ok=True)
        self._checkpoint = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "schema_version": SCHEMA_VERSION,
            "study": study,
            "addresses": list(addresses),
            "engine": engine,
            "shards": shards,
            "n_rounds": n_rounds,
            "rounds_done": 0,
            "totals": {"probes": 0, "traceroutes": 0, "transfer_observations": 0},
            "chunks": [],
            "state": state,
            "shard_states": shard_states,
            "passive_done": [],
        }
        self._write_checkpoint()

    def resume(self) -> dict:
        """Load the checkpoint, discard any unsealed tail chunk, and
        return the checkpoint dict."""
        self._checkpoint = CheckpointReader(self.path).checkpoint()
        sealed = {entry["name"] for entry in self._checkpoint["chunks"]}
        chunks_dir = self.path / "chunks"
        if chunks_dir.is_dir():
            for child in sorted(chunks_dir.iterdir()):
                if child.is_dir() and child.name not in sealed:
                    shutil.rmtree(child)
        return self._checkpoint

    @property
    def checkpoint(self) -> dict:
        if self._checkpoint is None:
            raise CheckpointError("writer not started; call start() or resume()")
        return self._checkpoint

    @property
    def rounds_done(self) -> int:
        return int(self.checkpoint["rounds_done"])

    # -- sealing -----------------------------------------------------------------

    def seal_chunk(
        self, chunk: ChunkData, *, state: dict, shard_states: List[dict]
    ) -> Path:
        """Write one chunk directory, then commit the checkpoint.

        *state* / *shard_states* are
        :meth:`~repro.vantage.collector.CampaignCollector.state_dict`
        snapshots taken **after** the chunk's rounds were absorbed; they
        become the restore point if the process dies after this seal.
        """
        ckpt = self.checkpoint
        if chunk.round_lo != ckpt["rounds_done"]:
            raise CheckpointError(
                f"chunk starts at round {chunk.round_lo}; checkpoint has "
                f"{ckpt['rounds_done']} rounds sealed"
            )
        name = f"{len(ckpt['chunks']):06d}"
        chunk_dir = self.path / "chunks" / name
        if chunk_dir.exists():  # unsealed debris from a crash at this boundary
            shutil.rmtree(chunk_dir)
        chunk_dir.mkdir(parents=True)

        tables_manifest: Dict[str, dict] = {}
        for table_name, columns in (
            ("probes", chunk.probes),
            ("traceroutes", chunk.traceroutes),
            ("stability", chunk.stability),
        ):
            tables_manifest[table_name] = write_binary_table(
                chunk_dir, table_name, BINARY_TABLES[table_name], columns
            )

        (chunk_dir / "identities.json").write_text(json.dumps(chunk.identities))
        records = seal_transfers(list(chunk.transfers))
        with open(chunk_dir / "transfers.jsonl", "w") as handle:
            for record in records:
                handle.write(json.dumps(record_to_row(record)) + "\n")

        manifest = assemble_manifest(
            study=ckpt["study"],
            summary=chunk.summary(),
            addresses=ckpt["addresses"],
            sites=[value for value, _key in state["sites"]],
            hops=[value for value, _key in state["hops"]],
            tables_manifest=tables_manifest,
        )
        manifest["chunk"] = {
            "index": len(ckpt["chunks"]),
            "round_lo": chunk.round_lo,
            "round_hi": chunk.round_hi,
        }
        (chunk_dir / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))

        entry = {
            "name": name,
            "round_lo": chunk.round_lo,
            "round_hi": chunk.round_hi,
            "rows": {
                "probes": int(len(chunk.probes["vp"])),
                "traceroutes": int(len(chunk.traceroutes["vp"])),
                "transfer_observations": len(records),
            },
        }
        ckpt["chunks"].append(entry)
        ckpt["rounds_done"] = chunk.round_hi
        totals = ckpt["totals"]
        totals["probes"] += entry["rows"]["probes"]
        totals["traceroutes"] += entry["rows"]["traceroutes"]
        totals["transfer_observations"] += entry["rows"]["transfer_observations"]
        ckpt["state"] = state
        ckpt["shard_states"] = shard_states
        self._write_checkpoint()
        return chunk_dir

    def note_passive_done(self, capture: str) -> None:
        """Record one finalize-phase passive capture as cached."""
        ckpt = self.checkpoint
        if capture not in ckpt["passive_done"]:
            ckpt["passive_done"].append(capture)
            self._write_checkpoint()

    def _write_checkpoint(self) -> None:
        tmp = self.path / (CHECKPOINT_NAME + ".tmp")
        with open(tmp, "w") as handle:
            handle.write(json.dumps(self._checkpoint, indent=2))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path / CHECKPOINT_NAME)

    # -- finalize ----------------------------------------------------------------

    def finalize(
        self,
        out_dir: Union[str, Path],
        *,
        state_collector,
        passive_store=None,
    ) -> Path:
        """Stream the sealed chunks into a normal dataset directory.

        Byte-identical to :class:`~repro.data.io.DatasetWriter` writing
        the equivalent batch run's dataset: chunk column files are
        already in disk dtype and serial order, so the final tables are
        plain file concatenations; stability, identities and the
        manifest come from the aggregate *state_collector*.  The full
        probe/traceroute tables are never materialised in memory.
        """
        ckpt = self.checkpoint
        if ckpt["rounds_done"] != ckpt["n_rounds"]:
            raise CheckpointError(
                f"cannot finalize: {ckpt['rounds_done']} of "
                f"{ckpt['n_rounds']} rounds sealed"
            )
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        chunk_dirs = [self.path / "chunks" / e["name"] for e in ckpt["chunks"]]
        for path in chunk_dirs:
            if not path.is_dir():
                raise CheckpointError(f"checkpoint promises missing chunk {path}")

        tables_manifest: Dict[str, dict] = {}
        for name in ("probes", "traceroutes"):
            schema = BINARY_TABLES[name]
            (out / "tables" / name).mkdir(parents=True, exist_ok=True)
            for spec in schema.columns:
                relpath = f"tables/{name}/{spec.name}.bin"
                with open(out / relpath, "wb") as sink:
                    for chunk_dir in chunk_dirs:
                        part = chunk_dir / relpath
                        if not part.exists():
                            raise CheckpointError(
                                f"chunk {chunk_dir.name} lacks column file "
                                f"{relpath}"
                            )
                        with open(part, "rb") as source:
                            shutil.copyfileobj(source, sink)
            tables_manifest[name] = table_manifest_entry(
                schema, ckpt["totals"][name]
            )

        stability = state_collector.change_counts()
        n = len(stability)
        columns = {
            "vp": np.empty(n, dtype=np.int32),
            "addr": np.empty(n, dtype=np.int16),
            "changes": np.empty(n, dtype=np.int32),
            "rounds": np.empty(n, dtype=np.int32),
        }
        for i, ((vp_id, addr_idx), (n_changes, n_rounds)) in enumerate(
            stability.items()
        ):
            columns["vp"][i] = vp_id
            columns["addr"][i] = addr_idx
            columns["changes"][i] = n_changes
            columns["rounds"][i] = n_rounds
        tables_manifest["stability"] = write_binary_table(
            out, "stability", BINARY_TABLES["stability"], columns
        )

        passive_entry = None
        captures_interner: List[str] = []
        prefixes_interner: List[str] = []
        if passive_store is not None:
            passive_tables, captures_interner, prefixes_interner = (
                passive_store.to_tables(state_collector.addr_index)
            )
            for name, table in passive_tables.items():
                tables_manifest[name] = write_binary_table(
                    out, name, table.schema, table.columns()
                )
            passive_entry = passive_store.manifest_entry()

        (out / "identities.json").write_text(
            json.dumps(state_collector.identities)
        )
        with open(out / "transfers.jsonl", "wb") as sink:
            for chunk_dir in chunk_dirs:
                with open(chunk_dir / "transfers.jsonl", "rb") as source:
                    shutil.copyfileobj(source, sink)

        summary = {
            "rounds": state_collector.rounds_processed,
            "queries": state_collector.queries_simulated,
            "probe_samples": ckpt["totals"]["probes"],
            "traceroute_samples": ckpt["totals"]["traceroutes"],
            "transfers": state_collector.transfer_total,
            "transfer_observations": ckpt["totals"]["transfer_observations"],
            "stability_pairs": n,
        }
        manifest = assemble_manifest(
            study=ckpt["study"],
            summary=summary,
            addresses=ckpt["addresses"],
            sites=list(state_collector.sites.values),
            hops=list(state_collector.hops.values),
            tables_manifest=tables_manifest,
            passive_entry=passive_entry,
            captures=captures_interner,
            prefixes=prefixes_interner,
        )
        (out / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        return out


# --- reader -------------------------------------------------------------------------


class CheckpointReader:
    """Serves the sealed chunks of a streaming checkpoint directory."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.path = Path(directory)

    def checkpoint(self) -> dict:
        """The validated checkpoint dict (:class:`CheckpointError` on
        anything missing, torn, or inconsistent)."""
        ckpt_path = self.path / CHECKPOINT_NAME
        if not ckpt_path.exists():
            raise CheckpointError(
                f"no streaming checkpoint at {self.path} "
                f"(missing {CHECKPOINT_NAME})"
            )
        try:
            ckpt = json.loads(ckpt_path.read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"corrupt checkpoint at {ckpt_path}: {exc}"
            ) from exc
        if not isinstance(ckpt, dict):
            raise CheckpointError(f"corrupt checkpoint at {ckpt_path}: not an object")
        version = ckpt.get("checkpoint_version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint at {self.path} has version {version!r}; this "
                f"reader supports version {CHECKPOINT_VERSION}"
            )
        if ckpt.get("schema_version") != SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint at {self.path} carries dataset schema version "
                f"{ckpt.get('schema_version')!r}; this reader supports "
                f"version {SCHEMA_VERSION}"
            )
        for key in (
            "addresses",
            "engine",
            "shards",
            "n_rounds",
            "rounds_done",
            "totals",
            "chunks",
            "state",
            "shard_states",
        ):
            if key not in ckpt:
                raise CheckpointError(
                    f"checkpoint at {self.path} lacks required key {key!r}"
                )
        expected_lo = 0
        totals = {"probes": 0, "traceroutes": 0, "transfer_observations": 0}
        for entry in ckpt["chunks"]:
            if entry.get("round_lo") != expected_lo:
                raise CheckpointError(
                    f"checkpoint at {self.path} has a round gap: chunk "
                    f"{entry.get('name')!r} starts at {entry.get('round_lo')}, "
                    f"expected {expected_lo}"
                )
            expected_lo = entry["round_hi"]
            for key in totals:
                totals[key] += int(entry.get("rows", {}).get(key, 0))
        if expected_lo != ckpt["rounds_done"]:
            raise CheckpointError(
                f"checkpoint at {self.path} is inconsistent: chunks cover "
                f"{expected_lo} rounds, rounds_done says {ckpt['rounds_done']}"
            )
        if totals != ckpt["totals"]:
            raise CheckpointError(
                f"checkpoint at {self.path} is inconsistent: chunk row "
                f"counts {totals} do not match recorded totals "
                f"{ckpt['totals']}"
            )
        return ckpt

    # -- chunk access ------------------------------------------------------------

    def chunk_entries(self) -> List[dict]:
        return list(self.checkpoint()["chunks"])

    def chunk_path(self, entry: dict) -> Path:
        return self.path / "chunks" / entry["name"]

    def chunk_dataset(self, entry: dict) -> Dataset:
        """Load one sealed chunk as a (delta) dataset, zero-copy."""
        chunk_dir = self.chunk_path(entry)
        if not chunk_dir.is_dir():
            raise CheckpointError(
                f"checkpoint promises chunk {entry['name']!r} but "
                f"{chunk_dir} is missing"
            )
        try:
            dataset = DatasetReader(chunk_dir).read()
        except CheckpointError:
            raise
        except DatasetError as exc:
            raise CheckpointError(
                f"chunk {entry['name']!r} at {chunk_dir} is damaged: {exc}"
            ) from exc
        rows = {
            "probes": len(dataset.table("probes")),
            "traceroutes": len(dataset.table("traceroutes")),
        }
        for name, count in rows.items():
            if count != entry["rows"][name]:
                raise CheckpointError(
                    f"chunk {entry['name']!r} holds {count} {name} rows; "
                    f"checkpoint promises {entry['rows'][name]}"
                )
        return dataset

    def chunk_datasets(self) -> List[Dataset]:
        """Every sealed chunk, in round order."""
        return [self.chunk_dataset(entry) for entry in self.chunk_entries()]

    # -- stitched view -----------------------------------------------------------

    def dataset(self) -> Dataset:
        """The sealed prefix of the campaign as one dataset.

        Single-chunk checkpoints pass the memory-mapped columns through
        untouched; stitching n > 1 chunks concatenates the mapped
        columns (touched tables materialise, untouched ones stay on
        disk).  Stability, identities, interners and the summary come
        from the checkpoint's aggregate state, so they reflect *all*
        sealed rounds even though row tables only ever hold sealed
        chunks.
        """
        from repro.rss.operators import all_service_addresses
        from repro.vantage.collector import CampaignCollector

        ckpt = self.checkpoint()
        state = CampaignCollector()
        state.restore_state_dict(ckpt["state"])

        catalog = {sa.address: sa for sa in all_service_addresses()}
        try:
            addresses = [catalog[a] for a in ckpt["addresses"]]
        except KeyError as exc:
            raise CheckpointError(
                f"checkpoint names unknown service address {exc}"
            ) from exc

        from repro.data.columnar import stitch_columns

        chunk_sets = self.chunk_datasets()
        tables: Dict[str, Table] = {}
        for name in ("probes", "traceroutes"):
            schema = BINARY_TABLES[name]
            parts = [d.table(name) for d in chunk_sets]
            names = [spec.name for spec in schema.columns]
            dtypes = {spec.name: spec.disk_dtype for spec in schema.columns}
            if len(parts) == 1:
                tables[name] = parts[0]
            else:
                stitched = stitch_columns(
                    names,
                    [{n: p.column(n) for n in names} for p in parts],
                    empty_dtypes=dtypes,
                )
                tables[name] = Table(schema, stitched)

        stability = state.change_counts()
        n = len(stability)
        columns = {
            "vp": np.empty(n, dtype=np.int32),
            "addr": np.empty(n, dtype=np.int16),
            "changes": np.empty(n, dtype=np.int32),
            "rounds": np.empty(n, dtype=np.int32),
        }
        for i, ((vp_id, addr_idx), (n_changes, n_rounds)) in enumerate(
            stability.items()
        ):
            columns["vp"][i] = vp_id
            columns["addr"][i] = addr_idx
            columns["changes"][i] = n_changes
            columns["rounds"][i] = n_rounds
        tables["stability"] = Table(BINARY_TABLES["stability"], columns)

        transfers: List[Any] = []
        for chunk in chunk_sets:
            transfers.extend(chunk._transfer_source or [])

        summary = {
            "rounds": state.rounds_processed,
            "queries": state.queries_simulated,
            "probe_samples": ckpt["totals"]["probes"],
            "traceroute_samples": ckpt["totals"]["traceroutes"],
            "transfers": state.transfer_total,
            "transfer_observations": ckpt["totals"]["transfer_observations"],
            "stability_pairs": n,
        }
        meta: Dict[str, Any] = {
            "checkpoint": {
                "rounds_done": ckpt["rounds_done"],
                "n_rounds": ckpt["n_rounds"],
                "chunks": len(chunk_sets),
            }
        }
        if ckpt.get("study") is not None:
            meta["study"] = ckpt["study"]
        return Dataset(
            addresses=addresses,
            sites=list(state.sites.values),
            hops=list(state.hops.values),
            identities=state.identities,
            tables=tables,
            transfers=transfers,
            summary=summary,
            meta=meta,
        )


# --- passive finalize cache ---------------------------------------------------------


def write_passive_aggregate(directory: Union[str, Path], name: str, aggregate) -> Path:
    """Cache one computed passive capture under ``<ckpt>/passive/``.

    Written via temp-file + atomic replace: a crash mid-write leaves no
    partial cache, so resume recomputes exactly the missing captures.
    """
    root = Path(directory) / "passive"
    root.mkdir(parents=True, exist_ok=True)
    payload = {
        "bucket_seconds": aggregate.bucket_seconds,
        "flows": [
            [bucket, address, aggregate.flows[(bucket, address)],
             aggregate.client_count(bucket, address)]
            for bucket, address in sorted(aggregate.flows)
        ],
        "clients": [
            [address, prefix, aggregate.per_client_flows[(address, prefix)],
             aggregate.per_client_days[(address, prefix)]]
            for address, prefix in sorted(aggregate.per_client_flows)
        ],
    }
    target = root / f"{name}.json"
    tmp = root / f"{name}.json.tmp"
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, target)
    return target


def read_passive_aggregate(directory: Union[str, Path], name: str):
    """Reload a capture cached by :func:`write_passive_aggregate`."""
    from repro.passive.traces import FlowAggregate

    path = Path(directory) / "passive" / f"{name}.json"
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise CheckpointError(
            f"checkpoint marks passive capture {name!r} done but its cache "
            f"{path} is missing"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt passive cache at {path}: {exc}") from exc
    return FlowAggregate.from_parts(
        int(payload["bucket_seconds"]),
        flows={
            (int(bucket), address): float(flow)
            for bucket, address, flow, _clients in payload["flows"]
        },
        client_counts={
            (int(bucket), address): int(clients)
            for bucket, address, _flow, clients in payload["flows"]
        },
        per_client_flows={
            (address, prefix): float(flow)
            for address, prefix, flow, _days in payload["clients"]
        },
        per_client_days={
            (address, prefix): int(days)
            for address, prefix, _flow, days in payload["clients"]
        },
    )
