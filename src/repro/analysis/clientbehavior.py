"""Client contact-frequency analysis (paper §6, Figure 8).

For each root service address: the distribution of per-client daily flow
counts.  The priming signal is the mass of clients contacting the *old*
b.root IPv6 subnet about once per day — IPv6-capable stacks re-prime
(RFC 8109) against the old address and otherwise leave it alone.
"""

from __future__ import annotations

from repro.analysis.base import RegisteredAnalysis

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.passive.traces import FlowAggregate
from repro.rss.operators import ServiceAddress, all_service_addresses
from repro.util.stats import Ecdf


@dataclass(frozen=True)
class ClientFlowDistribution:
    """Per-client daily flow counts for one address (Figure 8 series)."""

    address: ServiceAddress
    flows_per_client: Tuple[float, ...]

    def cdf_points(self) -> List[Tuple[float, float]]:
        """(flows/day, fraction of clients with <= that many) points."""
        if not self.flows_per_client:
            return []
        ecdf = Ecdf(self.flows_per_client)
        return [(x, 1.0 - y) for x, y in ecdf.points()]

    def fraction_single_daily_contact(self, threshold: float = 1.5) -> float:
        """Clients touching the address at most ~once per day — the
        priming fingerprint."""
        if not self.flows_per_client:
            return 0.0
        few = sum(1 for f in self.flows_per_client if f <= threshold)
        return few / len(self.flows_per_client)

    def mean_clients_per_day(self) -> int:
        return len(self.flows_per_client)


class ClientBehaviorAnalysis(RegisteredAnalysis):
    """Figure 8 over one capture aggregate."""

    name = "clientbehavior"
    requires = ("aggregate",)

    def __init__(self, aggregate: FlowAggregate) -> None:
        self.aggregate = aggregate
        self.addresses = all_service_addresses()

    def distribution(self, address: str) -> ClientFlowDistribution:
        """The per-client flow distribution for one address."""
        sa = next(a for a in self.addresses if a.address == address)
        flows = tuple(sorted(self.aggregate.mean_daily_flows_per_client(address)))
        return ClientFlowDistribution(address=sa, flows_per_client=flows)

    def by_family(self, family: int) -> Dict[str, ClientFlowDistribution]:
        """All addresses of one family, keyed by display label."""
        out: Dict[str, ClientFlowDistribution] = {}
        for sa in self.addresses:
            if sa.family != family:
                continue
            out[sa.label] = self.distribution(sa.address)
        return out

    def priming_signal(self) -> Dict[str, float]:
        """Single-daily-contact fractions for b.root's four subnets.

        The paper's conjecture holds when the old IPv6 subnet's value
        clearly exceeds the new IPv6 subnet's.
        """
        from repro.rss.operators import root_server

        b = root_server("b")
        labels = {
            "V4new": b.ipv4,
            "V4old": b.old_ipv4,
            "V6new": b.ipv6,
            "V6old": b.old_ipv6,
        }
        return {
            label: self.distribution(addr).fraction_single_daily_contact()
            for label, addr in labels.items()
            if addr is not None
        }
