"""Longitudinal per-region RTT for one letter (the froot-sea pack's
headline view).

"Unravelling DNS Performance: A Historical Examination of F-ROOT in
Southeast Asia" reads one letter's latency per region over time, as the
letter's site build-out lands.  This analysis is that view over the
probe table: per-(continent, family) RTT distributions for a chosen
letter, plus calendar-month median series per continent — the
longitudinal figure a staged :class:`WorldSpec` build-out is designed
to move.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.base import RegisteredAnalysis
from repro.geo.continents import Continent
from repro.vantage.node import VantagePoint

#: The letter whose deployment the froot-sea scenario stages.
DEFAULT_LETTER = "f"


@dataclass(frozen=True)
class RegionCell:
    """One (continent, family) RTT distribution for the letter."""

    continent: Continent
    family: int
    count: int
    mean: float
    p50: float
    p90: float


class RegionalRttAnalysis(RegisteredAnalysis):
    """Per-region, per-family RTT of one letter, over the campaign and
    month by month."""

    name = "regional_rtt"
    requires = ("dataset", "vps", "config?")
    tables = ("probes",)

    def __init__(self, dataset, vps: List[VantagePoint], config=None) -> None:
        self.dataset = dataset
        self.config = config
        self.columns = dataset.probe_columns()
        continents = list(Continent)
        self._continent_list = continents
        vp_cont = np.zeros(
            max((vp.vp_id for vp in vps), default=0) + 1, dtype=np.int8
        )
        for vp in vps:
            vp_cont[vp.vp_id] = continents.index(vp.continent)
        self._vp_cont = vp_cont

    def _letter_mask(self, letter: str, family: Optional[int] = None) -> np.ndarray:
        indices = [
            self.dataset.addr_index[sa.address]
            for sa in self.dataset.addresses
            if sa.letter == letter and (family is None or sa.family == family)
        ]
        if not indices:
            raise ValueError(f"no {letter}.root addresses in this dataset")
        return np.isin(self.columns["addr"], np.asarray(indices))

    def _continent_mask(self, continent: Continent) -> np.ndarray:
        cont_idx = self._continent_list.index(continent)
        return self._vp_cont[self.columns["vp"]] == cont_idx

    def cell(
        self, continent: Continent, family: int, letter: str = DEFAULT_LETTER
    ) -> Optional[RegionCell]:
        """The (continent, family) distribution, or None if unobserved."""
        mask = self._letter_mask(letter, family) & self._continent_mask(continent)
        rtts = self.columns["rtt"][mask]
        if len(rtts) == 0:
            return None
        return RegionCell(
            continent=continent,
            family=family,
            count=int(len(rtts)),
            mean=float(np.mean(rtts)),
            p50=float(np.percentile(rtts, 50)),
            p90=float(np.percentile(rtts, 90)),
        )

    def regional_summary(
        self, letter: str = DEFAULT_LETTER
    ) -> Dict[str, Dict[int, RegionCell]]:
        """Every observed (continent, family) cell, keyed by continent
        name then family."""
        out: Dict[str, Dict[int, RegionCell]] = {}
        for continent in Continent:
            cells = {
                family: cell
                for family in (4, 6)
                for cell in [self.cell(continent, family, letter)]
                if cell is not None
            }
            if cells:
                out[continent.name] = cells
        return out

    def _month_labels(self) -> np.ndarray:
        """Per-probe ``YYYY-MM`` labels (vectorised via the day grid)."""
        days = self.columns["ts"] // 86400
        unique_days, inverse = np.unique(days, return_inverse=True)
        labels = np.array(
            [
                time.strftime("%Y-%m", time.gmtime(int(day) * 86400))
                for day in unique_days
            ]
        )
        return labels[inverse]

    def monthly_medians(
        self, letter: str = DEFAULT_LETTER, family: int = 4
    ) -> Dict[str, List[Tuple[str, float, int]]]:
        """Per-continent ``(month, median RTT, count)`` series — the
        longitudinal build-out figure."""
        letter_mask = self._letter_mask(letter, family)
        months = self._month_labels()
        out: Dict[str, List[Tuple[str, float, int]]] = {}
        for continent in Continent:
            mask = letter_mask & self._continent_mask(continent)
            if not mask.any():
                continue
            cont_months = months[mask]
            cont_rtts = self.columns["rtt"][mask]
            series: List[Tuple[str, float, int]] = []
            for month in sorted(set(cont_months.tolist())):
                rtts = cont_rtts[cont_months == month]
                series.append(
                    (month, float(np.percentile(rtts, 50)), int(len(rtts)))
                )
            out[continent.name] = series
        return out

    def buildout_stages(self) -> List[Dict[str, object]]:
        """The world layer's build-out timeline (for figure annotation);
        empty without a config or build-out."""
        if self.config is None:
            return []
        return [
            stage.to_dict() for stage in self.config.world_spec().buildout
        ]
