"""Site stability analysis (paper §4.2, Figure 3).

Counts, per (VP, service address), how often two subsequent measurements
reached different anycast sites, and summarises the distribution as the
complementary eCDF the paper plots — per letter, per address family, and
for b.root per address generation.
"""

from __future__ import annotations

from repro.analysis.base import RegisteredAnalysis

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rss.operators import ServiceAddress
from repro.util.stats import Ecdf, median


@dataclass(frozen=True)
class StabilitySeries:
    """Change-count sample for one service address across VPs."""

    address: ServiceAddress
    changes_per_vp: Tuple[int, ...]

    @property
    def label(self) -> str:
        gen = "" if self.address.generation == "current" else self.address.generation
        return f"IPv{self.address.family}{gen}"

    def median_changes(self) -> float:
        if not self.changes_per_vp:
            raise ValueError(f"no observations for {self.address.address}")
        return median(self.changes_per_vp)

    def ecdf(self) -> Ecdf:
        return Ecdf(self.changes_per_vp)

    def fraction_with_at_most(self, n: int) -> float:
        """Fraction of VPs that saw <= n changes."""
        if not self.changes_per_vp:
            raise ValueError(f"no observations for {self.address.address}")
        return sum(1 for c in self.changes_per_vp if c <= n) / len(self.changes_per_vp)


class StabilityAnalysis(RegisteredAnalysis):
    """Figure 3 over a campaign's change counters."""

    name = "stability"
    requires = ("dataset",)
    tables = ("stability",)

    def __init__(self, dataset) -> None:
        """*dataset* is a :class:`repro.data.Dataset` or any
        collector-compatible object (``change_counts``/``addresses``)."""
        self.dataset = dataset
        counts = dataset.change_counts()
        self._per_addr: Dict[int, List[int]] = {}
        for (vp_id, addr_idx), (changes, _rounds) in counts.items():
            self._per_addr.setdefault(addr_idx, []).append(changes)

    def series_for(self, letter: str) -> List[StabilitySeries]:
        """All change-count series of one letter (old/new generations of
        b.root appear as distinct series, like the paper's Fig. 3 left)."""
        out: List[StabilitySeries] = []
        for addr_idx, changes in sorted(self._per_addr.items()):
            sa = self.dataset.addresses[addr_idx]
            if sa.letter != letter:
                continue
            out.append(StabilitySeries(address=sa, changes_per_vp=tuple(sorted(changes))))
        return out

    def median_changes(self, letter: str, family: int, generation: Optional[str] = None) -> float:
        """Median per-VP change count for (letter, family[, generation])."""
        for series in self.series_for(letter):
            if series.address.family != family:
                continue
            if generation is not None and series.address.generation != generation:
                continue
            return series.median_changes()
        raise KeyError(f"no series for {letter} IPv{family} {generation}")

    def letters_with_v6_excess(self, threshold: float = 1.3) -> List[str]:
        """Letters whose v6 median changes exceed v4 by *threshold*×
        (the paper names g, c and h)."""
        out: List[str] = []
        letters = sorted({sa.letter for sa in self.dataset.addresses})
        for letter in letters:
            try:
                v4 = self.median_changes(letter, 4, "current")
                v6 = self.median_changes(letter, 6, "current")
            except KeyError:
                # b.root has no "current" generation; compare new addrs.
                try:
                    v4 = self.median_changes(letter, 4, "new")
                    v6 = self.median_changes(letter, 6, "new")
                except KeyError:
                    continue
            if v4 > 0 and v6 / max(v4, 0.5) >= threshold:
                out.append(letter)
        return out
