"""Site coverage analysis (paper §4.2, Tables 1/4, Figures 1/11).

Matches the CHAOS identity strings observed during the campaign against
the published site catalog (root-servers.org ground truth), and reports
per letter — worldwide and per region — how many global/local sites the
VPs reached.  Unmappable identifiers (unpublished sites, metro-coded
letters) are counted separately, mirroring the paper's 135 unmapped of
1,604 observed identifiers.
"""

from __future__ import annotations

from repro.analysis.base import RegisteredAnalysis

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.geo.continents import Continent
from repro.rss.operators import ROOT_LETTERS
from repro.rss.sites import Site, SiteCatalog


@dataclass(frozen=True)
class CoverageRow:
    """One (letter, scope) coverage cell: sites, covered, percentage."""

    letter: str
    scope: str  # "global", "local" or "total"
    sites: int
    covered: int

    @property
    def pct(self) -> Optional[float]:
        """Coverage percentage (None when the letter has no such sites)."""
        if self.sites == 0:
            return None
        return 100.0 * self.covered / self.sites


class CoverageAnalysis(RegisteredAnalysis):
    """Identity-to-site matching plus coverage accounting."""

    name = "coverage"
    requires = ("catalog", "identities")
    tables = ("identities",)

    def __init__(
        self,
        catalog: SiteCatalog,
        observed_identities: Dict[str, Dict[str, int]],
    ) -> None:
        self.catalog = catalog
        self.observed_identities = observed_identities
        self.covered_sites: Dict[str, Set[str]] = {}
        self.unmapped: Dict[str, List[str]] = {}
        self._match()

    def _match(self) -> None:
        for letter, identities in self.observed_identities.items():
            covered: Set[str] = set()
            unmapped: List[str] = []
            for identity in identities:
                site = self.catalog.map_identity(identity)
                if site is None:
                    unmapped.append(identity)
                else:
                    covered.add(site.key)
            self.covered_sites[letter] = covered
            self.unmapped[letter] = unmapped

    # -- stats ----------------------------------------------------------------------

    def observed_identifier_count(self) -> Tuple[int, int]:
        """(total observed identifiers, unmapped identifiers)."""
        total = sum(len(ids) for ids in self.observed_identities.values())
        unmapped = sum(len(u) for u in self.unmapped.values())
        return total, unmapped

    def _rows_for(
        self, letter: str, sites: List[Site]
    ) -> List[CoverageRow]:
        covered = self.covered_sites.get(letter, set())
        global_sites = [s for s in sites if s.is_global]
        local_sites = [s for s in sites if not s.is_global]
        rows = []
        for scope, subset in (
            ("global", global_sites),
            ("local", local_sites),
            ("total", sites),
        ):
            rows.append(
                CoverageRow(
                    letter=letter,
                    scope=scope,
                    sites=len(subset),
                    covered=sum(1 for s in subset if s.key in covered),
                )
            )
        return rows

    def worldwide(self) -> Dict[str, List[CoverageRow]]:
        """Table 1: per letter, global/local/total coverage worldwide."""
        return {
            letter: self._rows_for(letter, self.catalog.of_letter(letter))
            for letter in ROOT_LETTERS
        }

    def per_region(self) -> Dict[Continent, Dict[str, List[CoverageRow]]]:
        """Table 4: the same, broken down by continent."""
        out: Dict[Continent, Dict[str, List[CoverageRow]]] = {}
        for continent in Continent:
            per_letter: Dict[str, List[CoverageRow]] = {}
            for letter in ROOT_LETTERS:
                sites = [
                    s
                    for s in self.catalog.of_letter(letter)
                    if s.continent is continent
                ]
                per_letter[letter] = self._rows_for(letter, sites)
            out[continent] = per_letter
        return out

    def site_map(self, letter: str) -> List[Tuple[Site, bool]]:
        """Figure 1b/11 data: every site of *letter* with observed flag."""
        covered = self.covered_sites.get(letter, set())
        return [
            (site, site.key in covered) for site in self.catalog.of_letter(letter)
        ]
