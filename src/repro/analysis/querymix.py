"""Query-composition analysis over a passive aggregate (the
broot-querymix pack's headline view).

Wraps :func:`repro.passive.querymix.synthesize_querymix` as a
registered analysis: the scenario's traffic layer supplies the
:class:`~repro.passive.querymix.QueryMixSpec` (via the config's
``traffic`` extras), the passive flow aggregate supplies the per-bucket
volume, and the analysis reports the category shares, the Zipf head and
the burst amplification the B-Root query-composition study measures.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.base import RegisteredAnalysis
from repro.passive.querymix import (
    CATEGORIES,
    QueryMixSpec,
    QueryMixSynthesis,
    synthesize_querymix,
)

#: Seed for the synthesis' example-label streams when no config rides
#: along (matches the default StudyConfig seed).
DEFAULT_SEED = 2024


class QueryMixAnalysis(RegisteredAnalysis):
    """Synthesised query composition of one passive aggregate."""

    name = "querymix"
    requires = ("aggregate", "config?")
    tables = ()

    def __init__(self, aggregate, config=None) -> None:
        self.aggregate = aggregate
        self.config = config
        spec = None
        seed = DEFAULT_SEED
        if config is not None:
            spec = config.traffic_spec().querymix
            seed = config.seed
        self.spec: QueryMixSpec = spec or QueryMixSpec()
        self.synthesis: QueryMixSynthesis = synthesize_querymix(
            aggregate, seed, self.spec
        )

    def category_shares(self) -> Dict[str, float]:
        """Fraction of all synthesised queries per category."""
        return self.synthesis.category_shares()

    def top_qnames(self, n: int = 10) -> List[Tuple[str, float]]:
        """The *n* hottest names of the Zipf head."""
        return self.synthesis.top_qnames(n)

    def burst_report(self) -> List[Dict[str, object]]:
        """Each configured burst with its observed amplification."""
        return [
            {
                "start": burst.start,
                "end": burst.end,
                "category": burst.category,
                "multiplier": burst.multiplier,
                "amplification": amplification,
            }
            for burst, amplification in self.synthesis.burst_amplification()
        ]

    def daily_series(self) -> List[Tuple[int, Dict[str, float]]]:
        """Per-bucket category counts, in time order (figure data)."""
        return [
            (
                bucket.bucket,
                {category: getattr(bucket, category) for category in CATEGORIES},
            )
            for bucket in self.synthesis.buckets
        ]
