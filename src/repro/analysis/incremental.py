"""Chunk-incremental analyses for streamed campaigns.

The cheap aggregate analyses — dataset counts, identity coverage, the
Figure 3 stability counters and the RSSAC response-latency metrics — do
not need the whole campaign in memory: each consumes a per-chunk delta
(rows, identity-count deltas, stability-counter deltas) that the
streaming checkpoint (:mod:`repro.data.chunks`) already materialises as
sealed mini datasets.  This module gives each of them an incremental
form::

    inc = create_incremental("coverage", catalog=catalog)
    for chunk in CheckpointReader(ckpt_dir).chunk_datasets():
        inc.update(chunk)
    analysis = inc.result()     # == the batch analysis over the full dataset

The fold invariant — ``update`` over *any* partition of the campaign
into round-range chunks yields exactly the batch result over the full
dataset — is what tests/analysis/test_incremental_property.py checks
with hypothesis-chosen chunk boundaries.  Incremental analyses register
here alongside the batch registry (:mod:`repro.analysis.registry`), so
drivers can ask :func:`incremental_names` which analyses can run
mid-campaign against a checkpoint directory.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.coverage import CoverageAnalysis
from repro.analysis.rssac import RssacMetrics
from repro.analysis.stability import StabilityAnalysis


class IncrementalAnalysis:
    """One analysis consumed chunk-by-chunk.

    ``update(chunk)`` folds one sealed chunk (a delta
    :class:`~repro.data.dataset.Dataset`: its row tables hold the
    chunk's rows, its stability table and identity dict hold per-chunk
    *deltas*); ``result()`` produces the same object the batch analysis
    would over the concatenated dataset.
    """

    name: str = ""

    def update(self, chunk) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class IncrementalCounts(IncrementalAnalysis):
    """The dataset-size summary (the §4.1 counts analogue), folded.

    Everything sums except ``stability_pairs``, which is the number of
    *distinct* (VP, address) pairs ever touched — a union, not a sum.
    """

    name = "counts"

    def __init__(self) -> None:
        self._totals: Dict[str, int] = {
            "rounds": 0,
            "queries": 0,
            "probe_samples": 0,
            "traceroute_samples": 0,
            "transfers": 0,
            "transfer_observations": 0,
        }
        self._pairs: set = set()

    def update(self, chunk) -> None:
        summary = chunk.summary()
        for key in self._totals:
            self._totals[key] += int(summary.get(key, 0))
        table = chunk.table("stability")
        vp = table.column("vp")
        addr = table.column("addr")
        for i in range(len(table)):
            self._pairs.add((int(vp[i]), int(addr[i])))

    def result(self) -> Dict[str, int]:
        out = dict(self._totals)
        out["stability_pairs"] = len(self._pairs)
        return out


class IncrementalCoverage(IncrementalAnalysis):
    """Identity coverage (Tables 1/4), folded over identity-count deltas."""

    name = "coverage"

    def __init__(self, catalog) -> None:
        self.catalog = catalog
        self._identities: Dict[str, Dict[str, int]] = {}

    def update(self, chunk) -> None:
        for letter, bucket in chunk.identities.items():
            target = self._identities.setdefault(letter, {})
            for identity, count in bucket.items():
                target[identity] = target.get(identity, 0) + int(count)

    def result(self) -> CoverageAnalysis:
        return CoverageAnalysis(self.catalog, self._identities)


class _StabilityView:
    """Collector-compatible shim over folded stability counters."""

    def __init__(self, addresses, counts) -> None:
        self.addresses = addresses
        self._counts = counts

    def change_counts(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        return dict(self._counts)


class IncrementalStability(IncrementalAnalysis):
    """Figure 3 change counters, folded over per-chunk counter deltas."""

    name = "stability"

    def __init__(self) -> None:
        self._counts: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._addresses: Optional[list] = None

    def update(self, chunk) -> None:
        if self._addresses is None:
            self._addresses = list(chunk.addresses)
        table = chunk.table("stability")
        vp = table.column("vp")
        addr = table.column("addr")
        changes = table.column("changes")
        rounds = table.column("rounds")
        for i in range(len(table)):
            pair = (int(vp[i]), int(addr[i]))
            prev = self._counts.get(pair, (0, 0))
            self._counts[pair] = (
                prev[0] + int(changes[i]),
                prev[1] + int(rounds[i]),
            )

    def change_counts(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        return dict(self._counts)

    def result(self) -> StabilityAnalysis:
        if self._addresses is None:
            raise ValueError("no chunks folded yet")
        return StabilityAnalysis(_StabilityView(self._addresses, self._counts))


class _RssacView:
    """Dataset shim over per-letter concatenated RTT samples.

    Row *order* within a letter does not matter to the latency metrics
    (percentiles and threshold fractions are permutation-invariant), so
    concatenating per-chunk slices is exact.
    """

    def __init__(self, addresses, columns) -> None:
        self.addresses = addresses
        self._columns = columns

    def probe_columns(self) -> Dict[str, np.ndarray]:
        return self._columns


class IncrementalRssac(IncrementalAnalysis):
    """RSSAC response latency, folded over per-chunk probe rows.

    Keeps only the two columns the latency metrics read (addr, rtt);
    chunk row tables are released after each fold.
    """

    name = "rssac"

    def __init__(self) -> None:
        self._addr: List[np.ndarray] = []
        self._rtt: List[np.ndarray] = []
        self._addresses: Optional[list] = None

    def update(self, chunk) -> None:
        if self._addresses is None:
            self._addresses = list(chunk.addresses)
        columns = chunk.probe_columns()
        self._addr.append(np.asarray(columns["addr"]).copy())
        self._rtt.append(np.asarray(columns["rtt"]).copy())

    def result(self) -> RssacMetrics:
        if self._addresses is None:
            raise ValueError("no chunks folded yet")
        addr = np.concatenate(self._addr) if self._addr else np.empty(0, np.int16)
        rtt = np.concatenate(self._rtt) if self._rtt else np.empty(0, np.float32)
        return RssacMetrics(
            _RssacView(self._addresses, {"addr": addr, "rtt": rtt})
        )


# --- registry ------------------------------------------------------------------------

_INCREMENTAL: Dict[str, Callable[..., IncrementalAnalysis]] = {}


def register_incremental(cls: type) -> type:
    """Register an incremental analysis under its ``name`` (idempotent)."""
    if not getattr(cls, "name", ""):
        raise ValueError(f"{cls.__name__} has no incremental registry name")
    existing = _INCREMENTAL.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"incremental name {cls.name!r} already registered by "
            f"{existing.__name__}"
        )
    _INCREMENTAL[cls.name] = cls
    return cls


for _cls in (
    IncrementalCounts,
    IncrementalCoverage,
    IncrementalStability,
    IncrementalRssac,
):
    register_incremental(_cls)


def incremental_names() -> List[str]:
    """Every analysis with a registered incremental form, sorted."""
    return sorted(_INCREMENTAL)


def create_incremental(name: str, **inputs: Any) -> IncrementalAnalysis:
    """Construct the incremental analysis *name* (extra inputs, e.g.
    ``catalog=`` for coverage, go to its constructor)."""
    try:
        cls = _INCREMENTAL[name]
    except KeyError:
        raise KeyError(
            f"no incremental analysis {name!r}; registered: "
            f"{', '.join(incremental_names())}"
        ) from None
    return cls(**inputs)


def run_incremental(name: str, chunks, **inputs: Any) -> Any:
    """Fold *chunks* (an iterable of sealed chunk datasets, e.g.
    ``CheckpointReader(dir).chunk_datasets()``) through the incremental
    analysis *name* and return its result."""
    inc = create_incremental(name, **inputs)
    for chunk in chunks:
        inc.update(chunk)
    return inc.result()
