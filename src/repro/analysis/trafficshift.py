"""Traffic-shift analysis around the b.root renumbering
(paper §6, Figures 7/9/12/13 and the §6 headline ratios).

Operates on passive captures (ISP or IXP), producing normalised traffic
series per service address and the in-family shift ratios.
"""

from __future__ import annotations

from repro.analysis.base import RegisteredAnalysis

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.passive.traces import FlowAggregate, TrafficTimeSeries
from repro.rss.operators import ServiceAddress, all_service_addresses, root_server
from repro.util.timeutil import Timestamp


@dataclass(frozen=True)
class ShiftRatios:
    """In-family shift ratios over a window (paper: 87.1 % / 96.3 %)."""

    v4_shifted: float
    v6_shifted: float


class TrafficShiftAnalysis(RegisteredAnalysis):
    """Normalised traffic views over one capture aggregate."""

    name = "trafficshift"
    requires = ("aggregate",)

    def __init__(self, aggregate: FlowAggregate) -> None:
        self.aggregate = aggregate
        self.addresses: List[ServiceAddress] = all_service_addresses()
        self.series = TrafficTimeSeries(aggregate, self.addresses)
        b = root_server("b")
        self.b_addresses: Dict[str, str] = {
            "V4new": b.ipv4,
            "V4old": b.old_ipv4,  # type: ignore[dict-item]
            "V6new": b.ipv6,
            "V6old": b.old_ipv6,  # type: ignore[dict-item]
        }

    # -- Figure 7 / 9 -----------------------------------------------------------------

    def broot_series(
        self, families: Tuple[int, ...] = (4, 6)
    ) -> Dict[str, List[Tuple[Timestamp, float]]]:
        """Normalised traffic across b.root's subnets (Figure 7), or only
        the IPv6 ones with ``families=(6,)`` (Figure 9)."""
        labels = [
            label
            for label in self.b_addresses
            if int(label[1]) in families
        ]
        subset = [self.b_addresses[label] for label in labels]
        shares = self.series.normalized_shares(subset)
        return {label: shares[self.b_addresses[label]] for label in labels}

    def shift_ratios(self, start: Timestamp, end: Timestamp) -> ShiftRatios:
        """In-family new/(new+old) traffic shares over a window."""
        ratios: Dict[int, float] = {}
        for family in (4, 6):
            new = self.b_addresses[f"V{family}new"]
            old = self.b_addresses[f"V{family}old"]
            share = self.series.window_share(new, start, end, [new, old])
            ratios[family] = share
        return ShiftRatios(v4_shifted=ratios[4], v6_shifted=ratios[6])

    def new_address_share_before_change(
        self, start: Timestamp, end: Timestamp
    ) -> float:
        """Traffic share of the (not yet published) new subnets across all
        four b.root subnets — the paper's 0.8 % pre-change trickle."""
        subset = list(self.b_addresses.values())
        return self.series.window_share(
            self.b_addresses["V4new"], start, end, subset
        ) + self.series.window_share(self.b_addresses["V6new"], start, end, subset)

    # -- Figures 12 / 13 ---------------------------------------------------------------

    def letter_shares(
        self, start: Timestamp, end: Timestamp
    ) -> Dict[str, float]:
        """Per-letter share of total root traffic over a window, old and
        new generations combined (Figures 12/13 stack heights)."""
        letters: Dict[str, float] = {}
        all_addrs = [sa.address for sa in self.addresses]
        for sa in self.addresses:
            share = self.series.window_share(sa.address, start, end, all_addrs)
            letters[sa.letter] = letters.get(sa.letter, 0.0) + share
        return letters

    def letter_share_series(self) -> Dict[str, List[Tuple[Timestamp, float]]]:
        """Per-letter normalised share per bucket (the stacked series)."""
        shares = self.series.normalized_shares()
        out: Dict[str, Dict[Timestamp, float]] = {}
        for sa in self.addresses:
            for bucket, value in shares[sa.address]:
                out.setdefault(sa.letter, {})[bucket] = (
                    out.get(sa.letter, {}).get(bucket, 0.0) + value
                )
        return {
            letter: sorted(series.items()) for letter, series in out.items()
        }
