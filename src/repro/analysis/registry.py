"""The uniform analysis registry.

All thirteen analyses register here under a stable name; drivers — the
CLI, the report generator, the benchmarks — look them up with
:func:`get` and construct them with :func:`run` instead of hand-wiring
constructors:

>>> from repro.analysis import registry
>>> stability = registry.run("stability", results)
>>> shift = registry.run("trafficshift", aggregate=capture)

``requires`` declares each analysis's inputs (see
:mod:`repro.analysis.base`), so :func:`runnable` can also answer "which
analyses can this results bundle feed?".
"""

from __future__ import annotations

from typing import Any, Dict, List, Type

from repro.analysis.base import Analysis, build_context
from repro.analysis.clientbehavior import ClientBehaviorAnalysis
from repro.analysis.colocation import ColocationAnalysis
from repro.analysis.coverage import CoverageAnalysis
from repro.analysis.distance import DistanceAnalysis
from repro.analysis.paths import PathAnalysis
from repro.analysis.querymix import QueryMixAnalysis
from repro.analysis.regionalrtt import RegionalRttAnalysis
from repro.analysis.rssac import RssacMetrics
from repro.analysis.rtt import RttAnalysis
from repro.analysis.stability import StabilityAnalysis
from repro.analysis.trafficshift import TrafficShiftAnalysis
from repro.analysis.variability import VariabilityAnalysis
from repro.analysis.zonemd_audit import ZonemdAudit

_REGISTRY: Dict[str, Type[Analysis]] = {}


def register(cls: Type[Analysis]) -> Type[Analysis]:
    """Register an analysis class under its ``name`` (idempotent)."""
    if not getattr(cls, "name", ""):
        raise ValueError(f"{cls.__name__} has no registry name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"analysis name {cls.name!r} already registered by {existing.__name__}"
        )
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (
    CoverageAnalysis,
    StabilityAnalysis,
    ColocationAnalysis,
    DistanceAnalysis,
    RttAnalysis,
    TrafficShiftAnalysis,
    ClientBehaviorAnalysis,
    ZonemdAudit,
    PathAnalysis,
    RssacMetrics,
    VariabilityAnalysis,
    RegionalRttAnalysis,
    QueryMixAnalysis,
):
    register(_cls)


def get(name: str) -> Type[Analysis]:
    """The analysis class registered under *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown analysis {name!r}; registered: {', '.join(names())}"
        ) from None


def names() -> List[str]:
    """Every registered analysis name, sorted."""
    return sorted(_REGISTRY)


def tables_for(name: str) -> List[str]:
    """The dataset tables analysis *name* declares (``tables`` class
    var) — what a report driver must have on disk before dispatching the
    analysis to a worker."""
    return list(getattr(get(name), "tables", ()) or ())


def run(name: str, results: Any = None, **inputs: Any) -> Any:
    """Construct the analysis *name* from a results bundle and/or
    explicit keyword inputs (e.g. ``aggregate=`` for passive analyses)."""
    return get(name).run(results, **inputs)


def runnable(results: Any = None, **inputs: Any) -> List[str]:
    """The names whose requirements *results*/*inputs* satisfy."""
    context = build_context(results, **inputs)
    return [name for name in names() if _REGISTRY[name].satisfied_by(context)]
