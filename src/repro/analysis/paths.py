"""Path-level analysis: which upstream ASes carry the requests, and at
what latency (paper §6's per-AS drill-down).

The paper explains every regional IPv4/IPv6 RTT asymmetry through path
composition: e.g. "paths via AS6939 having a lower average latency for
IPv6 (23.4 ms) than for IPv4 (221.4 ms), while AS6939 is also more
frequent for IPv6 paths".  This module computes exactly those two
quantities — per-AS path share and per-AS mean RTT — per region, letter
and family.
"""

from __future__ import annotations

from repro.analysis.base import RegisteredAnalysis

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geo.continents import Continent
from repro.vantage.node import VantagePoint

#: Pseudo-ASN bucket for peer/local (non-transit) paths.
PEER_PATH = 0


@dataclass(frozen=True)
class AsPathStats:
    """One upstream's role in a (region, letter, family) cell."""

    asn: int
    share: float  # fraction of the cell's requests through this AS
    mean_rtt_ms: float
    requests: int

    @property
    def label(self) -> str:
        return "peer/local" if self.asn == PEER_PATH else f"AS{self.asn}"


class PathAnalysis(RegisteredAnalysis):
    """Per-AS path shares and latencies over the sampled probe table."""

    name = "paths"
    requires = ("dataset", "vps")
    tables = ("probes",)

    def __init__(self, dataset, vps: List[VantagePoint]) -> None:
        self.dataset = dataset
        self.columns = dataset.probe_columns()
        continents = list(Continent)
        self._continent_list = continents
        vp_cont = np.zeros(max((vp.vp_id for vp in vps), default=0) + 1, dtype=np.int8)
        for vp in vps:
            vp_cont[vp.vp_id] = continents.index(vp.continent)
        self._vp_cont = vp_cont

    def _mask(
        self,
        continent: Optional[Continent],
        letter: Optional[str],
        family: Optional[int],
    ) -> np.ndarray:
        mask = np.ones(len(self.columns["vp"]), dtype=bool)
        if continent is not None:
            cont_idx = self._continent_list.index(continent)
            mask &= self._vp_cont[self.columns["vp"]] == cont_idx
        if letter is not None or family is not None:
            addr_ok = np.zeros(len(self.dataset.addresses), dtype=bool)
            for i, sa in enumerate(self.dataset.addresses):
                if letter is not None and sa.letter != letter:
                    continue
                if family is not None and sa.family != family:
                    continue
                addr_ok[i] = True
            mask &= addr_ok[self.columns["addr"]]
        return mask

    def as_breakdown(
        self,
        continent: Optional[Continent] = None,
        letter: Optional[str] = None,
        family: Optional[int] = None,
    ) -> List[AsPathStats]:
        """Per-AS share and mean RTT for a cell, descending by share."""
        mask = self._mask(continent, letter, family)
        transits = self.columns["transit"][mask]
        rtts = self.columns["rtt"][mask]
        total = len(transits)
        if total == 0:
            return []
        out: List[AsPathStats] = []
        for asn in np.unique(transits):
            sub = transits == asn
            out.append(
                AsPathStats(
                    asn=int(asn),
                    share=float(np.sum(sub)) / total,
                    mean_rtt_ms=float(np.mean(rtts[sub])),
                    requests=int(np.sum(sub)),
                )
            )
        out.sort(key=lambda s: -s.share)
        return out

    def share_of(
        self,
        asn: int,
        continent: Optional[Continent] = None,
        letter: Optional[str] = None,
        family: Optional[int] = None,
    ) -> float:
        """One AS's path share in a cell (0 when the cell is empty)."""
        for stats in self.as_breakdown(continent, letter, family):
            if stats.asn == asn:
                return stats.share
        return 0.0

    def family_share_contrast(
        self, asn: int, continent: Continent, letter: Optional[str] = None
    ) -> Tuple[float, float]:
        """(v4 share, v6 share) of one AS in a region — the paper's
        'AS6939 is more frequent for IPv6 paths' measurement."""
        return (
            self.share_of(asn, continent, letter, 4),
            self.share_of(asn, continent, letter, 6),
        )
