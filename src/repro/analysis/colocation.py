"""Server co-location analysis (paper §5, Figure 4 — RQ1).

Per VP and address family, collect the second-to-last traceroute hop
toward each letter; letters sharing a hop share last-hop infrastructure.
*Reduced redundancy* = (number of letters with an observed hop) − (number
of unique hops).  Hops that went unanswered are treated as unique, making
the estimate a lower bound — the paper's §5 convention.
"""

from __future__ import annotations

from repro.analysis.base import RegisteredAnalysis

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.geo.continents import Continent
from repro.vantage.node import VantagePoint


@dataclass(frozen=True)
class VpColocation:
    """One VP's co-location view for one address family."""

    vp_id: int
    family: int
    continent: Continent
    letters_observed: int
    unique_hops: int

    @property
    def reduced_redundancy(self) -> int:
        return self.letters_observed - self.unique_hops

    @property
    def max_colocated(self) -> int:
        """Letters behind the single most-shared hop cannot exceed
        reduced redundancy + 1."""
        return self.reduced_redundancy + 1


class ColocationAnalysis(RegisteredAnalysis):
    """Figure 4 and the §5 headline statistics."""

    name = "colocation"
    requires = ("dataset", "vps")
    tables = ("traceroutes",)

    def __init__(self, dataset, vps: List[VantagePoint]) -> None:
        self.dataset = dataset
        self.vps = {vp.vp_id: vp for vp in vps}
        self._views = self._build_views()

    def _build_views(self) -> List[VpColocation]:
        # Latest observed hop per (vp, address); rows are appended in
        # time order, so the last write wins.
        latest: Dict[Tuple[int, int], int] = {}
        cols = self.dataset.traceroute_columns()
        for i in range(len(cols["vp"])):
            latest[(int(cols["vp"][i]), int(cols["addr"][i]))] = int(cols["hop"][i])

        # Per (vp, family): hops across letters, current generation only
        # (old and new b.root share sites; counting both would double b).
        per_vp: Dict[Tuple[int, int], List[int]] = {}
        for (vp_id, addr_idx), hop in latest.items():
            sa = self.dataset.addresses[addr_idx]
            if sa.generation == "old":
                continue
            per_vp.setdefault((vp_id, sa.family), []).append(hop)

        views: List[VpColocation] = []
        unique_counter = -1
        for (vp_id, family), hops in sorted(per_vp.items()):
            resolved: List[int] = []
            for hop in hops:
                if hop < 0:
                    # Unanswered hop: unique by convention (lower bound).
                    resolved.append(unique_counter)
                    unique_counter -= 1
                else:
                    resolved.append(hop)
            vp = self.vps.get(vp_id)
            if vp is None:
                continue
            views.append(
                VpColocation(
                    vp_id=vp_id,
                    family=family,
                    continent=vp.continent,
                    letters_observed=len(resolved),
                    unique_hops=len(set(resolved)),
                )
            )
        return views

    # -- figure data ---------------------------------------------------------------

    def views(self) -> List[VpColocation]:
        return list(self._views)

    def histogram(
        self, continent: Continent, family: int, max_value: int = 12
    ) -> List[int]:
        """#VPs per reduced-redundancy value 0..max_value (Fig. 4 bars)."""
        counts = [0] * (max_value + 1)
        for view in self._views:
            if view.continent is not continent or view.family != family:
                continue
            counts[min(view.reduced_redundancy, max_value)] += 1
        return counts

    def average(self, continent: Continent, family: int) -> Optional[float]:
        """Mean reduced redundancy (the avg(v4)/avg(v6) figure labels)."""
        values = [
            v.reduced_redundancy
            for v in self._views
            if v.continent is continent and v.family == family
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def fraction_with_colocation(self, min_colocated: int = 2) -> float:
        """§5 headline: fraction of VPs observing >= *min_colocated*
        co-located letters (on either family)."""
        per_vp_max: Dict[int, int] = {}
        for view in self._views:
            per_vp_max[view.vp_id] = max(
                per_vp_max.get(view.vp_id, 0), view.max_colocated
            )
        if not per_vp_max:
            raise ValueError("no traceroute observations")
        hits = sum(1 for m in per_vp_max.values() if m >= min_colocated)
        return hits / len(per_vp_max)

    def max_observed_colocation(self) -> int:
        """The paper reports sites where up to 12 letters shared a hop."""
        return max((v.max_colocated for v in self._views), default=0)
