"""RTT analysis by continent, letter and address family
(paper §6, Figures 6/14/15).

Summarises the sampled request RTTs as the per-(region, letter, family)
distributions the violin/box figures plot, and computes the per-family
comparisons the paper highlights (e.g. a.root South America v4 > v6;
i.root North America v6 26 % below v4).
"""

from __future__ import annotations

from repro.analysis.base import RegisteredAnalysis

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geo.continents import Continent
from repro.rss.operators import ServiceAddress
from repro.vantage.node import VantagePoint


@dataclass(frozen=True)
class RttSummary:
    """Distribution summary for one (region, address) cell."""

    address: ServiceAddress
    continent: Continent
    count: int
    mean: float
    std: float
    p10: float
    p50: float
    p90: float

    @property
    def label(self) -> str:
        return self.address.label


class RttAnalysis(RegisteredAnalysis):
    """Figures 6/14/15 over the sampled probe table."""

    name = "rtt"
    requires = ("dataset", "vps")
    tables = ("probes",)

    def __init__(self, dataset, vps: List[VantagePoint]) -> None:
        self.dataset = dataset
        self.columns = dataset.probe_columns()
        # vp -> continent index for vectorised grouping
        continents = list(Continent)
        self._continent_list = continents
        vp_cont = np.zeros(max((vp.vp_id for vp in vps), default=0) + 1, dtype=np.int8)
        for vp in vps:
            vp_cont[vp.vp_id] = continents.index(vp.continent)
        self._vp_cont = vp_cont

    def _cell(self, address: str, continent: Continent) -> np.ndarray:
        addr_idx = self.dataset.addr_index[address]
        mask = self.columns["addr"] == addr_idx
        cont_idx = self._continent_list.index(continent)
        mask &= self._vp_cont[self.columns["vp"]] == cont_idx
        return self.columns["rtt"][mask]

    def summary(self, address: str, continent: Continent) -> Optional[RttSummary]:
        """Distribution summary, or None with no observations."""
        rtts = self._cell(address, continent)
        if len(rtts) == 0:
            return None
        sa = self.dataset.addresses[self.dataset.addr_index[address]]
        return RttSummary(
            address=sa,
            continent=continent,
            count=int(len(rtts)),
            mean=float(np.mean(rtts)),
            std=float(np.std(rtts)),
            p10=float(np.percentile(rtts, 10)),
            p50=float(np.percentile(rtts, 50)),
            p90=float(np.percentile(rtts, 90)),
        )

    def violin_bins(
        self, address: str, continent: Continent, n_bins: int = 24
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(log-spaced bin edges in ms, densities) — violin plot data."""
        rtts = self._cell(address, continent)
        if len(rtts) == 0:
            raise ValueError(f"no observations for {address} in {continent}")
        edges = np.logspace(0, 3, n_bins + 1)
        hist, _ = np.histogram(np.clip(rtts, 1.0, 1000.0), bins=edges)
        return edges, hist / hist.sum()

    def family_ratio(
        self, letter: str, continent: Continent, generation: str = "current"
    ) -> Optional[float]:
        """mean(v6) / mean(v4) for one letter in one region — the paper's
        per-family asymmetry metric (e.g. < 1 for i.root North America,
        > 2 for i.root South America)."""
        v4 = v6 = None
        for sa in self.dataset.addresses:
            if sa.letter != letter or sa.generation != generation:
                continue
            summary = self.summary(sa.address, continent)
            if summary is None:
                return None
            if sa.family == 4:
                v4 = summary.mean
            else:
                v6 = summary.mean
        if not v4 or v6 is None:
            return None
        return v6 / v4
