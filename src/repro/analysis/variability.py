"""Subset-generalisation analysis (paper §8, "Variability of the Root
Server System").

The paper's methodological conclusion: "a subset of root servers does
not generalize to the RSS or even anycast in general" — studies like
Schmidt et al.'s four-letter analysis can land far from the all-letter
picture.  This module quantifies that: for k-letter subsets, how far do
subset-level statistics (median catchment changes, median RTT, IPv6
excess) deviate from the all-letter values?
"""

from __future__ import annotations

from repro.analysis.base import RegisteredAnalysis

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.rtt import RttAnalysis
from repro.analysis.stability import StabilityAnalysis
from repro.geo.continents import Continent
from repro.rss.operators import ROOT_LETTERS
from repro.util.stats import median
from repro.vantage.node import VantagePoint


@dataclass(frozen=True)
class SubsetStats:
    """One letter subset's aggregate statistics."""

    letters: Tuple[str, ...]
    median_changes_v4: float
    median_changes_v6: float
    median_rtt_ms: Optional[float]

    @property
    def v6_excess(self) -> float:
        """v6/v4 change ratio — the RQ2 statistic a study would report."""
        return self.median_changes_v6 / max(self.median_changes_v4, 0.5)


class VariabilityAnalysis(RegisteredAnalysis):
    """How much do k-letter subsets disagree with the full RSS?"""

    name = "variability"
    requires = ("dataset", "vps")
    tables = ("probes", "stability")

    def __init__(self, dataset, vps: List[VantagePoint]) -> None:
        self.dataset = dataset
        self.vps = vps
        self.stability = StabilityAnalysis(dataset)
        self.rtt = RttAnalysis(dataset, vps)

    def _letter_median_changes(self, letter: str, family: int) -> Optional[float]:
        for series in self.stability.series_for(letter):
            if series.address.family != family:
                continue
            if series.address.generation == "old":
                continue
            return series.median_changes()
        return None

    def _letter_median_rtt(self, letter: str) -> Optional[float]:
        values: List[float] = []
        for continent in Continent:
            for sa in self.dataset.addresses:
                if sa.letter != letter or sa.generation == "old":
                    continue
                summary = self.rtt.summary(sa.address, continent)
                if summary is not None:
                    values.extend([summary.p50] * max(1, summary.count // 100))
        return median(values) if values else None

    def subset_stats(self, letters: Sequence[str]) -> SubsetStats:
        """Aggregate statistics over one letter subset."""
        changes_v4 = [
            c for c in (self._letter_median_changes(l, 4) for l in letters)
            if c is not None
        ]
        changes_v6 = [
            c for c in (self._letter_median_changes(l, 6) for l in letters)
            if c is not None
        ]
        rtts = [
            r for r in (self._letter_median_rtt(l) for l in letters) if r is not None
        ]
        if not changes_v4 or not changes_v6:
            raise ValueError(f"no stability data for subset {letters}")
        return SubsetStats(
            letters=tuple(letters),
            median_changes_v4=median(changes_v4),
            median_changes_v6=median(changes_v6),
            median_rtt_ms=median(rtts) if rtts else None,
        )

    def full_stats(self) -> SubsetStats:
        """The all-letter reference values."""
        return self.subset_stats(list(ROOT_LETTERS))

    def subset_spread(
        self, k: int, max_subsets: int = 60
    ) -> Tuple[SubsetStats, List[SubsetStats]]:
        """(full-set stats, stats for up to *max_subsets* k-subsets).

        Subsets are enumerated deterministically (lexicographic combi-
        nations, evenly strided) so results are reproducible.
        """
        if not 1 <= k <= len(ROOT_LETTERS):
            raise ValueError(f"k out of range: {k}")
        combos = list(itertools.combinations(ROOT_LETTERS, k))
        stride = max(1, len(combos) // max_subsets)
        chosen = combos[::stride][:max_subsets]
        return self.full_stats(), [self.subset_stats(c) for c in chosen]

    @staticmethod
    def relative_spread(
        full: SubsetStats, subsets: List[SubsetStats], metric: str
    ) -> Tuple[float, float]:
        """(min, max) of subset metric relative to the full-set value.

        ``metric`` is one of ``changes_v4``, ``changes_v6``, ``rtt``,
        ``v6_excess``.  A wide interval is the §8 warning sign.
        """
        def value(stats: SubsetStats) -> Optional[float]:
            if metric == "changes_v4":
                return stats.median_changes_v4
            if metric == "changes_v6":
                return stats.median_changes_v6
            if metric == "rtt":
                return stats.median_rtt_ms
            if metric == "v6_excess":
                return stats.v6_excess
            raise ValueError(f"unknown metric {metric!r}")

        reference = value(full)
        if reference is None or reference == 0:
            raise ValueError(f"no reference value for {metric!r}")
        ratios = [
            v / reference
            for v in (value(s) for s in subsets)
            if v is not None
        ]
        if not ratios:
            raise ValueError(f"no subset values for {metric!r}")
        return min(ratios), max(ratios)
