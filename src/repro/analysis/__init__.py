"""The paper's analysis pipeline.

One module per result family, mapping directly onto the paper's tables
and figures (see DESIGN.md's experiment index):

* :mod:`coverage`       — Tables 1/4, Figures 1/11 (site coverage)
* :mod:`stability`      — Figure 3 (catchment change events)
* :mod:`colocation`     — Figure 4, §5 (reduced redundancy, RQ1)
* :mod:`distance`       — Figure 5 (distance inflation)
* :mod:`rtt`            — Figures 6/14/15 (RTT by region and family)
* :mod:`trafficshift`   — Figures 7/9/12/13, §6 (b.root adoption, RQ2)
* :mod:`clientbehavior` — Figure 8 (clients/day, priming signal)
* :mod:`zonemd_audit`   — Table 2, Figure 10, §7 (integrity, RQ3)
* :mod:`report`         — plain-text rendering of all of the above

Every analysis conforms to the :class:`~repro.analysis.base.Analysis`
protocol (``name``, ``requires``, ``tables``, ``run(results)``) and is
reachable by name through :mod:`repro.analysis.registry` — the CLI,
report generator and benchmarks construct analyses only through that
registry.  Analyses consume a :class:`repro.data.Dataset` (live-sealed
or reloaded from a saved directory) through a typed
:class:`~repro.analysis.base.AnalysisContext`;
:mod:`repro.analysis.summaries` defines each analysis's canonical text
output (what ``rootsim-analyze`` prints).
"""

from repro.analysis.base import Analysis, AnalysisContext, RegisteredAnalysis
from repro.analysis.coverage import CoverageAnalysis, CoverageRow
from repro.analysis.stability import StabilityAnalysis
from repro.analysis.colocation import ColocationAnalysis
from repro.analysis.distance import DistanceAnalysis
from repro.analysis.rtt import RttAnalysis
from repro.analysis.trafficshift import TrafficShiftAnalysis
from repro.analysis.clientbehavior import ClientBehaviorAnalysis
from repro.analysis.zonemd_audit import ZonemdAudit
from repro.analysis.paths import PathAnalysis
from repro.analysis.rssac import RssacMetrics
from repro.analysis.variability import VariabilityAnalysis
from repro.analysis import registry

__all__ = [
    "Analysis",
    "AnalysisContext",
    "RegisteredAnalysis",
    "registry",
    "PathAnalysis",
    "RssacMetrics",
    "VariabilityAnalysis",
    "CoverageAnalysis",
    "CoverageRow",
    "StabilityAnalysis",
    "ColocationAnalysis",
    "DistanceAnalysis",
    "RttAnalysis",
    "TrafficShiftAnalysis",
    "ClientBehaviorAnalysis",
    "ZonemdAudit",
]
