"""Canonical summaries, one per registered analysis — text and JSON.

``rootsim-analyze DIR <name>`` prints exactly what
:func:`render_summary` returns, and the dataset round-trip tests compare
these strings between a live study and a reloaded dataset — so this
module is the definition of "byte-identical analysis output" across the
save/load boundary.

The renderings reuse :mod:`repro.analysis.report` wherever a paper
artefact exists; the few analyses without a dedicated report function
(rssac, variability) get compact tables here.

The JSON side is the same contract, one layer down:
:func:`analysis_document` builds one canonical JSON-able document per
analysis (headline numbers plus the text summary) and
:func:`canonical_json_bytes` fixes its byte encoding (sorted keys,
compact separators, UTF-8).  ``rootsim-analyze --json`` and every
``repro.serving`` analysis endpoint emit exactly these bytes, which is
what makes the served responses equivalence-testable against the CLI —
and makes them exact ETag material.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

from repro.analysis import report
from repro.geo.continents import Continent
from repro.rss.operators import root_server
from repro.util.tables import Table

#: Analyses that consume a passive capture aggregate instead of the
#: campaign dataset (see :func:`passive_aggregate`).
PASSIVE_ANALYSES = ("trafficshift", "clientbehavior", "querymix")

#: The ISP capture window reportgen uses for Figures 7/8/12 (the
#: canonical definition lives in :mod:`repro.passive.recipes`).
from repro.passive.recipes import ISP_WINDOW as PASSIVE_WINDOW  # noqa: E402


def passive_aggregate(seed: int, engine: str = "vectorized", traffic=None):
    """The deterministic ISP capture aggregate for *seed*.

    This is the exact aggregate ``rootsim-report`` feeds the passive
    analyses (same window, same RNG streams), rebuilt without any
    campaign simulation.  Delegates to
    :func:`repro.passive.recipes.isp_aggregate`; *traffic* (a scenario's
    :class:`~repro.scenarios.specs.TrafficSpec`) overrides the capture
    population.  Datasets saved with passive tables carry the identical
    aggregate on disk instead (``dataset.passive.aggregate("isp")``).
    """
    from repro.passive.recipes import isp_aggregate

    return isp_aggregate(seed, engine=engine, traffic=traffic)


def _render_coverage(coverage) -> str:
    total, unmapped = coverage.observed_identifier_count()
    header = f"{total} identifiers observed, {unmapped} unmapped"
    return "\n\n".join(
        [header, report.render_table1(coverage), report.render_table4(coverage)]
    )


def _render_stability(stability) -> str:
    return report.render_figure3(stability)


def _render_colocation(colocation) -> str:
    return report.render_figure4(colocation)


def _render_distance(distance) -> str:
    b = root_server("b")
    m = root_server("m")
    return report.render_figure5(distance, [b.ipv4, b.ipv6, m.ipv4, m.ipv6])


def _render_rtt(rtt) -> str:
    addresses = [sa.address for sa in rtt.dataset.addresses]
    return report.render_figure6(
        rtt,
        [
            Continent.AFRICA,
            Continent.SOUTH_AMERICA,
            Continent.NORTH_AMERICA,
            Continent.EUROPE,
        ],
        addresses,
        {},
    )


def _render_paths(paths) -> str:
    return "\n\n".join(
        report.render_path_breakdown(paths, continent, "i")
        for continent in (Continent.SOUTH_AMERICA, Continent.NORTH_AMERICA)
    )


def _render_zonemd(audit) -> str:
    findings, valid = audit.validate_transfers()
    return report.render_table2(findings, valid)


def _render_rssac(metrics) -> str:
    table = Table(["Root", "n", "p50 ms", "p95 ms", "<=250ms %"], float_digits=2)
    for latency in metrics.all_response_latencies():
        table.add_row(
            [
                latency.letter,
                latency.samples,
                latency.p50_ms,
                latency.p95_ms,
                100.0 * latency.within_threshold,
            ]
        )
    return table.render("RSSAC047 response latency per letter")


def _render_variability(variability) -> str:
    full, subsets = variability.subset_spread(4, max_subsets=6)
    lines = [
        "Variability of k=4 letter subsets vs the full RSS",
        f"full RSS: median changes v4={full.median_changes_v4:g} "
        f"v6={full.median_changes_v6:g} v6-excess={full.v6_excess:.2f}",
    ]
    for metric in ("changes_v4", "changes_v6", "v6_excess"):
        low, high = variability.relative_spread(full, subsets, metric)
        lines.append(f"  {metric}: subset/full spread {low:.2f}x .. {high:.2f}x")
    return "\n".join(lines)


def _render_trafficshift(shift) -> str:
    from repro.util.timeutil import parse_ts

    series = report.render_traffic_series(
        f"Figure 7: ISP b.root traffic ({PASSIVE_WINDOW[0]} .. {PASSIVE_WINDOW[1]})",
        shift.broot_series(),
    )
    ratios = shift.shift_ratios(
        parse_ts(PASSIVE_WINDOW[0]), parse_ts(PASSIVE_WINDOW[1])
    )
    footer = (
        f"in-family shift: v4 {100 * ratios.v4_shifted:.1f}% "
        f"v6 {100 * ratios.v6_shifted:.1f}%"
    )
    return "\n".join([series, footer])


def _render_clientbehavior(behavior) -> str:
    return "\n\n".join(
        report.render_figure8(behavior, family) for family in (4, 6)
    )


def _render_querymix(querymix) -> str:
    shares = querymix.category_shares()
    lines = [
        "Query composition (synthesised over the ISP aggregate)",
        "  "
        + "  ".join(
            f"{category}={100 * share:.1f}%"
            for category, share in shares.items()
        ),
    ]
    table = Table(["QNAME", "queries"], float_digits=0)
    for qname, count in querymix.top_qnames(10):
        table.add_row([qname, count])
    lines.append(table.render("Top query names (Zipf head)"))
    for burst in querymix.burst_report():
        lines.append(
            f"burst {burst['start']}..{burst['end']} "
            f"({burst['category']} x{burst['multiplier']:g}): "
            f"observed amplification {burst['amplification']:.2f}x"
        )
    return "\n".join(lines)


def _render_regional_rtt(regional) -> str:
    table = Table(["Region", "family", "n", "mean ms", "p50 ms", "p90 ms"],
                  float_digits=1)
    for region, cells in regional.regional_summary().items():
        for family in (4, 6):
            cell = cells.get(family)
            if cell is None:
                continue
            table.add_row(
                [region, f"v{family}", cell.count, cell.mean, cell.p50, cell.p90]
            )
    lines = [table.render("f.root RTT per region")]
    monthly = regional.monthly_medians()
    if monthly:
        lines.append("Monthly median RTT (v4):")
        for region, series in monthly.items():
            points = "  ".join(f"{month}={median:.1f}ms" for month, median, _n in series)
            lines.append(f"  {region}: {points}")
    stages = regional.buildout_stages()
    if stages:
        lines.append(
            "build-out: "
            + ", ".join(f"{s['label']} @ {s['start']}" for s in stages)
        )
    return "\n".join(lines)


_RENDERERS: Dict[str, Any] = {
    "coverage": _render_coverage,
    "stability": _render_stability,
    "colocation": _render_colocation,
    "distance": _render_distance,
    "rtt": _render_rtt,
    "paths": _render_paths,
    "zonemd_audit": _render_zonemd,
    "rssac": _render_rssac,
    "variability": _render_variability,
    "trafficshift": _render_trafficshift,
    "clientbehavior": _render_clientbehavior,
    "querymix": _render_querymix,
    "regional_rtt": _render_regional_rtt,
}


def summary_names() -> List[str]:
    """Every analysis name with a canonical summary (all of them)."""
    return sorted(_RENDERERS)


def render_summary(name: str, analysis: Any) -> str:
    """The canonical text summary of one constructed analysis."""
    try:
        renderer = _RENDERERS[name]
    except KeyError:
        raise KeyError(
            f"no summary renderer for analysis {name!r}; "
            f"known: {', '.join(summary_names())}"
        ) from None
    return renderer(analysis)


# --- canonical JSON documents -------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """*value* with numpy scalars/arrays reduced to plain Python types
    (canonical JSON must not depend on who computed it)."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()
    return value


def canonical_json_bytes(document: Dict[str, Any]) -> bytes:
    """The one byte encoding of a JSON document this repo serves:
    sorted keys, compact separators, UTF-8, no trailing newline."""
    return json.dumps(
        _jsonable(document), sort_keys=True, separators=(",", ":"),
        ensure_ascii=False,
    ).encode("utf-8")


def _data_coverage(coverage) -> Dict[str, Any]:
    total, unmapped = coverage.observed_identifier_count()
    return {"identifiers_observed": total, "unmapped": unmapped}


def _data_stability(stability) -> Dict[str, Any]:
    return {
        "median_changes": {
            "b_v4_new": stability.median_changes("b", 4, "new"),
            "g_v4": stability.median_changes("g", 4),
            "g_v6": stability.median_changes("g", 6),
        },
        "letters_with_v6_excess": stability.letters_with_v6_excess(),
    }


def _data_colocation(colocation) -> Dict[str, Any]:
    return {
        "fraction_with_colocation": colocation.fraction_with_colocation(),
        "max_observed_colocation": colocation.max_observed_colocation(),
    }


def _data_zonemd(audit) -> Dict[str, Any]:
    findings, valid = audit.validate_transfers()
    return {"valid_transfers": valid, "finding_groups": len(findings)}


def _data_rssac(metrics) -> Dict[str, Any]:
    return {
        "response_latency": [
            {
                "letter": latency.letter,
                "samples": latency.samples,
                "p50_ms": latency.p50_ms,
                "p95_ms": latency.p95_ms,
                "within_threshold": latency.within_threshold,
            }
            for latency in metrics.all_response_latencies()
        ]
    }


def _data_variability(variability) -> Dict[str, Any]:
    full, subsets = variability.subset_spread(4, max_subsets=6)
    spreads = {}
    for metric in ("changes_v4", "changes_v6", "v6_excess"):
        low, high = variability.relative_spread(full, subsets, metric)
        spreads[metric] = {"low": low, "high": high}
    return {
        "full": {
            "median_changes_v4": full.median_changes_v4,
            "median_changes_v6": full.median_changes_v6,
            "v6_excess": full.v6_excess,
        },
        "subset_spread": spreads,
    }


def _data_trafficshift(shift) -> Dict[str, Any]:
    from repro.util.timeutil import parse_ts

    ratios = shift.shift_ratios(
        parse_ts(PASSIVE_WINDOW[0]), parse_ts(PASSIVE_WINDOW[1])
    )
    return {
        "window": list(PASSIVE_WINDOW),
        "in_family_shift": {"v4": ratios.v4_shifted, "v6": ratios.v6_shifted},
    }


def _data_clientbehavior(behavior) -> Dict[str, Any]:
    return {
        "by_family": {
            str(family): {
                address: {
                    "mean_clients_per_day": dist.mean_clients_per_day(),
                    "single_daily_contact":
                        dist.fraction_single_daily_contact(),
                }
                for address, dist in sorted(behavior.by_family(family).items())
            }
            for family in (4, 6)
        }
    }


def _data_querymix(querymix) -> Dict[str, Any]:
    return {
        "category_shares": dict(querymix.category_shares()),
        "top_qnames": [
            {"qname": qname, "queries": count}
            for qname, count in querymix.top_qnames(10)
        ],
        "bursts": [dict(burst) for burst in querymix.burst_report()],
    }


def _data_regional_rtt(regional) -> Dict[str, Any]:
    cells = {}
    for region, families in regional.regional_summary().items():
        cells[region] = {
            f"v{family}": {
                "count": cell.count,
                "mean_ms": cell.mean,
                "p50_ms": cell.p50,
                "p90_ms": cell.p90,
            }
            for family, cell in sorted(families.items())
            if cell is not None
        }
    return {"regions": cells, "buildout_stages": regional.buildout_stages()}


#: Structured headline data per analysis, folded into the canonical JSON
#: document next to the text summary.  Analyses without an entry (the
#: figure-shaped ones: distance, rtt, paths) carry their text alone.
_JSON_DATA: Dict[str, Callable[[Any], Dict[str, Any]]] = {
    "coverage": _data_coverage,
    "stability": _data_stability,
    "colocation": _data_colocation,
    "zonemd_audit": _data_zonemd,
    "rssac": _data_rssac,
    "variability": _data_variability,
    "trafficshift": _data_trafficshift,
    "clientbehavior": _data_clientbehavior,
    "querymix": _data_querymix,
    "regional_rtt": _data_regional_rtt,
}


def render_json(name: str, analysis: Any) -> Dict[str, Any]:
    """The canonical JSON document of one constructed analysis."""
    document: Dict[str, Any] = {"analysis": name}
    builder = _JSON_DATA.get(name)
    if builder is not None:
        document["data"] = builder(analysis)
    document["summary"] = render_summary(name, analysis)
    return document


def analysis_inputs(dataset, name: str) -> Dict[str, Any]:
    """The explicit inputs analysis *name* needs beyond the dataset.

    Passive analyses consume a capture aggregate: replayed from the
    dataset's passive tables when present, rebuilt from the recorded
    study seed otherwise (pure function of the seed — no campaign
    stage).  Shared by ``rootsim-analyze`` and the serving layer so both
    construct the analysis from identical inputs.
    """
    if name not in PASSIVE_ANALYSES:
        return {}
    passive = dataset.passive
    if passive is not None and "isp" in passive.names():
        return {"aggregate": passive.aggregate("isp")}
    config = dataset.study_config()
    return {
        "aggregate": passive_aggregate(
            config.seed, traffic=config.traffic_spec()
        )
    }


def analysis_document(dataset, name: str, inputs: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Run analysis *name* against *dataset* and build its canonical
    JSON document (:class:`KeyError` for unknown names,
    :class:`~repro.data.schema.DatasetError` for missing tables)."""
    from repro.analysis import registry

    if inputs is None:
        inputs = analysis_inputs(dataset, name)
    return render_json(name, registry.run(name, dataset, **inputs))


def analysis_json_bytes(dataset, name: str, inputs: Optional[Dict[str, Any]] = None) -> bytes:
    """The exact bytes ``rootsim-analyze --json`` prints and the serving
    layer returns for analysis *name* over *dataset*."""
    return canonical_json_bytes(analysis_document(dataset, name, inputs))
