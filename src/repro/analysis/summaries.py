"""Canonical plain-text summaries, one per registered analysis.

``rootsim-analyze DIR <name>`` prints exactly what
:func:`render_summary` returns, and the dataset round-trip tests compare
these strings between a live study and a reloaded dataset — so this
module is the definition of "byte-identical analysis output" across the
save/load boundary.

The renderings reuse :mod:`repro.analysis.report` wherever a paper
artefact exists; the few analyses without a dedicated report function
(rssac, variability) get compact tables here.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.analysis import report
from repro.geo.continents import Continent
from repro.rss.operators import root_server
from repro.util.tables import Table

#: Analyses that consume a passive capture aggregate instead of the
#: campaign dataset (see :func:`passive_aggregate`).
PASSIVE_ANALYSES = ("trafficshift", "clientbehavior", "querymix")

#: The ISP capture window reportgen uses for Figures 7/8/12 (the
#: canonical definition lives in :mod:`repro.passive.recipes`).
from repro.passive.recipes import ISP_WINDOW as PASSIVE_WINDOW  # noqa: E402


def passive_aggregate(seed: int, engine: str = "vectorized", traffic=None):
    """The deterministic ISP capture aggregate for *seed*.

    This is the exact aggregate ``rootsim-report`` feeds the passive
    analyses (same window, same RNG streams), rebuilt without any
    campaign simulation.  Delegates to
    :func:`repro.passive.recipes.isp_aggregate`; *traffic* (a scenario's
    :class:`~repro.scenarios.specs.TrafficSpec`) overrides the capture
    population.  Datasets saved with passive tables carry the identical
    aggregate on disk instead (``dataset.passive.aggregate("isp")``).
    """
    from repro.passive.recipes import isp_aggregate

    return isp_aggregate(seed, engine=engine, traffic=traffic)


def _render_coverage(coverage) -> str:
    total, unmapped = coverage.observed_identifier_count()
    header = f"{total} identifiers observed, {unmapped} unmapped"
    return "\n\n".join(
        [header, report.render_table1(coverage), report.render_table4(coverage)]
    )


def _render_stability(stability) -> str:
    return report.render_figure3(stability)


def _render_colocation(colocation) -> str:
    return report.render_figure4(colocation)


def _render_distance(distance) -> str:
    b = root_server("b")
    m = root_server("m")
    return report.render_figure5(distance, [b.ipv4, b.ipv6, m.ipv4, m.ipv6])


def _render_rtt(rtt) -> str:
    addresses = [sa.address for sa in rtt.dataset.addresses]
    return report.render_figure6(
        rtt,
        [
            Continent.AFRICA,
            Continent.SOUTH_AMERICA,
            Continent.NORTH_AMERICA,
            Continent.EUROPE,
        ],
        addresses,
        {},
    )


def _render_paths(paths) -> str:
    return "\n\n".join(
        report.render_path_breakdown(paths, continent, "i")
        for continent in (Continent.SOUTH_AMERICA, Continent.NORTH_AMERICA)
    )


def _render_zonemd(audit) -> str:
    findings, valid = audit.validate_transfers()
    return report.render_table2(findings, valid)


def _render_rssac(metrics) -> str:
    table = Table(["Root", "n", "p50 ms", "p95 ms", "<=250ms %"], float_digits=2)
    for latency in metrics.all_response_latencies():
        table.add_row(
            [
                latency.letter,
                latency.samples,
                latency.p50_ms,
                latency.p95_ms,
                100.0 * latency.within_threshold,
            ]
        )
    return table.render("RSSAC047 response latency per letter")


def _render_variability(variability) -> str:
    full, subsets = variability.subset_spread(4, max_subsets=6)
    lines = [
        "Variability of k=4 letter subsets vs the full RSS",
        f"full RSS: median changes v4={full.median_changes_v4:g} "
        f"v6={full.median_changes_v6:g} v6-excess={full.v6_excess:.2f}",
    ]
    for metric in ("changes_v4", "changes_v6", "v6_excess"):
        low, high = variability.relative_spread(full, subsets, metric)
        lines.append(f"  {metric}: subset/full spread {low:.2f}x .. {high:.2f}x")
    return "\n".join(lines)


def _render_trafficshift(shift) -> str:
    from repro.util.timeutil import parse_ts

    series = report.render_traffic_series(
        f"Figure 7: ISP b.root traffic ({PASSIVE_WINDOW[0]} .. {PASSIVE_WINDOW[1]})",
        shift.broot_series(),
    )
    ratios = shift.shift_ratios(
        parse_ts(PASSIVE_WINDOW[0]), parse_ts(PASSIVE_WINDOW[1])
    )
    footer = (
        f"in-family shift: v4 {100 * ratios.v4_shifted:.1f}% "
        f"v6 {100 * ratios.v6_shifted:.1f}%"
    )
    return "\n".join([series, footer])


def _render_clientbehavior(behavior) -> str:
    return "\n\n".join(
        report.render_figure8(behavior, family) for family in (4, 6)
    )


def _render_querymix(querymix) -> str:
    shares = querymix.category_shares()
    lines = [
        "Query composition (synthesised over the ISP aggregate)",
        "  "
        + "  ".join(
            f"{category}={100 * share:.1f}%"
            for category, share in shares.items()
        ),
    ]
    table = Table(["QNAME", "queries"], float_digits=0)
    for qname, count in querymix.top_qnames(10):
        table.add_row([qname, count])
    lines.append(table.render("Top query names (Zipf head)"))
    for burst in querymix.burst_report():
        lines.append(
            f"burst {burst['start']}..{burst['end']} "
            f"({burst['category']} x{burst['multiplier']:g}): "
            f"observed amplification {burst['amplification']:.2f}x"
        )
    return "\n".join(lines)


def _render_regional_rtt(regional) -> str:
    table = Table(["Region", "family", "n", "mean ms", "p50 ms", "p90 ms"],
                  float_digits=1)
    for region, cells in regional.regional_summary().items():
        for family in (4, 6):
            cell = cells.get(family)
            if cell is None:
                continue
            table.add_row(
                [region, f"v{family}", cell.count, cell.mean, cell.p50, cell.p90]
            )
    lines = [table.render("f.root RTT per region")]
    monthly = regional.monthly_medians()
    if monthly:
        lines.append("Monthly median RTT (v4):")
        for region, series in monthly.items():
            points = "  ".join(f"{month}={median:.1f}ms" for month, median, _n in series)
            lines.append(f"  {region}: {points}")
    stages = regional.buildout_stages()
    if stages:
        lines.append(
            "build-out: "
            + ", ".join(f"{s['label']} @ {s['start']}" for s in stages)
        )
    return "\n".join(lines)


_RENDERERS: Dict[str, Any] = {
    "coverage": _render_coverage,
    "stability": _render_stability,
    "colocation": _render_colocation,
    "distance": _render_distance,
    "rtt": _render_rtt,
    "paths": _render_paths,
    "zonemd_audit": _render_zonemd,
    "rssac": _render_rssac,
    "variability": _render_variability,
    "trafficshift": _render_trafficshift,
    "clientbehavior": _render_clientbehavior,
    "querymix": _render_querymix,
    "regional_rtt": _render_regional_rtt,
}


def summary_names() -> List[str]:
    """Every analysis name with a canonical summary (all of them)."""
    return sorted(_RENDERERS)


def render_summary(name: str, analysis: Any) -> str:
    """The canonical text summary of one constructed analysis."""
    try:
        renderer = _RENDERERS[name]
    except KeyError:
        raise KeyError(
            f"no summary renderer for analysis {name!r}; "
            f"known: {', '.join(summary_names())}"
        ) from None
    return renderer(analysis)
