"""RSSAC047-style service metrics.

RSSAC037 (the governance model the paper's intro cites) and RSSAC047
define the measurable service levels of the root server system.  Three
of them fall naturally out of this simulation and complement the paper's
analyses:

* **response latency** — per letter, the distribution of query RTTs
  (RSSAC047 threshold: correct responses within 250 ms for UDP),
* **publication latency** — how long after a zone publication every
  site serves the new serial (staleness faults violate this),
* **serial currency** — the fraction of observed transfers serving the
  newest (or immediately previous) publication.
"""

from __future__ import annotations

from repro.analysis.base import RegisteredAnalysis

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.transfers import TransferRecord
from repro.rss.operators import ROOT_LETTERS
from repro.util.timeutil import Timestamp
from repro.zone.distribution import ZoneDistributor
from repro.zone.serial import serial_compare

#: RSSAC047's UDP response-time threshold.
RESPONSE_LATENCY_THRESHOLD_MS = 250.0


@dataclass(frozen=True)
class ResponseLatency:
    """Per-letter response latency metrics."""

    letter: str
    samples: int
    p50_ms: float
    p95_ms: float
    within_threshold: float  # fraction <= 250 ms


class RssacMetrics(RegisteredAnalysis):
    """Service metrics over a campaign's samples."""

    name = "rssac"
    requires = ("dataset", "distributor?")
    tables = ("probes",)

    def __init__(
        self, dataset, distributor: Optional[ZoneDistributor] = None
    ) -> None:
        self.dataset = dataset
        self.distributor = distributor
        self.columns = dataset.probe_columns()

    # -- response latency ---------------------------------------------------------

    def response_latency(self, letter: str) -> Optional[ResponseLatency]:
        """RTT distribution for one letter (current-generation address)."""
        addr_ok = np.zeros(len(self.dataset.addresses), dtype=bool)
        for i, sa in enumerate(self.dataset.addresses):
            if sa.letter == letter and sa.generation != "old":
                addr_ok[i] = True
        mask = addr_ok[self.columns["addr"]]
        rtts = self.columns["rtt"][mask]
        if len(rtts) == 0:
            return None
        return ResponseLatency(
            letter=letter,
            samples=int(len(rtts)),
            p50_ms=float(np.percentile(rtts, 50)),
            p95_ms=float(np.percentile(rtts, 95)),
            within_threshold=float(np.mean(rtts <= RESPONSE_LATENCY_THRESHOLD_MS)),
        )

    def all_response_latencies(self) -> List[ResponseLatency]:
        out = []
        for letter in ROOT_LETTERS:
            metrics = self.response_latency(letter)
            if metrics is not None:
                out.append(metrics)
        return out

    # -- publication latency -------------------------------------------------------

    def publication_latency(
        self, site_keys: List[str], at_ts: Timestamp
    ) -> Dict[str, Optional[int]]:
        """Per site: seconds behind the newest publication at *at_ts*
        (None = the site is frozen and arbitrarily stale)."""
        if self.distributor is None:
            raise RuntimeError("publication latency needs the distributor")
        newest_ts, _edition = self.distributor.latest_publication(at_ts)
        out: Dict[str, Optional[int]] = {}
        for site_key in site_keys:
            if self.distributor.is_frozen(site_key):
                out[site_key] = None
                continue
            pub = self.distributor.site_publication(site_key, at_ts)
            out[site_key] = max(0, newest_ts - pub.publication_ts)
        return out

    # -- serial currency ----------------------------------------------------------------

    def serial_currency(
        self, transfers: List[TransferRecord], allowed_lag: int = 2
    ) -> Tuple[float, List[TransferRecord]]:
        """(fraction current, stale observations).

        A transfer is *current* if its serial is within *allowed_lag*
        publications of the newest at observation time.
        """
        if self.distributor is None:
            raise RuntimeError("serial currency needs the distributor")
        if not transfers:
            raise ValueError("no transfer observations")
        stale: List[TransferRecord] = []
        current = 0
        for obs in transfers:
            newest_ts, edition = self.distributor.latest_publication(obs.true_ts)
            newest_zone = self.distributor.zone_for_publication(newest_ts, edition)
            if serial_compare(obs.serial, newest_zone.serial) >= 0:
                current += 1
                continue
            # Walk back up to allowed_lag publications.
            behind = 0
            ts = newest_ts - 1
            ok = False
            while behind < allowed_lag:
                prev_ts, prev_edition = self.distributor.latest_publication(ts)
                prev_zone = self.distributor.zone_for_publication(prev_ts, prev_edition)
                if obs.serial == prev_zone.serial:
                    ok = True
                    break
                behind += 1
                ts = prev_ts - 1
            if ok:
                current += 1
            else:
                stale.append(obs)
        return current / len(transfers), stale
