"""Distance inflation analysis (paper §6, Figure 5).

For each sampled request: the great-circle distance to the *closest
global* site of the letter versus the distance to the site the request
was actually routed to.  Requests on the diagonal reached their closest
global replica; below it, a closer local replica; above it, a more
distant (inflated) one.
"""

from __future__ import annotations

from repro.analysis.base import RegisteredAnalysis

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rss.operators import ServiceAddress


@dataclass(frozen=True)
class DistanceGrid:
    """Figure 5 heatmap: % of observations per (closest, actual) bin."""

    address: ServiceAddress
    bin_km: float
    #: (closest_bin, actual_bin) -> percentage of observations
    cells: Dict[Tuple[int, int], float]
    observations: int


class DistanceAnalysis(RegisteredAnalysis):
    """Distance statistics over the sampled probe table."""

    name = "distance"
    requires = ("dataset",)
    tables = ("probes",)

    def __init__(self, dataset) -> None:
        self.dataset = dataset
        self.columns = dataset.probe_columns()

    def _mask_for(self, address: str) -> np.ndarray:
        addr_idx = self.dataset.addr_index[address]
        return self.columns["addr"] == addr_idx

    def grid(self, address: str, bin_km: float = 500.0) -> DistanceGrid:
        """The Figure 5 heatmap for one service address."""
        mask = self._mask_for(address)
        closest = self.columns["closest_km"][mask]
        actual = self.columns["direct_km"][mask]
        n = len(closest)
        if n == 0:
            raise ValueError(f"no observations for {address}")
        cells: Dict[Tuple[int, int], int] = {}
        cbins = (closest / bin_km).astype(np.int64)
        abins = (actual / bin_km).astype(np.int64)
        for cb, ab in zip(cbins.tolist(), abins.tolist()):
            cells[(cb, ab)] = cells.get((cb, ab), 0) + 1
        sa = self.dataset.addresses[self.dataset.addr_index[address]]
        return DistanceGrid(
            address=sa,
            bin_km=bin_km,
            cells={k: 100.0 * v / n for k, v in cells.items()},
            observations=n,
        )

    def fraction_optimal(self, address: str, slack_km: float = 100.0) -> float:
        """Share of requests routed to the closest global site or closer
        (paper: 78-82 % for b.root and m.root)."""
        mask = self._mask_for(address)
        closest = self.columns["closest_km"][mask]
        actual = self.columns["direct_km"][mask]
        if len(closest) == 0:
            raise ValueError(f"no observations for {address}")
        return float(np.mean(actual <= closest + slack_km))

    def per_client_extra_distance(self, address: str) -> List[float]:
        """Per VP: mean additional distance (actual − closest), clamped at
        zero (a closer local replica is not a penalty).  Basis for the
        paper's '79.5 % of clients see < 1,000 km extra' statistic."""
        mask = self._mask_for(address)
        vps = self.columns["vp"][mask]
        extra = np.maximum(
            self.columns["direct_km"][mask] - self.columns["closest_km"][mask], 0.0
        )
        out: Dict[int, List[float]] = {}
        for vp_id, value in zip(vps.tolist(), extra.tolist()):
            out.setdefault(vp_id, []).append(value)
        return [sum(vals) / len(vals) for vals in out.values()]

    def fraction_clients_under(self, address: str, km: float = 1000.0) -> float:
        """Fraction of clients whose mean extra distance is below *km*."""
        extras = self.per_client_extra_distance(address)
        if not extras:
            raise ValueError(f"no observations for {address}")
        return sum(1 for e in extras if e < km) / len(extras)
