"""The ``Analysis`` protocol and the shared construction machinery.

Every analysis class declares

* ``name`` — its registry key (``repro.analysis.registry.get(name)``),
* ``requires`` — the input keys its constructor takes, positionally
  (a trailing ``?`` marks an optional input, passed as ``None`` when
  absent),
* ``tables`` — the dataset tables it reads, checked up front against the
  dataset it is handed (:meth:`repro.data.Dataset.require_tables`),

and inherits :class:`RegisteredAnalysis.run`, which resolves those keys
against an :class:`AnalysisContext` and instantiates the class.  Drivers
— the CLI, the report generator, the benchmarks — construct analyses
only through this surface, never by hand-wiring constructors.

The context is *typed*: it accepts a
:class:`~repro.core.results.StudyResults` bundle, a
:class:`~repro.data.Dataset` (live-sealed or reloaded from a directory),
or a bare :class:`~repro.vantage.collector.CampaignCollector`, and
raises an explicit ``TypeError`` for anything else — no ``hasattr``
guessing.  Reloaded datasets resolve seed-deterministic inputs
(``vps``, ``catalog``, ``config``) from their recorded study
fingerprint; transfer sealing stays lazy so analyses that never touch
transfers never pay for zone cryptography.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterator,
    List,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.data.dataset import Dataset

#: Input keys an analysis may require from a study-results bundle
#: (everything else must be passed explicitly, e.g. a passive-capture
#: ``aggregate``).
BUNDLE_KEYS: Tuple[str, ...] = (
    "vps",
    "catalog",
    "fabric",
    "distributor",
    "deployments",
    "schedule",
    "config",
    "fault_plan",
)

#: Bundle keys a reloaded dataset can re-derive from its recorded study
#: fingerprint (pure functions of the seed; no simulation stage runs).
SEED_DERIVED_KEYS: Tuple[str, ...] = ("vps", "catalog", "config")


class AnalysisContext:
    """Typed resolution of analysis inputs.

    Values resolve lazily: asking whether a key is available
    (``key in context``) is cheap, and expensive derivations — sealing
    the transfer table, rebuilding the VP ring from a dataset's study
    fingerprint — only run when an analysis actually requires the key.
    """

    def __init__(self, results: Any = None, **inputs: Any) -> None:
        self._values: Dict[str, Any] = dict(inputs)
        self._providers: Dict[str, Callable[[], Any]] = {}
        if results is None:
            return

        from repro.core.results import StudyResults
        from repro.vantage.collector import CampaignCollector

        if isinstance(results, StudyResults):
            dataset = results.dataset
            for key in BUNDLE_KEYS:
                self._values.setdefault(key, getattr(results, key))
        elif isinstance(results, Dataset):
            dataset = results
            if dataset.study is not None:
                for key in SEED_DERIVED_KEYS:
                    self._providers.setdefault(
                        key, lambda key=key: dataset.study_inputs()[key]
                    )
        elif isinstance(results, CampaignCollector):
            dataset = Dataset.from_collector(results)
        else:
            raise TypeError(
                f"cannot build an analysis context from {type(results).__name__}; "
                f"expected StudyResults, Dataset, or CampaignCollector"
            )

        self._values.setdefault("dataset", dataset)
        if dataset.has_table("identities"):
            self._providers.setdefault("identities", lambda: dataset.identities)
        if dataset.has_table("transfers"):
            # Lazy: sealing runs zone cryptography on first access.
            self._providers.setdefault("transfers", lambda: dataset.transfers)

    def __contains__(self, key: str) -> bool:
        return key in self._values or key in self._providers

    def __getitem__(self, key: str) -> Any:
        if key in self._values:
            return self._values[key]
        provider = self._providers.get(key)
        if provider is None:
            raise KeyError(key)
        self._values[key] = provider()
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def keys(self) -> List[str]:
        """Every resolvable input key, sorted."""
        return sorted(set(self._values) | set(self._providers))


def build_context(results: Any = None, **inputs: Any) -> AnalysisContext:
    """Resolve the available analysis inputs.

    *results* may be a :class:`~repro.core.results.StudyResults` bundle,
    a :class:`~repro.data.Dataset`, or a bare collector; explicit
    keyword *inputs* always win.
    """
    return AnalysisContext(results, **inputs)


def requirement_key(requirement: str) -> Tuple[str, bool]:
    """Split a ``requires`` entry into (input key, optional?)."""
    if requirement.endswith("?"):
        return requirement[:-1], True
    return requirement, False


@runtime_checkable
class Analysis(Protocol):
    """What the registry expects of every analysis class."""

    name: ClassVar[str]
    requires: ClassVar[Tuple[str, ...]]
    tables: ClassVar[Tuple[str, ...]]

    @classmethod
    def run(cls, results: Any = None, **inputs: Any) -> "Analysis": ...


class RegisteredAnalysis:
    """Mixin turning a plain analysis class into a registry citizen.

    Subclasses set ``name``, ``requires`` and ``tables``; ``requires``
    must list the constructor's positional parameters by input key, in
    order, and ``tables`` the dataset tables the analysis reads.
    """

    name: ClassVar[str] = ""
    requires: ClassVar[Tuple[str, ...]] = ()
    tables: ClassVar[Tuple[str, ...]] = ()

    @classmethod
    def run(cls, results: Any = None, **inputs: Any):
        """Instantiate this analysis from a results bundle, dataset
        and/or explicit inputs."""
        context = build_context(results, **inputs)
        args = []
        missing = []
        for requirement in cls.requires:
            key, optional = requirement_key(requirement)
            if key in context:
                value = context[key]
                if key == "dataset" and isinstance(value, Dataset):
                    value.require_tables(cls.tables, consumer=f"analysis {cls.name!r}")
                args.append(value)
            elif optional:
                args.append(None)
            else:
                missing.append(key)
        if missing:
            raise KeyError(
                f"analysis {cls.name!r} is missing required inputs {missing}; "
                f"available: {context.keys()}"
            )
        return cls(*args)

    @classmethod
    def satisfied_by(cls, context: AnalysisContext) -> bool:
        """Whether *context* covers every non-optional requirement."""
        return all(
            requirement_key(r)[0] in context or requirement_key(r)[1]
            for r in cls.requires
        )
