"""The ``Analysis`` protocol and the shared construction machinery.

Every analysis class declares

* ``name`` — its registry key (``repro.analysis.registry.get(name)``),
* ``requires`` — the input keys its constructor takes, positionally
  (a trailing ``?`` marks an optional input, passed as ``None`` when
  absent),

and inherits :class:`RegisteredAnalysis.run`, which resolves those keys
against a results bundle (or explicit keyword inputs) and instantiates
the class.  Drivers — the CLI, the report generator, the benchmarks —
construct analyses only through this surface, never by hand-wiring
constructors.
"""

from __future__ import annotations

from typing import Any, ClassVar, Dict, Optional, Protocol, Tuple, runtime_checkable

#: Input keys derived from a results bundle (everything else must be
#: passed explicitly, e.g. a passive-capture ``aggregate``).
BUNDLE_KEYS: Tuple[str, ...] = (
    "vps",
    "catalog",
    "fabric",
    "distributor",
    "deployments",
    "schedule",
    "config",
    "fault_plan",
)


def build_context(results: Any = None, **inputs: Any) -> Dict[str, Any]:
    """Resolve the available analysis inputs.

    *results* may be a :class:`~repro.core.results.StudyResults` bundle,
    a bare collector, or a reloaded dataset; explicit keyword *inputs*
    always win.  Derived keys: ``identities`` and ``transfers`` come off
    the collector when present.
    """
    context: Dict[str, Any] = dict(inputs)
    if results is None:
        return context
    collector = getattr(results, "collector", None)
    if collector is None and hasattr(results, "probe_columns"):
        collector = results  # a bare collector / loaded dataset
    if collector is not None:
        context.setdefault("collector", collector)
        if hasattr(collector, "identities"):
            context.setdefault("identities", collector.identities)
        if hasattr(collector, "transfers"):
            context.setdefault("transfers", collector.transfers)
    for key in BUNDLE_KEYS:
        if hasattr(results, key):
            context.setdefault(key, getattr(results, key))
    return context


def requirement_key(requirement: str) -> Tuple[str, bool]:
    """Split a ``requires`` entry into (input key, optional?)."""
    if requirement.endswith("?"):
        return requirement[:-1], True
    return requirement, False


@runtime_checkable
class Analysis(Protocol):
    """What the registry expects of every analysis class."""

    name: ClassVar[str]
    requires: ClassVar[Tuple[str, ...]]

    @classmethod
    def run(cls, results: Any = None, **inputs: Any) -> "Analysis": ...


class RegisteredAnalysis:
    """Mixin turning a plain analysis class into a registry citizen.

    Subclasses set ``name`` and ``requires``; ``requires`` must list the
    constructor's positional parameters by input key, in order.
    """

    name: ClassVar[str] = ""
    requires: ClassVar[Tuple[str, ...]] = ()

    @classmethod
    def run(cls, results: Any = None, **inputs: Any):
        """Instantiate this analysis from a results bundle and/or
        explicit inputs."""
        context = build_context(results, **inputs)
        args = []
        missing = []
        for requirement in cls.requires:
            key, optional = requirement_key(requirement)
            if key in context:
                args.append(context[key])
            elif optional:
                args.append(None)
            else:
                missing.append(key)
        if missing:
            raise KeyError(
                f"analysis {cls.name!r} is missing required inputs {missing}; "
                f"available: {sorted(context)}"
            )
        return cls(*args)

    @classmethod
    def satisfied_by(cls, context: Dict[str, Any]) -> bool:
        """Whether *context* covers every non-optional requirement."""
        return all(
            requirement_key(r)[0] in context or requirement_key(r)[1]
            for r in cls.requires
        )
