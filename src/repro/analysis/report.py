"""Plain-text rendering of every table and figure.

The benchmark harness calls these to print the same rows/series the
paper reports; each function takes analysis objects and returns a string.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.clientbehavior import ClientBehaviorAnalysis
from repro.analysis.colocation import ColocationAnalysis
from repro.analysis.coverage import CoverageAnalysis
from repro.analysis.distance import DistanceAnalysis
from repro.analysis.rtt import RttAnalysis
from repro.analysis.stability import StabilityAnalysis
from repro.analysis.trafficshift import TrafficShiftAnalysis
from repro.analysis.zonemd_audit import AuditFinding, SourceAuditRow
from repro.geo.continents import Continent
from repro.rss.operators import ROOT_LETTERS
from repro.util.tables import Table, render_histogram, series_buckets
from repro.util.timeutil import format_day, format_ts


def render_table1(coverage: CoverageAnalysis) -> str:
    """Table 1: worldwide coverage of root sites."""
    table = Table(
        [
            "Root",
            "Glob #", "Glob cov", "Glob %",
            "Loc #", "Loc cov", "Loc %",
            "Tot #", "Tot cov", "Tot %",
        ]
    )
    worldwide = coverage.worldwide()
    for letter in ROOT_LETTERS:
        rows = {r.scope: r for r in worldwide[letter]}
        cells: List[object] = [letter]
        for scope in ("global", "local", "total"):
            row = rows[scope]
            cells.extend([row.sites, row.covered, row.pct])
        table.add_row(cells)
    return table.render("Table 1: Coverage of root sites (worldwide)")


def render_table4(coverage: CoverageAnalysis) -> str:
    """Table 4: coverage per region."""
    blocks: List[str] = []
    for continent, per_letter in coverage.per_region().items():
        table = Table(
            ["Root", "Glob #", "Glob cov", "Loc #", "Loc cov", "Tot #", "Tot cov", "Tot %"]
        )
        for letter in ROOT_LETTERS:
            rows = {r.scope: r for r in per_letter[letter]}
            total = rows["total"]
            table.add_row(
                [
                    letter,
                    rows["global"].sites, rows["global"].covered,
                    rows["local"].sites, rows["local"].covered,
                    total.sites, total.covered, total.pct,
                ]
            )
        blocks.append(table.render(f"-- {continent} --"))
    return "Table 4: Coverage of root sites per region\n" + "\n\n".join(blocks)


def render_table2(findings: List[AuditFinding], valid_count: int) -> str:
    """Table 2: ZONEMD/RRSIG validation errors for zones from AXFRs."""
    table = Table(
        ["Reason", "#SOA", "First Obs.", "Last Obs.", "#Obs.", "Server", "VP", "Fault"]
    )
    for finding in findings:
        table.add_row(
            [
                finding.reason,
                finding.n_soa,
                format_ts(finding.first_obs),
                format_ts(finding.last_obs),
                finding.observations,
                ",".join(finding.servers),
                ",".join(str(v) for v in finding.vp_ids),
                finding.fault or "-",
            ]
        )
    header = "Table 2: ZONEMD validation errors for zones from AXFRs"
    footer = f"(plus {valid_count} recorded transfer observations that fully validate)"
    return "\n".join([table.render(header), footer])


def render_figure3(stability: StabilityAnalysis, letters: Tuple[str, ...] = ("b", "g")) -> str:
    """Figure 3: complementary eCDF of change events."""
    blocks: List[str] = []
    for letter in letters:
        lines = [f"{letter}.root-servers.net."]
        for series in stability.series_for(letter):
            ecdf = series.ecdf()
            points = [
                f"x={x:g} ccdf={y:.3f}" for x, y in ecdf.points()[:12]
            ]
            lines.append(
                f"  {series.label}: median={series.median_changes():g} "
                f"n={len(series.changes_per_vp)}"
            )
            lines.append("    " + "; ".join(points))
        blocks.append("\n".join(lines))
    return "Figure 3: ceCDF of per-VP site change events\n" + "\n\n".join(blocks)


def render_figure4(colocation: ColocationAnalysis) -> str:
    """Figure 4: reduced redundancy histograms per continent."""
    blocks: List[str] = []
    for continent in Continent:
        lines = [f"-- {continent} --"]
        for family in (4, 6):
            avg = colocation.average(continent, family)
            hist = colocation.histogram(continent, family)
            avg_text = "n/a" if avg is None else f"{avg:.2f}"
            lines.append(
                render_histogram(
                    [str(i) for i in range(len(hist))],
                    hist,
                    width=30,
                    title=f"IPv{family} (avg={avg_text})",
                )
            )
        blocks.append("\n".join(lines))
    summary = (
        f"VPs observing >=2 co-located letters: "
        f"{100.0 * colocation.fraction_with_colocation():.1f}% "
        f"(max co-location: {colocation.max_observed_colocation()})"
    )
    return "Figure 4: Reduced redundancy due to shared last hop\n" + summary + "\n\n" + "\n\n".join(blocks)


def render_figure5(distance: DistanceAnalysis, addresses: List[str]) -> str:
    """Figure 5: distance to closest global vs actual site."""
    blocks: List[str] = []
    for address in addresses:
        grid = distance.grid(address, bin_km=2500.0)
        frac = distance.fraction_optimal(address)
        lines = [
            f"{grid.address.label} IPv{grid.address.family}: "
            f"{100 * frac:.1f}% routed to closest global site or closer "
            f"({grid.observations} observations)"
        ]
        for (cb, ab), pct in sorted(grid.cells.items()):
            if pct < 0.5:
                continue
            lines.append(
                f"  closest {cb * 2.5:4.1f}-{(cb + 1) * 2.5:4.1f}k km, "
                f"actual {ab * 2.5:4.1f}-{(ab + 1) * 2.5:4.1f}k km: {pct:5.1f}%"
            )
        blocks.append("\n".join(lines))
    return "Figure 5: Distance per request from VPs to root sites\n" + "\n\n".join(blocks)


def render_figure6(
    rtt: RttAnalysis,
    continents: List[Continent],
    addresses: List[str],
    collector_addr_labels: Dict[str, str],
) -> str:
    """Figures 6/14/15: RTT distributions by continent."""
    blocks: List[str] = []
    for continent in continents:
        table = Table(["Server", "Fam", "n", "mean", "std", "p10", "p50", "p90"])
        for address in addresses:
            summary = rtt.summary(address, continent)
            if summary is None:
                continue
            table.add_row(
                [
                    summary.label,
                    f"v{summary.address.family}",
                    summary.count,
                    summary.mean,
                    summary.std,
                    summary.p10,
                    summary.p50,
                    summary.p90,
                ]
            )
        blocks.append(table.render(f"-- {continent} --"))
    return "Figure 6/14/15: RTTs of requests by continent (ms)\n" + "\n\n".join(blocks)


def render_traffic_series(
    title: str, series: Dict[str, List[Tuple[int, float]]], daily: bool = True
) -> str:
    """Figures 7/9: normalised traffic share series."""
    lines = [title]
    labels = sorted(series)
    buckets = series_buckets(series)
    index: Dict[str, Dict[int, float]] = {
        label: dict(points) for label, points in series.items()
    }
    header = "bucket" + "".join(f"\t{label}" for label in labels)
    lines.append(header)
    for bucket in buckets:
        stamp = format_day(bucket) if daily else format_ts(bucket)
        row = stamp + "".join(
            f"\t{index[label].get(bucket, 0.0):.3f}" for label in labels
        )
        lines.append(row)
    return "\n".join(lines)


def render_figure8(behavior: ClientBehaviorAnalysis, family: int) -> str:
    """Figure 8: mean # of unique client subnets per day vs flows."""
    lines = [f"Figure 8 (IPv{family}): flows/client vs share of clients"]
    for label, dist in sorted(behavior.by_family(family).items()):
        if not dist.flows_per_client:
            continue
        single = dist.fraction_single_daily_contact()
        lines.append(
            f"  {label}: clients={dist.mean_clients_per_day()} "
            f"single-daily-contact={100 * single:.1f}%"
        )
        for x, y in dist.cdf_points()[:: max(1, len(dist.cdf_points()) // 8)]:
            lines.append(f"    <= {x:8.1f} flows/day: {100 * y:5.1f}% of clients")
    return "\n".join(lines)


def render_path_breakdown(
    paths, continent: Continent, letter: str, top_n: int = 5
) -> str:
    """§6 drill-down: per-AS path shares and latencies for one cell."""
    lines = [f"Path composition: {letter}.root from {continent}"]
    for family in (4, 6):
        breakdown = paths.as_breakdown(
            continent=continent, letter=letter, family=family
        )
        lines.append(f"  IPv{family}:")
        for stats in breakdown[:top_n]:
            lines.append(
                f"    {stats.label:<12} share {100 * stats.share:5.1f}%  "
                f"mean RTT {stats.mean_rtt_ms:6.1f} ms  (n={stats.requests})"
            )
    return "\n".join(lines)


def render_source_audit(rows: List[SourceAuditRow]) -> str:
    """CZDS/IANA download validation schedule (§7)."""
    table = Table(["Source", "Retrieved", "Serial", "ZONEMD", "RRSIGs"])
    for row in rows:
        table.add_row(
            [
                row.source,
                format_ts(row.retrieved_at),
                row.serial,
                row.zonemd_status.name,
                "valid" if row.rrsig_valid else "INVALID",
            ]
        )
    return table.render("Out-of-band zone source validation")
