"""Zone integrity audit (paper §7, Table 2, Figure 10 — RQ3).

Validates every recorded transfer observation the way the paper used
``ldnsutils``: full RRSIG validation against the root DNSKEYs plus
ZONEMD verification, evaluated at the *first and last* observation
timestamps of each distinct zone copy (signatures are time-nonced, so
skewed VP clocks produce temporal errors on good zones).

Also audits the out-of-band CZDS/IANA download channels against the
roll-out schedule, and produces the Figure 10 bitflip diff.
"""

from __future__ import annotations

from repro.analysis.base import RegisteredAnalysis

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.name import ROOT_NAME
from repro.dnssec.digestcache import ZoneValidationCache, shared_cache, zone_fingerprint
from repro.dnssec.validate import ValidationError
from repro.dnssec.zonemd import ZonemdStatus
from repro.util.timeutil import Timestamp, format_ts
from repro.vantage.collector import TransferObservation
from repro.zone.sources import ZoneDownload


@dataclass
class AuditFinding:
    """One Table 2 row: a distinct non-validating zone observation group."""

    reason: str
    serials: Tuple[int, ...]
    first_obs: Timestamp
    last_obs: Timestamp
    observations: int
    servers: Tuple[str, ...]
    vp_ids: Tuple[int, ...]
    fault: str = ""

    @property
    def n_soa(self) -> int:
        return len(self.serials)


_REASON_LABEL = {
    ValidationError.SIG_NOT_INCEPTED: "Sig. not incepted",
    ValidationError.SIG_EXPIRED: "Signature expired",
    ValidationError.BOGUS_SIGNATURE: "Bogus Signature",
    ValidationError.NO_RRSIG: "Missing RRSIG",
    ValidationError.NO_DNSKEY: "Missing DNSKEY",
    ValidationError.UNKNOWN_KEY_TAG: "Unknown key tag",
}


def _dominant_reason(errors: List[ValidationError]) -> str:
    """Table 2 groups each bad zone under its leading error class."""
    priority = [
        ValidationError.SIG_NOT_INCEPTED,
        ValidationError.SIG_EXPIRED,
        ValidationError.BOGUS_SIGNATURE,
        ValidationError.UNKNOWN_KEY_TAG,
        ValidationError.NO_RRSIG,
        ValidationError.NO_DNSKEY,
    ]
    for candidate in priority:
        if candidate in errors:
            return _REASON_LABEL[candidate]
    return "unknown"


@dataclass
class SourceAuditRow:
    """Validation outcome of one out-of-band zone download."""

    source: str
    retrieved_at: Timestamp
    serial: int
    zonemd_status: ZonemdStatus
    rrsig_valid: bool

    @property
    def fully_valid(self) -> bool:
        return self.rrsig_valid and self.zonemd_status is ZonemdStatus.VALID


class ZonemdAudit(RegisteredAnalysis):
    """The RQ3 audit over transfer observations and source downloads."""

    name = "zonemd_audit"
    requires = ("transfers",)

    def __init__(
        self,
        transfers: List[TransferObservation],
        cache: Optional[ZoneValidationCache] = None,
    ) -> None:
        self.transfers = transfers
        #: Content-keyed crypto memo shared with AXFR serving and the
        #: local-root manager: signature digests and the ZONEMD hash are
        #: computed once per distinct zone version, process-wide.
        self._validation_cache = cache if cache is not None else shared_cache()
        #: fingerprint -> (content errors, signature validity envelope).
        #: Content checks are time-independent; only the RRSIG validity
        #: window comparison depends on the validation time, so each
        #: distinct zone version is analysed exactly once.
        self._zone_cache: Dict[bytes, Tuple[List[ValidationError], Tuple[int, int]]] = {}

    def _analyse_zone(self, zone) -> Tuple[List[ValidationError], Tuple[int, int]]:
        key = zone_fingerprint(zone)
        cached = self._zone_cache.get(key)
        if cached is not None:
            return cached
        analysis = self._validation_cache.analyse_zone(zone, ROOT_NAME)
        envelope = analysis.rrsig_envelope
        midpoint = (envelope[0] + envelope[1]) // 2  # (0, 0) when unsigned
        report = analysis.report_at(midpoint, check_zonemd=True)
        content_errors = [issue.error for issue in report.issues]
        result = (content_errors, envelope)
        self._zone_cache[key] = result
        return result

    def _errors_at(self, zone, now: int) -> List[ValidationError]:
        content_errors, (max_inception, min_expiration) = self._analyse_zone(zone)
        errors = list(content_errors)
        if now < max_inception:
            errors.append(ValidationError.SIG_NOT_INCEPTED)
        elif now > min_expiration:
            errors.append(ValidationError.SIG_EXPIRED)
        return errors

    # -- AXFR audit (Table 2) ------------------------------------------------------

    def validate_transfers(self) -> Tuple[List[AuditFinding], int]:
        """Validate all observations; returns (findings, valid count).

        Observations are validated at their *observed* timestamps (VP
        clock view).  Non-validating copies are grouped per (VP, server,
        dominant reason, fault) — the granularity of Table 2's rows.
        """
        valid = 0
        groups: Dict[Tuple[int, str, str, str], List[Tuple[TransferObservation, List[ValidationError]]]] = {}
        for obs in self.transfers:
            errors = self._errors_at(obs.zone, obs.observed_ts)
            if not errors:
                valid += 1
                continue
            reason = _dominant_reason(errors)
            key = (obs.vp_id, obs.address.label, reason, obs.fault)
            groups.setdefault(key, []).append((obs, errors))

        findings: List[AuditFinding] = []
        for (vp_id, server, reason, fault), items in sorted(groups.items()):
            observations = [obs for obs, _errors in items]
            findings.append(
                AuditFinding(
                    reason=reason,
                    serials=tuple(sorted({o.serial for o in observations})),
                    first_obs=min(o.observed_ts for o in observations),
                    last_obs=max(o.observed_ts for o in observations),
                    observations=len(observations),
                    servers=(server,),
                    vp_ids=(vp_id,),
                    fault=fault,
                )
            )
        findings.sort(key=lambda f: (f.reason, f.first_obs))
        return findings, valid

    # -- Figure 10 -------------------------------------------------------------------

    def bitflip_examples(self) -> List[Tuple[TransferObservation, str]]:
        """(observation, fault description) for bitflipped transfers."""
        return [
            (obs, obs.fault_detail)
            for obs in self.transfers
            if obs.fault == "bitflip"
        ]

    def bitflip_diff(self, obs: TransferObservation, reference_zone) -> List[Tuple[str, str]]:
        """Figure 10: (reference line, corrupted line) pairs for records
        that differ between the corrupted transfer and a clean copy of
        the same serial (the paper's comparison against an ICANN
        download with the same SOA)."""
        if obs.fault != "bitflip":
            raise ValueError("observation is not bitflipped")
        ref_lines = {r.to_text() for r in reference_zone.records}
        bad_lines = {r.to_text() for r in obs.zone.records}
        removed = sorted(ref_lines - bad_lines)
        added = sorted(bad_lines - ref_lines)
        return list(zip(removed, added))

    # -- out-of-band sources (§4.2 validation / §7) --------------------------------

    @staticmethod
    def audit_downloads(
        downloads: List[ZoneDownload],
        cache: Optional[ZoneValidationCache] = None,
    ) -> List[SourceAuditRow]:
        """Validate CZDS/IANA downloads at their retrieval times."""
        cache = cache if cache is not None else shared_cache()
        rows: List[SourceAuditRow] = []
        for dl in downloads:
            analysis = cache.analyse_zone(dl.zone, ROOT_NAME)
            report = analysis.report_at(dl.retrieved_at, check_zonemd=False)
            status, _detail = analysis.zonemd
            rows.append(
                SourceAuditRow(
                    source=dl.source,
                    retrieved_at=dl.retrieved_at,
                    serial=dl.zone.serial,
                    zonemd_status=status,
                    rrsig_valid=report.valid,
                )
            )
        return rows

    @staticmethod
    def first_validating_download(rows: List[SourceAuditRow]) -> Optional[SourceAuditRow]:
        """The first download whose ZONEMD verifies (the paper:
        2023-12-06T20:30 UTC for IANA, 2023-12-07+ files for CZDS)."""
        for row in sorted(rows, key=lambda r: r.retrieved_at):
            if row.fully_valid:
                return row
        return None
