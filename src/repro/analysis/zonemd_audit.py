"""Zone integrity audit (paper §7, Table 2, Figure 10 — RQ3).

Validates every recorded transfer the way the paper used
``ldnsutils``: full RRSIG validation against the root DNSKEYs plus
ZONEMD verification, evaluated at the *first and last* observation
timestamps of each distinct zone copy (signatures are time-nonced, so
skewed VP clocks produce temporal errors on good zones).

The audit operates on sealed :class:`~repro.data.transfers.TransferRecord`
objects — zone content fingerprint, content-level validation errors and
the RRSIG validity envelope, with the per-observation verdict derived by
:meth:`TransferRecord.errors_at`.  Live ``TransferObservation`` objects
are sealed on construction (through the shared digest cache, so each
distinct zone version is analysed exactly once); records reloaded from a
dataset directory audit identically without any zone content.

Also audits the out-of-band CZDS/IANA download channels against the
roll-out schedule, and produces the Figure 10 bitflip diff.
"""

from __future__ import annotations

from repro.analysis.base import RegisteredAnalysis

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.data.transfers import TransferRecord, seal_transfers
from repro.dns.name import ROOT_NAME
from repro.dnssec.digestcache import ZoneValidationCache, shared_cache
from repro.dnssec.validate import ValidationError
from repro.dnssec.zonemd import ZonemdStatus
from repro.util.timeutil import Timestamp, format_ts
from repro.zone.sources import ZoneDownload


@dataclass
class AuditFinding:
    """One Table 2 row: a distinct non-validating zone observation group."""

    reason: str
    serials: Tuple[int, ...]
    first_obs: Timestamp
    last_obs: Timestamp
    observations: int
    servers: Tuple[str, ...]
    vp_ids: Tuple[int, ...]
    fault: str = ""

    @property
    def n_soa(self) -> int:
        return len(self.serials)


_REASON_LABEL = {
    ValidationError.SIG_NOT_INCEPTED: "Sig. not incepted",
    ValidationError.SIG_EXPIRED: "Signature expired",
    ValidationError.BOGUS_SIGNATURE: "Bogus Signature",
    ValidationError.NO_RRSIG: "Missing RRSIG",
    ValidationError.NO_DNSKEY: "Missing DNSKEY",
    ValidationError.UNKNOWN_KEY_TAG: "Unknown key tag",
}


def _dominant_reason(errors: List[ValidationError]) -> str:
    """Table 2 groups each bad zone under its leading error class."""
    priority = [
        ValidationError.SIG_NOT_INCEPTED,
        ValidationError.SIG_EXPIRED,
        ValidationError.BOGUS_SIGNATURE,
        ValidationError.UNKNOWN_KEY_TAG,
        ValidationError.NO_RRSIG,
        ValidationError.NO_DNSKEY,
    ]
    for candidate in priority:
        if candidate in errors:
            return _REASON_LABEL[candidate]
    return "unknown"


@dataclass
class SourceAuditRow:
    """Validation outcome of one out-of-band zone download."""

    source: str
    retrieved_at: Timestamp
    serial: int
    zonemd_status: ZonemdStatus
    rrsig_valid: bool

    @property
    def fully_valid(self) -> bool:
        return self.rrsig_valid and self.zonemd_status is ZonemdStatus.VALID


class ZonemdAudit(RegisteredAnalysis):
    """The RQ3 audit over transfer observations and source downloads."""

    name = "zonemd_audit"
    requires = ("transfers",)
    tables = ("transfers",)

    def __init__(
        self,
        transfers: List,
        cache: Optional[ZoneValidationCache] = None,
    ) -> None:
        #: Content-keyed crypto memo shared with AXFR serving and the
        #: local-root manager: signature digests and the ZONEMD hash are
        #: computed once per distinct zone version, process-wide —
        #: sealing here is free for zone versions any other consumer
        #: already analysed.
        self._validation_cache = cache if cache is not None else shared_cache()
        #: Sealed records: live observations are converted here; already
        #: sealed records (a reloaded dataset) pass through unchanged.
        self.transfers: List[TransferRecord] = seal_transfers(
            transfers, self._validation_cache
        )

    # -- AXFR audit (Table 2) ------------------------------------------------------

    def validate_transfers(self) -> Tuple[List[AuditFinding], int]:
        """Validate all observations; returns (findings, valid count).

        Observations are validated at their *observed* timestamps (VP
        clock view).  Non-validating copies are grouped per (VP, server,
        dominant reason, fault) — the granularity of Table 2's rows.
        """
        valid = 0
        groups: Dict[Tuple[int, str, str, str], List[Tuple[TransferRecord, List[ValidationError]]]] = {}
        for obs in self.transfers:
            errors = obs.errors_at(obs.observed_ts)
            if not errors:
                valid += 1
                continue
            reason = _dominant_reason(errors)
            key = (obs.vp_id, obs.address.label, reason, obs.fault)
            groups.setdefault(key, []).append((obs, errors))

        findings: List[AuditFinding] = []
        for (vp_id, server, reason, fault), items in sorted(groups.items()):
            observations = [obs for obs, _errors in items]
            findings.append(
                AuditFinding(
                    reason=reason,
                    serials=tuple(sorted({o.serial for o in observations})),
                    first_obs=min(o.observed_ts for o in observations),
                    last_obs=max(o.observed_ts for o in observations),
                    observations=len(observations),
                    servers=(server,),
                    vp_ids=(vp_id,),
                    fault=fault,
                )
            )
        findings.sort(key=lambda f: (f.reason, f.first_obs))
        return findings, valid

    # -- Figure 10 -------------------------------------------------------------------

    def bitflip_examples(self) -> List[Tuple[TransferRecord, str]]:
        """(record, fault description) for bitflipped transfers."""
        return [
            (obs, obs.fault_detail)
            for obs in self.transfers
            if obs.fault == "bitflip"
        ]

    def bitflip_diff(self, obs: TransferRecord, reference_zone) -> List[Tuple[str, str]]:
        """Figure 10: (reference line, corrupted line) pairs for records
        that differ between the corrupted transfer and a clean copy of
        the same serial (the paper's comparison against an ICANN
        download with the same SOA)."""
        if obs.fault != "bitflip":
            raise ValueError("observation is not bitflipped")
        if obs.zone is None:
            raise ValueError(
                "bitflip diff needs the transferred zone content, which is "
                "not persisted in datasets; rerun the study (the zone is "
                "reproducible from the study seed) to diff this record"
            )
        ref_lines = {r.to_text() for r in reference_zone.records}
        bad_lines = {r.to_text() for r in obs.zone.records}
        removed = sorted(ref_lines - bad_lines)
        added = sorted(bad_lines - ref_lines)
        return list(zip(removed, added))

    # -- out-of-band sources (§4.2 validation / §7) --------------------------------

    @staticmethod
    def audit_downloads(
        downloads: List[ZoneDownload],
        cache: Optional[ZoneValidationCache] = None,
    ) -> List[SourceAuditRow]:
        """Validate CZDS/IANA downloads at their retrieval times."""
        cache = cache if cache is not None else shared_cache()
        rows: List[SourceAuditRow] = []
        for dl in downloads:
            analysis = cache.analyse_zone(dl.zone, ROOT_NAME)
            report = analysis.report_at(dl.retrieved_at, check_zonemd=False)
            status, _detail = analysis.zonemd
            rows.append(
                SourceAuditRow(
                    source=dl.source,
                    retrieved_at=dl.retrieved_at,
                    serial=dl.zone.serial,
                    zonemd_status=status,
                    rrsig_valid=report.valid,
                )
            )
        return rows

    @staticmethod
    def first_validating_download(rows: List[SourceAuditRow]) -> Optional[SourceAuditRow]:
        """The first download whose ZONEMD verifies (the paper:
        2023-12-06T20:30 UTC for IANA, 2023-12-07+ files for CZDS)."""
        for row in sorted(rows, key=lambda r: r.retrieved_at):
            if row.fully_valid:
                return row
        return None
