"""The vectorized passive-capture engine.

:meth:`repro.passive.isp.IspCapture.capture` models sampled client
traffic as a ``clients x buckets x addresses`` triple loop; at paper
scale that is millions of pure-Python iterations, each paying a
:func:`~repro.netsim.mix.mix_float` call.  This module evaluates the
identical model as numpy kernels over a ``(bucket x client)`` grid, one
service address at a time:

* the client population compiles once into :class:`ClientColumns`
  (volumes, family availability, behaviour codes, adoption timestamps,
  prefix ids),
* the splitmix64 noise/tester/sampling draws use the array mixer forms
  (:func:`~repro.netsim.mix.mix64_array`), which are bit-identical to
  the scalar chain element-wise,
* diurnal scaling, :class:`~repro.passive.isp.TrafficDip` windows, the
  b.root renumbering cutover and per-behaviour letter weights are
  ``np.where`` selections over the grid,
* per-``(bucket, address)`` flow totals and per-client totals reduce
  with ``np.cumsum`` (strictly left-to-right, exactly the dict
  accumulation order of the scalar engine; ``np.sum`` would pairwise-
  group and drift in the last bits).

The result is **byte-identical** to the scalar engine: same dict keys,
same float bit patterns, same distinct-client sets (materialised lazily
from the boolean keep-masks).  ``tests/passive/test_flow_engine.py``
pins that equivalence for the ISP and all 14 IXP captures, with and
without dips, across the renumbering boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netsim.mix import mix64_array, mix64_prefix, mix_str
from repro.passive.clients import ClientBehavior, ClientNetwork
from repro.passive.traces import ClientMembership, FlowAggregate, PerClientLedger
from repro.util.timeutil import DAY, HOUR, Timestamp

_TWO64 = float(1 << 64)

#: Above this many (address, bucket, client) cells the keep-masks are
#: not retained (the client *sets* would be impractical anyway); the
#: aggregate still carries exact distinct-client counts.
MAX_MEMBERSHIP_CELLS = 1 << 27

#: Client-axis block width of the capture grid.  Every (bucket x client)
#: intermediate is bounded by ``n_buckets x FLOW_CLIENT_BLOCK`` cells, so
#: peak memory is O(block) in the population size; the per-bucket flow
#: totals chain across blocks through an exact carry-in cumsum, keeping
#: the output byte-identical for every block width.
FLOW_CLIENT_BLOCK = 1 << 16


@dataclass(frozen=True)
class ClientColumns:
    """One client population compiled into numpy columns."""

    client_ids: np.ndarray  # uint64
    volumes: np.ndarray  # float64 daily flows
    has_v6: np.ndarray  # bool
    adoption_ts: np.ndarray  # int64
    #: family -> bool mask: client would ever adopt the new address
    #: (has the family, and is not reluctant)
    switchish: Dict[int, np.ndarray]
    #: family -> bool mask: client re-primes daily after switching
    primer: Dict[int, np.ndarray]
    #: family -> per-client prefix strings (None = no such family)
    prefixes: Dict[int, Tuple[Optional[str], ...]]

    def __len__(self) -> int:
        return len(self.client_ids)

    @classmethod
    def from_clients(cls, clients: List[ClientNetwork]) -> "ClientColumns":
        n = len(clients)
        client_ids = np.empty(n, dtype=np.uint64)
        volumes = np.empty(n, dtype=np.float64)
        has_v6 = np.empty(n, dtype=bool)
        adoption_ts = np.empty(n, dtype=np.int64)
        switchish = {4: np.empty(n, dtype=bool), 6: np.empty(n, dtype=bool)}
        primer = {4: np.empty(n, dtype=bool), 6: np.empty(n, dtype=bool)}
        prefixes: Dict[int, List[Optional[str]]] = {4: [], 6: []}
        for i, client in enumerate(clients):
            client_ids[i] = client.client_id
            volumes[i] = client.daily_flows
            has_v6[i] = client.prefix_v6 is not None
            adoption_ts[i] = client.adoption_ts
            for family in (4, 6):
                behavior = client.behavior(family)
                switchish[family][i] = behavior is not None and (
                    behavior is not ClientBehavior.RELUCTANT
                )
                primer[family][i] = behavior is ClientBehavior.PRIMER
            prefixes[4].append(client.prefix_v4)
            prefixes[6].append(client.prefix_v6)
        return cls(
            client_ids=client_ids,
            volumes=volumes,
            has_v6=has_v6,
            adoption_ts=adoption_ts,
            switchish=switchish,
            primer=primer,
            prefixes={4: tuple(prefixes[4]), 6: tuple(prefixes[6])},
        )


def capture_vectorized(
    capture,
    start: Timestamp,
    end: Timestamp,
    bucket_seconds: int,
    client_block: Optional[int] = None,
) -> FlowAggregate:
    """Evaluate one :class:`~repro.passive.isp.IspCapture` window as
    array kernels; byte-identical to the scalar triple loop.

    The grid is evaluated ``client_block`` clients at a time (default
    :data:`FLOW_CLIENT_BLOCK`), so peak memory stays O(block) rather
    than O(population): per-bucket totals continue across blocks through
    an exact carry-in cumsum, counts add exactly, and the per-client
    reductions never cross a block.  Any block width produces the same
    bytes — ``tests/passive/test_flow_engine.py`` pins a tiny width
    against the default and the scalar engine.
    """
    from repro.passive.isp import (
        TESTER_FRACTION,
        TESTER_TRAFFIC_SHARE,
        V6_TRAFFIC_SHARE,
    )

    columns: ClientColumns = capture.client_columns()
    n = len(columns)
    block = FLOW_CLIENT_BLOCK if client_block is None else client_block
    if block <= 0:
        raise ValueError(f"client_block must be positive, got {block}")
    buckets: List[Timestamp] = list(
        range(start - start % bucket_seconds, end, bucket_seconds)
    )
    n_buckets = len(buckets)

    bucket_u64 = np.array(buckets, dtype=np.uint64).reshape(-1, 1)
    bucket_i64 = np.array(buckets, dtype=np.int64).reshape(-1, 1)
    if bucket_seconds < DAY:
        # Diurnal factor is a pure function of the bucket timestamp;
        # computed in Python floats exactly as the scalar engine does.
        factors = np.array(
            [
                0.6
                + 0.8
                * max(0.0, 1.0 - abs((bucket % DAY) / HOUR - 19.0) / 12.0)
                for bucket in buckets
            ],
            dtype=np.float64,
        ).reshape(-1, 1)
    else:
        factors = None

    addresses = capture.addresses
    # Letter weight with dips and capture noise, per (address, bucket) —
    # pure Python floats, matching the scalar multiply order.
    weight_cols: Dict[str, np.ndarray] = {}
    for sa in addresses:
        per_bucket_weight = []
        for bucket in buckets:
            weight = capture.letter_weights[sa.letter]
            for dip in capture.dips:
                weight *= dip.scale(sa.letter, bucket)
            weight *= 1.0 + capture.noise_fraction
            per_bucket_weight.append(weight)
        weight_cols[sa.address] = np.array(
            per_bucket_weight, dtype=np.float64
        ).reshape(-1, 1)

    keep_membership = len(addresses) * n_buckets * n <= MAX_MEMBERSHIP_CELLS
    families = {sa.address: sa.family for sa in addresses}

    # Cross-block accumulators, per address: the running left-to-right
    # flow total and kept-client count per bucket, the per-client totals
    # of every block (client-ascending), and the membership mask blocks.
    addr_bucket_totals = {
        sa.address: np.zeros(n_buckets, dtype=np.float64) for sa in addresses
    }
    addr_bucket_counts = {
        sa.address: np.zeros(n_buckets, dtype=np.int64) for sa in addresses
    }
    addr_client_entries: Dict[str, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {
        sa.address: [] for sa in addresses
    }
    kept_blocks: Dict[str, List[np.ndarray]] = {sa.address: [] for sa in addresses}

    for c_lo in range(0, n, block):
        c_hi = min(c_lo + block, n)
        # Per-client mixer state after absorbing (seed, client_id);
        # every scalar mix_float(seed, client_id, ...) continues here.
        state_client = mix64_array(
            mix64_prefix(capture.seed), columns.client_ids[c_lo:c_hi]
        )
        tester_row = (
            (mix64_array(state_client, np.uint64(4242)) / _TWO64) < TESTER_FRACTION
        ).reshape(1, -1)

        # (bucket x client-block) mixer states and bucket noise.
        state_cb = mix64_array(state_client.reshape(1, -1), bucket_u64)
        noise = 0.7 + 0.6 * (state_cb / _TWO64)

        base = columns.volumes[c_lo:c_hi] * bucket_seconds / DAY
        if factors is not None:
            flows = (base.reshape(1, -1) * factors) * noise
        else:
            flows = base.reshape(1, -1) * noise

        adopted = {
            family: columns.switchish[family][c_lo:c_hi].reshape(1, -1)
            & (bucket_i64 >= columns.adoption_ts[c_lo:c_hi].reshape(1, -1))
            for family in (4, 6)
        }
        has_v6 = columns.has_v6[c_lo:c_hi]
        family_share = {
            4: np.where(has_v6, 1.0 - V6_TRAFFIC_SHARE, 1.0),
            6: np.where(has_v6, V6_TRAFFIC_SHARE, 0.0),
        }
        state_cbf = {
            family: mix64_array(state_cb, np.uint64(family)) for family in (4, 6)
        }

        for sa in addresses:
            family = sa.family
            amount = (flows * weight_cols[sa.address]) * family_share[
                family
            ].reshape(1, -1)
            if sa.generation == "new":
                amount = np.where(
                    adopted[family],
                    amount,
                    np.where(tester_row, amount * TESTER_TRAFFIC_SHARE, 0.0),
                )
            elif sa.generation == "old":
                amount = np.where(
                    adopted[family],
                    np.where(
                        columns.primer[family][c_lo:c_hi].reshape(1, -1),
                        np.minimum(amount * 0.05, 0.5),
                        0.0,
                    ),
                    np.where(
                        tester_row, amount * (1.0 - TESTER_TRAFFIC_SHARE), amount
                    ),
                )

            sampled = amount * capture.sampling_rate
            address_hash = mix_str(sa.address) & 0xFFFF
            drop = mix64_array(state_cbf[family], np.uint64(address_hash)) / _TWO64
            kept = (amount > 0.0) & ((sampled >= 1.0) | (drop <= sampled))
            contributions = np.where(kept, np.maximum(sampled, 1.0), 0.0)

            # cumsum reduces strictly left-to-right; seeding it with the
            # previous blocks' running total continues that exact chain,
            # so the final bits match the unblocked (and scalar) engine.
            carried = np.cumsum(
                np.concatenate(
                    [addr_bucket_totals[sa.address].reshape(-1, 1), contributions],
                    axis=1,
                ),
                axis=1,
            )[:, -1]
            addr_bucket_totals[sa.address] = carried
            addr_bucket_counts[sa.address] += np.count_nonzero(kept, axis=1)

            client_totals = np.cumsum(contributions, axis=0)[-1, :]
            client_days = np.count_nonzero(kept, axis=0)
            nz = np.flatnonzero(client_days)
            if nz.size:
                addr_client_entries[sa.address].append(
                    (nz + c_lo, client_totals[nz], client_days[nz])
                )
            if keep_membership:
                kept_blocks[sa.address].append(kept)

    flows_out: Dict[Tuple[Timestamp, str], float] = {}
    client_counts: Dict[Tuple[Timestamp, str], int] = {}
    for sa in addresses:
        totals = addr_bucket_totals[sa.address]
        counts = addr_bucket_counts[sa.address]
        for b_idx, bucket in enumerate(buckets):
            if counts[b_idx]:
                key = (bucket, sa.address)
                flows_out[key] = float(totals[b_idx])
                client_counts[key] = int(counts[b_idx])

    # Per-client totals stay columnar: address-major, client-minor.
    addr_idx_parts: List[np.ndarray] = []
    client_idx_parts: List[np.ndarray] = []
    flow_parts: List[np.ndarray] = []
    day_parts: List[np.ndarray] = []
    for a_idx, sa in enumerate(addresses):
        for clients_part, totals_part, days_part in addr_client_entries[sa.address]:
            addr_idx_parts.append(
                np.full(len(clients_part), a_idx, dtype=np.int32)
            )
            client_idx_parts.append(clients_part.astype(np.int64))
            flow_parts.append(totals_part)
            day_parts.append(days_part.astype(np.int64))

    def _cat(parts: List[np.ndarray], dtype) -> np.ndarray:
        return np.concatenate(parts) if parts else np.empty(0, dtype=dtype)

    ledger = PerClientLedger(
        addresses=[sa.address for sa in addresses],
        families=families,
        prefixes=columns.prefixes,
        addr_idx=_cat(addr_idx_parts, np.int32),
        client_idx=_cat(client_idx_parts, np.int64),
        flows=_cat(flow_parts, np.float64),
        days=_cat(day_parts, np.int64),
    )

    membership = (
        ClientMembership(
            buckets=buckets,
            prefixes=columns.prefixes,
            families={
                address: family
                for address, family in families.items()
                if kept_blocks[address]
            },
            kept={
                address: np.concatenate(blocks, axis=1)
                for address, blocks in kept_blocks.items()
                if blocks
            },
        )
        if keep_membership
        else None
    )
    return FlowAggregate.from_parts(
        bucket_seconds,
        flows=flows_out,
        client_counts=client_counts,
        per_client=ledger,
        membership=membership,
    )
