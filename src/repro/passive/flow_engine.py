"""The vectorized passive-capture engine.

:meth:`repro.passive.isp.IspCapture.capture` models sampled client
traffic as a ``clients x buckets x addresses`` triple loop; at paper
scale that is millions of pure-Python iterations, each paying a
:func:`~repro.netsim.mix.mix_float` call.  This module evaluates the
identical model as numpy kernels over a ``(bucket x client)`` grid, one
service address at a time:

* the client population compiles once into :class:`ClientColumns`
  (volumes, family availability, behaviour codes, adoption timestamps,
  prefix ids),
* the splitmix64 noise/tester/sampling draws use the array mixer forms
  (:func:`~repro.netsim.mix.mix64_array`), which are bit-identical to
  the scalar chain element-wise,
* diurnal scaling, :class:`~repro.passive.isp.TrafficDip` windows, the
  b.root renumbering cutover and per-behaviour letter weights are
  ``np.where`` selections over the grid,
* per-``(bucket, address)`` flow totals and per-client totals reduce
  with ``np.cumsum`` (strictly left-to-right, exactly the dict
  accumulation order of the scalar engine; ``np.sum`` would pairwise-
  group and drift in the last bits).

The result is **byte-identical** to the scalar engine: same dict keys,
same float bit patterns, same distinct-client sets (materialised lazily
from the boolean keep-masks).  ``tests/passive/test_flow_engine.py``
pins that equivalence for the ISP and all 14 IXP captures, with and
without dips, across the renumbering boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netsim.mix import mix64_array, mix64_prefix, mix_str
from repro.passive.clients import ClientBehavior, ClientNetwork
from repro.passive.traces import ClientMembership, FlowAggregate
from repro.util.timeutil import DAY, HOUR, Timestamp

_TWO64 = float(1 << 64)

#: Above this many (address, bucket, client) cells the keep-masks are
#: not retained (the client *sets* would be impractical anyway); the
#: aggregate still carries exact distinct-client counts.
MAX_MEMBERSHIP_CELLS = 1 << 27


@dataclass(frozen=True)
class ClientColumns:
    """One client population compiled into numpy columns."""

    client_ids: np.ndarray  # uint64
    volumes: np.ndarray  # float64 daily flows
    has_v6: np.ndarray  # bool
    adoption_ts: np.ndarray  # int64
    #: family -> bool mask: client would ever adopt the new address
    #: (has the family, and is not reluctant)
    switchish: Dict[int, np.ndarray]
    #: family -> bool mask: client re-primes daily after switching
    primer: Dict[int, np.ndarray]
    #: family -> per-client prefix strings (None = no such family)
    prefixes: Dict[int, Tuple[Optional[str], ...]]

    def __len__(self) -> int:
        return len(self.client_ids)

    @classmethod
    def from_clients(cls, clients: List[ClientNetwork]) -> "ClientColumns":
        n = len(clients)
        client_ids = np.empty(n, dtype=np.uint64)
        volumes = np.empty(n, dtype=np.float64)
        has_v6 = np.empty(n, dtype=bool)
        adoption_ts = np.empty(n, dtype=np.int64)
        switchish = {4: np.empty(n, dtype=bool), 6: np.empty(n, dtype=bool)}
        primer = {4: np.empty(n, dtype=bool), 6: np.empty(n, dtype=bool)}
        prefixes: Dict[int, List[Optional[str]]] = {4: [], 6: []}
        for i, client in enumerate(clients):
            client_ids[i] = client.client_id
            volumes[i] = client.daily_flows
            has_v6[i] = client.prefix_v6 is not None
            adoption_ts[i] = client.adoption_ts
            for family in (4, 6):
                behavior = client.behavior(family)
                switchish[family][i] = behavior is not None and (
                    behavior is not ClientBehavior.RELUCTANT
                )
                primer[family][i] = behavior is ClientBehavior.PRIMER
            prefixes[4].append(client.prefix_v4)
            prefixes[6].append(client.prefix_v6)
        return cls(
            client_ids=client_ids,
            volumes=volumes,
            has_v6=has_v6,
            adoption_ts=adoption_ts,
            switchish=switchish,
            primer=primer,
            prefixes={4: tuple(prefixes[4]), 6: tuple(prefixes[6])},
        )


def capture_vectorized(
    capture, start: Timestamp, end: Timestamp, bucket_seconds: int
) -> FlowAggregate:
    """Evaluate one :class:`~repro.passive.isp.IspCapture` window as
    array kernels; byte-identical to the scalar triple loop."""
    from repro.passive.isp import (
        TESTER_FRACTION,
        TESTER_TRAFFIC_SHARE,
        V6_TRAFFIC_SHARE,
    )

    columns: ClientColumns = capture.client_columns()
    n = len(columns)
    buckets: List[Timestamp] = list(
        range(start - start % bucket_seconds, end, bucket_seconds)
    )
    n_buckets = len(buckets)

    # Per-client mixer state after absorbing (seed, client_id); every
    # scalar mix_float(seed, client_id, ...) call continues from here.
    state_client = mix64_array(mix64_prefix(capture.seed), columns.client_ids)
    tester = (mix64_array(state_client, np.uint64(4242)) / _TWO64) < TESTER_FRACTION

    # (bucket x client) mixer states and bucket noise.
    bucket_u64 = np.array(buckets, dtype=np.uint64).reshape(-1, 1)
    state_cb = mix64_array(state_client.reshape(1, -1), bucket_u64)
    noise = 0.7 + 0.6 * (state_cb / _TWO64)

    base = columns.volumes * bucket_seconds / DAY
    if bucket_seconds < DAY:
        # Diurnal factor is a pure function of the bucket timestamp;
        # computed in Python floats exactly as the scalar engine does.
        factors = np.array(
            [
                0.6
                + 0.8
                * max(0.0, 1.0 - abs((bucket % DAY) / HOUR - 19.0) / 12.0)
                for bucket in buckets
            ],
            dtype=np.float64,
        ).reshape(-1, 1)
        flows = (base.reshape(1, -1) * factors) * noise
    else:
        flows = base.reshape(1, -1) * noise

    bucket_i64 = np.array(buckets, dtype=np.int64).reshape(-1, 1)
    adopted = {
        family: columns.switchish[family].reshape(1, -1)
        & (bucket_i64 >= columns.adoption_ts.reshape(1, -1))
        for family in (4, 6)
    }
    family_share = {
        4: np.where(columns.has_v6, 1.0 - V6_TRAFFIC_SHARE, 1.0),
        6: np.where(columns.has_v6, V6_TRAFFIC_SHARE, 0.0),
    }
    state_cbf = {
        family: mix64_array(state_cb, np.uint64(family)) for family in (4, 6)
    }
    tester_row = tester.reshape(1, -1)

    flows_out: Dict[Tuple[Timestamp, str], float] = {}
    client_counts: Dict[Tuple[Timestamp, str], int] = {}
    per_client_flows: Dict[Tuple[str, str], float] = {}
    per_client_days: Dict[Tuple[str, str], int] = {}
    addresses = capture.addresses
    keep_membership = (
        len(addresses) * n_buckets * n <= MAX_MEMBERSHIP_CELLS
    )
    kept_masks: Dict[str, np.ndarray] = {}
    families: Dict[str, int] = {}

    for sa in addresses:
        family = sa.family
        # Letter weight with dips and capture noise, per bucket — pure
        # Python floats, matching the scalar multiply order.
        per_bucket_weight = []
        for bucket in buckets:
            weight = capture.letter_weights[sa.letter]
            for dip in capture.dips:
                weight *= dip.scale(sa.letter, bucket)
            weight *= 1.0 + capture.noise_fraction
            per_bucket_weight.append(weight)
        weight_col = np.array(per_bucket_weight, dtype=np.float64).reshape(-1, 1)

        amount = (flows * weight_col) * family_share[family].reshape(1, -1)
        if sa.generation == "new":
            amount = np.where(
                adopted[family],
                amount,
                np.where(tester_row, amount * TESTER_TRAFFIC_SHARE, 0.0),
            )
        elif sa.generation == "old":
            amount = np.where(
                adopted[family],
                np.where(
                    columns.primer[family].reshape(1, -1),
                    np.minimum(amount * 0.05, 0.5),
                    0.0,
                ),
                np.where(
                    tester_row, amount * (1.0 - TESTER_TRAFFIC_SHARE), amount
                ),
            )

        sampled = amount * capture.sampling_rate
        address_hash = mix_str(sa.address) & 0xFFFF
        drop = mix64_array(state_cbf[family], np.uint64(address_hash)) / _TWO64
        kept = (amount > 0.0) & ((sampled >= 1.0) | (drop <= sampled))
        contributions = np.where(kept, np.maximum(sampled, 1.0), 0.0)

        # cumsum reduces strictly left-to-right: the exact accumulation
        # order of the scalar engine's dict updates.
        bucket_totals = np.cumsum(contributions, axis=1)[:, -1]
        bucket_counts = np.count_nonzero(kept, axis=1)
        for b_idx, bucket in enumerate(buckets):
            if bucket_counts[b_idx]:
                key = (bucket, sa.address)
                flows_out[key] = float(bucket_totals[b_idx])
                client_counts[key] = int(bucket_counts[b_idx])

        client_totals = np.cumsum(contributions, axis=0)[-1, :]
        client_days = np.count_nonzero(kept, axis=0)
        prefixes = columns.prefixes[family]
        for c in np.flatnonzero(client_days).tolist():
            ckey = (sa.address, prefixes[c])
            per_client_flows[ckey] = float(client_totals[c])
            per_client_days[ckey] = int(client_days[c])

        if keep_membership:
            kept_masks[sa.address] = kept
            families[sa.address] = family

    membership = (
        ClientMembership(
            buckets=buckets,
            prefixes=columns.prefixes,
            families=families,
            kept=kept_masks,
        )
        if keep_membership
        else None
    )
    return FlowAggregate.from_parts(
        bucket_seconds,
        flows=flows_out,
        client_counts=client_counts,
        per_client_flows=per_client_flows,
        per_client_days=per_client_days,
        membership=membership,
    )
