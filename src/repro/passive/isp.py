"""The ISP-DNS-1 analogue: passive capture at a large European ISP.

Generates the sampled flow traffic of the ISP's client population toward
all root service addresses over requested windows, implementing the
behaviour semantics from :mod:`repro.passive.clients`:

* before the b.root change, the old subnets carry the traffic and the new
  ones see only a testing trickle (paper: 0.8 % on 2023-10-08),
* after the change, adopted clients move their in-family traffic to the
  new address; reluctant ones stay; primers touch the old address once
  per day,
* v4/v6 mix: dual-stack clients send roughly a third of their root
  queries over IPv6 (paper: old b.root saw 76-89 % v4 / 10-21 % v6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netsim.mix import mix_float, mix_str
from repro.passive.clients import (
    ClientBehavior,
    ClientNetwork,
    LETTER_WEIGHTS_ISP,
)
from repro.rss.operators import ServiceAddress, all_service_addresses
from repro.passive.traces import FlowAggregate, TrafficTimeSeries
from repro.util.timeutil import DAY, HOUR, Timestamp

#: Fraction of a dual-stack client's root traffic using IPv6.
V6_TRAFFIC_SHARE = 0.30

#: Fraction of clients that probe the not-yet-published new addresses
#: (operators testing), and their share of traffic to it.
TESTER_FRACTION = 0.02
TESTER_TRAFFIC_SHARE = 0.4

#: The capture cannot filter non-DNS traffic (paper §4.1: for ISP-DNS-1,
#: 1.75 % of measured traffic was not from port 53).
NOISE_FRACTION = 0.0175


@dataclass(frozen=True)
class TrafficDip:
    """A letter's traffic dropping for a time window (upstream outage).

    The paper's Figure 12 shows a.root dipping on 2024-02-26 ("should be
    investigated in future work"); the default event list reproduces it.
    """

    letter: str
    start_ts: Timestamp
    end_ts: Timestamp
    factor: float  # remaining traffic share (0.4 = 60% dip)

    def scale(self, letter: str, ts: Timestamp) -> float:
        if letter == self.letter and self.start_ts <= ts < self.end_ts:
            return self.factor
        return 1.0


#: Default anomaly calendar (the Fig. 12 a.root dip).
DEFAULT_DIPS: Tuple[TrafficDip, ...] = (
    TrafficDip(
        letter="a",
        start_ts=1708905600,  # 2024-02-26
        end_ts=1708992000,  # 2024-02-27
        factor=0.45,
    ),
)


#: Capture engines: "vectorized" evaluates numpy kernels over the
#: (bucket x client) grid (repro.passive.flow_engine); "scalar" walks
#: the original triple loop and is the golden reference.  Both produce
#: byte-identical aggregates.
CAPTURE_ENGINES = ("vectorized", "scalar")


class IspCapture:
    """Capture point inside the ISP."""

    def __init__(
        self,
        clients,  # List[ClientNetwork] or a compiled ClientColumns
        seed: int,
        sampling_rate: float = 1.0,
        letter_weights: Optional[Dict[str, float]] = None,
        dips: Tuple[TrafficDip, ...] = DEFAULT_DIPS,
        noise_fraction: float = NOISE_FRACTION,
        engine: str = "vectorized",
    ) -> None:
        if not 0.0 < sampling_rate <= 1.0:
            raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
        if not 0.0 <= noise_fraction < 1.0:
            raise ValueError(f"noise_fraction must be in [0, 1), got {noise_fraction}")
        if engine not in CAPTURE_ENGINES:
            raise ValueError(
                f"engine must be one of {CAPTURE_ENGINES}, got {engine!r}"
            )
        self.clients = clients
        self.seed = seed
        self.sampling_rate = sampling_rate
        self.letter_weights = letter_weights or LETTER_WEIGHTS_ISP
        self.dips = dips
        self.noise_fraction = noise_fraction
        self.engine = engine
        self.addresses: List[ServiceAddress] = all_service_addresses()
        self._columns = None

    def client_columns(self):
        """The population compiled into numpy columns (memoized).

        ``clients`` may already *be* a compiled
        :class:`~repro.passive.flow_engine.ClientColumns` (the
        paper-scale population engine never builds per-client objects);
        it is then used as-is.
        """
        if self._columns is None:
            from repro.passive.flow_engine import ClientColumns

            if isinstance(self.clients, ClientColumns):
                self._columns = self.clients
            else:
                self._columns = ClientColumns.from_clients(self.clients)
        return self._columns

    def reset(self) -> None:
        """Drop compiled per-population state (after mutating clients)."""
        self._columns = None

    # -- flow generation ------------------------------------------------------------

    def _client_bucket_flows(
        self, client: ClientNetwork, bucket_ts: Timestamp, bucket_seconds: int
    ) -> float:
        """Total root-bound flows of one client in one bucket."""
        base = client.daily_flows * bucket_seconds / DAY
        # Diurnal pattern for sub-daily buckets (traffic peaks in the
        # evening, as in the paper's hourly Figure 7 panel).
        if bucket_seconds < DAY:
            hour = (bucket_ts % DAY) / HOUR
            base *= 0.6 + 0.8 * max(0.0, 1.0 - abs(hour - 19.0) / 12.0)
        noise = 0.7 + 0.6 * mix_float(self.seed, client.client_id, bucket_ts)
        return base * noise

    def _address_flows(
        self, client: ClientNetwork, sa: ServiceAddress, bucket_ts: Timestamp, flows: float
    ) -> float:
        """The share of a client's bucket traffic hitting one address."""
        weight = self.letter_weights[sa.letter]
        for dip in self.dips:
            weight *= dip.scale(sa.letter, bucket_ts)
        # Unfilterable non-DNS noise rides along on every subnet.
        weight *= 1.0 + self.noise_fraction
        # Family split.
        if sa.family == 6:
            if client.prefix_v6 is None:
                return 0.0
            family_share = V6_TRAFFIC_SHARE
        else:
            family_share = (
                1.0 - V6_TRAFFIC_SHARE if client.prefix_v6 is not None else 1.0
            )
        amount = flows * weight * family_share
        if sa.generation == "current":
            return amount

        # b.root old/new logic.
        adopted = client.has_adopted(bucket_ts, sa.family)
        behavior = client.behavior(sa.family)
        is_tester = (
            mix_float(self.seed, client.client_id, 4242) < TESTER_FRACTION
        )
        if sa.generation == "new":
            if adopted:
                return amount
            if is_tester:
                return amount * TESTER_TRAFFIC_SHARE
            return 0.0
        # generation == "old"
        if not adopted:
            if is_tester:
                return amount * (1.0 - TESTER_TRAFFIC_SHARE)
            return amount
        if behavior is ClientBehavior.PRIMER:
            # RFC 8109 priming: ~one query per day against the old
            # address — a sliver of a sampled flow, not the client's full
            # b.root volume.
            return min(amount * 0.05, 0.5)
        return 0.0

    def _client_prefix(self, client: ClientNetwork, family: int) -> Optional[str]:
        return client.prefix_v4 if family == 4 else client.prefix_v6

    # -- capture -------------------------------------------------------------------

    def capture(
        self, start: Timestamp, end: Timestamp, bucket_seconds: int = DAY
    ) -> FlowAggregate:
        """Capture the window [start, end) into an aggregate."""
        if end <= start:
            raise ValueError("capture window must have positive length")
        if self.engine == "vectorized":
            from repro.passive.flow_engine import capture_vectorized

            return capture_vectorized(self, start, end, bucket_seconds)
        if not isinstance(self.clients, list):
            raise ValueError(
                "the scalar engine walks ClientNetwork objects; a "
                "columns-only population requires engine='vectorized'"
            )
        return self._capture_scalar(start, end, bucket_seconds)

    def _capture_scalar(
        self, start: Timestamp, end: Timestamp, bucket_seconds: int
    ) -> FlowAggregate:
        """The reference triple loop (``engine="scalar"``)."""
        aggregate = FlowAggregate(bucket_seconds=bucket_seconds)
        bucket = start - start % bucket_seconds
        while bucket < end:
            for client in self.clients:
                flows = self._client_bucket_flows(client, bucket, bucket_seconds)
                for sa in self.addresses:
                    amount = self._address_flows(client, sa, bucket, flows)
                    if amount <= 0:
                        continue
                    sampled = amount * self.sampling_rate
                    prefix = self._client_prefix(client, sa.family)
                    if prefix is None:
                        continue
                    # Sampling may drop a client's trickle entirely.
                    if sampled < 1.0 and mix_float(
                        self.seed, client.client_id, bucket, sa.family, mix_str(sa.address) & 0xFFFF
                    ) > sampled:
                        continue
                    aggregate.add_flows(bucket, sa.address, max(sampled, 1.0), prefix)
            bucket += bucket_seconds
        return aggregate

    def time_series(self, aggregate: FlowAggregate) -> TrafficTimeSeries:
        """Wrap an aggregate for normalised-share reads."""
        return TrafficTimeSeries(aggregate, self.addresses)
