"""The IXP-DNS-1 analogue: passive capture at 14 EU/NA exchanges.

Each exchange sees a regional client mix whose address-change adoption
differs (paper Fig. 9: by late December 2023, ~60.8 % of b.root IPv6
traffic at European IXPs had shifted to the new address, but only
~16.5 % in North America).  IXP captures are much more heavily sampled
than the ISP's, and traffic is letter-skewed (k.root and d.root dominate,
Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.geo.continents import Continent
from repro.netsim.facilities import Ixp, IXP_CATALOG, PASSIVE_IXP_IDS
from repro.passive.clients import (
    IXP_EU_PROFILE,
    IXP_NA_PROFILE,
    LETTER_WEIGHTS_IXP,
    PopulationProfile,
    build_client_population,
)
from repro.netsim.mix import mix_str
from repro.passive.isp import IspCapture
from repro.passive.traces import FlowAggregate, TrafficTimeSeries
from repro.util.rng import RngFactory
from repro.util.timeutil import DAY, Timestamp


@dataclass
class IxpCapture:
    """One exchange's capture point.

    Reuses the ISP flow engine with the exchange's own client population,
    letter skew and heavy sampling — the capture pipeline is identical,
    only the vantage differs (as in the paper).
    """

    ixp: Ixp
    engine: IspCapture

    @property
    def region(self) -> Continent:
        return self.ixp.continent

    def capture(
        self, start: Timestamp, end: Timestamp, bucket_seconds: int = DAY
    ) -> FlowAggregate:
        return self.engine.capture(start, end, bucket_seconds)

    def time_series(self, aggregate: FlowAggregate) -> TrafficTimeSeries:
        return self.engine.time_series(aggregate)


def build_ixp_captures(
    rng_factory: RngFactory,
    seed: int,
    clients_per_ixp: int = 300,
    sampling_rate: float = 0.1,
    engine: str = "vectorized",
    eu_profile: PopulationProfile = IXP_EU_PROFILE,
    na_profile: PopulationProfile = IXP_NA_PROFILE,
) -> List[IxpCapture]:
    """The 14 passive IXP vantage points with region-specific behaviour.

    The regional profiles default to the paper's; a scenario's traffic
    layer substitutes its overridden ones.
    """
    captures: List[IxpCapture] = []
    by_id: Dict[str, Ixp] = {ixp.ixp_id: ixp for ixp in IXP_CATALOG}
    for ixp_id in PASSIVE_IXP_IDS:
        ixp = by_id[ixp_id]
        profile = eu_profile if ixp.continent is Continent.EUROPE else na_profile
        # Per-exchange population: share the regional behaviour profile
        # but draw independent clients.
        sized = replace(
            profile, name=f"{profile.name}.{ixp_id}", n_clients=clients_per_ixp
        )
        clients = build_client_population(sized, rng_factory)
        flow_engine = IspCapture(
            clients,
            seed=seed ^ (mix_str(ixp_id) & 0xFFFF),
            sampling_rate=sampling_rate,
            letter_weights=LETTER_WEIGHTS_IXP,
            engine=engine,
        )
        captures.append(IxpCapture(ixp=ixp, engine=flow_engine))
    return captures


def regional_aggregate(
    captures: List[IxpCapture],
    region: Continent,
    start: Timestamp,
    end: Timestamp,
    bucket_seconds: int = DAY,
) -> FlowAggregate:
    """Merged aggregate over all exchanges of one region (Fig. 9 view)."""
    merged = FlowAggregate(bucket_seconds=bucket_seconds)
    for capture in captures:
        if capture.region is not region:
            continue
        merged.merge_from(capture.capture(start, end, bucket_seconds))
    return merged
