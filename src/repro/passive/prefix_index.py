"""Longest-prefix-match index over anonymised client prefixes.

Attributing an observed flow source back to the client network that
owns it is a longest-prefix match of the source address against the
population's /24 (v4) and /48 (v6) prefixes.  At 10⁵–10⁶ clients the
obvious per-lookup scan is O(population); the radix engine answers in
O(prefix bits) off a binary trie, behind the same interface as the
linear-scan golden reference:

* :class:`LinearPrefixIndex` — O(n) scan per lookup, trivially correct;
  the reference semantics (most-specific match wins, ties impossible —
  duplicate inserts of the same network keep the first payload).
* :class:`RadixPrefixIndex` — MSB-first binary trie; the deepest value
  node passed on the walk is the longest match.

Both engines accept arbitrary prefix lengths (not just /24 and /48), so
nested client plans keep working.  ``tests/passive/test_prefix_index.py``
pins engine equivalence over nested random plans and the population
round-trip at scale.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Iterable, List, Optional, Tuple

PREFIX_INDEX_ENGINES = ("radix", "linear")


def _parse_prefix(prefix: str) -> Tuple[int, int, int]:
    """(address bits, network int, prefix length) of a prefix string."""
    network = ipaddress.ip_network(prefix)
    return network.max_prefixlen, int(network.network_address), network.prefixlen


def _parse_address(address: str) -> Tuple[int, int]:
    """(address bits, address int) of an address string."""
    parsed = ipaddress.ip_address(address)
    return parsed.max_prefixlen, int(parsed)


class LinearPrefixIndex:
    """The O(n)-scan golden reference."""

    def __init__(self) -> None:
        #: (bits, network, length, payload) per inserted prefix.
        self._entries: List[Tuple[int, int, int, str]] = []
        self._seen: Dict[Tuple[int, int, int], bool] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, prefix: str, payload: Optional[str] = None) -> None:
        bits, network, length = _parse_prefix(prefix)
        key = (bits, network, length)
        if key in self._seen:
            return
        self._seen[key] = True
        self._entries.append((bits, network, length, payload or prefix))

    def lookup(self, address: str) -> Optional[str]:
        bits, value = _parse_address(address)
        best: Optional[str] = None
        best_length = -1
        for entry_bits, network, length, payload in self._entries:
            if entry_bits != bits or length <= best_length:
                continue
            if (value >> (bits - length) if length else 0) == (
                network >> (bits - length) if length else 0
            ):
                best, best_length = payload, length
        return best


class RadixPrefixIndex:
    """MSB-first binary trie: lookups walk at most *bits* levels."""

    #: Trie node layout: [zero-child, one-child, payload-or-None].
    _ZERO, _ONE, _PAYLOAD = 0, 1, 2

    def __init__(self) -> None:
        #: One root per address family (32-bit and 128-bit spaces).
        self._roots: Dict[int, list] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, prefix: str, payload: Optional[str] = None) -> None:
        bits, network, length = _parse_prefix(prefix)
        node = self._roots.setdefault(bits, [None, None, None])
        for level in range(length):
            bit = (network >> (bits - 1 - level)) & 1
            child = node[bit]
            if child is None:
                child = [None, None, None]
                node[bit] = child
            node = child
        if node[self._PAYLOAD] is None:
            node[self._PAYLOAD] = payload or prefix
            self._size += 1

    def lookup(self, address: str) -> Optional[str]:
        bits, value = _parse_address(address)
        node = self._roots.get(bits)
        if node is None:
            return None
        best: Optional[str] = node[self._PAYLOAD]
        for level in range(bits):
            node = node[(value >> (bits - 1 - level)) & 1]
            if node is None:
                break
            if node[self._PAYLOAD] is not None:
                best = node[self._PAYLOAD]
        return best


def build_prefix_index(
    prefixes: Iterable[Optional[str]], *, engine: str = "radix"
):
    """Index every non-None prefix; the payload of each is the prefix
    string itself.  ``engine`` picks the radix trie or the linear
    reference — identical answers, different lookup complexity."""
    if engine not in PREFIX_INDEX_ENGINES:
        raise ValueError(
            f"engine must be one of {PREFIX_INDEX_ENGINES}, got {engine!r}"
        )
    index = RadixPrefixIndex() if engine == "radix" else LinearPrefixIndex()
    for prefix in prefixes:
        if prefix is not None:
            index.add(prefix)
    return index


def population_prefix_index(columns, family: int, *, engine: str = "radix"):
    """LPM index over one family of a compiled population
    (:class:`~repro.passive.flow_engine.ClientColumns`)."""
    return build_prefix_index(columns.prefixes[family], engine=engine)
