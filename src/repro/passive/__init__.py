"""Passive traffic traces: the ISP-DNS-1 and IXP-DNS-1 dataset analogues.

The paper complements active probing with sampled, anonymised flow traces
from a large European ISP and 14 EU/NA IXPs, covering the subnets of all
root service addresses around b.root's renumbering.  This package models
the client/resolver populations behind those observation points — their
query mix, RFC 8109 priming behaviour and address-change adoption — and
the capture pipeline (sampling, /24 / /48 aggregation, normalisation).
"""

from repro.passive.clients import (
    ClientBehavior,
    ClientNetwork,
    build_client_population,
    PopulationProfile,
)
from repro.passive.traces import FlowAggregate, TrafficTimeSeries
from repro.passive.isp import IspCapture
from repro.passive.ixp import IxpCapture, build_ixp_captures

__all__ = [
    "ClientBehavior",
    "ClientNetwork",
    "build_client_population",
    "PopulationProfile",
    "FlowAggregate",
    "TrafficTimeSeries",
    "IspCapture",
    "IxpCapture",
    "build_ixp_captures",
]
