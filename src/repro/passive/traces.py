"""Flow aggregation for passive captures.

Captures record *sampled, anonymised* flows: per time bucket, per root
service address, a flow count plus the set of client prefixes seen.  The
paper can only report *relative* traffic (privacy aggregation), so the
read-side API normalises to shares.

The write side stays dict-keyed (the scalar reference engine appends one
``add_flows`` call at a time), but every read view is memoized into
columnar form on first use: the sorted bucket list, one flow array per
address aligned to those buckets, per-address client counts and the
Figure 8 per-client means.  The caches invalidate on any write, so
``series``/``unique_clients``/``normalized_shares``/``window_share`` are
O(1) dictionary-free lookups on the hot read path instead of per-call
scans over every ``(bucket, address)`` item.

The vectorized engine (:mod:`repro.passive.flow_engine`) builds
aggregates through :meth:`FlowAggregate.from_parts` without ever going
through ``add_flows``; the distinct-client *sets* then live in a compact
:class:`ClientMembership` payload and materialise lazily — the common
consumers (``unique_clients``, the analyses) only need the counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.rss.operators import ServiceAddress
from repro.util.timeutil import Timestamp


@dataclass
class ClientMembership:
    """Columnar (bucket x client) keep-masks of one vectorized capture.

    A compact stand-in for the per-``(bucket, address)`` prefix sets:
    ``kept[address][b, c]`` says client *c* contributed flows to
    *address* in bucket *b*.  :meth:`materialize` expands to the exact
    sets the scalar engine would have built.
    """

    buckets: List[Timestamp]
    #: family -> per-client prefix strings (None = client lacks the family)
    prefixes: Dict[int, Tuple[Optional[str], ...]]
    #: address -> address family
    families: Dict[str, int]
    #: address -> (n_buckets, n_clients) bool keep-mask
    kept: Dict[str, np.ndarray]

    def materialize(self) -> Dict[Tuple[Timestamp, str], Set[str]]:
        sets: Dict[Tuple[Timestamp, str], Set[str]] = {}
        for address, mask in self.kept.items():
            prefixes = self.prefixes[self.families[address]]
            for b_idx, bucket in enumerate(self.buckets):
                row = np.flatnonzero(mask[b_idx])
                if row.size:
                    sets[(bucket, address)] = {
                        prefixes[c] for c in row.tolist()  # type: ignore[misc]
                    }
        return sets


@dataclass
class PerClientLedger:
    """Columnar (address, client) flow totals of one vectorized capture.

    At 10⁵–10⁶ clients the dict forms of ``per_client_flows`` /
    ``per_client_days`` mean tens of millions of ``(address, prefix)``
    tuple keys and prefix strings; this ledger carries the same facts as
    four parallel arrays plus the population's prefix tables.  The dicts
    materialise lazily on direct access; the hot consumer
    (:meth:`FlowAggregate.mean_daily_flows_per_client`, Figure 8) reads
    the arrays and never builds a string.
    """

    addresses: List[str]  # entry addr_idx -> service address
    #: address -> family, family -> per-client prefixes (population order)
    families: Dict[str, int]
    prefixes: Dict[int, Tuple[Optional[str], ...]]
    addr_idx: np.ndarray  # int32 per entry
    client_idx: np.ndarray  # int64 per entry, index into prefixes[family]
    flows: np.ndarray  # float64 total flows of (address, client)
    days: np.ndarray  # int64 buckets with >= 1 flow

    def __len__(self) -> int:
        return len(self.addr_idx)

    def materialize(
        self,
    ) -> Tuple[Dict[Tuple[str, str], float], Dict[Tuple[str, str], int]]:
        """Expand to the exact scalar-engine dicts (entry order is the
        scalar fill order: address-major, client-minor)."""
        flows_dict: Dict[Tuple[str, str], float] = {}
        days_dict: Dict[Tuple[str, str], int] = {}
        addr_idx = self.addr_idx.tolist()
        client_idx = self.client_idx.tolist()
        flows = self.flows.tolist()
        days = self.days.tolist()
        for e in range(len(addr_idx)):
            address = self.addresses[addr_idx[e]]
            prefix = self.prefixes[self.families[address]][client_idx[e]]
            key = (address, prefix)
            flows_dict[key] = flows[e]  # type: ignore[index]
            days_dict[key] = days[e]  # type: ignore[index]
        return flows_dict, days_dict

    def mean_daily_flows(self) -> Dict[str, List[float]]:
        """address -> per-client mean flows per active bucket, straight
        off the arrays (bit-identical to ``total / max(1, days)``)."""
        ratios = self.flows / np.maximum(1, self.days)
        out: Dict[str, List[float]] = {}
        for a_idx, address in enumerate(self.addresses):
            out[address] = ratios[self.addr_idx == a_idx].tolist()
        return out


class FlowAggregate:
    """Sampled flow counts per (time bucket, service address)."""

    def __init__(self, bucket_seconds: int) -> None:
        self.bucket_seconds = bucket_seconds
        #: (bucket_ts, address) -> flow count
        self.flows: Dict[Tuple[Timestamp, str], float] = {}
        #: Dict forms of the per-client totals; None while they still
        #: live in ``_per_client_ledger`` (vectorized captures at scale).
        self._per_client_flows: Optional[Dict[Tuple[str, str], float]] = {}
        self._per_client_days: Optional[Dict[Tuple[str, str], int]] = {}
        self._per_client_ledger: Optional[PerClientLedger] = None
        #: (bucket_ts, address) -> distinct client prefixes; None when the
        #: sets live in ``_membership`` (vectorized) or were never
        #: persisted (counts-only reload).
        self._client_sets: Optional[Dict[Tuple[Timestamp, str], Set[str]]] = {}
        #: (bucket_ts, address) -> distinct-client count (always present).
        self._client_counts: Dict[Tuple[Timestamp, str], int] = {}
        self._membership: Optional[ClientMembership] = None
        # Memoized read views (see module docstring).
        self._bucket_cache: Optional[List[Timestamp]] = None
        self._bucket_array: Optional[np.ndarray] = None
        self._flow_index: Optional[Dict[str, Dict[Timestamp, float]]] = None
        self._flow_arrays: Dict[str, np.ndarray] = {}
        self._count_index: Optional[Dict[str, Dict[Timestamp, int]]] = None
        self._pc_cache: Optional[Dict[str, List[float]]] = None

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_parts(
        cls,
        bucket_seconds: int,
        *,
        flows: Dict[Tuple[Timestamp, str], float],
        client_counts: Dict[Tuple[Timestamp, str], int],
        per_client_flows: Optional[Dict[Tuple[str, str], float]] = None,
        per_client_days: Optional[Dict[Tuple[str, str], int]] = None,
        per_client: Optional[PerClientLedger] = None,
        membership: Optional[ClientMembership] = None,
    ) -> "FlowAggregate":
        """Assemble an aggregate from pre-computed columns.

        Used by the vectorized engine and the dataset reload path; with
        ``membership=None`` the aggregate is *counts-only* — every read
        works except the :attr:`clients` prefix sets themselves.  The
        per-client totals arrive either as the two dicts or as one
        columnar :class:`PerClientLedger` (the dicts then materialise
        lazily on first direct access).
        """
        if (per_client is None) == (per_client_flows is None):
            raise ValueError(
                "pass either per_client_flows/per_client_days or a "
                "per_client ledger, not both"
            )
        if per_client is None and per_client_days is None:
            raise ValueError("per_client_flows requires per_client_days")
        aggregate = cls(bucket_seconds)
        aggregate.flows = flows
        aggregate._per_client_flows = per_client_flows
        aggregate._per_client_days = per_client_days
        aggregate._per_client_ledger = per_client
        aggregate._client_counts = client_counts
        aggregate._client_sets = None
        aggregate._membership = membership
        return aggregate

    # -- per-client totals ---------------------------------------------------------

    def _materialize_per_client(self) -> None:
        assert self._per_client_ledger is not None
        self._per_client_flows, self._per_client_days = (
            self._per_client_ledger.materialize()
        )
        self._per_client_ledger = None

    @property
    def per_client_flows(self) -> Dict[Tuple[str, str], float]:
        """(address, client prefix) -> total flows (Figure 8 input)."""
        if self._per_client_flows is None:
            self._materialize_per_client()
        assert self._per_client_flows is not None
        return self._per_client_flows

    @property
    def per_client_days(self) -> Dict[Tuple[str, str], int]:
        """(address, client prefix) -> buckets with >= 1 flow."""
        if self._per_client_days is None:
            self._materialize_per_client()
        assert self._per_client_days is not None
        return self._per_client_days

    # -- write side --------------------------------------------------------------

    def bucket_of(self, ts: Timestamp) -> Timestamp:
        return ts - ts % self.bucket_seconds

    def add_flows(
        self, ts: Timestamp, address: str, count: float, client_prefix: str
    ) -> None:
        """Record *count* sampled flows from one client in one bucket."""
        if count <= 0:
            return
        bucket = self.bucket_of(ts)
        key = (bucket, address)
        self.flows[key] = self.flows.get(key, 0.0) + count
        prefixes = self.clients.setdefault(key, set())
        prefixes.add(client_prefix)
        self._client_counts[key] = len(prefixes)
        ckey = (address, client_prefix)
        self.per_client_flows[ckey] = self.per_client_flows.get(ckey, 0.0) + count
        self.per_client_days[ckey] = self.per_client_days.get(ckey, 0) + 1
        self._invalidate()

    def merge_from(self, other: "FlowAggregate") -> None:
        """Fold *other* into this aggregate (regional IXP merges).

        Flow counts add; client prefix sets union (the same anonymised
        prefix seen at two exchanges is one client); per-client flows
        add and active-day counts take the maximum, matching how the
        paper combines per-exchange views of one client.
        """
        if other.bucket_seconds != self.bucket_seconds:
            raise ValueError(
                f"cannot merge bucket_seconds={other.bucket_seconds} into "
                f"bucket_seconds={self.bucket_seconds}"
            )
        own_sets = self.clients
        for key, flows in other.flows.items():
            self.flows[key] = self.flows.get(key, 0.0) + flows
        for key, prefixes in other.clients.items():
            mine = own_sets.setdefault(key, set())
            mine.update(prefixes)
            self._client_counts[key] = len(mine)
        for ckey, flows in other.per_client_flows.items():
            self.per_client_flows[ckey] = (
                self.per_client_flows.get(ckey, 0.0) + flows
            )
        for ckey, days in other.per_client_days.items():
            self.per_client_days[ckey] = max(
                self.per_client_days.get(ckey, 0), days
            )
        self._invalidate()

    # -- clients -----------------------------------------------------------------

    @property
    def clients(self) -> Dict[Tuple[Timestamp, str], Set[str]]:
        """(bucket_ts, address) -> distinct client prefixes.

        Vectorized captures materialise this lazily from their
        membership masks; aggregates reloaded from disk carry only the
        counts and raise here — use :meth:`unique_clients` /
        :meth:`client_count` instead.
        """
        if self._client_sets is None:
            if self._membership is None:
                raise RuntimeError(
                    "this aggregate carries only distinct-client counts "
                    "(reloaded from a dataset); the prefix sets were not "
                    "persisted — use unique_clients()/client_count()"
                )
            self._client_sets = self._membership.materialize()
            self._membership = None
        return self._client_sets

    def client_count(self, bucket: Timestamp, address: str) -> int:
        """Distinct clients of *address* in *bucket* (0 if none)."""
        return self._client_counts.get((bucket, address), 0)

    # -- read side ---------------------------------------------------------------

    def _invalidate(self) -> None:
        self._bucket_cache = None
        self._bucket_array = None
        self._flow_index = None
        self._flow_arrays = {}
        self._count_index = None
        self._pc_cache = None

    def buckets(self) -> List[Timestamp]:
        """All time buckets with any traffic, ascending (cached)."""
        if self._bucket_cache is None:
            self._bucket_cache = sorted({bucket for bucket, _addr in self.flows})
        return self._bucket_cache

    def buckets_array(self) -> np.ndarray:
        """The bucket timestamps as an int64 array (cached)."""
        if self._bucket_array is None:
            self._bucket_array = np.array(self.buckets(), dtype=np.int64)
        return self._bucket_array

    def _ensure_indices(self) -> None:
        """One pass over the flow dicts builds every per-address index."""
        if self._flow_index is None:
            flow_index: Dict[str, Dict[Timestamp, float]] = {}
            for (bucket, address), value in self.flows.items():
                flow_index.setdefault(address, {})[bucket] = value
            self._flow_index = flow_index
        if self._count_index is None:
            count_index: Dict[str, Dict[Timestamp, int]] = {}
            for (bucket, address), count in self._client_counts.items():
                count_index.setdefault(address, {})[bucket] = count
            self._count_index = count_index

    def flows_by_bucket(self, address: str) -> np.ndarray:
        """Flow counts of *address* aligned to :meth:`buckets` (cached)."""
        cached = self._flow_arrays.get(address)
        if cached is None:
            self._ensure_indices()
            assert self._flow_index is not None
            per_bucket = self._flow_index.get(address, {})
            cached = np.array(
                [per_bucket.get(bucket, 0.0) for bucket in self.buckets()],
                dtype=np.float64,
            )
            self._flow_arrays[address] = cached
        return cached

    def series(self, address: str) -> List[Tuple[Timestamp, float]]:
        """(bucket, flows) series for one address."""
        return list(zip(self.buckets(), self.flows_by_bucket(address).tolist()))

    def unique_clients(self, address: str) -> List[Tuple[Timestamp, int]]:
        """(bucket, distinct clients) series for one address."""
        self._ensure_indices()
        assert self._count_index is not None
        per_bucket = self._count_index.get(address, {})
        return [(bucket, per_bucket.get(bucket, 0)) for bucket in self.buckets()]

    def mean_daily_flows_per_client(self, address: str) -> List[float]:
        """Per client of *address*: mean flows per active bucket —
        the Figure 8 x-axis values."""
        if self._pc_cache is None:
            if self._per_client_ledger is not None:
                # Array fast path: no dict materialisation, no strings.
                self._pc_cache = self._per_client_ledger.mean_daily_flows()
            else:
                cache: Dict[str, List[float]] = {}
                days = self.per_client_days
                for (addr, client), total in self.per_client_flows.items():
                    cache.setdefault(addr, []).append(
                        total / max(1, days[(addr, client)])
                    )
                self._pc_cache = cache
        return list(self._pc_cache.get(address, []))


class TrafficTimeSeries:
    """Normalised traffic-share views over a :class:`FlowAggregate`."""

    def __init__(self, aggregate: FlowAggregate, addresses: Iterable[ServiceAddress]) -> None:
        self.aggregate = aggregate
        self.addresses: List[ServiceAddress] = list(addresses)

    def _subset(self, subset: Optional[Sequence[str]]) -> List[str]:
        if subset is not None:
            return list(subset)
        return [sa.address for sa in self.addresses]

    def normalized_shares(
        self, subset: Optional[List[str]] = None
    ) -> Dict[str, List[Tuple[Timestamp, float]]]:
        """Per address: (bucket, share-of-bucket-total) series.

        *subset* restricts normalisation to the listed addresses (e.g.
        just b.root's four subnets for Figure 7, or only IPv6 for
        Figure 9).
        """
        addresses = self._subset(subset)
        buckets = self.aggregate.buckets()
        totals = np.zeros(len(buckets), dtype=np.float64)
        for address in addresses:
            totals = totals + self.aggregate.flows_by_bucket(address)
        out: Dict[str, List[Tuple[Timestamp, float]]] = {}
        for address in addresses:
            values = self.aggregate.flows_by_bucket(address)
            shares = np.divide(
                values, totals, out=np.zeros_like(values), where=totals > 0
            )
            out[address] = list(zip(buckets, shares.tolist()))
        return out

    def window_share(
        self, address: str, start: Timestamp, end: Timestamp, subset: Optional[List[str]] = None
    ) -> float:
        """Share of *address* within [start, end) against the subset."""
        addresses = self._subset(subset)
        buckets = self.aggregate.buckets_array()
        if buckets.size == 0:
            return 0.0
        mask = (buckets >= start) & (buckets < end)
        total = 0.0
        mine = 0.0
        for addr in addresses:
            window_sum = float(self.aggregate.flows_by_bucket(addr)[mask].sum())
            total += window_sum
            if addr == address:
                mine = window_sum
        return mine / total if total > 0 else 0.0
