"""Flow aggregation for passive captures.

Captures record *sampled, anonymised* flows: per time bucket, per root
service address, a flow count plus the set of client prefixes seen.  The
paper can only report *relative* traffic (privacy aggregation), so the
read-side API normalises to shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.rss.operators import ServiceAddress
from repro.util.timeutil import DAY, HOUR, Timestamp


@dataclass
class FlowAggregate:
    """Sampled flow counts per (time bucket, service address)."""

    bucket_seconds: int
    #: (bucket_ts, address) -> flow count
    flows: Dict[Tuple[Timestamp, str], float] = field(default_factory=dict)
    #: (bucket_ts, address) -> distinct client prefixes
    clients: Dict[Tuple[Timestamp, str], Set[str]] = field(default_factory=dict)
    #: (address, client prefix) -> total flows (Figure 8 input)
    per_client_flows: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: (address, client prefix) -> buckets with >= 1 flow
    per_client_days: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def bucket_of(self, ts: Timestamp) -> Timestamp:
        return ts - ts % self.bucket_seconds

    def add_flows(
        self, ts: Timestamp, address: str, count: float, client_prefix: str
    ) -> None:
        """Record *count* sampled flows from one client in one bucket."""
        if count <= 0:
            return
        bucket = self.bucket_of(ts)
        key = (bucket, address)
        self.flows[key] = self.flows.get(key, 0.0) + count
        self.clients.setdefault(key, set()).add(client_prefix)
        ckey = (address, client_prefix)
        self.per_client_flows[ckey] = self.per_client_flows.get(ckey, 0.0) + count
        self.per_client_days[ckey] = self.per_client_days.get(ckey, 0) + 1

    # -- read side ---------------------------------------------------------------

    def buckets(self) -> List[Timestamp]:
        """All time buckets with any traffic, ascending."""
        return sorted({bucket for bucket, _addr in self.flows})

    def series(self, address: str) -> List[Tuple[Timestamp, float]]:
        """(bucket, flows) series for one address."""
        return [
            (bucket, self.flows.get((bucket, address), 0.0))
            for bucket in self.buckets()
        ]

    def unique_clients(self, address: str) -> List[Tuple[Timestamp, int]]:
        """(bucket, distinct clients) series for one address."""
        return [
            (bucket, len(self.clients.get((bucket, address), ())))
            for bucket in self.buckets()
        ]

    def mean_daily_flows_per_client(self, address: str) -> List[float]:
        """Per client of *address*: mean flows per active bucket —
        the Figure 8 x-axis values."""
        out: List[float] = []
        for (addr, _client), total in self.per_client_flows.items():
            if addr != address:
                continue
            days = self.per_client_days[(addr, _client)]
            out.append(total / max(1, days))
        return out


class TrafficTimeSeries:
    """Normalised traffic-share views over a :class:`FlowAggregate`."""

    def __init__(self, aggregate: FlowAggregate, addresses: Iterable[ServiceAddress]) -> None:
        self.aggregate = aggregate
        self.addresses: List[ServiceAddress] = list(addresses)

    def normalized_shares(
        self, subset: Optional[List[str]] = None
    ) -> Dict[str, List[Tuple[Timestamp, float]]]:
        """Per address: (bucket, share-of-bucket-total) series.

        *subset* restricts normalisation to the listed addresses (e.g.
        just b.root's four subnets for Figure 7, or only IPv6 for
        Figure 9).
        """
        addresses = subset if subset is not None else [
            sa.address for sa in self.addresses
        ]
        buckets = self.aggregate.buckets()
        totals: Dict[Timestamp, float] = {
            b: sum(self.aggregate.flows.get((b, a), 0.0) for a in addresses)
            for b in buckets
        }
        out: Dict[str, List[Tuple[Timestamp, float]]] = {}
        for address in addresses:
            series: List[Tuple[Timestamp, float]] = []
            for bucket in buckets:
                total = totals[bucket]
                value = self.aggregate.flows.get((bucket, address), 0.0)
                series.append((bucket, value / total if total > 0 else 0.0))
            out[address] = series
        return out

    def window_share(
        self, address: str, start: Timestamp, end: Timestamp, subset: Optional[List[str]] = None
    ) -> float:
        """Share of *address* within [start, end) against the subset."""
        addresses = subset if subset is not None else [
            sa.address for sa in self.addresses
        ]
        total = 0.0
        mine = 0.0
        for (bucket, addr), flows in self.aggregate.flows.items():
            if not start <= bucket < end or addr not in addresses:
                continue
            total += flows
            if addr == address:
                mine += flows
        return mine / total if total > 0 else 0.0
