"""Counter-based client populations at paper magnitude.

:func:`repro.passive.clients.build_client_population` walks a
:class:`random.Random` stream client by client; the draw *order* is the
deterministic contract, so nothing about it can vectorize and a 10⁵–10⁶
client population costs minutes of pure-Python RNG calls.  This module
is the scaling engine behind it: every draw is keyed by
``(population, client_id, purpose)`` through the splitmix64 mixer
(:mod:`repro.netsim.mix`), so the whole population evaluates as a
handful of array kernels — and a scalar golden reference replays the
identical chain one client at a time.

Both engines use *numpy* transcendentals (``np.exp``/``np.log1p``/
``np.sqrt``/``np.cos``): numpy ufuncs are elementwise-deterministic
(a full-array call bit-matches the one-element call), while ``math.exp``
and ``math.log`` do **not** bit-match their numpy counterparts — so the
reference must draw through numpy scalars for the pair to be
byte-identical.  ``tests/passive/test_population_engine.py`` pins the
equivalence per profile, volume-aware and stratified.

The legacy ``random.Random`` population is left untouched (its draw
order cannot be replayed by keyed draws); existing captures keep their
golden outputs, and the paper-scale path opts into this engine.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.netsim.mix import mix64_array, mix64_prefix, mix_str
from repro.passive.clients import (
    ClientBehavior,
    ClientNetwork,
    PopulationProfile,
    client_prefix_v4,
    client_prefix_v6,
)
from repro.rss.operators import B_ROOT_CHANGE_TS
from repro.util.timeutil import DAY, Timestamp

_TWO64 = float(1 << 64)
_TWO_PI = 6.283185307179586476925287

#: Lognormal flow-volume shape shared with the legacy builder: median
#: ~30 flows/day, heavy tail.
_LOG_MEDIAN = 3.4011973816621555  # log(30.0)
_SIGMA = 1.8

#: Volume-aware switching: above this many daily flows the reluctance
#: probability decays as sqrt(100/volume) (see clients._draw_behavior).
_VOLUME_KNEE = 100.0

#: Draw-purpose labels (the mixer counter): one label per independent
#: decision, family-separated where the decision is per family.
_U_VOLUME_1 = 1
_U_VOLUME_2 = 2
_U_DUAL = 3
_U_RELUCTANT = 4
_U_PRIMER = 5
_U_SHUFFLE = 6
_U_DELAY = 7

#: Behaviour codes used internally (int8 grids).
_SWITCHER, _RELUCTANT, _PRIMER = 0, 1, 2

_CODE_TO_BEHAVIOR = {
    _SWITCHER: ClientBehavior.SWITCHER,
    _RELUCTANT: ClientBehavior.RELUCTANT,
    _PRIMER: ClientBehavior.PRIMER,
}

POPULATION_ENGINES = ("vectorized", "scalar")


def population_state(profile: PopulationProfile, base_seed: int) -> int:
    """The mixer state of one population (absorbs seed + profile name)."""
    return mix64_prefix(base_seed, mix_str("population", profile.name))


def _states(profile: PopulationProfile, base_seed: int) -> np.ndarray:
    ids = np.arange(profile.n_clients, dtype=np.uint64)
    return mix64_array(population_state(profile, base_seed), ids)


def _uniform(state, *labels: int):
    """U[0, 1) keyed draw; works on the full state array or one scalar."""
    h = state
    for label in labels:
        h = mix64_array(h, np.uint64(label))
    return h / _TWO64


def _volumes(state) -> np.ndarray:
    """Lognormal daily flows via Box-Muller over two keyed uniforms."""
    u1 = _uniform(state, _U_VOLUME_1)
    u2 = _uniform(state, _U_VOLUME_2)
    # log1p(-u1) keeps the log argument in (0, 1]: u1 = 0 is safe.
    z = np.sqrt(-2.0 * np.log1p(-u1)) * np.cos(_TWO_PI * u2)
    return np.exp(_LOG_MEDIAN + _SIGMA * z)


def _reluctant_prob(switch_fraction: float, volumes, volume_aware: bool):
    base = 1.0 - switch_fraction
    if not volume_aware:
        return base
    return np.where(
        volumes > _VOLUME_KNEE,
        base * np.sqrt(_VOLUME_KNEE / volumes),
        base,
    )


def _behavior_codes_volume_aware(
    state, family: int, volumes, switch_fraction: float, primer_share: float
) -> np.ndarray:
    reluctant = _uniform(state, _U_RELUCTANT, family) < _reluctant_prob(
        switch_fraction, volumes, True
    )
    primer = ~reluctant & (_uniform(state, _U_PRIMER, family) < primer_share)
    return np.where(
        reluctant, _RELUCTANT, np.where(primer, _PRIMER, _SWITCHER)
    ).astype(np.int8)


def _behavior_codes_stratified(
    state: np.ndarray,
    family: int,
    volumes: np.ndarray,
    switch_fraction: float,
    primer_share: float,
) -> np.ndarray:
    """Traffic-weighted reluctant stratum (clients.py semantics): walk a
    keyed shuffle of the population, marking clients reluctant while the
    accumulated volume is under ``(1 - switch_fraction) * total``."""
    order = np.argsort(mix64_array(state, np.uint64(_U_SHUFFLE), np.uint64(family)), kind="stable")
    ordered = volumes[order]
    csum = np.cumsum(ordered)
    total = csum[-1] if len(csum) else 0.0
    budget = (1.0 - switch_fraction) * total
    # The volume *before* each client in walk order.  A shifted copy of
    # the cumsum, NOT ``csum - ordered``: subtracting back is not exact
    # in floats, and the scalar walk compares the exact running sum.
    exclusive = np.concatenate([[0.0], csum[:-1]])
    reluctant_in_order = exclusive < budget
    reluctant = np.empty(len(volumes), dtype=bool)
    reluctant[order] = reluctant_in_order
    primer = ~reluctant & (_uniform(state, _U_PRIMER, family) < primer_share)
    return np.where(
        reluctant, _RELUCTANT, np.where(primer, _PRIMER, _SWITCHER)
    ).astype(np.int8)


def _adoption_ts(state, mean_delay_days: float, change_ts: Timestamp):
    """Exponential adoption delay via inverse CDF on a keyed uniform."""
    u = _uniform(state, _U_DELAY)
    delay_days = -np.log1p(-u) * mean_delay_days
    return change_ts + (delay_days * DAY).astype(np.int64)


def compile_population(
    profile: PopulationProfile,
    base_seed: int,
    change_ts: Timestamp = B_ROOT_CHANGE_TS,
    *,
    engine: str = "vectorized",
):
    """Compile a profile straight into :class:`ClientColumns`.

    ``engine="vectorized"`` evaluates the population as array kernels
    (no per-client Python objects — the only affordable path at 10⁵–10⁶
    clients); ``engine="scalar"`` builds the golden-reference
    :class:`ClientNetwork` list and compiles it, byte-identically.
    """
    from repro.passive.flow_engine import ClientColumns

    if engine not in POPULATION_ENGINES:
        raise ValueError(
            f"engine must be one of {POPULATION_ENGINES}, got {engine!r}"
        )
    if engine == "scalar":
        return ClientColumns.from_clients(
            build_population_clients(profile, base_seed, change_ts)
        )

    n = profile.n_clients
    state = _states(profile, base_seed)
    volumes = _volumes(state)
    dual = _uniform(state, _U_DUAL) < profile.ipv6_share

    if profile.volume_aware_switching:
        codes4 = _behavior_codes_volume_aware(
            state, 4, volumes, profile.switch_fraction_v4, profile.primer_share_v4
        )
        codes6 = _behavior_codes_volume_aware(
            state, 6, volumes, profile.switch_fraction_v6, profile.primer_share_v6
        )
    else:
        codes4 = _behavior_codes_stratified(
            state, 4, volumes, profile.switch_fraction_v4, profile.primer_share_v4
        )
        codes6 = _behavior_codes_stratified(
            state,
            6,
            np.where(dual, volumes, 0.0),
            profile.switch_fraction_v6,
            profile.primer_share_v6,
        )

    prefixes_v4: Tuple[str, ...] = tuple(client_prefix_v4(i) for i in range(n))
    prefixes_v6 = tuple(
        client_prefix_v6(i) if dual[i] else None for i in range(n)
    )
    return ClientColumns(
        client_ids=np.arange(n, dtype=np.uint64),
        volumes=volumes,
        has_v6=dual,
        adoption_ts=_adoption_ts(
            state, profile.mean_adoption_delay_days, change_ts
        ),
        switchish={
            4: codes4 != _RELUCTANT,
            6: dual & (codes6 != _RELUCTANT),
        },
        primer={
            4: codes4 == _PRIMER,
            6: dual & (codes6 == _PRIMER),
        },
        prefixes={4: prefixes_v4, 6: prefixes_v6},
    )


def build_population_clients(
    profile: PopulationProfile,
    base_seed: int,
    change_ts: Timestamp = B_ROOT_CHANGE_TS,
) -> List[ClientNetwork]:
    """The scalar golden reference: one client at a time, every draw
    keyed through the same mixer chain as :func:`compile_population`
    (numpy scalar transcendentals, so the bits match the array path)."""
    prefix = np.uint64(population_state(profile, base_seed))
    clients: List[ClientNetwork] = []
    shuffle_keys = {
        family: [
            int(mix64_array(mix64_array(prefix, np.uint64(i)), np.uint64(_U_SHUFFLE), np.uint64(family)))
            for i in range(profile.n_clients)
        ]
        for family in (4, 6)
    }
    per_client = []
    for client_id in range(profile.n_clients):
        state = mix64_array(prefix, np.uint64(client_id))
        volume = float(_volumes(state))
        dual = bool(_uniform(state, _U_DUAL) < profile.ipv6_share)
        per_client.append((state, volume, dual))

    def stratified(family: int, switch_fraction: float, primer_share: float):
        volumes = [
            (volume if family == 4 or dual else 0.0)
            for _state, volume, dual in per_client
        ]
        order = sorted(
            range(len(volumes)), key=shuffle_keys[family].__getitem__
        )
        total = 0.0
        for idx in order:
            total += volumes[idx]
        budget = (1.0 - switch_fraction) * total
        behaviors = [ClientBehavior.SWITCHER] * len(volumes)
        acc = 0.0
        for idx in order:
            if acc < budget:
                behaviors[idx] = ClientBehavior.RELUCTANT
                acc += volumes[idx]
            elif (
                _uniform(per_client[idx][0], _U_PRIMER, family) < primer_share
            ):
                behaviors[idx] = ClientBehavior.PRIMER
        return behaviors

    if not profile.volume_aware_switching:
        strat = {
            4: stratified(
                4, profile.switch_fraction_v4, profile.primer_share_v4
            ),
            6: stratified(
                6, profile.switch_fraction_v6, profile.primer_share_v6
            ),
        }

    for client_id, (state, volume, dual) in enumerate(per_client):
        behaviors = {}
        for family, switch_fraction, primer_share in (
            (4, profile.switch_fraction_v4, profile.primer_share_v4),
            (6, profile.switch_fraction_v6, profile.primer_share_v6),
        ):
            if profile.volume_aware_switching:
                code = int(
                    _behavior_codes_volume_aware(
                        state, family, volume, switch_fraction, primer_share
                    )
                )
                behaviors[family] = _CODE_TO_BEHAVIOR[code]
            else:
                behaviors[family] = strat[family][client_id]
        clients.append(
            ClientNetwork(
                client_id=client_id,
                prefix_v4=client_prefix_v4(client_id),
                prefix_v6=client_prefix_v6(client_id) if dual else None,
                daily_flows=volume,
                behavior_v4=behaviors[4],
                behavior_v6=behaviors[6] if dual else None,
                adoption_ts=int(
                    _adoption_ts(
                        state, profile.mean_adoption_delay_days, change_ts
                    )
                ),
            )
        )
    return clients
