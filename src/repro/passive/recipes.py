"""Canonical passive-capture recipes.

The paper's passive artefacts (Figures 7–13) all derive from three
deterministic aggregates of the study seed: the ISP capture over the
post-change month, and the EU / NA regional IXP merges over the
December 2023 shift window.  This module is the single definition of
those recipes — ``rootsim-report``, the analysis summaries, the dataset
export and the parallel report workers all build captures through it,
so "the ISP aggregate for seed S" means exactly one thing everywhere.

A scenario's traffic layer (:class:`~repro.scenarios.specs.TrafficSpec`)
may override the capture-point populations; every recipe takes it as an
optional ``traffic`` argument, defaulting to the paper's profiles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.geo.continents import Continent
from repro.passive.clients import ISP_PROFILE, build_client_population
from repro.passive.isp import IspCapture
from repro.passive.ixp import IxpCapture, build_ixp_captures, regional_aggregate
from repro.passive.traces import FlowAggregate
from repro.util.rng import RngFactory
from repro.util.timeutil import parse_ts

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.scenarios.specs import TrafficSpec

#: The ISP capture window (Figures 7/8/12: the post-change month).
ISP_WINDOW: Tuple[str, str] = ("2024-02-05", "2024-03-04")

#: The IXP capture window (Figures 9/13: the December shift period).
IXP_WINDOW: Tuple[str, str] = ("2023-12-08", "2023-12-28")

#: Clients per exchange at report scale.
CLIENTS_PER_IXP = 120

#: Every standard capture name, in canonical order.
STANDARD_CAPTURES: Tuple[str, ...] = ("isp", "ixp-eu", "ixp-na")

_REGIONS: Dict[str, Continent] = {
    "ixp-eu": Continent.EUROPE,
    "ixp-na": Continent.NORTH_AMERICA,
}


def isp_capture(
    seed: int,
    engine: str = "vectorized",
    traffic: Optional["TrafficSpec"] = None,
) -> IspCapture:
    """The ISP capture point for *seed* (population included)."""
    profile = ISP_PROFILE if traffic is None else traffic.profile("isp")
    return IspCapture(
        build_client_population(profile, RngFactory(seed)),
        seed=seed,
        engine=engine,
    )


def isp_aggregate(
    seed: int,
    engine: str = "vectorized",
    traffic: Optional["TrafficSpec"] = None,
) -> FlowAggregate:
    """The ISP aggregate over :data:`ISP_WINDOW` for *seed*."""
    return isp_capture(seed, engine, traffic).capture(
        parse_ts(ISP_WINDOW[0]), parse_ts(ISP_WINDOW[1])
    )


def ixp_captures(
    seed: int,
    engine: str = "vectorized",
    traffic: Optional["TrafficSpec"] = None,
) -> List[IxpCapture]:
    """The 14 per-exchange capture points at report scale."""
    kwargs = {}
    if traffic is not None:
        kwargs["eu_profile"] = traffic.profile("ixp-eu")
        kwargs["na_profile"] = traffic.profile("ixp-na")
    return build_ixp_captures(
        RngFactory(seed).fork("ixp"),
        seed=seed,
        clients_per_ixp=CLIENTS_PER_IXP,
        engine=engine,
        **kwargs,
    )


def build_capture(
    name: str,
    seed: int,
    engine: str = "vectorized",
    traffic: Optional["TrafficSpec"] = None,
) -> FlowAggregate:
    """One standard aggregate by name ("isp", "ixp-eu", "ixp-na")."""
    if name == "isp":
        return isp_aggregate(seed, engine, traffic)
    try:
        region = _REGIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown capture {name!r}; standard captures: "
            f"{', '.join(STANDARD_CAPTURES)}"
        ) from None
    window = (parse_ts(IXP_WINDOW[0]), parse_ts(IXP_WINDOW[1]))
    return regional_aggregate(ixp_captures(seed, engine, traffic), region, *window)


def standard_captures(
    seed: int,
    engine: str = "vectorized",
    traffic: Optional["TrafficSpec"] = None,
) -> Dict[str, FlowAggregate]:
    """All standard aggregates for *seed*, keyed by capture name."""
    out = {"isp": isp_aggregate(seed, engine, traffic)}
    captures = ixp_captures(seed, engine, traffic)
    window = (parse_ts(IXP_WINDOW[0]), parse_ts(IXP_WINDOW[1]))
    for name, region in _REGIONS.items():
        out[name] = regional_aggregate(captures, region, *window)
    return out
