"""Query-name composition synthesised through the passive flow engine.

"Understanding DNS Query Composition at B-Root" decomposes root traffic
into a popularity-skewed head of valid TLD queries, a long junk tail
(unresolvable names, service-discovery leakage), and the distinctive
Chromium-style random first-label probes.  This module layers that
composition onto a :class:`~repro.passive.traces.FlowAggregate`: the
aggregate's per-bucket flow volume anchors the totals, and a
:class:`QueryMixSpec` (the scenario traffic layer) says how those
queries decompose per bucket.

Everything is a pure function of ``(aggregate, seed, spec)``: category
series are computed arithmetically from the bucket volumes, the valid
head follows a Zipf law over the TLD popularity ranks, and the example
junk/chromioid labels are drawn from the study's named RNG streams —
so a reloaded dataset reproduces the synthesis exactly.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.util.rng import RngFactory
from repro.util.timeutil import Timestamp, parse_ts

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.passive.traces import FlowAggregate

#: Mean root queries behind one observed flow (priming, retries, and
#: negative-cache misses fan one flow out into several queries).
QUERIES_PER_FLOW = 2.6

#: The popularity head the Zipf law ranks over: real TLD labels first
#: (queries the root answers with a referral), then the classic
#: leaked suffixes the B-Root study found dominating the junk head.
POPULAR_QNAMES: Tuple[str, ...] = (
    "com.", "net.", "org.", "arpa.", "de.", "uk.", "br.", "jp.", "fr.",
    "nl.", "ru.", "io.", "cn.", "au.", "in.", "it.", "info.", "se.",
    "ca.", "es.", "ch.", "pl.", "us.", "eu.", "edu.", "gov.", "xyz.",
    "local.", "home.", "lan.", "internal.", "corp.", "localdomain.",
    "belkin.", "dlink.", "arpa.home.", "invalid.", "test.",
)

#: The query categories every synthesis reports, in canonical order.
CATEGORIES: Tuple[str, ...] = ("valid", "chromioid", "junk")


@dataclass(frozen=True)
class QueryBurst:
    """One traffic burst: a window whose *category* volume multiplies."""

    start: str  # YYYY-MM-DD
    end: str
    multiplier: float = 2.0
    category: str = "junk"

    def __post_init__(self) -> None:
        if parse_ts(self.end) <= parse_ts(self.start):
            raise ValueError(
                f"traffic spec: burst end {self.end!r} must be after "
                f"start {self.start!r}"
            )
        if self.multiplier <= 0:
            raise ValueError(
                f"traffic spec: burst multiplier must be positive: "
                f"{self.multiplier}"
            )
        if self.category not in CATEGORIES:
            raise ValueError(
                f"traffic spec: burst category must be one of "
                f"{', '.join(CATEGORIES)}: {self.category!r}"
            )

    def window(self) -> Tuple[Timestamp, Timestamp]:
        return parse_ts(self.start), parse_ts(self.end)

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryBurst":
        _reject_unknown(data, [f.name for f in fields(cls)])
        return cls(**data)


def _reject_unknown(data: Mapping[str, Any], known: Sequence[str]) -> None:
    for key in data:
        if key in known:
            continue
        close = difflib.get_close_matches(str(key), list(known), n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise ValueError(
            f"traffic spec (querymix): unknown key {key!r}{hint} "
            f"(known keys: {', '.join(sorted(known))})"
        )


@dataclass(frozen=True)
class QueryMixSpec:
    """How observed flow volume decomposes into query names."""

    zipf_alpha: float = 0.95
    n_qnames: int = 2500
    junk_fraction: float = 0.12
    chromioid_fraction: float = 0.30
    bursts: Tuple[QueryBurst, ...] = ()

    def __post_init__(self) -> None:
        if self.zipf_alpha <= 0:
            raise ValueError(
                f"traffic spec: zipf_alpha must be positive: {self.zipf_alpha}"
            )
        if self.n_qnames < len(POPULAR_QNAMES):
            raise ValueError(
                f"traffic spec: n_qnames must be >= {len(POPULAR_QNAMES)}: "
                f"{self.n_qnames}"
            )
        for attr in ("junk_fraction", "chromioid_fraction"):
            if not 0.0 <= getattr(self, attr) <= 1.0:
                raise ValueError(
                    f"traffic spec: {attr} must be in [0, 1]: "
                    f"{getattr(self, attr)}"
                )
        if self.junk_fraction + self.chromioid_fraction > 1.0:
            raise ValueError(
                "traffic spec: junk_fraction + chromioid_fraction must "
                "not exceed 1"
            )
        object.__setattr__(
            self,
            "bursts",
            tuple(
                burst if isinstance(burst, QueryBurst)
                else QueryBurst.from_dict(burst)
                for burst in self.bursts
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "zipf_alpha": self.zipf_alpha,
            "n_qnames": self.n_qnames,
            "junk_fraction": self.junk_fraction,
            "chromioid_fraction": self.chromioid_fraction,
            "bursts": [burst.to_dict() for burst in self.bursts],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryMixSpec":
        _reject_unknown(data, [f.name for f in fields(cls)])
        return cls(**data)


@dataclass(frozen=True)
class QueryMixBucket:
    """One time bucket's synthesised query counts per category."""

    bucket: Timestamp
    valid: float
    chromioid: float
    junk: float

    @property
    def total(self) -> float:
        return self.valid + self.chromioid + self.junk


class QueryMixSynthesis:
    """The synthesised query composition over one aggregate's window."""

    def __init__(
        self,
        spec: QueryMixSpec,
        buckets: List[QueryMixBucket],
        qname_counts: Dict[str, float],
        chromioid_examples: List[str],
    ) -> None:
        self.spec = spec
        self.buckets = buckets
        self.qname_counts = qname_counts
        self.chromioid_examples = chromioid_examples

    def total_queries(self) -> float:
        return sum(bucket.total for bucket in self.buckets)

    def category_shares(self) -> Dict[str, float]:
        """Fraction of all queries per category (sums to 1)."""
        total = self.total_queries()
        if total == 0:
            return {category: 0.0 for category in CATEGORIES}
        sums = {
            category: sum(getattr(b, category) for b in self.buckets)
            for category in CATEGORIES
        }
        return {category: sums[category] / total for category in CATEGORIES}

    def top_qnames(self, n: int = 10) -> List[Tuple[str, float]]:
        """The *n* hottest query names with their synthesised counts."""
        ranked = sorted(
            self.qname_counts.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:n]

    def burst_amplification(self) -> List[Tuple[QueryBurst, float]]:
        """Observed/baseline volume ratio inside each burst window."""
        out: List[Tuple[QueryBurst, float]] = []
        for burst in self.spec.bursts:
            lo, hi = burst.window()
            inside = [b for b in self.buckets if lo <= b.bucket < hi]
            outside = [b for b in self.buckets if not lo <= b.bucket < hi]
            if not inside or not outside:
                out.append((burst, 1.0))
                continue
            inside_mean = sum(b.total for b in inside) / len(inside)
            outside_mean = sum(b.total for b in outside) / len(outside)
            out.append(
                (burst, inside_mean / outside_mean if outside_mean else 1.0)
            )
        return out


def _zipf_weights(n: int, alpha: float) -> List[float]:
    weights = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def _chromioid_label(rng) -> str:
    """A Chromium-style random first label (7-15 lowercase chars)."""
    length = rng.randint(7, 15)
    return "".join(
        chr(ord("a") + rng.randrange(26)) for _ in range(length)
    ) + "."


def synthesize_querymix(
    aggregate: "FlowAggregate",
    seed: int,
    spec: Optional[QueryMixSpec] = None,
) -> QueryMixSynthesis:
    """Layer *spec*'s query composition over *aggregate*'s volume.

    Per bucket: total queries = flow volume × :data:`QUERIES_PER_FLOW`,
    split into the spec's category fractions; burst windows multiply
    their category's volume.  The valid head distributes over
    :data:`POPULAR_QNAMES` (and synthetic tail ranks up to
    ``n_qnames``) by a Zipf law.
    """
    spec = spec or QueryMixSpec()
    volume_per_bucket: Dict[Timestamp, float] = {}
    for (bucket, _address), flows in aggregate.flows.items():
        volume_per_bucket[bucket] = volume_per_bucket.get(bucket, 0.0) + flows

    base_fractions = {
        "valid": 1.0 - spec.junk_fraction - spec.chromioid_fraction,
        "chromioid": spec.chromioid_fraction,
        "junk": spec.junk_fraction,
    }
    buckets: List[QueryMixBucket] = []
    for bucket in sorted(volume_per_bucket):
        total = volume_per_bucket[bucket] * QUERIES_PER_FLOW
        counts = {
            category: total * fraction
            for category, fraction in base_fractions.items()
        }
        for burst in spec.bursts:
            lo, hi = burst.window()
            if lo <= bucket < hi:
                counts[burst.category] *= burst.multiplier
        buckets.append(QueryMixBucket(bucket=bucket, **counts))

    valid_total = sum(bucket.valid for bucket in buckets)
    weights = _zipf_weights(spec.n_qnames, spec.zipf_alpha)
    qname_counts: Dict[str, float] = {}
    for rank, weight in enumerate(weights):
        if rank < len(POPULAR_QNAMES):
            qname = POPULAR_QNAMES[rank]
        else:
            qname = f"tail{rank:05d}.example."
        qname_counts[qname] = valid_total * weight

    rng = RngFactory(seed).stream("passive.querymix")
    examples = [_chromioid_label(rng) for _ in range(8)]
    return QueryMixSynthesis(spec, buckets, qname_counts, examples)
