"""Client (resolver) populations behind passive observation points.

The behaviours the paper measures around b.root's renumbering:

* **switchers** move their traffic to the new address once their resolver
  learns it (root zone TTLs, software restarts, priming) — with a
  per-client adoption delay;
* **reluctant** resolvers keep using the old address indefinitely
  (Lentz et al. observed the same a decade earlier; Wessels et al. saw
  j.root's old address queried 13 years on);
* **primers** (RFC 8109) touch the old address only ~once a day after
  switching — the paper's Figure 8 signal, where the old b.root IPv6
  subnet sees many clients exactly once per day;
* address-family asymmetry: IPv6-capable client stacks are newer and
  more likely to re-prime, so the *in-family* shift ratio is higher for
  IPv6 (ISP: 96.3 % v6 vs 87.1 % v4) — with strong regional differences
  at IXPs (EU 60.8 % vs NA 16.5 % of v6 traffic shifted).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rss.operators import B_ROOT_CHANGE_TS, ROOT_LETTERS
from repro.util.rng import RngFactory
from repro.util.timeutil import DAY, Timestamp


class ClientBehavior(enum.Enum):
    """Address-change adoption behaviour."""

    SWITCHER = "switches to the new address"
    RELUCTANT = "keeps querying the old address"
    PRIMER = "switches, but re-primes against the old address daily"


#: The widened anonymised address plan supports this many distinct
#: client networks: 53 v4 /16 blocks (first octet 203..255) of 65 536
#: /24s each.  The v6 plan (/32 blocks of 65 536 /48s) reaches further,
#: but the population is capped at the tighter family.
MAX_CLIENTS = 53 * (1 << 16)


def client_prefix_v4(client_id: int) -> str:
    """The anonymised /24 of client *client_id*.

    Ids below 2**16 keep the historical ``203.x.y.0/24`` mapping;
    beyond that each 65 536-client block moves to the next first octet
    (the old plan silently wrapped and collided at id 65 536).
    """
    if not 0 <= client_id < MAX_CLIENTS:
        raise ValueError(
            f"client_id {client_id} outside the v4 address plan "
            f"[0, {MAX_CLIENTS})"
        )
    return (
        f"{203 + (client_id >> 16)}."
        f"{(client_id >> 8) & 0xFF}.{client_id & 0xFF}.0/24"
    )


def client_prefix_v6(client_id: int) -> str:
    """The anonymised /48 of client *client_id*.

    Ids below 2**16 keep the historical ``2001:4d0:<id>::/48`` mapping
    (the old f-string spilled to five hex digits — an invalid group —
    at id 65 536); beyond that each block gets its own /32.
    """
    if not 0 <= client_id < MAX_CLIENTS:
        raise ValueError(
            f"client_id {client_id} outside the v6 address plan "
            f"[0, {MAX_CLIENTS})"
        )
    return f"2001:{0x4D0 + (client_id >> 16):x}:{client_id & 0xFFFF:x}::/48"


@dataclass(frozen=True)
class PopulationProfile:
    """Behaviour mix and size of one observation point's client base.

    ``switch_fraction`` is per family: the probability a client of that
    family adopts the new address at all (primers included).
    """

    name: str
    n_clients: int
    ipv6_share: float  # fraction of clients that are dual-stack
    switch_fraction_v4: float
    switch_fraction_v6: float
    primer_share_v6: float  # of switching v6 clients, fraction that re-primes
    primer_share_v4: float
    mean_adoption_delay_days: float
    #: Whether big-volume resolvers are extra likely to switch (true for
    #: the well-run ISP resolver fleet; IXP-visible mixes are messier).
    volume_aware_switching: bool = True

    def __post_init__(self) -> None:
        for attr in (
            "ipv6_share",
            "switch_fraction_v4",
            "switch_fraction_v6",
            "primer_share_v6",
            "primer_share_v4",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        if self.n_clients <= 0:
            raise ValueError("population needs at least one client")


#: Paper-shaped profiles.  The ISP's in-family shift ratios target §6's
#: 87.1 % (v4) / 96.3 % (v6); the IXP profiles target Figure 9's regional
#: asymmetry (EU 60.8 % vs NA 16.5 % of v6 traffic shifted).
ISP_PROFILE = PopulationProfile(
    name="isp",
    n_clients=3000,
    ipv6_share=0.55,
    switch_fraction_v4=0.76,
    switch_fraction_v6=0.95,
    primer_share_v6=0.5,
    primer_share_v4=0.2,
    mean_adoption_delay_days=10.0,
)

IXP_EU_PROFILE = PopulationProfile(
    name="ixp-eu",
    n_clients=1200,
    ipv6_share=0.6,
    switch_fraction_v4=0.78,
    switch_fraction_v6=0.78,
    primer_share_v6=0.3,
    primer_share_v4=0.15,
    mean_adoption_delay_days=6.0,
    volume_aware_switching=False,
)

IXP_NA_PROFILE = PopulationProfile(
    name="ixp-na",
    n_clients=1200,
    ipv6_share=0.5,
    switch_fraction_v4=0.6,
    switch_fraction_v6=0.22,
    primer_share_v6=0.25,
    primer_share_v4=0.1,
    mean_adoption_delay_days=12.0,
    volume_aware_switching=False,
)


@dataclass(frozen=True)
class ClientNetwork:
    """One anonymised client prefix (/24 for v4, /48 for v6)."""

    client_id: int
    prefix_v4: str
    prefix_v6: Optional[str]  # None = v4-only network
    daily_flows: float  # mean flows/day toward the root system
    behavior_v4: ClientBehavior
    behavior_v6: Optional[ClientBehavior]
    adoption_ts: Timestamp  # when the client moves to the new b.root

    def behavior(self, family: int) -> Optional[ClientBehavior]:
        if family == 4:
            return self.behavior_v4
        if family == 6:
            return self.behavior_v6
        raise ValueError(f"family must be 4 or 6, got {family}")

    def has_adopted(self, ts: Timestamp, family: int) -> bool:
        """Has this client switched its *family* traffic by *ts*?"""
        behavior = self.behavior(family)
        if behavior is None or behavior is ClientBehavior.RELUCTANT:
            return False
        return ts >= self.adoption_ts


def _draw_behavior(
    rng,
    switch_fraction: float,
    primer_share: float,
    daily_flows: float,
    volume_aware: bool,
) -> ClientBehavior:
    """Behaviour draw, volume-aware: big resolvers are professionally
    operated and far less likely to be reluctant (a stuck CPE trickles; a
    large resolver farm gets patched), which keeps the *traffic-weighted*
    shift ratio near the per-client switch fraction."""
    reluctant_prob = 1.0 - switch_fraction
    if volume_aware and daily_flows > 100.0:
        reluctant_prob *= (100.0 / daily_flows) ** 0.5
    if rng.random() < reluctant_prob:
        return ClientBehavior.RELUCTANT
    if rng.random() < primer_share:
        return ClientBehavior.PRIMER
    return ClientBehavior.SWITCHER


def _stratified_behaviors(
    rng,
    volumes: List[float],
    switch_fraction: float,
    primer_share: float,
) -> List[ClientBehavior]:
    """Assign behaviours so the *traffic-weighted* reluctant share matches
    ``1 - switch_fraction``.

    With heavy-tailed volumes, independent per-client draws make the
    traffic-weighted share a lottery over the few biggest clients;
    weighted systematic sampling over a shuffled order removes that
    variance while staying random at the client level.
    """
    order = list(range(len(volumes)))
    rng.shuffle(order)
    total = sum(volumes)
    reluctant_budget = (1.0 - switch_fraction) * total
    behaviors: List[ClientBehavior] = [ClientBehavior.SWITCHER] * len(volumes)
    acc = 0.0
    for idx in order:
        if acc < reluctant_budget:
            behaviors[idx] = ClientBehavior.RELUCTANT
            acc += volumes[idx]
        elif rng.random() < primer_share:
            behaviors[idx] = ClientBehavior.PRIMER
    return behaviors


#: Memoized populations keyed by (profile, factory seed, change_ts).
#: A population is a pure function of that key when the factory's
#: ``clients.<name>`` stream is fresh, and building one is thousands of
#: RNG draws — repeated captures (report generation, benchmarks, worker
#: processes) reuse the same immutable client list instead.
_POPULATION_CACHE: Dict[
    Tuple[PopulationProfile, int, Timestamp], List[ClientNetwork]
] = {}


def clear_population_cache() -> None:
    """Drop every memoized client population."""
    _POPULATION_CACHE.clear()


def build_client_population(
    profile: PopulationProfile,
    rng_factory: RngFactory,
    change_ts: Timestamp = B_ROOT_CHANGE_TS,
) -> List[ClientNetwork]:
    """Instantiate a client population from a profile.

    Flow volumes are heavy-tailed (a few big resolvers dominate, many
    small CPEs send a trickle) — the shape behind the paper's Figure 8.

    Populations are memoized per ``(profile, factory seed, change_ts)``:
    rebuilding with an equivalent fresh factory returns the same list
    (:class:`ClientNetwork` is frozen, so sharing is safe).
    """
    stream_name = f"clients.{profile.name}"
    fresh_stream = not rng_factory.has_stream(stream_name)
    cache_key = (profile, rng_factory.base_seed, change_ts)
    if fresh_stream:
        cached = _POPULATION_CACHE.get(cache_key)
        if cached is not None:
            return cached
    rng = rng_factory.stream(stream_name)
    n = profile.n_clients
    # Lognormal flow volume: median ~30 flows/day, long tail.  One pass
    # with the distribution parameters and bound methods hoisted — the
    # draw order is part of the deterministic contract, so volumes and
    # dual-stack draws stay two separate comprehensions.
    gauss = rng.gauss
    uniform = rng.random
    log_median, sigma = math.log(30.0), 1.8
    volumes = [math.exp(gauss(log_median, sigma)) for _ in range(n)]
    ipv6_share = profile.ipv6_share
    dual = [uniform() < ipv6_share for _ in range(n)]

    if profile.volume_aware_switching:
        behaviors_v4 = [
            _draw_behavior(
                rng, profile.switch_fraction_v4, profile.primer_share_v4,
                volumes[i], True,
            )
            for i in range(n)
        ]
        behaviors_v6 = [
            _draw_behavior(
                rng, profile.switch_fraction_v6, profile.primer_share_v6,
                volumes[i], True,
            )
            for i in range(n)
        ]
    else:
        behaviors_v4 = _stratified_behaviors(
            rng, volumes, profile.switch_fraction_v4, profile.primer_share_v4
        )
        v6_volumes = [v if d else 0.0 for v, d in zip(volumes, dual)]
        behaviors_v6 = _stratified_behaviors(
            rng, v6_volumes, profile.switch_fraction_v6, profile.primer_share_v6
        )

    clients: List[ClientNetwork] = []
    expovariate = rng.expovariate
    delay_rate = 1.0 / profile.mean_adoption_delay_days
    for client_id in range(n):
        delay_days = expovariate(delay_rate)
        clients.append(
            ClientNetwork(
                client_id=client_id,
                prefix_v4=client_prefix_v4(client_id),
                prefix_v6=(
                    client_prefix_v6(client_id) if dual[client_id] else None
                ),
                daily_flows=volumes[client_id],
                behavior_v4=behaviors_v4[client_id],
                behavior_v6=behaviors_v6[client_id] if dual[client_id] else None,
                adoption_ts=change_ts + int(delay_days * DAY),
            )
        )
    if fresh_stream:
        _POPULATION_CACHE[cache_key] = clients
    return clients


#: How client query volume distributes over the 13 letters.  IXP traffic
#: is dominated by a few letters (paper Fig. 13: especially k and d);
#: ISP traffic is spread more evenly with b.root around 4.9 % (Fig. 12).
LETTER_WEIGHTS_ISP: Dict[str, float] = {
    "a": 0.085, "b": 0.049, "c": 0.075, "d": 0.090, "e": 0.080,
    "f": 0.085, "g": 0.055, "h": 0.060, "i": 0.080, "j": 0.090,
    "k": 0.095, "l": 0.086, "m": 0.070,
}

LETTER_WEIGHTS_IXP: Dict[str, float] = {
    "a": 0.06, "b": 0.03, "c": 0.05, "d": 0.20, "e": 0.05,
    "f": 0.07, "g": 0.02, "h": 0.03, "i": 0.07, "j": 0.08,
    "k": 0.25, "l": 0.06, "m": 0.03,
}

for _weights in (LETTER_WEIGHTS_ISP, LETTER_WEIGHTS_IXP):
    if set(_weights) != set(ROOT_LETTERS):  # pragma: no cover - sanity
        raise RuntimeError("letter weight table incomplete")
