"""Geography substrate: coordinates, great-circle distance, a city catalog
keyed by IATA codes, and country-to-continent mapping.

Anycast analyses in the paper are geographic at heart (distance to closest
site, RTT vs region), so both the network simulator and the analysis layer
share this package.
"""

from repro.geo.coords import GeoPoint, haversine_km, fiber_rtt_ms
from repro.geo.continents import Continent, continent_of_country
from repro.geo.cities import City, CITY_CATALOG, city, cities_in

__all__ = [
    "GeoPoint",
    "haversine_km",
    "fiber_rtt_ms",
    "Continent",
    "continent_of_country",
    "City",
    "CITY_CATALOG",
    "city",
    "cities_in",
]
