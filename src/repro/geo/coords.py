"""Geographic coordinates and distance/delay models.

The paper converts distance to delay with the rule of thumb "every 1,000 km
induces ~10 ms of (round-trip) delay" (speed of light in fiber, §6).  We use
the same constant so distance-derived RTT floors line up with the paper's
framing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_KM = 6371.0

#: Round-trip milliseconds per kilometre of great-circle path (paper §6:
#: ~10 ms per 1,000 km).
RTT_MS_PER_KM = 0.01


@dataclass(frozen=True)
class GeoPoint:
    """A WGS-84 latitude/longitude pair in degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to *other* in kilometres."""
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points (haversine formula)."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    # Clamp to guard against floating-point drift pushing h past 1.0.
    h = min(1.0, max(0.0, h))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def fiber_rtt_ms(distance_km: float) -> float:
    """Idealised round-trip time over fibre for a one-way path length.

    This is a *floor*: real paths add queueing, detours and equipment
    latency on top, which the network simulator models separately.
    """
    if distance_km < 0:
        raise ValueError(f"negative distance: {distance_km}")
    return distance_km * RTT_MS_PER_KM
