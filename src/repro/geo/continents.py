"""Continent taxonomy matching the paper's regional breakdowns.

The paper groups results into six regions: Africa, Asia, Europe, North
America, South America and Oceania (Tables 3/4, Figures 4/6/14/15).
"""

from __future__ import annotations

import enum
from typing import Dict


class Continent(enum.Enum):
    """The six regions used throughout the paper."""

    AFRICA = "Africa"
    ASIA = "Asia"
    EUROPE = "Europe"
    NORTH_AMERICA = "North America"
    SOUTH_AMERICA = "South America"
    OCEANIA = "Oceania"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: ISO-3166 alpha-2 country code -> continent, for every country that hosts
#: a city in :mod:`repro.geo.cities` or a vantage point in the study.
_COUNTRY_TO_CONTINENT: Dict[str, Continent] = {
    # Africa
    "ZA": Continent.AFRICA, "KE": Continent.AFRICA, "NG": Continent.AFRICA,
    "EG": Continent.AFRICA, "MA": Continent.AFRICA, "TZ": Continent.AFRICA,
    "GH": Continent.AFRICA, "SN": Continent.AFRICA, "MU": Continent.AFRICA,
    "AO": Continent.AFRICA, "TN": Continent.AFRICA, "RW": Continent.AFRICA,
    "UG": Continent.AFRICA, "ZM": Continent.AFRICA, "ZW": Continent.AFRICA,
    "MZ": Continent.AFRICA, "CI": Continent.AFRICA, "CM": Continent.AFRICA,
    "ET": Continent.AFRICA, "DZ": Continent.AFRICA,
    # Asia
    "JP": Continent.ASIA, "CN": Continent.ASIA, "HK": Continent.ASIA,
    "SG": Continent.ASIA, "KR": Continent.ASIA, "TW": Continent.ASIA,
    "IN": Continent.ASIA, "TH": Continent.ASIA, "MY": Continent.ASIA,
    "ID": Continent.ASIA, "PH": Continent.ASIA, "VN": Continent.ASIA,
    "AE": Continent.ASIA, "IL": Continent.ASIA, "TR": Continent.ASIA,
    "SA": Continent.ASIA, "QA": Continent.ASIA, "BH": Continent.ASIA,
    "KW": Continent.ASIA, "OM": Continent.ASIA, "PK": Continent.ASIA,
    "BD": Continent.ASIA, "LK": Continent.ASIA, "NP": Continent.ASIA,
    "KH": Continent.ASIA, "LA": Continent.ASIA, "MM": Continent.ASIA,
    "MN": Continent.ASIA, "KZ": Continent.ASIA, "UZ": Continent.ASIA,
    "GE": Continent.ASIA, "AM": Continent.ASIA, "AZ": Continent.ASIA,
    "JO": Continent.ASIA, "LB": Continent.ASIA, "IQ": Continent.ASIA,
    "IR": Continent.ASIA, "AF": Continent.ASIA, "BT": Continent.ASIA,
    "MV": Continent.ASIA, "BN": Continent.ASIA, "MO": Continent.ASIA,
    # Europe
    "DE": Continent.EUROPE, "NL": Continent.EUROPE, "GB": Continent.EUROPE,
    "FR": Continent.EUROPE, "SE": Continent.EUROPE, "NO": Continent.EUROPE,
    "DK": Continent.EUROPE, "FI": Continent.EUROPE, "PL": Continent.EUROPE,
    "CZ": Continent.EUROPE, "AT": Continent.EUROPE, "CH": Continent.EUROPE,
    "IT": Continent.EUROPE, "ES": Continent.EUROPE, "PT": Continent.EUROPE,
    "IE": Continent.EUROPE, "BE": Continent.EUROPE, "LU": Continent.EUROPE,
    "RU": Continent.EUROPE, "UA": Continent.EUROPE, "RO": Continent.EUROPE,
    "BG": Continent.EUROPE, "GR": Continent.EUROPE, "HU": Continent.EUROPE,
    "SK": Continent.EUROPE, "SI": Continent.EUROPE, "HR": Continent.EUROPE,
    "RS": Continent.EUROPE, "EE": Continent.EUROPE, "LV": Continent.EUROPE,
    "LT": Continent.EUROPE, "IS": Continent.EUROPE, "MT": Continent.EUROPE,
    "CY": Continent.EUROPE, "AL": Continent.EUROPE, "MK": Continent.EUROPE,
    "BA": Continent.EUROPE, "MD": Continent.EUROPE, "BY": Continent.EUROPE,
    "ME": Continent.EUROPE, "LI": Continent.EUROPE, "MC": Continent.EUROPE,
    # North America (incl. Central America & Caribbean, as the paper does)
    "US": Continent.NORTH_AMERICA, "CA": Continent.NORTH_AMERICA,
    "MX": Continent.NORTH_AMERICA, "PA": Continent.NORTH_AMERICA,
    "CR": Continent.NORTH_AMERICA, "GT": Continent.NORTH_AMERICA,
    "DO": Continent.NORTH_AMERICA, "JM": Continent.NORTH_AMERICA,
    "TT": Continent.NORTH_AMERICA, "BS": Continent.NORTH_AMERICA,
    "HN": Continent.NORTH_AMERICA, "SV": Continent.NORTH_AMERICA,
    "NI": Continent.NORTH_AMERICA, "BZ": Continent.NORTH_AMERICA,
    "CU": Continent.NORTH_AMERICA, "HT": Continent.NORTH_AMERICA,
    "PR": Continent.NORTH_AMERICA,
    # South America
    "BR": Continent.SOUTH_AMERICA, "AR": Continent.SOUTH_AMERICA,
    "CL": Continent.SOUTH_AMERICA, "CO": Continent.SOUTH_AMERICA,
    "PE": Continent.SOUTH_AMERICA, "EC": Continent.SOUTH_AMERICA,
    "UY": Continent.SOUTH_AMERICA, "PY": Continent.SOUTH_AMERICA,
    "BO": Continent.SOUTH_AMERICA, "VE": Continent.SOUTH_AMERICA,
    "GY": Continent.SOUTH_AMERICA, "SR": Continent.SOUTH_AMERICA,
    # Oceania
    "AU": Continent.OCEANIA, "NZ": Continent.OCEANIA,
    "FJ": Continent.OCEANIA, "PG": Continent.OCEANIA,
    "NC": Continent.OCEANIA, "GU": Continent.OCEANIA,
    "WS": Continent.OCEANIA, "TO": Continent.OCEANIA,
}


def continent_of_country(country_code: str) -> Continent:
    """Map an ISO-3166 alpha-2 country code to its continent.

    Raises :class:`KeyError` for unknown codes — silently mis-binning a
    country would corrupt every regional analysis downstream.
    """
    code = country_code.upper()
    if code not in _COUNTRY_TO_CONTINENT:
        raise KeyError(f"unknown country code: {country_code!r}")
    return _COUNTRY_TO_CONTINENT[code]


def known_countries() -> Dict[str, Continent]:
    """A copy of the full country -> continent mapping."""
    return dict(_COUNTRY_TO_CONTINENT)
