"""City catalog used to place anycast sites, IXPs and vantage points.

Cities are keyed by IATA airport code because root server operators encode
their site identities with IATA codes (paper §4.2: "{a,c,j,e}.root ... we
use the IATA airport codes in the nodes' hostnames").  Coordinates are
approximate city centres — anycast analyses care about inter-city distances
of hundreds to thousands of kilometres, so sub-10-km error is immaterial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.geo.continents import Continent, continent_of_country
from repro.geo.coords import GeoPoint


@dataclass(frozen=True)
class City:
    """A metro area that can host network infrastructure."""

    iata: str
    name: str
    country: str  # ISO-3166 alpha-2
    location: GeoPoint

    @property
    def continent(self) -> Continent:
        """Continent of the hosting country."""
        return continent_of_country(self.country)


def _c(iata: str, name: str, country: str, lat: float, lon: float) -> City:
    return City(iata=iata, name=name, country=country, location=GeoPoint(lat, lon))


_CITIES: List[City] = [
    # --- Europe ---
    _c("FRA", "Frankfurt", "DE", 50.11, 8.68),
    _c("AMS", "Amsterdam", "NL", 52.37, 4.90),
    _c("LHR", "London", "GB", 51.51, -0.13),
    _c("CDG", "Paris", "FR", 48.86, 2.35),
    _c("ARN", "Stockholm", "SE", 59.33, 18.07),
    _c("OSL", "Oslo", "NO", 59.91, 10.75),
    _c("CPH", "Copenhagen", "DK", 55.68, 12.57),
    _c("HEL", "Helsinki", "FI", 60.17, 24.94),
    _c("WAW", "Warsaw", "PL", 52.23, 21.01),
    _c("PRG", "Prague", "CZ", 50.08, 14.44),
    _c("VIE", "Vienna", "AT", 48.21, 16.37),
    _c("ZRH", "Zurich", "CH", 47.38, 8.54),
    _c("GVA", "Geneva", "CH", 46.20, 6.14),
    _c("MXP", "Milan", "IT", 45.46, 9.19),
    _c("FCO", "Rome", "IT", 41.90, 12.50),
    _c("MAD", "Madrid", "ES", 40.42, -3.70),
    _c("BCN", "Barcelona", "ES", 41.39, 2.17),
    _c("LIS", "Lisbon", "PT", 38.72, -9.14),
    _c("DUB", "Dublin", "IE", 53.35, -6.26),
    _c("BRU", "Brussels", "BE", 50.85, 4.35),
    _c("LUX", "Luxembourg", "LU", 49.61, 6.13),
    _c("SVO", "Moscow", "RU", 55.76, 37.62),
    _c("LED", "St. Petersburg", "RU", 59.93, 30.34),
    _c("KBP", "Kyiv", "UA", 50.45, 30.52),
    _c("OTP", "Bucharest", "RO", 44.43, 26.10),
    _c("SOF", "Sofia", "BG", 42.70, 23.32),
    _c("ATH", "Athens", "GR", 37.98, 23.73),
    _c("BUD", "Budapest", "HU", 47.50, 19.04),
    _c("BTS", "Bratislava", "SK", 48.15, 17.11),
    _c("LJU", "Ljubljana", "SI", 46.06, 14.51),
    _c("ZAG", "Zagreb", "HR", 45.81, 15.98),
    _c("BEG", "Belgrade", "RS", 44.79, 20.45),
    _c("TLL", "Tallinn", "EE", 59.44, 24.75),
    _c("RIX", "Riga", "LV", 56.95, 24.11),
    _c("VNO", "Vilnius", "LT", 54.69, 25.28),
    _c("KEF", "Reykjavik", "IS", 64.13, -21.90),
    _c("MLA", "Valletta", "MT", 35.90, 14.51),
    _c("LCA", "Larnaca", "CY", 34.92, 33.62),
    _c("TIA", "Tirana", "AL", 41.33, 19.82),
    _c("SKP", "Skopje", "MK", 42.00, 21.43),
    _c("SJJ", "Sarajevo", "BA", 43.86, 18.41),
    _c("KIV", "Chisinau", "MD", 47.01, 28.86),
    _c("MSQ", "Minsk", "BY", 53.90, 27.57),
    _c("MUC", "Munich", "DE", 48.14, 11.58),
    _c("DUS", "Duesseldorf", "DE", 51.23, 6.78),
    _c("HAM", "Hamburg", "DE", 53.55, 9.99),
    _c("TXL", "Berlin", "DE", 52.52, 13.41),
    _c("MAN", "Manchester", "GB", 53.48, -2.24),
    _c("LBA", "Leeds", "GB", 53.80, -1.55),
    _c("EDI", "Edinburgh", "GB", 55.95, -3.19),
    _c("MRS", "Marseille", "FR", 43.30, 5.37),
    _c("GOT", "Gothenburg", "SE", 57.71, 11.97),
    _c("TRD", "Trondheim", "NO", 63.43, 10.40),
    _c("KRK", "Krakow", "PL", 50.06, 19.94),
    _c("POZ", "Poznan", "PL", 52.41, 16.93),
    _c("TSF", "Venice", "IT", 45.44, 12.32),
    _c("TRN", "Turin", "IT", 45.07, 7.69),
    _c("VLC", "Valencia", "ES", 39.47, -0.38),
    _c("OPO", "Porto", "PT", 41.15, -8.61),
    # --- North America ---
    _c("IAD", "Washington DC", "US", 38.91, -77.04),
    _c("JFK", "New York", "US", 40.71, -74.01),
    _c("EWR", "Newark", "US", 40.74, -74.17),
    _c("BOS", "Boston", "US", 42.36, -71.06),
    _c("ATL", "Atlanta", "US", 33.75, -84.39),
    _c("MIA", "Miami", "US", 25.76, -80.19),
    _c("ORD", "Chicago", "US", 41.88, -87.63),
    _c("DFW", "Dallas", "US", 32.78, -96.80),
    _c("IAH", "Houston", "US", 29.76, -95.37),
    _c("DEN", "Denver", "US", 39.74, -104.99),
    _c("PHX", "Phoenix", "US", 33.45, -112.07),
    _c("LAX", "Los Angeles", "US", 34.05, -118.24),
    _c("SJC", "San Jose", "US", 37.34, -121.89),
    _c("SFO", "San Francisco", "US", 37.77, -122.42),
    _c("SEA", "Seattle", "US", 47.61, -122.33),
    _c("PDX", "Portland", "US", 45.52, -122.68),
    _c("SLC", "Salt Lake City", "US", 40.76, -111.89),
    _c("MSP", "Minneapolis", "US", 44.98, -93.27),
    _c("DTW", "Detroit", "US", 42.33, -83.05),
    _c("CLT", "Charlotte", "US", 35.23, -80.84),
    _c("MCI", "Kansas City", "US", 39.10, -94.58),
    _c("STL", "St. Louis", "US", 38.63, -90.20),
    _c("LAS", "Las Vegas", "US", 36.17, -115.14),
    _c("SAN", "San Diego", "US", 32.72, -117.16),
    _c("ANC", "Anchorage", "US", 61.22, -149.90),
    _c("HNL", "Honolulu", "US", 21.31, -157.86),
    _c("YYZ", "Toronto", "CA", 43.65, -79.38),
    _c("YUL", "Montreal", "CA", 45.50, -73.57),
    _c("YVR", "Vancouver", "CA", 49.28, -123.12),
    _c("YYC", "Calgary", "CA", 51.05, -114.07),
    _c("YOW", "Ottawa", "CA", 45.42, -75.70),
    _c("YWG", "Winnipeg", "CA", 49.90, -97.14),
    _c("MEX", "Mexico City", "MX", 19.43, -99.13),
    _c("GDL", "Guadalajara", "MX", 20.67, -103.35),
    _c("MTY", "Monterrey", "MX", 25.69, -100.32),
    _c("PTY", "Panama City", "PA", 8.98, -79.52),
    _c("SJO", "San Jose CR", "CR", 9.93, -84.08),
    _c("GUA", "Guatemala City", "GT", 14.63, -90.51),
    _c("SDQ", "Santo Domingo", "DO", 18.49, -69.90),
    _c("KIN", "Kingston", "JM", 18.02, -76.80),
    _c("POS", "Port of Spain", "TT", 10.65, -61.51),
    _c("SJU", "San Juan", "PR", 18.47, -66.11),
    # --- South America ---
    _c("GRU", "Sao Paulo", "BR", -23.55, -46.63),
    _c("GIG", "Rio de Janeiro", "BR", -22.91, -43.17),
    _c("BSB", "Brasilia", "BR", -15.79, -47.88),
    _c("POA", "Porto Alegre", "BR", -30.03, -51.23),
    _c("FOR", "Fortaleza", "BR", -3.72, -38.54),
    _c("REC", "Recife", "BR", -8.05, -34.88),
    _c("CWB", "Curitiba", "BR", -25.43, -49.27),
    _c("SSA", "Salvador", "BR", -12.97, -38.50),
    _c("MAO", "Manaus", "BR", -3.12, -60.02),
    _c("EZE", "Buenos Aires", "AR", -34.60, -58.38),
    _c("COR", "Cordoba", "AR", -31.42, -64.18),
    _c("SCL", "Santiago", "CL", -33.45, -70.67),
    _c("BOG", "Bogota", "CO", 4.71, -74.07),
    _c("MDE", "Medellin", "CO", 6.24, -75.58),
    _c("LIM", "Lima", "PE", -12.05, -77.04),
    _c("UIO", "Quito", "EC", -0.18, -78.47),
    _c("GYE", "Guayaquil", "EC", -2.17, -79.92),
    _c("MVD", "Montevideo", "UY", -34.90, -56.16),
    _c("ASU", "Asuncion", "PY", -25.26, -57.58),
    _c("LPB", "La Paz", "BO", -16.49, -68.12),
    _c("CCS", "Caracas", "VE", 10.48, -66.88),
    # --- Asia ---
    _c("NRT", "Tokyo", "JP", 35.68, 139.69),
    _c("KIX", "Osaka", "JP", 34.69, 135.50),
    _c("PEK", "Beijing", "CN", 39.90, 116.41),
    _c("PVG", "Shanghai", "CN", 31.23, 121.47),
    _c("CAN", "Guangzhou", "CN", 23.13, 113.26),
    _c("HKG", "Hong Kong", "HK", 22.32, 114.17),
    _c("SIN", "Singapore", "SG", 1.35, 103.82),
    _c("ICN", "Seoul", "KR", 37.57, 126.98),
    _c("TPE", "Taipei", "TW", 25.03, 121.57),
    _c("BOM", "Mumbai", "IN", 19.08, 72.88),
    _c("DEL", "New Delhi", "IN", 28.61, 77.21),
    _c("MAA", "Chennai", "IN", 13.08, 80.27),
    _c("BLR", "Bangalore", "IN", 12.97, 77.59),
    _c("CCU", "Kolkata", "IN", 22.57, 88.36),
    _c("BKK", "Bangkok", "TH", 13.76, 100.50),
    _c("KUL", "Kuala Lumpur", "MY", 3.14, 101.69),
    _c("CGK", "Jakarta", "ID", -6.21, 106.85),
    _c("MNL", "Manila", "PH", 14.60, 120.98),
    _c("SGN", "Ho Chi Minh City", "VN", 10.82, 106.63),
    _c("HAN", "Hanoi", "VN", 21.03, 105.85),
    _c("DXB", "Dubai", "AE", 25.20, 55.27),
    _c("AUH", "Abu Dhabi", "AE", 24.45, 54.38),
    _c("TLV", "Tel Aviv", "IL", 32.09, 34.78),
    _c("IST", "Istanbul", "TR", 41.01, 28.98),
    _c("RUH", "Riyadh", "SA", 24.71, 46.68),
    _c("JED", "Jeddah", "SA", 21.49, 39.19),
    _c("DOH", "Doha", "QA", 25.29, 51.53),
    _c("BAH", "Manama", "BH", 26.23, 50.59),
    _c("KWI", "Kuwait City", "KW", 29.38, 47.99),
    _c("MCT", "Muscat", "OM", 23.59, 58.41),
    _c("KHI", "Karachi", "PK", 24.86, 67.01),
    _c("ISB", "Islamabad", "PK", 33.68, 73.05),
    _c("DAC", "Dhaka", "BD", 23.81, 90.41),
    _c("CMB", "Colombo", "LK", 6.93, 79.85),
    _c("KTM", "Kathmandu", "NP", 27.72, 85.32),
    _c("PNH", "Phnom Penh", "KH", 11.56, 104.93),
    _c("VTE", "Vientiane", "LA", 17.97, 102.63),
    _c("RGN", "Yangon", "MM", 16.87, 96.20),
    _c("ULN", "Ulaanbaatar", "MN", 47.89, 106.91),
    _c("ALA", "Almaty", "KZ", 43.22, 76.85),
    _c("TAS", "Tashkent", "UZ", 41.30, 69.24),
    _c("TBS", "Tbilisi", "GE", 41.72, 44.78),
    _c("EVN", "Yerevan", "AM", 40.18, 44.51),
    _c("GYD", "Baku", "AZ", 40.41, 49.87),
    _c("AMM", "Amman", "JO", 31.96, 35.95),
    _c("BEY", "Beirut", "LB", 33.89, 35.50),
    # --- Africa ---
    _c("JNB", "Johannesburg", "ZA", -26.20, 28.05),
    _c("CPT", "Cape Town", "ZA", -33.92, 18.42),
    _c("DUR", "Durban", "ZA", -29.86, 31.03),
    _c("NBO", "Nairobi", "KE", -1.29, 36.82),
    _c("LOS", "Lagos", "NG", 6.52, 3.38),
    _c("ABV", "Abuja", "NG", 9.06, 7.50),
    _c("CAI", "Cairo", "EG", 30.04, 31.24),
    _c("CMN", "Casablanca", "MA", 33.57, -7.59),
    _c("DAR", "Dar es Salaam", "TZ", -6.79, 39.21),
    _c("ACC", "Accra", "GH", 5.60, -0.19),
    _c("DKR", "Dakar", "SN", 14.72, -17.47),
    _c("MRU", "Port Louis", "MU", -20.16, 57.50),
    _c("LAD", "Luanda", "AO", -8.84, 13.23),
    _c("TUN", "Tunis", "TN", 36.81, 10.18),
    _c("KGL", "Kigali", "RW", -1.94, 30.06),
    _c("EBB", "Kampala", "UG", 0.35, 32.58),
    _c("LUN", "Lusaka", "ZM", -15.39, 28.32),
    _c("HRE", "Harare", "ZW", -17.83, 31.05),
    _c("MPM", "Maputo", "MZ", -25.97, 32.58),
    _c("ABJ", "Abidjan", "CI", 5.36, -4.01),
    _c("DLA", "Douala", "CM", 4.05, 9.70),
    _c("ADD", "Addis Ababa", "ET", 9.01, 38.75),
    _c("ALG", "Algiers", "DZ", 36.75, 3.06),
    # --- Oceania ---
    _c("SYD", "Sydney", "AU", -33.87, 151.21),
    _c("MEL", "Melbourne", "AU", -37.81, 144.96),
    _c("BNE", "Brisbane", "AU", -27.47, 153.03),
    _c("PER", "Perth", "AU", -31.95, 115.86),
    _c("ADL", "Adelaide", "AU", -34.93, 138.60),
    _c("CBR", "Canberra", "AU", -35.28, 149.13),
    _c("AKL", "Auckland", "NZ", -36.85, 174.76),
    _c("WLG", "Wellington", "NZ", -41.29, 174.78),
    _c("CHC", "Christchurch", "NZ", -43.53, 172.64),
    _c("NAN", "Nadi", "FJ", -17.76, 177.44),
    _c("POM", "Port Moresby", "PG", -9.44, 147.18),
    _c("NOU", "Noumea", "NC", -22.27, 166.44),
    _c("GUM", "Hagatna", "GU", 13.48, 144.75),
]

#: All cities, keyed by IATA code.
CITY_CATALOG: Dict[str, City] = {c.iata: c for c in _CITIES}

if len(CITY_CATALOG) != len(_CITIES):  # pragma: no cover - catalog sanity
    raise RuntimeError("duplicate IATA codes in city catalog")


#: Cities that are major interconnection hubs (host large exchanges).
#: Anycast deployments concentrate here; the hub list must stay a
#: superset of the IXP catalog's cities (asserted in tests).
HUB_CITIES: List[str] = [
    "FRA", "AMS", "LHR", "CDG", "ARN", "VIE", "MXP", "MAD",
    "JFK", "IAD", "ORD", "LAX", "SEA", "YYZ", "MIA", "SJC",
    "GRU", "EZE", "NRT", "HKG", "SIN", "JNB", "NBO", "SYD",
]


def city(iata: str) -> City:
    """Look up a city by IATA code (raises ``KeyError`` if unknown)."""
    return CITY_CATALOG[iata.upper()]


def cities_in(continent: Continent) -> List[City]:
    """All catalog cities on *continent*, in stable (list) order."""
    return [c for c in _CITIES if c.continent is continent]
