"""Bitflip injection into zone copies.

The paper observed eight AXFR transfers with single-bit corruption,
affecting three VPs and five servers; Figure 10 shows a flipped bit in an
RRSIG over ``world.``'s NSEC, and one flip turned the TLD ``.ruhr`` into
``.buèr`` — a potential homograph vector.  Both corruption classes are
reproduced: flips into RRSIG signature bytes and flips into owner-name
label bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dns.constants import RRType
from repro.dns.name import Name
from repro.dns.rdata import RRSIG, Rdata
from repro.dns.records import ResourceRecord
from repro.netsim.mix import mix64, mix_str
from repro.util.timeutil import Timestamp
from repro.zone.zone import Zone


@dataclass(frozen=True)
class BitflipEvent:
    """Corruption affecting one VP's transfers during a time window."""

    vp_id: int
    start_ts: Timestamp
    end_ts: Timestamp
    #: Restrict to one service address (None = all transfers of the VP).
    address: Optional[str] = None
    #: "rrsig" flips a signature byte; "label" flips an owner-name byte.
    kind: str = "rrsig"

    def applies(self, vp_id: int, ts: Timestamp, address: str) -> bool:
        """Does this event corrupt the given transfer?"""
        if vp_id != self.vp_id or not self.start_ts <= ts < self.end_ts:
            return False
        return self.address is None or self.address == address


@dataclass(frozen=True)
class BitflipReport:
    """What a flip did — feeds the Figure 10 reproduction."""

    record_index: int
    description: str
    before_text: str
    after_text: str


def _flip_rrsig(record: ResourceRecord, bit_seed: int) -> Tuple[ResourceRecord, str]:
    rdata = record.rdata
    assert isinstance(rdata, RRSIG)
    sig = bytearray(rdata.signature)
    position = mix64(bit_seed, 1) % len(sig)
    bit = mix64(bit_seed, 2) % 8
    sig[position] ^= 1 << bit
    flipped = RRSIG(
        type_covered=rdata.type_covered,
        algorithm=rdata.algorithm,
        labels=rdata.labels,
        original_ttl=rdata.original_ttl,
        expiration=rdata.expiration,
        inception=rdata.inception,
        key_tag=rdata.key_tag,
        signer=rdata.signer,
        signature=bytes(sig),
    )
    return (
        ResourceRecord(record.name, record.rrtype, record.rrclass, record.ttl, flipped),
        f"RRSIG signature byte {position} bit {bit}",
    )


def _flip_label(record: ResourceRecord, bit_seed: int) -> Tuple[ResourceRecord, str]:
    labels = [bytearray(l) for l in record.name.labels]
    assert labels, "cannot flip a bit in the root name"
    label = labels[0]
    position = mix64(bit_seed, 3) % len(label)
    # Flip bit 4: within ASCII letters this maps r->b style, the paper's
    # ``.ruhr`` -> homograph class of corruption.
    label[position] ^= 0x10
    flipped_name = Name(bytes(l) for l in labels)
    return (
        ResourceRecord(flipped_name, record.rrtype, record.rrclass, record.ttl, record.rdata),
        f"owner label byte {position} bit 4 ({record.name.to_text()} -> {flipped_name.to_text()})",
    )


def flip_bit_in_zone(zone: Zone, event: BitflipEvent, ts: Timestamp) -> Tuple[Zone, BitflipReport]:
    """Return a corrupted copy of *zone* plus a report of the damage.

    The flipped record is chosen deterministically from (event, ts), so a
    given faulty transfer is reproducible.
    """
    bit_seed = mix64(event.vp_id, ts, mix_str(event.kind))
    if event.kind == "rrsig":
        indices = [
            i for i, r in enumerate(zone.records) if r.rrtype == RRType.RRSIG
        ]
    elif event.kind == "label":
        indices = [
            i
            for i, r in enumerate(zone.records)
            if r.name != zone.apex and r.rrtype == RRType.NS
        ]
    else:
        raise ValueError(f"unknown bitflip kind: {event.kind!r}")
    if not indices:
        raise ValueError(f"zone has no target records for kind {event.kind!r}")
    index = indices[mix64(bit_seed, 9) % len(indices)]
    record = zone.records[index]
    if event.kind == "rrsig":
        flipped, description = _flip_rrsig(record, bit_seed)
    else:
        flipped, description = _flip_label(record, bit_seed)
    mutated = zone.copy()
    mutated.replace_record(index, flipped)
    return mutated, BitflipReport(
        record_index=index,
        description=description,
        before_text=record.to_text(),
        after_text=flipped.to_text(),
    )
