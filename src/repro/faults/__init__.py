"""Fault injection.

The paper's Table 2 error taxonomy arises from three real-world fault
classes, all injectable here:

* **bitflips** in transferred zones (faulty VP memory / transit / server),
* **stale zone files** at individual sites (two d.root sites served
  expired signatures),
* **skewed VP clocks** (six time-related validation errors on two VPs).
"""

from repro.faults.bitflip import BitflipEvent, flip_bit_in_zone, BitflipReport
from repro.faults.stale import StaleZoneEvent
from repro.faults.clock import ClockSkewPlan
from repro.faults.plan import FaultPlan, default_fault_plan

__all__ = [
    "BitflipEvent",
    "flip_bit_in_zone",
    "BitflipReport",
    "StaleZoneEvent",
    "ClockSkewPlan",
    "FaultPlan",
    "default_fault_plan",
]
