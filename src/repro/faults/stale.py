"""Stale-zone faults: a site stops pulling new zone copies.

The paper found two d.root sites (Tokyo, 3 VPs; Leeds, 7 VPs) serving a
zone with an expired signature — a stale local zone file (§7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.timeutil import Timestamp


@dataclass(frozen=True)
class StaleZoneEvent:
    """One site frozen at an old zone copy for a time window."""

    letter: str
    site_key: str
    freeze_from: Timestamp  # site keeps the zone current at this instant
    detected_until: Timestamp  # window end (operator fixes the site)

    def __post_init__(self) -> None:
        if self.detected_until <= self.freeze_from:
            raise ValueError("stale window must have positive length")

    def active(self, ts: Timestamp) -> bool:
        """Is the site stale at *ts*?"""
        return self.freeze_from <= ts < self.detected_until
