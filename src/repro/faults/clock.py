"""VP clock-skew faults.

Signature validity is checked against the *validation* time; a VP whose
clock is days off produces ``signature not incepted`` (clock behind) or
``signature expired`` (clock ahead) errors on perfectly good zones —
the paper traced six Table 2 errors to two such VPs.

Skew is episodic: real node clocks break for a stretch (NTP outage,
battery-dead RTC after a reboot) and get fixed, so each entry carries a
time window outside which the VP's clock is accurate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.util.timeutil import DAY, Timestamp, parse_ts


@dataclass(frozen=True)
class SkewEpisode:
    """One broken-clock episode of one VP."""

    offset_s: int  # positive = clock runs ahead
    start_ts: Timestamp
    end_ts: Timestamp

    def __post_init__(self) -> None:
        if self.end_ts <= self.start_ts:
            raise ValueError("skew episode must have positive length")

    def offset_at(self, ts: Timestamp) -> int:
        return self.offset_s if self.start_ts <= ts < self.end_ts else 0


@dataclass(frozen=True)
class ClockSkewPlan:
    """vp_id -> that VP's skew episode."""

    episodes: Dict[int, SkewEpisode] = field(default_factory=dict)

    def offset_for(self, vp_id: int, ts: Timestamp) -> int:
        episode = self.episodes.get(vp_id)
        return 0 if episode is None else episode.offset_at(ts)

    @property
    def vp_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self.episodes))

    @classmethod
    def paper_like(cls, behind_vp: int, ahead_vp: int) -> "ClockSkewPlan":
        """Two faulty VPs, as in Table 2:

        * one ~12 days behind for a few days in late December (signing
          batches lead publication by at most ~11 days, so 12 days behind
          always lands before inception — the '#SOA 5, 5 obs' row),
        * one ~16 days behind for a day in early October (the
          single-observation row).
        """
        return cls(
            episodes={
                behind_vp: SkewEpisode(
                    offset_s=-12 * DAY,
                    start_ts=parse_ts("2023-12-19"),
                    end_ts=parse_ts("2023-12-23") + 12 * 3600,
                ),
                ahead_vp: SkewEpisode(
                    offset_s=-16 * DAY,
                    start_ts=parse_ts("2023-10-02"),
                    end_ts=parse_ts("2023-10-04"),
                ),
            }
        )
