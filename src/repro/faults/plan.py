"""The combined fault plan for a campaign.

``default_fault_plan`` reproduces the *classes and rough magnitudes* of
the paper's Table 2: a handful of bitflipped transfers across a few VPs
and servers, two stale d.root sites (one Asian, one European), and two
VPs with skewed clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.faults.bitflip import BitflipEvent
from repro.faults.clock import ClockSkewPlan
from repro.faults.stale import StaleZoneEvent
from repro.geo.continents import Continent
from repro.rss.sites import Site, SiteCatalog
from repro.util.timeutil import DAY, HOUR, Timestamp, parse_ts


@dataclass(frozen=True)
class FaultPlan:
    """All faults scheduled for one campaign."""

    bitflips: Sequence[BitflipEvent] = ()
    stale_sites: Sequence[StaleZoneEvent] = ()
    clocks: ClockSkewPlan = field(default_factory=ClockSkewPlan)

    def bitflip_for(self, vp_id: int, ts: Timestamp, address: str) -> Optional[BitflipEvent]:
        """The bitflip event hitting this transfer, if any."""
        for event in self.bitflips:
            if event.applies(vp_id, ts, address):
                return event
        return None


def _pick_site(catalog: SiteCatalog, letter: str, continent: Continent) -> Optional[Site]:
    for site in catalog.of_letter(letter):
        if site.continent is continent:
            return site
    return None


def default_fault_plan(
    catalog: SiteCatalog,
    n_vps: int,
    campaign_start: Timestamp = parse_ts("2023-07-03"),
    stale_site_keys: Optional[Sequence[str]] = None,
) -> FaultPlan:
    """The Table 2-shaped fault schedule.

    VP indices are taken modulo the population size so scaled-down rings
    still exhibit every fault class.  *stale_site_keys* overrides the
    auto-picked d.root sites (callers who know the catchments pass the
    most-visited Asian and European d.root sites, like the paper's Tokyo
    and Leeds observations).
    """
    flaky_vp_a = 17 % n_vps  # faulty RAM, several servers affected
    flaky_vp_b = 211 % n_vps  # faulty RAM, single-shot events
    flaky_vp_c = 433 % n_vps  # one label flip (the .ruhr homograph class)
    clock_behind_vp = 101 % n_vps
    clock_ahead_vp = 302 % n_vps

    bitflips: List[BitflipEvent] = [
        # Recurring flips on one VP across servers (paper: d(v6) 3 obs).
        BitflipEvent(
            vp_id=flaky_vp_a,
            start_ts=parse_ts("2023-09-26"),
            end_ts=parse_ts("2023-09-26") + 12 * HOUR,
            address="2001:500:2d::d",
        ),
        BitflipEvent(
            vp_id=flaky_vp_a,
            start_ts=parse_ts("2023-10-24"),
            end_ts=parse_ts("2023-10-24") + 12 * HOUR,
            address="2001:500:2d::d",
        ),
        # Single-shot flips on a second VP against two servers.
        BitflipEvent(
            vp_id=flaky_vp_b,
            start_ts=parse_ts("2023-11-18"),
            end_ts=parse_ts("2023-11-18") + 12 * HOUR,
            address="2001:500:12::d0d",
        ),
        BitflipEvent(
            vp_id=flaky_vp_b,
            start_ts=parse_ts("2023-11-21"),
            end_ts=parse_ts("2023-11-21") + 12 * HOUR,
            address="199.9.14.201",
        ),
        BitflipEvent(
            vp_id=flaky_vp_b,
            start_ts=parse_ts("2023-10-09"),
            end_ts=parse_ts("2023-10-09") + 12 * HOUR,
            address="2001:500:2::c",
        ),
        # One owner-label flip: the homograph-class corruption.
        BitflipEvent(
            vp_id=flaky_vp_c,
            start_ts=parse_ts("2023-09-26"),
            end_ts=parse_ts("2023-09-26") + 12 * HOUR,
            address="192.112.36.4",
            kind="label",
        ),
    ]

    stale_sites: List[StaleZoneEvent] = []
    if stale_site_keys is not None:
        keys = list(stale_site_keys)
    else:
        keys = []
        tokyo_like = _pick_site(catalog, "d", Continent.ASIA)
        leeds_like = _pick_site(catalog, "d", Continent.EUROPE)
        if tokyo_like is not None:
            keys.append(tokyo_like.key)
        if leeds_like is not None:
            keys.append(leeds_like.key)
    stale_windows = [
        (parse_ts("2023-08-02"), parse_ts("2023-08-16") + 12 * HOUR),
        (parse_ts("2023-09-22"), parse_ts("2023-10-06") + 14 * HOUR),
    ]
    for key, (freeze_from, detected_until) in zip(keys, stale_windows):
        stale_sites.append(
            StaleZoneEvent(
                letter="d",
                site_key=key,
                freeze_from=freeze_from,
                detected_until=detected_until,
            )
        )

    clocks = ClockSkewPlan.paper_like(clock_behind_vp, clock_ahead_vp)
    return FaultPlan(bitflips=bitflips, stale_sites=stale_sites, clocks=clocks)
