"""RFC 8806: running a local copy of the root zone.

The paper's §7 punchline: a resolver keeping a local root copy must be
able to *verify* it — ZONEMD enables that regardless of how the zone
was obtained — and on failure should "implement appropriate fallback
mechanisms such as rescheduling a zone transfer from a different root
server".  This manager does exactly that: refresh via IXFR/AXFR on the
SOA schedule, fully validate every new copy (RRSIGs + ZONEMD), reject
corrupt transfers and fail over to the next letter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dns.constants import RRType
from repro.dns.message import Message
from repro.dns.name import ROOT_NAME
from repro.dns.rdata import SOA
from repro.dnssec.digestcache import ZoneValidationCache, shared_cache
from repro.dnssec.zonemd import ZonemdStatus
from repro.resolver.hints import RootHints
from repro.resolver.netclient import RootNetworkClient
from repro.util.timeutil import Timestamp
from repro.zone.serial import serial_compare
from repro.zone.zone import Zone


class RefreshStatus(enum.Enum):
    """Outcome class of one refresh attempt."""

    CURRENT = "local copy already current"
    UPDATED = "new zone copy installed"
    REJECTED = "transfer failed validation; trying another server"
    FAILED = "no server produced a valid copy"


@dataclass
class RefreshResult:
    """One refresh attempt's audit trail."""

    status: RefreshStatus
    serial: Optional[int] = None
    served_by: Optional[str] = None
    rejections: List[Tuple[str, str]] = field(default_factory=list)  # (addr, why)


class LocalRootManager:
    """Maintains a validated local root zone copy (RFC 8806)."""

    def __init__(
        self,
        client: RootNetworkClient,
        hints: RootHints,
        family: int = 4,
        require_zonemd: bool = False,
        prefer_ixfr: bool = True,
        validation_cache: Optional[ZoneValidationCache] = None,
    ) -> None:
        self.client = client
        self.hints = hints
        self.family = family
        #: Content-keyed crypto memo (shared process-wide by default):
        #: refresh loops revisit the same zone versions, so RRSIG and
        #: ZONEMD digests are computed once per version, not per refresh.
        self.validation_cache = (
            validation_cache if validation_cache is not None else shared_cache()
        )
        #: Strict mode: reject zones whose ZONEMD cannot be verified.
        #: (Off by default during the monitoring year — paper §7: the
        #: operators will watch for at least a year before rejecting.)
        self.require_zonemd = require_zonemd
        #: Refresh incrementally (RFC 1995) when a copy is loaded.
        self.prefer_ixfr = prefer_ixfr
        self.zone: Optional[Zone] = None
        self.last_refresh: Timestamp = 0
        self.refresh_history: List[RefreshResult] = []
        self.ixfr_refreshes = 0
        self.axfr_refreshes = 0

    # -- validation --------------------------------------------------------------------

    def _validate(self, zone: Zone, now: Timestamp) -> Optional[str]:
        """None if acceptable, else a rejection reason."""
        analysis = self.validation_cache.analyse_zone(zone, ROOT_NAME)
        report = analysis.report_at(now, check_zonemd=False)
        if not report.valid:
            return f"DNSSEC: {report.issues[0].error.value}"
        status, detail = analysis.zonemd
        if status is ZonemdStatus.MISMATCH:
            return f"ZONEMD: {detail}"
        if status is ZonemdStatus.SERIAL_MISMATCH:
            return f"ZONEMD: {detail}"
        if self.require_zonemd and status is not ZonemdStatus.VALID:
            return f"ZONEMD required but {status.value}"
        return None

    # -- refresh ------------------------------------------------------------------------

    def _remote_serial(self, address: str, now: Timestamp) -> Optional[int]:
        query = Message.make_query(ROOT_NAME, RRType.SOA)
        outcome = self.client.query(address, query, now)
        soas = outcome.response.answer_rrs(RRType.SOA)
        if not soas:
            return None
        rdata = soas[0].rdata
        assert isinstance(rdata, SOA)
        return rdata.serial

    def _fetch(self, address: str, now: Timestamp) -> Optional[Zone]:
        """Fetch the current zone: IXFR when possible, AXFR otherwise."""
        from repro.zone.ixfr import apply_deltas
        from repro.zone.transfer import TransferError

        if self.prefer_ixfr and self.zone is not None:
            response = self.client.ixfr(address, self.zone.serial, now)
            if response.kind == "incremental" and response.records:
                try:
                    updated = apply_deltas(
                        self.zone, response.deltas, response.records[0]
                    )
                    self.ixfr_refreshes += 1
                    return updated
                except TransferError:
                    pass  # fall back to a full transfer below
            elif response.kind == "full" and response.records:
                from repro.zone.zone import Zone as ZoneCls

                self.axfr_refreshes += 1
                return ZoneCls(ROOT_NAME, response.records[:-1])
        transfer = self.client.axfr(address, now)
        if transfer is None:
            return None
        self.axfr_refreshes += 1
        return transfer.zone

    def refresh(self, now: Timestamp) -> RefreshResult:
        """One refresh cycle: SOA check, then transfer + validate, with
        failover across letters on rejection."""
        result = RefreshResult(status=RefreshStatus.FAILED)
        addresses = self.hints.all_addresses(self.family)
        for address in addresses:
            serial = self._remote_serial(address, now)
            if serial is None:
                result.rejections.append((address, "no SOA answer"))
                continue
            if self.zone is not None and serial_compare(self.zone.serial, serial) >= 0:
                result.status = RefreshStatus.CURRENT
                result.serial = self.zone.serial
                result.served_by = address
                break
            candidate = self._fetch(address, now)
            if candidate is None:
                result.rejections.append((address, "transfer refused"))
                continue
            rejection = self._validate(candidate, now)
            if rejection is not None:
                result.rejections.append((address, rejection))
                result.status = RefreshStatus.REJECTED
                continue
            self.zone = candidate
            self.last_refresh = now
            result.status = RefreshStatus.UPDATED
            result.serial = candidate.serial
            result.served_by = address
            break
        self.refresh_history.append(result)
        return result

    def needs_refresh(self, now: Timestamp) -> bool:
        """SOA-refresh-interval scheduling."""
        if self.zone is None:
            return True
        soa = self.zone.soa()
        assert soa is not None and isinstance(soa.rdata, SOA)
        return now >= self.last_refresh + soa.rdata.refresh

    # -- serving ------------------------------------------------------------------------

    def answer_locally(self, query: Message) -> Optional[Message]:
        """Answer a query from the local copy (None if not loaded)."""
        if self.zone is None:
            return None
        from repro.rss.instance import RootInstance
        from repro.rss.sites import Site
        from repro.geo.cities import city

        # A synthetic "site" representing the loopback instance.
        loopback = Site(
            letter="l",  # arbitrary; identity not used for IN answers
            index=999,
            city=city("FRA"),
            is_global=False,
            published=False,
        )
        return RootInstance(loopback).answer(query, self.zone)
