"""The recursive resolver: priming, caching, server selection.

Implements the client-side mechanics behind the paper's findings:

* **Priming (RFC 8109)**: on start (and whenever the cached root NS set
  expires) the resolver queries ``NS .`` against a *hints* address and
  re-learns the letters' current addresses from the zone — which is how
  renumbered addresses propagate to clients without software updates,
  and why devices with priming touch an old address about once a day.
* **Server selection**: smoothed-RTT based with occasional exploration
  (BIND/Unbound style), concentrating queries on nearby letters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.constants import RRClass, RRType, Rcode
from repro.dns.edns import add_edns
from repro.dns.message import Message
from repro.dns.name import Name, ROOT_NAME
from repro.dns.rdata import NS
from repro.dns.records import ResourceRecord
from repro.resolver.cache import DnsCache
from repro.resolver.hints import RootHints
from repro.resolver.netclient import RootNetworkClient
from repro.util.timeutil import Timestamp

#: Smoothing factor for per-address RTT estimates.
RTT_ALPHA = 0.3

#: Probability of probing a non-best address (keeps estimates fresh).
EXPLORE_PROB = 0.05


@dataclass
class Resolution:
    """Outcome of one resolver lookup."""

    answers: List[ResourceRecord]
    referral: List[Name]  # delegation NS targets when not authoritative
    rcode: Rcode
    from_cache: bool
    queried_address: Optional[str] = None
    rtt_ms: Optional[float] = None

    @property
    def is_referral(self) -> bool:
        return bool(self.referral) and not self.answers


class SimResolver:
    """A caching resolver wired to the simulated root."""

    def __init__(
        self,
        client: RootNetworkClient,
        hints: RootHints,
        family: int = 4,
        rng: Optional[random.Random] = None,
    ) -> None:
        if family not in (4, 6):
            raise ValueError(f"family must be 4 or 6, got {family}")
        self.client = client
        self.hints = hints
        self.family = family
        self.rng = rng or random.Random(0)
        self.cache = DnsCache()
        #: current root addresses (learned via priming; starts empty)
        self._root_addresses: List[str] = []
        self._root_expiry: Timestamp = 0
        #: smoothed RTT per address
        self._srtt: Dict[str, float] = {}
        self.primings = 0
        self.queries_sent = 0

    # -- priming --------------------------------------------------------------------

    def _prime(self, now: Timestamp) -> None:
        """RFC 8109: learn the current root NS set + addresses."""
        self.primings += 1
        hint_address = self.rng.choice(self.hints.all_addresses(self.family))
        query = Message.make_query(ROOT_NAME, RRType.NS, rd=False)
        add_edns(query, dnssec_ok=True)
        outcome = self.client.query(hint_address, query, now)
        self.queries_sent += 1
        ns_records = outcome.response.answer_rrs(RRType.NS)
        if not ns_records:
            raise RuntimeError("priming failed: no NS records in answer")
        self.cache.put(ns_records, now)
        ttl = min(r.ttl for r in ns_records)
        self._root_expiry = now + ttl

        # Resolve each letter's address of our family from the same
        # server (the real priming response carries these as glue).
        qtype = RRType.A if self.family == 4 else RRType.AAAA
        addresses: List[str] = []
        for record in ns_records:
            assert isinstance(record.rdata, NS)
            target = record.rdata.target
            address_query = Message.make_query(target, qtype)
            address_outcome = self.client.query(hint_address, address_query, now)
            self.queries_sent += 1
            answer = address_outcome.response.answer_rrs(qtype)
            if answer:
                self.cache.put(answer, now)
                addresses.append(answer[0].rdata.address)  # type: ignore[attr-defined]
        if not addresses:
            raise RuntimeError("priming failed: no root addresses learned")
        self._root_addresses = addresses

    def _ensure_primed(self, now: Timestamp) -> None:
        if not self._root_addresses or now >= self._root_expiry:
            self._prime(now)

    # -- server selection -------------------------------------------------------------

    def _pick_root_address(self) -> str:
        """Smoothed-RTT selection with epsilon exploration."""
        unknown = [a for a in self._root_addresses if a not in self._srtt]
        if unknown:
            return self.rng.choice(unknown)
        if self.rng.random() < EXPLORE_PROB:
            return self.rng.choice(self._root_addresses)
        return min(self._root_addresses, key=lambda a: self._srtt[a])

    def _note_rtt(self, address: str, rtt_ms: float) -> None:
        previous = self._srtt.get(address)
        if previous is None:
            self._srtt[address] = rtt_ms
        else:
            self._srtt[address] = (1 - RTT_ALPHA) * previous + RTT_ALPHA * rtt_ms

    @property
    def smoothed_rtts(self) -> Dict[str, float]:
        return dict(self._srtt)

    # -- resolution --------------------------------------------------------------------

    def resolve(
        self,
        qname: Name,
        qtype: RRType,
        now: Timestamp,
    ) -> Resolution:
        """Resolve against the root (answer, negative, or referral).

        The simulated universe ends at the root: names inside TLDs come
        back as referrals carrying the delegation's NS targets, which is
        exactly the part of resolution the root serves.
        """
        cached = self.cache.get(qname, qtype, now)
        if cached is not None:
            if cached.negative:
                return Resolution(
                    answers=[], referral=[], rcode=Rcode.NXDOMAIN, from_cache=True
                )
            return Resolution(
                answers=list(cached.records), referral=[], rcode=Rcode.NOERROR,
                from_cache=True,
            )

        self._ensure_primed(now)
        address = self._pick_root_address()
        query = Message.make_query(qname, qtype)
        add_edns(query, dnssec_ok=True)
        outcome = self.client.query(address, query, now)
        self.queries_sent += 1
        self._note_rtt(address, outcome.rtt_ms)
        response = outcome.response

        if response.header.rcode == Rcode.NXDOMAIN:
            self.cache.put_negative(qname, qtype, now, ttl=86400)
            return Resolution(
                answers=[], referral=[], rcode=Rcode.NXDOMAIN, from_cache=False,
                queried_address=address, rtt_ms=outcome.rtt_ms,
            )

        answers = [r for r in response.answers if r.rrtype == qtype]
        if answers:
            self.cache.put(answers, now)
            return Resolution(
                answers=answers, referral=[], rcode=Rcode.NOERROR,
                from_cache=False, queried_address=address, rtt_ms=outcome.rtt_ms,
            )

        referral_targets: List[Name] = []
        for record in response.authority:
            if record.rrtype == RRType.NS and isinstance(record.rdata, NS):
                referral_targets.append(record.rdata.target)
        if referral_targets:
            self.cache.put(list(response.authority), now)
        return Resolution(
            answers=[], referral=referral_targets, rcode=Rcode.NOERROR,
            from_cache=False, queried_address=address, rtt_ms=outcome.rtt_ms,
        )

    # -- introspection -----------------------------------------------------------------

    def known_root_addresses(self) -> List[str]:
        """Addresses the resolver currently believes serve the root."""
        return list(self._root_addresses)

    def uses_address(self, address: str) -> bool:
        return address in self._root_addresses
