"""The resolver's network stack: send a query to a root service address
over the simulated fabric and get (response, RTT) back.

Binds a client attachment to the routing fabric and the letters'
deployments, so every resolver query exercises the same catchment
selection, latency model and serving logic as the measurement suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dns.message import Message
from repro.netsim.attachment import Attachment
from repro.netsim.latency import route_rtt_ms
from repro.netsim.mix import mix64
from repro.netsim.routing import RouteSelector
from repro.rss.operators import ServiceAddress, address_owner
from repro.rss.server import RootServerDeployment
from repro.util.timeutil import Timestamp
from repro.zone.transfer import AxfrResult


@dataclass
class QueryOutcome:
    """One query's result as the resolver sees it."""

    response: Message
    rtt_ms: float
    site_key: str
    letter: str


class RootNetworkClient:
    """Queries root service addresses from one client network."""

    def __init__(
        self,
        attachment: Attachment,
        selector: RouteSelector,
        deployments: Dict[str, RootServerDeployment],
        client_id: int,
        last_mile_ms: float = 3.0,
    ) -> None:
        self.attachment = attachment
        self.selector = selector
        self.deployments = deployments
        self.client_id = client_id
        self.last_mile_ms = last_mile_ms
        self._query_counter = 0

    def _resolve_address(self, address: str) -> ServiceAddress:
        return address_owner(address)

    def query(self, address: str, message: Message, ts: Timestamp) -> QueryOutcome:
        """Send *message* to a root service address at time *ts*."""
        sa = self._resolve_address(address)
        self._query_counter += 1
        route = self.selector.select(
            self.attachment,
            self.client_id,
            sa.letter,
            sa.family,
            sa.address,
            round_no=self._query_counter,
        )
        deployment = self.deployments[sa.letter]
        response = deployment.answer(route.site.key, message, ts)
        rtt = route_rtt_ms(
            route,
            self.last_mile_ms,
            request_key=mix64(self.client_id, self._query_counter),
        )
        return QueryOutcome(
            response=response, rtt_ms=rtt, site_key=route.site.key, letter=sa.letter
        )

    def axfr(self, address: str, ts: Timestamp) -> Optional[AxfrResult]:
        """Full zone transfer from a root service address."""
        sa = self._resolve_address(address)
        self._query_counter += 1
        route = self.selector.select(
            self.attachment,
            self.client_id,
            sa.letter,
            sa.family,
            sa.address,
            round_no=self._query_counter,
        )
        result = self.deployments[sa.letter].serve_axfr(route.site.key, ts)
        return None if result.refused else result

    def ixfr(self, address: str, have_serial: int, ts: Timestamp):
        """Incremental transfer (RFC 1995) against a root address.

        Returns an :class:`repro.zone.ixfr.IxfrResponse` served from the
        letter's distribution journal; stale-frozen sites fall back to
        their (old) full zone via :meth:`axfr` semantics on the caller's
        side when the delta chain cannot be applied.
        """
        sa = self._resolve_address(address)
        self._query_counter += 1
        distributor = self.deployments[sa.letter].distributor
        return distributor.ixfr_respond(have_serial, ts)
