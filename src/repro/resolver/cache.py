"""A TTL-correct DNS cache.

Entries expire at ``stored_at + ttl``; lookups report the *remaining*
TTL, and negative results (NXDOMAIN) are cached against the zone's SOA
minimum, per RFC 2308.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name
from repro.dns.records import ResourceRecord
from repro.util.timeutil import Timestamp


@dataclass(frozen=True)
class CacheEntry:
    """One cached RRset (or negative answer)."""

    records: Tuple[ResourceRecord, ...]
    stored_at: Timestamp
    ttl: int
    negative: bool = False

    def expires_at(self) -> Timestamp:
        return self.stored_at + self.ttl

    def fresh_at(self, now: Timestamp) -> bool:
        return now < self.expires_at()

    def remaining_ttl(self, now: Timestamp) -> int:
        return max(0, self.expires_at() - now)


class DnsCache:
    """Keyed by (owner, type, class); explicit-time API, no wall clock."""

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries < 1:
            raise ValueError("cache needs capacity")
        self.max_entries = max_entries
        self._entries: Dict[Tuple[Name, int, int], CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(name: Name, rrtype: RRType, rrclass: RRClass) -> Tuple[Name, int, int]:
        return (name, int(rrtype), int(rrclass))

    def put(
        self,
        records: List[ResourceRecord],
        now: Timestamp,
    ) -> None:
        """Cache an RRset (all records must share one key)."""
        if not records:
            raise ValueError("cannot cache an empty RRset")
        key = self._key(records[0].name, records[0].rrtype, records[0].rrclass)
        for record in records[1:]:
            if self._key(record.name, record.rrtype, record.rrclass) != key:
                raise ValueError("mixed RRset in cache put")
        ttl = min(r.ttl for r in records)
        self._evict_if_full()
        self._entries[key] = CacheEntry(
            records=tuple(records), stored_at=now, ttl=ttl
        )

    def put_negative(
        self,
        name: Name,
        rrtype: RRType,
        now: Timestamp,
        ttl: int,
        rrclass: RRClass = RRClass.IN,
    ) -> None:
        """Cache an NXDOMAIN/NODATA result (RFC 2308)."""
        self._evict_if_full()
        self._entries[self._key(name, rrtype, rrclass)] = CacheEntry(
            records=(), stored_at=now, ttl=ttl, negative=True
        )

    def get(
        self,
        name: Name,
        rrtype: RRType,
        now: Timestamp,
        rrclass: RRClass = RRClass.IN,
    ) -> Optional[CacheEntry]:
        """Fresh entry or None (expired entries are dropped lazily)."""
        key = self._key(name, rrtype, rrclass)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not entry.fresh_at(now):
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def flush(self) -> None:
        """Drop everything (resolver restart)."""
        self._entries.clear()

    def expire_all(self, now: Timestamp) -> int:
        """Proactively drop expired entries; returns how many."""
        stale = [
            key for key, entry in self._entries.items() if not entry.fresh_at(now)
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def _evict_if_full(self) -> None:
        if len(self._entries) >= self.max_entries:
            # Drop the entry expiring soonest.
            victim = min(self._entries, key=lambda k: self._entries[k].expires_at())
            del self._entries[victim]
