"""A recursive resolver substrate.

The paper's client-behaviour findings (priming against old addresses,
reluctance to renumber, local root copies needing ZONEMD) are resolver
phenomena.  This package implements the mechanisms:

* a TTL-correct cache,
* root hints — including *stale* hints still carrying b.root's old
  address, the root cause of post-renumbering residual traffic,
* RFC 8109 priming,
* RTT-smoothed root server selection (why resolvers concentrate on
  nearby letters),
* an RFC 8806 "local root" that maintains a validated zone copy via
  AXFR/IXFR with ZONEMD checking and failover between letters.
"""

from repro.resolver.cache import CacheEntry, DnsCache
from repro.resolver.hints import RootHints, fresh_hints, stale_hints
from repro.resolver.netclient import QueryOutcome, RootNetworkClient
from repro.resolver.resolver import Resolution, SimResolver
from repro.resolver.localroot import LocalRootManager, RefreshResult

__all__ = [
    "CacheEntry",
    "DnsCache",
    "RootHints",
    "fresh_hints",
    "stale_hints",
    "QueryOutcome",
    "RootNetworkClient",
    "Resolution",
    "SimResolver",
    "LocalRootManager",
    "RefreshResult",
]
