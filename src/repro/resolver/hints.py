"""Root hints.

A resolver bootstraps from a compiled-in hints file.  Hints files age:
devices shipped before b.root's renumbering keep querying the old
address until they re-prime or get updated — producing exactly the
residual old-address traffic the paper measures.  ``stale_hints``
returns the pre-change file, ``fresh_hints`` the post-change one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.rss.operators import B_ROOT_CHANGE_TS, ROOT_SERVERS
from repro.util.timeutil import Timestamp


@dataclass(frozen=True)
class RootHints:
    """letter -> (IPv4, IPv6) bootstrap addresses."""

    addresses: Dict[str, Tuple[str, str]]
    generated_at: Timestamp

    def address(self, letter: str, family: int) -> str:
        v4, v6 = self.addresses[letter]
        if family == 4:
            return v4
        if family == 6:
            return v6
        raise ValueError(f"family must be 4 or 6, got {family}")

    def all_addresses(self, family: int) -> List[str]:
        return [self.address(letter, family) for letter in sorted(self.addresses)]

    @property
    def letters(self) -> List[str]:
        return sorted(self.addresses)


def hints_as_of(ts: Timestamp) -> RootHints:
    """The hints file a device generated at *ts* would carry."""
    addresses = {
        letter: (server.address_for(4, ts), server.address_for(6, ts))
        for letter, server in ROOT_SERVERS.items()
    }
    return RootHints(addresses=addresses, generated_at=ts)


def stale_hints() -> RootHints:
    """Hints predating b.root's renumbering (old b addresses)."""
    return hints_as_of(B_ROOT_CHANGE_TS - 86400)


def fresh_hints() -> RootHints:
    """Hints from after the renumbering (new b addresses)."""
    return hints_as_of(B_ROOT_CHANGE_TS + 86400)
