"""A root server instance: the thing a query actually reaches.

Implements the answer behaviour the measurement suite (paper Appendix F)
exercises: IN queries against the current root zone copy, CHAOS identity
queries (``hostname.bind``/``id.server``/``version.bind``/``version.server``)
and AXFR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dns.constants import RRClass, RRType, Rcode
from repro.dns.edns import DEFAULT_PAYLOAD_SIZE, add_edns, wants_dnssec
from repro.dns.message import Message
from repro.dns.name import Name, ROOT_NAME
from repro.dns.rdata import NS, TXT
from repro.dns.records import ResourceRecord
from repro.rss.sites import Site
from repro.zone.zone import Zone

#: Name server software each operator reports via ``version.bind``.
VERSION_STRINGS: Dict[str, str] = {
    "a": "Verisign ATLAS",
    "b": "BIND 9.18.19",
    "c": "BIND 9.18.19",
    "d": "BIND 9.18.19",
    "e": "NSD 4.7.0",
    "f": "ISC BIND",
    "g": "BIND 9.16.44",
    "h": "Knot DNS 3.3.2",
    "i": "NSD 4.8.0",
    "j": "Verisign ATLAS",
    "k": "Knot DNS 3.3.2",
    "l": "NSD 4.8.0",
    "m": "BIND 9.18.19",
}

_HOSTNAME_BIND = Name.from_text("hostname.bind.")
_ID_SERVER = Name.from_text("id.server.")
_VERSION_BIND = Name.from_text("version.bind.")
_VERSION_SERVER = Name.from_text("version.server.")
_ROOT_SERVERS_NET = Name.from_text("root-servers.net.")


def _txt_answer(query: Message, owner: Name, text: str) -> Message:
    response = query.make_response()
    response.answers.append(
        ResourceRecord(owner, RRType.TXT, RRClass.CH, 0, TXT.from_string(text))
    )
    return response


@dataclass
class RootInstance:
    """One serving instance at one site."""

    site: Site

    @property
    def letter(self) -> str:
        return self.site.letter

    def identity(self) -> str:
        """The CHAOS identity string this instance reports."""
        return self.site.identity()

    # -- query answering ---------------------------------------------------------

    def answer(self, query: Message, zone: Zone) -> Message:
        """Answer one (non-AXFR) query against *zone*."""
        question = query.question
        if question is None:
            return query.make_response(rcode=Rcode.FORMERR)
        if question.qclass == RRClass.CH:
            return self._answer_chaos(query)
        if question.qclass != RRClass.IN:
            return query.make_response(rcode=Rcode.NOTIMP, aa=False)
        return self._answer_in(query, zone)

    def _answer_chaos(self, query: Message) -> Message:
        question = query.question
        assert question is not None
        if question.qtype != RRType.TXT:
            return query.make_response(rcode=Rcode.NOTIMP, aa=False)
        qname = question.qname
        if qname in (_HOSTNAME_BIND, _ID_SERVER):
            return _txt_answer(query, qname, self.identity())
        if qname in (_VERSION_BIND, _VERSION_SERVER):
            return _txt_answer(query, qname, VERSION_STRINGS[self.letter])
        return query.make_response(rcode=Rcode.NXDOMAIN, aa=False)

    def _answer_in(self, query: Message, zone: Zone) -> Message:
        question = query.question
        assert question is not None
        qname, qtype = question.qname, question.qtype

        # Root servers are also authoritative for root-servers.net; the
        # suite queries its NS RRset (Appendix F).  We synthesise the
        # answer from the letters present in the zone's apex NS set.
        if qname == _ROOT_SERVERS_NET and qtype == RRType.NS:
            response = query.make_response()
            apex_ns = zone.find_rrset(ROOT_NAME, RRType.NS)
            assert apex_ns is not None
            for rec in apex_ns:
                assert isinstance(rec.rdata, NS)
                response.answers.append(
                    ResourceRecord(_ROOT_SERVERS_NET, RRType.NS, RRClass.IN, 3600000, rec.rdata)
                )
            return response

        rrset = zone.find_rrset(qname, qtype)
        if rrset is not None:
            response = query.make_response()
            response.answers.extend(rrset.records)
            # RRSIGs are only attached when the client set the DO bit
            # (``dig +dnssec`` sends EDNS with DO=1).
            if wants_dnssec(query):
                add_edns(response, DEFAULT_PAYLOAD_SIZE, dnssec_ok=True)
                for rec in zone.records:
                    if (
                        rec.rrtype == RRType.RRSIG
                        and rec.name == qname
                        and rec.rdata.type_covered == int(qtype)  # type: ignore[attr-defined]
                    ):
                        response.answers.append(rec)
            return response

        # Name exists with other types -> NOERROR/empty; else NXDOMAIN.
        name_exists = any(rec.name == qname for rec in zone.records)
        if name_exists:
            return query.make_response()
        if qname.is_subdomain_of(ROOT_NAME) and len(qname) >= 1:
            # Delegation? The root answers with a referral for names under
            # a delegated TLD.
            tld = Name(qname.labels[-1:])
            delegation = zone.find_rrset(tld, RRType.NS)
            if delegation is not None and qname != tld:
                response = query.make_response(aa=False)
                response.authority.extend(delegation.records)
                return response
        return query.make_response(rcode=Rcode.NXDOMAIN)
