"""The 13 root server letters, their operators and service addresses.

Addresses are the real ones (paper Appendix F measurement script), with
b.root carrying both its pre- and post-renumbering addresses; the change
entered the root zone on 2023-11-27 (paper Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.timeutil import parse_ts

#: The thirteen letters.
ROOT_LETTERS: Tuple[str, ...] = tuple("abcdefghijklm")

#: b.root's renumbering entered the root zone on 2023-11-27 (Fig. 2).
B_ROOT_CHANGE_TS = parse_ts("2023-11-27")


@dataclass(frozen=True)
class ServiceAddress:
    """One (letter, family, generation) service address."""

    letter: str
    family: int  # 4 or 6
    address: str
    generation: str  # "current", "old", or "new"

    @property
    def label(self) -> str:
        """Display label like ``b.root (new)`` used by the paper's figures."""
        if self.generation == "current":
            return f"{self.letter}.root"
        return f"{self.letter}.root ({self.generation})"


@dataclass(frozen=True)
class RootServer:
    """One root server letter with its addresses and operator."""

    letter: str
    operator: str
    ipv4: str
    ipv6: str
    old_ipv4: Optional[str] = None
    old_ipv6: Optional[str] = None

    @property
    def name_text(self) -> str:
        return f"{self.letter}.root-servers.net."

    def addresses(self) -> List[ServiceAddress]:
        """All service addresses, marking old/new generations."""
        gen = "new" if self.old_ipv4 else "current"
        out = [
            ServiceAddress(self.letter, 4, self.ipv4, gen),
            ServiceAddress(self.letter, 6, self.ipv6, gen),
        ]
        if self.old_ipv4:
            out.append(ServiceAddress(self.letter, 4, self.old_ipv4, "old"))
        if self.old_ipv6:
            out.append(ServiceAddress(self.letter, 6, self.old_ipv6, "old"))
        return out

    def address_for(self, family: int, at_ts: int) -> str:
        """The address published in the root zone at time *at_ts*.

        Only b.root has a pre-change generation; before the change the old
        address is published, after it the new one.
        """
        if family not in (4, 6):
            raise ValueError(f"family must be 4 or 6, got {family}")
        current = self.ipv4 if family == 4 else self.ipv6
        old = self.old_ipv4 if family == 4 else self.old_ipv6
        if old is not None and at_ts < B_ROOT_CHANGE_TS:
            return old
        return current


#: The RSS as of the measurement period.  b.root: old = 199.9.14.201 /
#: 2001:500:200::b, new = 170.247.170.2 / 2801:1b8:10::b.
_SERVERS: List[RootServer] = [
    RootServer("a", "Verisign", "198.41.0.4", "2001:503:ba3e::2:30"),
    RootServer(
        "b", "USC-ISI", "170.247.170.2", "2801:1b8:10::b",
        old_ipv4="199.9.14.201", old_ipv6="2001:500:200::b",
    ),
    RootServer("c", "Cogent", "192.33.4.12", "2001:500:2::c"),
    RootServer("d", "University of Maryland", "199.7.91.13", "2001:500:2d::d"),
    RootServer("e", "NASA Ames", "192.203.230.10", "2001:500:a8::e"),
    RootServer("f", "ISC", "192.5.5.241", "2001:500:2f::f"),
    RootServer("g", "DISA", "192.112.36.4", "2001:500:12::d0d"),
    RootServer("h", "U.S. Army Research Lab", "198.97.190.53", "2001:500:1::53"),
    RootServer("i", "Netnod", "192.36.148.17", "2001:7fe::53"),
    RootServer("j", "Verisign", "192.58.128.30", "2001:503:c27::2:30"),
    RootServer("k", "RIPE NCC", "193.0.14.129", "2001:7fd::1"),
    RootServer("l", "ICANN", "199.7.83.42", "2001:500:9f::42"),
    RootServer("m", "WIDE Project", "202.12.27.33", "2001:dc3::35"),
]

ROOT_SERVERS: Dict[str, RootServer] = {s.letter: s for s in _SERVERS}


def root_server(letter: str) -> RootServer:
    """Look up a root server by letter."""
    key = letter.lower()
    if key not in ROOT_SERVERS:
        raise KeyError(f"unknown root letter: {letter!r}")
    return ROOT_SERVERS[key]


def all_service_addresses() -> List[ServiceAddress]:
    """Every probe target: 14 IPv4 + 14 IPv6 addresses (b.root twice)."""
    out: List[ServiceAddress] = []
    for server in _SERVERS:
        out.extend(server.addresses())
    return out


def address_owner(address: str) -> ServiceAddress:
    """Reverse lookup: which letter/generation does an address belong to."""
    for sa in all_service_addresses():
        if sa.address == address:
            return sa
    raise KeyError(f"not a root server address: {address!r}")
