"""The root server system (RSS): the 13 letters, their operators and
service addresses (including b.root's 2023 renumbering), per-letter site
catalogs mirroring the paper's §2 deployment counts, and the behaviour of
a root server instance (answering queries, CHAOS identity, AXFR).
"""

from repro.rss.operators import (
    ROOT_LETTERS,
    RootServer,
    ROOT_SERVERS,
    root_server,
    B_ROOT_CHANGE_TS,
    ServiceAddress,
    all_service_addresses,
)
from repro.rss.sites import Site, SiteCatalog, build_site_catalog, SITE_PLAN
from repro.rss.instance import RootInstance
from repro.rss.server import RootServerDeployment

__all__ = [
    "ROOT_LETTERS",
    "RootServer",
    "ROOT_SERVERS",
    "root_server",
    "B_ROOT_CHANGE_TS",
    "ServiceAddress",
    "all_service_addresses",
    "Site",
    "SiteCatalog",
    "build_site_catalog",
    "SITE_PLAN",
    "RootInstance",
    "RootServerDeployment",
]
