"""A letter's whole deployment: sites, instances and time-aware serving.

Binds the site catalog to the zone distribution machinery so that a query
arriving at site S at time T is answered from the zone copy S serves at T
(including staleness faults — the paper's Table 2 d.root Tokyo/Leeds
stale-zone observations are frozen sites here).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dns.message import Message
from repro.dns.name import ROOT_NAME
from repro.dns.constants import RRType
from repro.rss.instance import RootInstance
from repro.rss.operators import RootServer
from repro.rss.sites import Site, SiteCatalog
from repro.util.timeutil import Timestamp
from repro.zone.distribution import ZoneDistributor
from repro.zone.transfer import AxfrClient, AxfrResult, AxfrServer
from repro.zone.zone import Zone


class RootServerDeployment:
    """One letter: its sites, their instances, and serving behaviour."""

    def __init__(
        self,
        server: RootServer,
        sites: List[Site],
        distributor: ZoneDistributor,
    ) -> None:
        if not sites:
            raise ValueError(f"{server.letter}.root needs at least one site")
        self.server = server
        self.sites = sites
        self.distributor = distributor
        self.instances: Dict[str, RootInstance] = {
            site.key: RootInstance(site) for site in sites
        }
        # AXFRs of an unchanged zone copy are identical; memoise by the
        # zone's content fingerprint (shared with the validation caches)
        # so campaign-scale transfer counts stay cheap.
        self._axfr_cache: Dict[bytes, AxfrResult] = {}

    @property
    def letter(self) -> str:
        return self.server.letter

    def instance_at(self, site_key: str) -> RootInstance:
        """The instance serving at *site_key*."""
        if site_key not in self.instances:
            raise KeyError(f"{self.letter}.root has no site {site_key}")
        return self.instances[site_key]

    def zone_at(self, site_key: str, ts: Timestamp) -> Zone:
        """Zone copy served by *site_key* at *ts* (staleness-aware)."""
        return self.distributor.zone_at_site(site_key, ts)

    def answer(self, site_key: str, query: Message, ts: Timestamp) -> Message:
        """Answer a query arriving at *site_key* at *ts*."""
        zone = self.zone_at(site_key, ts)
        return self.instance_at(site_key).answer(query, zone)

    def serve_axfr(self, site_key: str, ts: Timestamp) -> AxfrResult:
        """Run a complete AXFR against *site_key* at *ts*."""
        return self.axfr_of(self.zone_at(site_key, ts))

    def axfr_of(self, zone: Zone) -> AxfrResult:
        """The (memoised) AXFR of one concrete zone copy.

        The epoch-compiled engine resolves the served zone itself (it
        evaluates staleness windows without mutating distributor state)
        and comes in through here, sharing the cache with
        :meth:`serve_axfr`.
        """
        from repro.dnssec.digestcache import zone_fingerprint

        key = zone_fingerprint(zone)
        cached = self._axfr_cache.get(key)
        if cached is None:
            server = AxfrServer(zone)
            query = Message.make_query(ROOT_NAME, RRType.AXFR)
            cached = AxfrClient().transfer(server, query)
            self._axfr_cache[key] = cached
        return cached

    def freeze_site(self, site_key: str, at_ts: Timestamp) -> None:
        """Inject a stale-zone fault at one site."""
        self.instance_at(site_key)  # validates membership
        self.distributor.freeze_site(site_key, at_ts)

    def unfreeze_site(self, site_key: str) -> None:
        """Clear a stale-zone fault."""
        self.distributor.unfreeze_site(site_key)
